// Per-thread trace shards: the lock-free fast path of the event logger.
//
// The real sgx-perf keeps its ~1.3 us/event overhead because every worker
// thread appends to its own buffer and the buffers are only stitched together
// when the database is finalised (§4.1).  An EventShard is that per-thread
// buffer: append-only vectors of call/AEX/paging/sync records, owned by
// exactly one writer thread, touched by no lock on the hot path.  The shard
// is cache-line aligned so two shards never share a line (no false sharing
// between worker threads).
//
// Lifecycle (enforced by TraceDatabase, tested in tracedb_shard_test.cpp):
//
//   register_shard()  ->  [recording]  --seal()-->  [sealed]  --drain-->
//   [drained husk]  --reset (clear()/reopen_shards())-->  [recording]
//
// A shard must be *sealed* before it is merged; once sealed, late appends are
// dropped (and counted) and late finish/kind patches are ignored, so a thread
// still unwinding through a detached logger can never corrupt or crash the
// database.  Record indices returned by add_call are *shard-local*; the
// merge step remaps them (and the parent / during_call references that use
// them) into global TraceDatabase indices.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "tracedb/schema.hpp"

namespace tracedb {

/// Registration-ordered shard identifier within one TraceDatabase.
using ShardId = std::uint32_t;

/// Returned by EventShard::add_* when the event was dropped (shard sealed).
inline constexpr CallIndex kShardSealed = -1;

class alignas(64) EventShard {
 public:
  EventShard(ShardId id, ThreadId owner_thread, std::size_t owner_slot) noexcept
      : shard_id_(id), owner_thread_(owner_thread), owner_slot_(owner_slot) {}

  EventShard(const EventShard&) = delete;
  EventShard& operator=(const EventShard&) = delete;

  // --- hot path (single writer thread, no locks) ---------------------------

  /// Appends a call record and returns its *shard-local* index, or
  /// kShardSealed if the shard is sealed (event dropped and counted).
  CallIndex add_call(const CallRecord& rec);
  /// Patches end timestamp / AEX count.  Ignored (and counted) when the
  /// shard is sealed or `local` no longer names a live record — a frame
  /// unwinding through a detached logger must be harmless.
  void finish_call(CallIndex local, Nanoseconds end_ns, std::uint32_t aex_count) noexcept;
  void set_call_kind(CallIndex local, OcallKind kind) noexcept;

  void add_aex(const AexRecord& rec);
  void add_paging(const PagingRecord& rec);
  void add_sync(const SyncRecord& rec);

  // --- lifecycle ------------------------------------------------------------

  /// Makes the shard read-only.  Idempotent.  Must happen before drain();
  /// the owning thread must have quiesced (or be the sealing thread itself).
  void seal() noexcept { sealed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool sealed() const noexcept {
    return sealed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool drained() const noexcept { return drained_; }

  /// Empties the shard back into the recording state (clear() / shard reuse
  /// between experiment repetitions).  Caller must guarantee quiescence.
  void reset() noexcept;

  // --- read side (after seal, or from the owner thread) ---------------------

  [[nodiscard]] const std::vector<CallRecord>& calls() const noexcept { return calls_; }
  [[nodiscard]] const std::vector<AexRecord>& aexs() const noexcept { return aexs_; }
  [[nodiscard]] const std::vector<PagingRecord>& paging() const noexcept { return paging_; }
  [[nodiscard]] const std::vector<SyncRecord>& syncs() const noexcept { return syncs_; }

  [[nodiscard]] ShardId shard_id() const noexcept { return shard_id_; }
  /// The Urts thread that owns this shard (informational).
  [[nodiscard]] ThreadId owner_thread() const noexcept { return owner_thread_; }
  /// The owner's dense Urts thread slot (see Urts::current_thread_slot()).
  [[nodiscard]] std::size_t owner_slot() const noexcept { return owner_slot_; }

  [[nodiscard]] std::size_t events_recorded() const noexcept {
    return calls_.size() + aexs_.size() + paging_.size() + syncs_.size();
  }
  /// Events rejected because the shard was already sealed, plus finish/kind
  /// patches that arrived too late to apply.
  [[nodiscard]] std::size_t events_dropped() const noexcept { return dropped_; }

 private:
  friend class TraceDatabase;  // drains the vectors during merge

  ShardId shard_id_ = 0;
  ThreadId owner_thread_ = 0;
  std::size_t owner_slot_ = 0;
  std::atomic<bool> sealed_{false};
  bool drained_ = false;
  std::size_t dropped_ = 0;

  std::vector<CallRecord> calls_;
  std::vector<AexRecord> aexs_;
  std::vector<PagingRecord> paging_;
  std::vector<SyncRecord> syncs_;
};

}  // namespace tracedb
