// Read-side query helpers over a TraceDatabase.
//
// These provide the "SQL views" the analyser and the report writers need:
// per-call-id grouping, duration vectors, time-range filters and simple
// aggregates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tracedb/database.hpp"

namespace tracedb {

/// Key identifying one distinct call site: (enclave, type, id).
struct CallKey {
  EnclaveId enclave_id = 0;
  CallType type = CallType::kEcall;
  CallId call_id = 0;

  auto operator<=>(const CallKey&) const = default;
};

/// Indices (into db.calls()) of every instance of one call, in trace order.
using CallInstances = std::vector<CallIndex>;

/// Groups all calls by (enclave, type, id).
[[nodiscard]] std::map<CallKey, CallInstances> group_calls(const TraceDatabase& db);

/// Durations (ns) of every instance of `key`, in trace order.
[[nodiscard]] std::vector<std::uint64_t> durations_of(const TraceDatabase& db,
                                                      const CallKey& key);

/// Start-relative (start_ns, duration_ns) pairs for scatter plots (Fig. 8).
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> scatter_of(
    const TraceDatabase& db, const CallKey& key);

/// Indices of calls of `type` that started within [from_ns, to_ns).
[[nodiscard]] std::vector<CallIndex> calls_in_range(const TraceDatabase& db, CallType type,
                                                    Nanoseconds from_ns, Nanoseconds to_ns);

/// Number of distinct call ids of `type` observed for `enclave`.
[[nodiscard]] std::size_t distinct_calls(const TraceDatabase& db, EnclaveId enclave,
                                         CallType type);

/// Total number of call instances of `type` for `enclave`.
[[nodiscard]] std::size_t total_calls(const TraceDatabase& db, EnclaveId enclave, CallType type);

/// Fraction of calls of `type` whose duration is below `threshold_ns`.
/// For ecalls the caller should subtract the transition time first (§4.1.2);
/// `subtract_ns` supports that.
[[nodiscard]] double fraction_shorter_than(const TraceDatabase& db, EnclaveId enclave,
                                           CallType type, Nanoseconds threshold_ns,
                                           Nanoseconds subtract_ns = 0);

/// Paging event counts for `enclave`: {page-ins, page-outs}.
[[nodiscard]] std::pair<std::size_t, std::size_t> paging_counts(const TraceDatabase& db,
                                                                EnclaveId enclave);

/// Indirect parents per §4.3.2 / Figure 4: the indirect parent of call C is
/// the most recent call of the *same type* as C, on the same thread, with
/// the same direct parent, that completed before C started.
/// indirect[i] is the indirect parent of db.calls()[i], or kNoParent.
[[nodiscard]] std::vector<CallIndex> indirect_parents(const TraceDatabase& db);

/// Resolves a call site by its registered (or synthesized "ecall_<id>")
/// name, searching both call types.  Returns std::nullopt when unknown.
[[nodiscard]] std::optional<CallKey> find_call_by_name(const TraceDatabase& db,
                                                       EnclaveId enclave,
                                                       const std::string& name);

/// Per-window rows of one call site from the v5 time-series table, in
/// window order (the "when did this site regress" view).
[[nodiscard]] std::vector<WindowSiteRecord> window_series_of(const TraceDatabase& db,
                                                             const CallKey& key);

/// Alerts whose condition still held when the trace ended (resolved_ns == 0).
[[nodiscard]] std::vector<AlertRecord> active_alerts(const TraceDatabase& db);

/// Alerts overlapping virtual-time instant `at_ns` (onset ≤ at < resolution,
/// with unresolved alerts open-ended) — "what was wrong at time T".
[[nodiscard]] std::vector<AlertRecord> alerts_at(const TraceDatabase& db, Nanoseconds at_ns);

}  // namespace tracedb
