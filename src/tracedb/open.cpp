#include "tracedb/open.hpp"

#include <sys/stat.h>

#include "support/atomic_file.hpp"

namespace tracedb {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

bool is_store_path(const std::string& path) {
  if (store::is_store(path)) return true;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ends_with(path, ".store");
}

TraceDatabase open_trace(const std::string& path, unsigned sections, OpenStats* stats) {
  if (store::is_store(path)) {
    store::StoreReader reader(path);
    TraceDatabase db = reader.load(sections);
    if (stats != nullptr) {
      stats->store = true;
      stats->total_bytes = reader.io().total_bytes;
      stats->bytes_read = reader.io().bytes_read;
      stats->sections_loaded = reader.io().sections_loaded;
    }
    return db;
  }
  TraceDatabase db = TraceDatabase::load(path);
  if (stats != nullptr) {
    stats->store = false;
    stats->total_bytes = file_size(path);
    stats->bytes_read = stats->total_bytes;
    stats->sections_loaded = {"flat"};
  }
  return db;
}

void save_trace(const TraceDatabase& db, const std::string& path) {
  if (is_store_path(path)) {
    store::pack(db, path);
    return;
  }
  db.save(path);
}

void save_trace_atomic(const TraceDatabase& db, const std::string& path) {
  if (is_store_path(path)) {
    store::pack(db, path);  // the store writer's commit protocol is atomic
    return;
  }
  const std::string tmp = support::atomic_temp_path(path);
  db.save(tmp);
  support::commit_file(tmp, path);
}

}  // namespace tracedb
