#include "tracedb/database.hpp"

#include <stdexcept>

#include "support/strutil.hpp"

namespace tracedb {

TraceDatabase::TraceDatabase(TraceDatabase&& other) noexcept {
  std::lock_guard lock(other.mu_);
  calls_ = std::move(other.calls_);
  aexs_ = std::move(other.aexs_);
  paging_ = std::move(other.paging_);
  syncs_ = std::move(other.syncs_);
  enclaves_ = std::move(other.enclaves_);
  call_names_ = std::move(other.call_names_);
}

CallIndex TraceDatabase::add_call(const CallRecord& rec) {
  std::lock_guard lock(mu_);
  calls_.push_back(rec);
  return static_cast<CallIndex>(calls_.size() - 1);
}

void TraceDatabase::finish_call(CallIndex idx, Nanoseconds end_ns, std::uint32_t aex_count) {
  std::lock_guard lock(mu_);
  auto& rec = calls_.at(static_cast<std::size_t>(idx));
  rec.end_ns = end_ns;
  rec.aex_count = aex_count;
}

void TraceDatabase::set_call_kind(CallIndex idx, OcallKind kind) {
  std::lock_guard lock(mu_);
  calls_.at(static_cast<std::size_t>(idx)).kind = kind;
}

void TraceDatabase::add_aex(const AexRecord& rec) {
  std::lock_guard lock(mu_);
  aexs_.push_back(rec);
}

void TraceDatabase::add_paging(const PagingRecord& rec) {
  std::lock_guard lock(mu_);
  paging_.push_back(rec);
}

void TraceDatabase::add_sync(const SyncRecord& rec) {
  std::lock_guard lock(mu_);
  syncs_.push_back(rec);
}

void TraceDatabase::add_enclave(const EnclaveRecord& rec) {
  std::lock_guard lock(mu_);
  enclaves_.push_back(rec);
}

void TraceDatabase::set_enclave_destroyed(EnclaveId id, Nanoseconds when) {
  std::lock_guard lock(mu_);
  for (auto& e : enclaves_) {
    if (e.enclave_id == id) {
      e.destroyed_ns = when;
      return;
    }
  }
}

void TraceDatabase::add_call_name(const CallNameRecord& rec) {
  std::lock_guard lock(mu_);
  for (const auto& existing : call_names_) {
    if (existing.enclave_id == rec.enclave_id && existing.type == rec.type &&
        existing.call_id == rec.call_id) {
      return;  // idempotent registration
    }
  }
  call_names_.push_back(rec);
}

std::string TraceDatabase::name_of(EnclaveId enclave, CallType type, CallId id) const {
  std::lock_guard lock(mu_);
  for (const auto& rec : call_names_) {
    if (rec.enclave_id == enclave && rec.type == type && rec.call_id == id) return rec.name;
  }
  return support::format("%s_%u", type == CallType::kEcall ? "ecall" : "ocall", id);
}

void TraceDatabase::clear() {
  std::lock_guard lock(mu_);
  calls_.clear();
  aexs_.clear();
  paging_.clear();
  syncs_.clear();
  enclaves_.clear();
  call_names_.clear();
}

}  // namespace tracedb
