#include "tracedb/database.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "support/strutil.hpp"
#include "telemetry/metrics.hpp"
#include "tracedb/merge.hpp"

namespace tracedb {
namespace {

/// Registry handles resolved once per process; merge/registration paths pay
/// only relaxed atomic adds after that.
struct DbMetrics {
  telemetry::Counter& shards_registered =
      telemetry::metrics().counter("tracedb.shards_registered", "shards");
  telemetry::Counter& shard_seals = telemetry::metrics().counter("tracedb.shard_seals", "shards");
  telemetry::Counter& merges = telemetry::metrics().counter("tracedb.merges", "merges");
  telemetry::Counter& merge_records =
      telemetry::metrics().counter("tracedb.merge_records", "records");
  telemetry::Counter& events_dropped =
      telemetry::metrics().counter("tracedb.events_dropped", "events");
  telemetry::Histogram& merge_ns = telemetry::metrics().histogram(
      "tracedb.merge_ns", {10'000, 100'000, 1'000'000, 10'000'000, 100'000'000}, "ns");
};

DbMetrics& db_metrics() {
  static DbMetrics m;
  return m;
}

}  // namespace

TraceDatabase::TraceDatabase(TraceDatabase&& other) noexcept {
  std::scoped_lock lock(mu_, other.mu_);
  calls_ = std::move(other.calls_);
  aexs_ = std::move(other.aexs_);
  paging_ = std::move(other.paging_);
  syncs_ = std::move(other.syncs_);
  enclaves_ = std::move(other.enclaves_);
  call_names_ = std::move(other.call_names_);
  metric_series_ = std::move(other.metric_series_);
  metric_samples_ = std::move(other.metric_samples_);
  latencies_ = std::move(other.latencies_);
  windows_ = std::move(other.windows_);
  window_sites_ = std::move(other.window_sites_);
  alerts_ = std::move(other.alerts_);
  order_rules_ = std::move(other.order_rules_);
  window_period_ = other.window_period_;
  dropped_events_ = other.dropped_events_;
  stream_dropped_ = other.stream_dropped_;
  shards_ = std::move(other.shards_);
  merge_stats_ = other.merge_stats_;
  merge_threads_ = other.merge_threads_;
  other.shards_.clear();
  other.merge_stats_ = MergeStats{};
  other.dropped_events_ = 0;
  other.stream_dropped_ = 0;
  other.window_period_ = 0;
}

CallIndex TraceDatabase::add_call(const CallRecord& rec) {
  std::lock_guard lock(mu_);
  calls_.push_back(rec);
  return static_cast<CallIndex>(calls_.size() - 1);
}

void TraceDatabase::finish_call(CallIndex idx, Nanoseconds end_ns, std::uint32_t aex_count) {
  std::lock_guard lock(mu_);
  auto& rec = calls_.at(static_cast<std::size_t>(idx));
  rec.end_ns = end_ns;
  rec.aex_count = aex_count;
}

void TraceDatabase::set_call_kind(CallIndex idx, OcallKind kind) {
  std::lock_guard lock(mu_);
  calls_.at(static_cast<std::size_t>(idx)).kind = kind;
}

void TraceDatabase::add_aex(const AexRecord& rec) {
  std::lock_guard lock(mu_);
  aexs_.push_back(rec);
}

void TraceDatabase::add_paging(const PagingRecord& rec) {
  std::lock_guard lock(mu_);
  paging_.push_back(rec);
}

void TraceDatabase::add_sync(const SyncRecord& rec) {
  std::lock_guard lock(mu_);
  syncs_.push_back(rec);
}

void TraceDatabase::add_enclave(const EnclaveRecord& rec) {
  std::lock_guard lock(mu_);
  enclaves_.push_back(rec);
}

void TraceDatabase::set_enclave_destroyed(EnclaveId id, Nanoseconds when) {
  std::lock_guard lock(mu_);
  for (auto& e : enclaves_) {
    if (e.enclave_id == id) {
      e.destroyed_ns = when;
      return;
    }
  }
}

void TraceDatabase::add_call_name(const CallNameRecord& rec) {
  std::lock_guard lock(mu_);
  for (const auto& existing : call_names_) {
    if (existing.enclave_id == rec.enclave_id && existing.type == rec.type &&
        existing.call_id == rec.call_id) {
      return;  // idempotent registration
    }
  }
  call_names_.push_back(rec);
}

EventShard& TraceDatabase::register_shard(ThreadId owner_thread, std::size_t owner_slot) {
  std::lock_guard lock(mu_);
  const auto id = static_cast<ShardId>(shards_.size());
  shards_.push_back(std::make_unique<EventShard>(id, owner_thread, owner_slot));
  db_metrics().shards_registered.add();
  return *shards_.back();
}

MetricSeriesId TraceDatabase::add_metric_series(MetricKind kind, const std::string& name,
                                                const std::string& unit) {
  std::lock_guard lock(mu_);
  for (const auto& s : metric_series_) {
    if (s.name == name) return s.series_id;  // idempotent registration
  }
  MetricSeriesRecord rec;
  rec.series_id = static_cast<MetricSeriesId>(metric_series_.size());
  rec.kind = kind;
  rec.name = name;
  rec.unit = unit;
  metric_series_.push_back(std::move(rec));
  return metric_series_.back().series_id;
}

void TraceDatabase::add_metric_sample(const MetricSampleRecord& rec) {
  std::lock_guard lock(mu_);
  metric_samples_.push_back(rec);
}

void TraceDatabase::set_latency(const LatencyRecord& rec) {
  std::lock_guard lock(mu_);
  for (auto& existing : latencies_) {
    if (existing.enclave_id == rec.enclave_id && existing.type == rec.type &&
        existing.call_id == rec.call_id) {
      existing = rec;
      return;
    }
  }
  latencies_.push_back(rec);
}

const LatencyRecord* TraceDatabase::find_latency(EnclaveId enclave, CallType type,
                                                 CallId call_id) const {
  std::lock_guard lock(mu_);
  for (const auto& rec : latencies_) {
    if (rec.enclave_id == enclave && rec.type == type && rec.call_id == call_id) return &rec;
  }
  return nullptr;
}

void TraceDatabase::set_stream_dropped(std::uint64_t n) {
  std::lock_guard lock(mu_);
  stream_dropped_ = n;
}

std::uint64_t TraceDatabase::stream_dropped() const {
  std::lock_guard lock(mu_);
  return stream_dropped_;
}

void TraceDatabase::set_window_period(Nanoseconds period_ns) {
  std::lock_guard lock(mu_);
  window_period_ = period_ns;
}

Nanoseconds TraceDatabase::window_period() const {
  std::lock_guard lock(mu_);
  return window_period_;
}

void TraceDatabase::add_window(const WindowRecord& rec) {
  std::lock_guard lock(mu_);
  windows_.push_back(rec);
}

void TraceDatabase::add_window_site(const WindowSiteRecord& rec) {
  std::lock_guard lock(mu_);
  window_sites_.push_back(rec);
}

void TraceDatabase::add_alert(const AlertRecord& rec) {
  std::lock_guard lock(mu_);
  alerts_.push_back(rec);
}

void TraceDatabase::add_order_rule(const OrderRuleRecord& rec) {
  std::lock_guard lock(mu_);
  order_rules_.push_back(rec);
}

void TraceDatabase::set_order_rules(std::vector<OrderRuleRecord> rules) {
  std::lock_guard lock(mu_);
  order_rules_ = std::move(rules);
}

void TraceDatabase::set_merge_threads(std::size_t n) {
  std::lock_guard lock(mu_);
  merge_threads_ = n;
}

std::uint64_t TraceDatabase::dropped_events() const {
  std::lock_guard lock(mu_);
  return dropped_events_;
}

TraceDatabase::MergeStats TraceDatabase::merge_shards() {
  std::lock_guard lock(mu_);
  const auto merge_start = std::chrono::steady_clock::now();
  MergeStats round;
  round.merges = 1;

  std::vector<EventShard*> live;
  for (auto& s : shards_) {
    if (!s->sealed()) db_metrics().shard_seals.add();
    s->seal();
    if (!s->drained()) live.push_back(s.get());
  }

  // Timestamp ties resolve to shard registration order then append order
  // inside merge.cpp's tournament merge, which makes the merged sequence
  // deterministic (and byte-identical for any merge_threads_ setting).
  std::vector<std::uint32_t> shard_ids;
  shard_ids.reserve(live.size());
  for (const EventShard* s : live) shard_ids.push_back(s->shard_id());

  // --- calls: sort by start time, remap local parent references ------------
  {
    std::vector<std::vector<Nanoseconds>> keys(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) {
      keys[s].reserve(live[s]->calls().size());
      for (const auto& c : live[s]->calls()) keys[s].push_back(c.start_ns);
    }
    const auto order = parallel_merge_order(keys, shard_ids, merge_threads_);

    std::vector<std::vector<CallIndex>> remap(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) remap[s].resize(live[s]->calls_.size());
    calls_.reserve(calls_.size() + order.size());
    for (const auto& ref : order) {
      remap[ref.shard][ref.local] = static_cast<CallIndex>(calls_.size());
      calls_.push_back(live[ref.shard]->calls_[ref.local]);
    }
    for (const auto& ref : order) {
      auto& rec = calls_[static_cast<std::size_t>(remap[ref.shard][ref.local])];
      if (rec.parent != kNoParent) {
        rec.parent = remap[ref.shard][static_cast<std::size_t>(rec.parent)];
      }
    }
    round.calls = order.size();

    // --- AEXs: sort by timestamp, remap during_call through the same map ---
    std::vector<std::vector<Nanoseconds>> aex_keys(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) {
      for (const auto& a : live[s]->aexs()) aex_keys[s].push_back(a.timestamp_ns);
    }
    const auto aex_order = parallel_merge_order(aex_keys, shard_ids, merge_threads_);
    aexs_.reserve(aexs_.size() + aex_order.size());
    for (const auto& ref : aex_order) {
      AexRecord rec = live[ref.shard]->aexs_[ref.local];
      if (rec.during_call != kNoParent) {
        rec.during_call = remap[ref.shard][static_cast<std::size_t>(rec.during_call)];
      }
      aexs_.push_back(rec);
    }
    round.aexs = aex_order.size();
  }

  // --- paging / sync: time-sorted stitches, no references to remap ---------
  {
    std::vector<std::vector<Nanoseconds>> keys(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) {
      for (const auto& p : live[s]->paging()) keys[s].push_back(p.timestamp_ns);
    }
    const auto order = parallel_merge_order(keys, shard_ids, merge_threads_);
    paging_.reserve(paging_.size() + order.size());
    for (const auto& ref : order) paging_.push_back(live[ref.shard]->paging_[ref.local]);
    round.paging = order.size();
  }
  {
    std::vector<std::vector<Nanoseconds>> keys(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) {
      for (const auto& rec : live[s]->syncs()) keys[s].push_back(rec.timestamp_ns);
    }
    const auto order = parallel_merge_order(keys, shard_ids, merge_threads_);
    syncs_.reserve(syncs_.size() + order.size());
    for (const auto& ref : order) syncs_.push_back(live[ref.shard]->syncs_[ref.local]);
    round.syncs = order.size();
  }

  // --- drain ----------------------------------------------------------------
  for (EventShard* s : live) {
    if (s->events_recorded() > 0) ++round.shards_merged;
    s->calls_.clear();
    s->aexs_.clear();
    s->paging_.clear();
    s->syncs_.clear();
    s->drained_ = true;
  }

  // Collect late-writer drops from *every* shard — drained husks included,
  // since a writer can race the previous merge and drop into a husk — and
  // zero the per-shard tallies so each drop is counted exactly once.
  for (auto& s : shards_) {
    round.dropped += s->events_dropped();
    s->dropped_ = 0;
  }

  merge_stats_.merges += round.merges;
  merge_stats_.shards_merged += round.shards_merged;
  merge_stats_.calls += round.calls;
  merge_stats_.aexs += round.aexs;
  merge_stats_.paging += round.paging;
  merge_stats_.syncs += round.syncs;
  merge_stats_.dropped += round.dropped;
  dropped_events_ += round.dropped;

  auto& tm = db_metrics();
  tm.merges.add();
  tm.merge_records.add(round.calls + round.aexs + round.paging + round.syncs);
  if (round.dropped > 0) tm.events_dropped.add(round.dropped);
  tm.merge_ns.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           merge_start)
          .count()));
  return round;
}

void TraceDatabase::reopen_shards() {
  std::lock_guard lock(mu_);
  for (auto& s : shards_) {
    if (s->drained()) s->reset();
  }
}

TraceDatabase::MergeStats TraceDatabase::merge_stats() const {
  std::lock_guard lock(mu_);
  return merge_stats_;
}

std::size_t TraceDatabase::shard_count() const {
  std::lock_guard lock(mu_);
  return shards_.size();
}

std::string TraceDatabase::name_of(EnclaveId enclave, CallType type, CallId id) const {
  std::lock_guard lock(mu_);
  for (const auto& rec : call_names_) {
    if (rec.enclave_id == enclave && rec.type == type && rec.call_id == id) return rec.name;
  }
  return support::format("%s_%u", type == CallType::kEcall ? "ecall" : "ocall", id);
}

void TraceDatabase::clear() {
  std::lock_guard lock(mu_);
  calls_.clear();
  aexs_.clear();
  paging_.clear();
  syncs_.clear();
  enclaves_.clear();
  call_names_.clear();
  metric_series_.clear();
  metric_samples_.clear();
  latencies_.clear();
  windows_.clear();
  window_sites_.clear();
  alerts_.clear();
  order_rules_.clear();
  window_period_ = 0;
  dropped_events_ = 0;
  stream_dropped_ = 0;
  for (auto& s : shards_) s->reset();
  merge_stats_ = MergeStats{};
}

}  // namespace tracedb
