#include "tracedb/shard.hpp"

namespace tracedb {

CallIndex EventShard::add_call(const CallRecord& rec) {
  if (sealed()) {
    ++dropped_;
    return kShardSealed;
  }
  calls_.push_back(rec);
  return static_cast<CallIndex>(calls_.size() - 1);
}

void EventShard::finish_call(CallIndex local, Nanoseconds end_ns,
                             std::uint32_t aex_count) noexcept {
  if (sealed() || local < 0 || static_cast<std::size_t>(local) >= calls_.size()) {
    ++dropped_;
    return;
  }
  auto& rec = calls_[static_cast<std::size_t>(local)];
  rec.end_ns = end_ns;
  rec.aex_count = aex_count;
}

void EventShard::set_call_kind(CallIndex local, OcallKind kind) noexcept {
  if (sealed() || local < 0 || static_cast<std::size_t>(local) >= calls_.size()) {
    ++dropped_;
    return;
  }
  calls_[static_cast<std::size_t>(local)].kind = kind;
}

void EventShard::add_aex(const AexRecord& rec) {
  if (sealed()) {
    ++dropped_;
    return;
  }
  aexs_.push_back(rec);
}

void EventShard::add_paging(const PagingRecord& rec) {
  if (sealed()) {
    ++dropped_;
    return;
  }
  paging_.push_back(rec);
}

void EventShard::add_sync(const SyncRecord& rec) {
  if (sealed()) {
    ++dropped_;
    return;
  }
  syncs_.push_back(rec);
}

void EventShard::reset() noexcept {
  calls_.clear();
  aexs_.clear();
  paging_.clear();
  syncs_.clear();
  dropped_ = 0;
  drained_ = false;
  sealed_.store(false, std::memory_order_release);
}

}  // namespace tracedb
