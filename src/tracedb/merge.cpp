#include "tracedb/merge.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>

namespace tracedb {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Below this many total records the segment/thread machinery costs more
/// than it saves; fall back to one sequential loser-tree pass.
constexpr std::size_t kMinRecordsPerSegment = 8'192;

/// One shard's contribution to a merge segment: a [pos, end) window over
/// the shard's *sorted* index array.
struct Run {
  const std::vector<Nanoseconds>* keys = nullptr;     // append-order keys
  const std::vector<std::size_t>* sorted = nullptr;   // indices sorted by (key, index)
  std::size_t pos = 0;
  std::size_t end = 0;
  std::uint32_t shard_id = 0;
  std::size_t shard_slot = 0;

  [[nodiscard]] bool exhausted() const noexcept { return pos >= end; }
  [[nodiscard]] Nanoseconds key() const noexcept { return (*keys)[(*sorted)[pos]]; }
  [[nodiscard]] std::size_t local() const noexcept { return (*sorted)[pos]; }
};

/// Tournament (loser) tree over k runs: internal nodes remember the loser
/// of their match, the overall winner sits at the root.  Emitting a record
/// replays only the winner's root path — log2(k) comparisons — where a
/// global sort pays log2(N).
class LoserTree {
 public:
  explicit LoserTree(std::vector<Run>& runs) : runs_(runs) {
    k_ = 1;
    while (k_ < runs_.size()) k_ <<= 1;
    loser_.assign(k_, kNone);
    std::vector<std::size_t> winner(2 * k_, kNone);
    for (std::size_t i = 0; i < runs_.size(); ++i) winner[k_ + i] = i;
    for (std::size_t n = k_ - 1; n >= 1; --n) {
      std::size_t a = winner[2 * n];
      std::size_t b = winner[2 * n + 1];
      if (beats(b, a)) std::swap(a, b);
      winner[n] = a;   // winner moves up
      loser_[n] = b;   // loser stays at this match
    }
    winner_ = winner[1];
  }

  /// Run index holding the globally smallest current record.
  [[nodiscard]] std::size_t top() const noexcept { return winner_; }

  /// Consumes the winner's current record and replays its path to the root.
  void advance() noexcept {
    ++runs_[winner_].pos;
    std::size_t cur = winner_;
    for (std::size_t n = (k_ + winner_) / 2; n >= 1; n /= 2) {
      if (beats(loser_[n], cur)) std::swap(cur, loser_[n]);
    }
    winner_ = cur;
  }

 private:
  /// Strict "run a's current record sorts before run b's".  Exhausted runs
  /// (and padding slots) lose every match.  The (key, shard_id) pair is a
  /// total order across runs — each run is one shard, so the within-shard
  /// append index never has to break a tie here.
  [[nodiscard]] bool beats(std::size_t a, std::size_t b) const noexcept {
    if (a == kNone || runs_[a].exhausted()) return false;
    if (b == kNone || runs_[b].exhausted()) return true;
    const Nanoseconds ka = runs_[a].key();
    const Nanoseconds kb = runs_[b].key();
    if (ka != kb) return ka < kb;
    return runs_[a].shard_id < runs_[b].shard_id;
  }

  std::vector<Run>& runs_;
  std::size_t k_ = 1;
  std::vector<std::size_t> loser_;
  std::size_t winner_ = kNone;
};

/// Merges one segment (a per-shard window vector) into `out[offset...]`.
void merge_segment(std::vector<Run> runs, std::vector<MergeRef>& out, std::size_t offset,
                   std::size_t count) {
  LoserTree tree(runs);
  for (std::size_t i = 0; i < count; ++i) {
    const Run& r = runs[tree.top()];
    out[offset + i] = MergeRef{r.shard_slot, r.local()};
    tree.advance();
  }
}

/// Runs `fn(i)` for i in [0, n) on up to `threads` workers.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
  const std::size_t workers = std::min(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  std::atomic<std::size_t> next{0};
  const auto body = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(body);
  body();
  for (auto& t : pool) t.join();
}

}  // namespace

std::vector<MergeRef> parallel_merge_order(const std::vector<std::vector<Nanoseconds>>& keys,
                                           const std::vector<std::uint32_t>& shard_ids,
                                           std::size_t threads) {
  const std::size_t k = keys.size();
  std::size_t total = 0;
  for (const auto& t : keys) total += t.size();
  if (total == 0) return {};

  if (threads == 0) threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  // Each segment must be worth a thread's startup; small traces go sequential.
  threads = std::clamp<std::size_t>(total / kMinRecordsPerSegment, 1, threads);

  // --- 1. per-shard index sort (parallel across shards) ---------------------
  // Shards are appended in each thread's completion order, which is close to
  // start order already, so these sorts touch mostly-sorted data.
  std::vector<std::vector<std::size_t>> sorted(k);
  parallel_for(k, threads, [&](std::size_t s) {
    auto& idx = sorted[s];
    idx.resize(keys[s].size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (keys[s][a] != keys[s][b]) return keys[s][a] < keys[s][b];
      return a < b;  // append order within a shard
    });
  });

  const auto run_for = [&](std::size_t s, std::size_t begin, std::size_t end) {
    Run r;
    r.keys = &keys[s];
    r.sorted = &sorted[s];
    r.pos = begin;
    r.end = end;
    r.shard_id = shard_ids[s];
    r.shard_slot = s;
    return r;
  };

  std::vector<MergeRef> out(total);
  if (threads <= 1) {
    std::vector<Run> runs;
    runs.reserve(k);
    for (std::size_t s = 0; s < k; ++s) runs.push_back(run_for(s, 0, sorted[s].size()));
    merge_segment(std::move(runs), out, 0, total);
    return out;
  }

  // --- 2. choose key splitters ----------------------------------------------
  // Segments partition by *key alone* (lower_bound on every shard), so a
  // timestamp tie can never straddle a boundary — concatenating the segment
  // outputs reproduces the sequential order exactly.
  std::vector<Nanoseconds> samples;
  samples.reserve(k * threads);
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t n = sorted[s].size();
    for (std::size_t t = 1; t < threads; ++t) {
      if (n > 0) samples.push_back(keys[s][sorted[s][n * t / threads]]);
    }
  }
  std::sort(samples.begin(), samples.end());
  std::vector<Nanoseconds> splitters;
  splitters.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    splitters.push_back(samples[samples.size() * t / threads]);
  }

  // Per-boundary shard positions: bounds[t][s] = first element of shard s
  // belonging to segment t or later.
  std::vector<std::vector<std::size_t>> bounds(threads + 1,
                                               std::vector<std::size_t>(k, 0));
  for (std::size_t s = 0; s < k; ++s) bounds[threads][s] = sorted[s].size();
  for (std::size_t t = 1; t < threads; ++t) {
    for (std::size_t s = 0; s < k; ++s) {
      const auto& idx = sorted[s];
      bounds[t][s] = static_cast<std::size_t>(
          std::lower_bound(idx.begin(), idx.end(), splitters[t - 1],
                           [&](std::size_t i, Nanoseconds v) { return keys[s][i] < v; }) -
          idx.begin());
      // Splitters ascend, but equal samples can produce equal boundaries.
      bounds[t][s] = std::max(bounds[t][s], bounds[t - 1][s]);
    }
  }

  // --- 3. merge every segment concurrently ----------------------------------
  std::vector<std::size_t> offsets(threads + 1, 0);
  for (std::size_t t = 0; t < threads; ++t) {
    std::size_t count = 0;
    for (std::size_t s = 0; s < k; ++s) count += bounds[t + 1][s] - bounds[t][s];
    offsets[t + 1] = offsets[t] + count;
  }
  parallel_for(threads, threads, [&](std::size_t t) {
    const std::size_t count = offsets[t + 1] - offsets[t];
    if (count == 0) return;
    std::vector<Run> runs;
    runs.reserve(k);
    for (std::size_t s = 0; s < k; ++s) runs.push_back(run_for(s, bounds[t][s], bounds[t + 1][s]));
    merge_segment(std::move(runs), out, offsets[t], count);
  });
  return out;
}

}  // namespace tracedb
