// Typed event schema of the sgx-perf trace database.
//
// The original tool serialises all events into a SQLite database (§4 of the
// paper).  SQLite is not available in this environment, so tracedb is an
// embedded, typed, append-oriented store exposing the same relational views
// the analyser needs: calls (ecalls/ocalls with direct parents), AEXs,
// paging events, synchronisation events, and per-enclave metadata.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/clock.hpp"

namespace tracedb {

using support::Nanoseconds;

using EnclaveId = std::uint64_t;
using ThreadId = std::uint32_t;
using CallId = std::uint32_t;

/// Index of a record inside TraceDatabase::calls(); kNoParent when absent.
using CallIndex = std::int64_t;
inline constexpr CallIndex kNoParent = -1;

enum class CallType : std::uint8_t {
  kEcall = 0,
  kOcall = 1,
};

/// Classification of ocalls, mirroring §4.1.3: the SDK's four in-enclave
/// synchronisation ocalls reduce to sleep and wake-up events; everything
/// else is generic.
enum class OcallKind : std::uint8_t {
  kGeneric = 0,
  kSleep = 1,        // thread waits outside the enclave
  kWakeOne = 2,      // wake a single waiter
  kWakeMultiple = 3, // wake several waiters
  kWakeOneAndSleep = 4,
};

/// One completed ecall or ocall.
struct CallRecord {
  CallType type = CallType::kEcall;
  OcallKind kind = OcallKind::kGeneric;  // meaningful for ocalls only
  ThreadId thread_id = 0;
  EnclaveId enclave_id = 0;
  CallId call_id = 0;
  /// Direct parent per §4.3.2: the call of the *other* type during which this
  /// call was issued (an ecall's parent is an ocall and vice versa).
  CallIndex parent = kNoParent;
  Nanoseconds start_ns = 0;
  Nanoseconds end_ns = 0;
  /// AEXs observed during this call (ecalls, when AEX counting is enabled).
  std::uint32_t aex_count = 0;

  [[nodiscard]] Nanoseconds duration() const noexcept { return end_ns - start_ns; }
};

/// Why an AEX happened.  On SGX v1 the reason cannot be observed (§4.1.4:
/// "we cannot differentiate interrupts from simple page faults"); SGX v2
/// records the exit type, readable for debug enclaves.
enum class AexCause : std::uint8_t {
  kUnknown = 0,    // SGX v1, or a non-debug enclave
  kInterrupt = 1,  // timer / external interrupt
  kPageFault = 2,  // EPC fault during enclave execution
};

/// One Asynchronous Enclave Exit (recorded when AEX *tracing* is enabled).
struct AexRecord {
  ThreadId thread_id = 0;
  EnclaveId enclave_id = 0;
  Nanoseconds timestamp_ns = 0;
  /// The ecall during which the AEX occurred, if attributable.
  CallIndex during_call = kNoParent;
  AexCause cause = AexCause::kUnknown;
};

enum class PageDirection : std::uint8_t {
  kPageIn = 0,   // ELDU-like: page loaded back into the EPC
  kPageOut = 1,  // EWB-like: page evicted from the EPC
};

/// One EPC paging event, captured via the (simulated) kprobe on the driver.
struct PagingRecord {
  EnclaveId enclave_id = 0;
  std::uint64_t page_number = 0;  // enclave-relative page index
  PageDirection direction = PageDirection::kPageOut;
  Nanoseconds timestamp_ns = 0;
};

enum class SyncKind : std::uint8_t {
  kSleep = 0,
  kWakeup = 1,
};

/// One synchronisation dependency event: which thread slept, which thread
/// woke which other thread (§4.1.3 "track which thread wakes up which other
/// threads to track dependencies").
struct SyncRecord {
  SyncKind kind = SyncKind::kSleep;
  ThreadId thread_id = 0;          // acting thread
  ThreadId target_thread_id = 0;   // woken thread (wakeups only)
  EnclaveId enclave_id = 0;
  Nanoseconds timestamp_ns = 0;
};

/// Per-enclave metadata.
struct EnclaveRecord {
  EnclaveId enclave_id = 0;
  std::string name;
  Nanoseconds created_ns = 0;
  Nanoseconds destroyed_ns = 0;  // 0 while alive
  std::uint32_t tcs_count = 0;
  std::uint64_t size_bytes = 0;
};

/// Human-readable name for a call id, one row per (enclave, type, id).
struct CallNameRecord {
  EnclaveId enclave_id = 0;
  CallType type = CallType::kEcall;
  CallId call_id = 0;
  std::string name;
};

using MetricSeriesId = std::uint32_t;

enum class MetricKind : std::uint8_t {
  kCounter = 0,  // monotonically increasing
  kGauge = 1,    // may go up and down
};

/// Metadata for one telemetry timeseries (format v3).  One row per metric
/// name; samples reference the series by id.
struct MetricSeriesRecord {
  MetricSeriesId series_id = 0;
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  std::string unit;
};

/// One sampled metric value at a virtual timestamp (format v3).
struct MetricSampleRecord {
  MetricSeriesId series_id = 0;
  Nanoseconds timestamp_ns = 0;
  double value = 0.0;
};

/// Typed anti-pattern alert raised by the online analyser (format v5).
/// Values are pinned — they are persisted as a byte in the trace file.
enum class AlertKind : std::uint8_t {
  kShortCalls = 0,      // SISC/SDSC, Eq. 1
  kReorderStart = 1,    // SNC reordering towards the parent's start, Eq. 2
  kReorderEnd = 2,      // SNC reordering towards the parent's end, Eq. 2
  kBatchable = 3,       // SNC batching, Eq. 3 (indirect parent == self)
  kMergeable = 4,       // SNC merging, Eq. 3 (indirect parent != self)
  kSyncContention = 5,  // SSC: short sleep/wake ocalls
  kPaging = 6,          // EPC paging pressure
  kTailLatency = 7,     // p99 ≫ p50 at a call site
  kLatencyShift = 8,    // EWMA/CUSUM change-point: site latency regime moved
  // Interface-orderliness violations (format v6) — raised by the
  // perf::OrderChecker against a learned or declared per-enclave model.
  kOutOfOrderEcall = 9,   // top-level ecall outside the allowed edge set
  kReentrantEcall = 10,   // nested ecall (under an ocall) not whitelisted
  kUseBeforeInit = 11,    // steady-state ecall before the init ecall finished
  kUseAfterDestroy = 12,  // ecall issued after enclave destruction
  kPhaseViolation = 13,   // lifecycle phase re-entered (e.g. double init)
};
inline constexpr std::uint8_t kAlertKindCount = 14;
/// Highest kind byte + 1 accepted when loading pre-v6 traces: the
/// orderliness kinds did not exist yet, so a v5 file containing one is
/// corrupt, not forward-compatible.
inline constexpr std::uint8_t kAlertKindCountV5 = 9;

/// One fixed-interval snapshot of workload-wide activity (format v5).
/// Windows are cut on the *virtual* clock, so a replayed trace produces a
/// byte-identical window table.
struct WindowRecord {
  std::uint32_t window_index = 0;
  Nanoseconds start_ns = 0;
  Nanoseconds end_ns = 0;
  std::uint64_t calls = 0;          // calls completed inside the window
  std::uint64_t aexs = 0;
  std::uint64_t page_ins = 0;
  std::uint64_t page_outs = 0;
  std::uint64_t stream_dropped = 0;     // cumulative subscriber drops so far
  std::uint64_t switchless_calls = 0;   // cumulative Urts switchless stats
  std::uint64_t switchless_fallbacks = 0;
  std::uint64_t switchless_wasted_ns = 0;
  std::uint32_t active_alerts = 0;      // alerts live when the window closed
};

/// Per-site activity inside one window (format v5): rates and percentile
/// deltas for every (enclave, type, call_id) that completed a call there.
struct WindowSiteRecord {
  std::uint32_t window_index = 0;
  EnclaveId enclave_id = 0;
  CallType type = CallType::kEcall;
  CallId call_id = 0;
  std::uint64_t calls = 0;      // completions inside the window
  std::uint64_t aex_count = 0;  // AEXs attributed to those completions
  Nanoseconds p50_ns = 0;       // window-local percentiles (HDR delta)
  Nanoseconds p99_ns = 0;
};

/// One alert raised by the online analyser (format v5).  `resolved_ns == 0`
/// means the condition still held when the trace ended.
struct AlertRecord {
  AlertKind kind = AlertKind::kShortCalls;
  EnclaveId enclave_id = 0;
  CallType type = CallType::kEcall;
  CallId call_id = 0;
  Nanoseconds onset_ns = 0;     // virtual time the threshold was first crossed
  Nanoseconds resolved_ns = 0;  // 0 while active
  std::uint32_t window_index = 0;  // window during which the alert fired
  /// Kind-specific magnitude: Eq. 1/2/3 score ×1000, paging event count,
  /// tail p99/p50 ratio ×1000, CUSUM deviation ×1000.
  std::uint64_t detail = 0;
};

/// One rule of a per-enclave interface-orderliness model (format v6).  The
/// perf::OrderModel is flattened into these rows for persistence so a trace
/// can carry the model it was (or should be) validated against.  `rule` is
/// pinned — it is persisted as a byte in the trace file.
struct OrderRuleRecord {
  enum class Rule : std::uint8_t {
    kInit = 0,         // a: the enclave's init ecall id
    kEntry = 1,        // a: ecall id allowed as a thread's first top-level call
    kKnownEcall = 2,   // a: ecall id that exists in the model at all
    kEdge = 3,         // a -> b: allowed consecutive top-level ecall pair
    kReentrantOk = 4,  // a: ecall id allowed nested under an ocall
  };
  EnclaveId enclave_id = 0;
  Rule rule = Rule::kKnownEcall;
  CallId a = 0;
  CallId b = 0;  // meaningful for kEdge only
};
inline constexpr std::uint8_t kOrderRuleKindCount = 5;

/// Sparse HDR latency histogram for one (enclave, type, call_id) call site
/// (format v4).  Buckets follow the fixed telemetry::hdr geometry — the
/// file header records (sub_bits, max_exponent) and the loader validates
/// them against the compiled constants, so indices are portable.  Only
/// non-empty buckets are stored, as (index, count) pairs in ascending
/// index order.
struct LatencyRecord {
  EnclaveId enclave_id = 0;
  CallType type = CallType::kEcall;
  CallId call_id = 0;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;  // exact sum of recorded durations
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

}  // namespace tracedb
