// Parallel k-way merge for shard stitching.
//
// Logger::detach() folds every per-thread event shard into the central
// tables in one global time order.  The seed implementation concatenated
// all (shard, index) pairs and ran one std::sort — O(N log N) comparisons
// on a single core, which dominates detach() for large traces.  This
// replaces it with the classic external-merge structure:
//
//   1. sort each shard's records by key (parallel across shards; shards
//      are nearly time-ordered already, so this pass is cheap),
//   2. split the key range at sampled splitters into one contiguous
//      segment per worker,
//   3. each worker merges its segment with a tournament (loser) tree —
//      k-way, one comparison per emitted record against log2(k) internal
//      nodes instead of a heap's log2(k) swaps.
//
// Output is *byte-identical* to the sequential sort: the comparator is the
// same total order (key, shard id, append index) in both paths, segments
// partition by key alone so a tie can never straddle a boundary, and
// `threads == 1` short-circuits to a single segment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tracedb/schema.hpp"

namespace tracedb {

/// Source coordinate of one shard record in a merge round: shard slot in
/// the round's live list plus the record's original append index.
struct MergeRef {
  std::size_t shard;
  std::size_t local;
};

/// Merges per-shard key tables into one globally ordered reference list.
///
/// `keys[s][i]` is the sort key (timestamp) of record `i` of live shard
/// `s`, in append order; `shard_ids[s]` breaks timestamp ties (registration
/// order), and the append index breaks ties within one shard.  `threads`
/// is the worker budget: 0 means hardware concurrency, 1 forces the
/// sequential path.  The returned refs use *append* indices, so callers
/// can remap parent references exactly as with the sorted-pair approach.
[[nodiscard]] std::vector<MergeRef> parallel_merge_order(
    const std::vector<std::vector<Nanoseconds>>& keys,
    const std::vector<std::uint32_t>& shard_ids, std::size_t threads);

}  // namespace tracedb
