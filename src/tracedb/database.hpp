// The trace database: thread-safe append, typed tables, save/load, CSV.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tracedb/schema.hpp"

namespace tracedb {

/// Append-oriented store for one profiling session.
///
/// Writers (the event logger, driver hooks) append concurrently under an
/// internal mutex; readers (the analyser) take a consistent snapshot or run
/// after the workload has quiesced, as the real tool does when the SQLite
/// file is analysed post-mortem.
class TraceDatabase {
 public:
  TraceDatabase() = default;

  TraceDatabase(const TraceDatabase&) = delete;
  TraceDatabase& operator=(const TraceDatabase&) = delete;

  /// Move is supported so load() can return by value; the moved-from
  /// database must not have concurrent writers.
  TraceDatabase(TraceDatabase&& other) noexcept;

  // --- writer API ---------------------------------------------------------

  /// Appends a call record and returns its index (used as a parent handle).
  CallIndex add_call(const CallRecord& rec);
  /// Patches the end timestamp / AEX count of a call once it returns.
  void finish_call(CallIndex idx, Nanoseconds end_ns, std::uint32_t aex_count);
  /// Reclassifies an ocall (sleep/wake kinds are known only by id lookup).
  void set_call_kind(CallIndex idx, OcallKind kind);

  void add_aex(const AexRecord& rec);
  void add_paging(const PagingRecord& rec);
  void add_sync(const SyncRecord& rec);
  void add_enclave(const EnclaveRecord& rec);
  void set_enclave_destroyed(EnclaveId id, Nanoseconds when);
  void add_call_name(const CallNameRecord& rec);

  // --- reader API ---------------------------------------------------------

  [[nodiscard]] const std::vector<CallRecord>& calls() const noexcept { return calls_; }
  [[nodiscard]] const std::vector<AexRecord>& aexs() const noexcept { return aexs_; }
  [[nodiscard]] const std::vector<PagingRecord>& paging() const noexcept { return paging_; }
  [[nodiscard]] const std::vector<SyncRecord>& syncs() const noexcept { return syncs_; }
  [[nodiscard]] const std::vector<EnclaveRecord>& enclaves() const noexcept { return enclaves_; }
  [[nodiscard]] const std::vector<CallNameRecord>& call_names() const noexcept {
    return call_names_;
  }

  /// Resolves a call's registered name; "<type>_<id>" if unregistered.
  [[nodiscard]] std::string name_of(EnclaveId enclave, CallType type, CallId id) const;

  /// Drops all rows (reuse between experiment repetitions).
  void clear();

  // --- persistence (see serialize.cpp) -------------------------------------

  /// Binary format v2.  Throws std::runtime_error on I/O or format errors.
  void save(const std::string& path) const;
  static TraceDatabase load(const std::string& path);

  /// Writes one CSV file per table into `directory` (created if needed).
  void export_csv(const std::string& directory) const;

 private:
  mutable std::mutex mu_;
  std::vector<CallRecord> calls_;
  std::vector<AexRecord> aexs_;
  std::vector<PagingRecord> paging_;
  std::vector<SyncRecord> syncs_;
  std::vector<EnclaveRecord> enclaves_;
  std::vector<CallNameRecord> call_names_;
};

}  // namespace tracedb
