// The trace database: thread-safe append, typed tables, save/load, CSV.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tracedb/schema.hpp"
#include "tracedb/shard.hpp"

namespace tracedb {

namespace store {
struct RawTables;  // the SGXSTORE subsystem's raw table access (store/format.hpp)
}

/// Append-oriented store for one profiling session.
///
/// Two writer paths exist:
///
///  * the *direct* API (add_call & friends) appends under an internal mutex —
///    fine for low-frequency events (enclave lifecycle, call names) and for
///    building databases by hand;
///  * the *sharded* API: each worker thread records into its own EventShard
///    (register_shard(), no locking on the hot path) and merge_shards()
///    stitches the shards into the globally time-ordered record arrays once
///    the workload has quiesced — the path the event logger uses so that
///    multi-threaded workloads measure enclave behaviour, not lock
///    contention.
///
/// Readers (the analyser) run after the workload has quiesced and the shards
/// have been merged, as the real tool does when the SQLite file is analysed
/// post-mortem.  Do not interleave direct call appends with sharded ones if
/// global time-ordering matters: merge sorts only the shard-sourced records.
class TraceDatabase {
 public:
  TraceDatabase() = default;

  TraceDatabase(const TraceDatabase&) = delete;
  TraceDatabase& operator=(const TraceDatabase&) = delete;

  /// Move is supported so load() can return by value.  Locks *both* sides'
  /// mutexes; neither database may have concurrent writers (registered
  /// shards move along and stay valid, but their writer threads must have
  /// quiesced).
  TraceDatabase(TraceDatabase&& other) noexcept;

  // --- direct writer API ---------------------------------------------------

  /// Appends a call record and returns its index (used as a parent handle).
  CallIndex add_call(const CallRecord& rec);
  /// Patches the end timestamp / AEX count of a call once it returns.
  void finish_call(CallIndex idx, Nanoseconds end_ns, std::uint32_t aex_count);
  /// Reclassifies an ocall (sleep/wake kinds are known only by id lookup).
  void set_call_kind(CallIndex idx, OcallKind kind);

  void add_aex(const AexRecord& rec);
  void add_paging(const PagingRecord& rec);
  void add_sync(const SyncRecord& rec);
  void add_enclave(const EnclaveRecord& rec);
  void set_enclave_destroyed(EnclaveId id, Nanoseconds when);
  void add_call_name(const CallNameRecord& rec);

  // --- telemetry tables (format v3) ----------------------------------------

  /// Registers (idempotently, by name) a metric timeseries and returns its
  /// id.  Samples are appended under the internal mutex — the sampler runs
  /// at a coarse cadence, so this is not a hot path.
  MetricSeriesId add_metric_series(MetricKind kind, const std::string& name,
                                   const std::string& unit);
  void add_metric_sample(const MetricSampleRecord& rec);

  // --- latency table (format v4) --------------------------------------------

  /// Upserts the HDR latency histogram for `rec`'s (enclave, type, call_id)
  /// key: the logger re-persists cumulative snapshots at every flush, so a
  /// replace (rather than append) keeps the table one-row-per-site.
  void set_latency(const LatencyRecord& rec);
  /// Row for one call site, or nullptr if none was recorded.  The pointer
  /// is invalidated by the next writer call.
  [[nodiscard]] const LatencyRecord* find_latency(EnclaveId enclave, CallType type,
                                                  CallId call_id) const;

  /// Events dropped by live streaming subscriptions during recording
  /// (format v4) — the streaming analogue of dropped_events().
  void set_stream_dropped(std::uint64_t n);
  [[nodiscard]] std::uint64_t stream_dropped() const;

  // --- time-series tables (format v5) ---------------------------------------

  /// Window length used when the online analyser cut the snapshot tables;
  /// 0 means no windowing ran (pre-v5 files, or post-mortem-only traces).
  void set_window_period(Nanoseconds period_ns);
  [[nodiscard]] Nanoseconds window_period() const;

  void add_window(const WindowRecord& rec);
  void add_window_site(const WindowSiteRecord& rec);
  void add_alert(const AlertRecord& rec);

  // --- orderliness model table (format v6) -----------------------------------

  /// Appends one flattened interface-orderliness rule (see OrderRuleRecord).
  void add_order_rule(const OrderRuleRecord& rec);
  /// Replaces the whole rule table (perf::OrderModel embedding).
  void set_order_rules(std::vector<OrderRuleRecord> rules);

  // --- sharded writer API (see shard.hpp for the lifecycle) ----------------

  /// Creates a new per-thread shard and returns a stable reference (shards
  /// are heap-allocated; registration of further shards never moves them).
  EventShard& register_shard(ThreadId owner_thread, std::size_t owner_slot = 0);

  /// Cumulative statistics over every merge_shards() call on this database.
  struct MergeStats {
    std::size_t merges = 0;          // merge_shards() invocations
    std::size_t shards_merged = 0;   // non-empty shards drained
    std::size_t calls = 0;           // records stitched in, per table
    std::size_t aexs = 0;
    std::size_t paging = 0;
    std::size_t syncs = 0;
    std::size_t dropped = 0;         // events shards rejected after seal
  };

  /// Seals every live shard and stitches their records into the global
  /// record arrays, sorted by timestamp (ties broken by shard registration
  /// order, then append order — so a single-threaded trace merges to exactly
  /// the sequence the direct API would have produced).  Shard-local parent /
  /// during_call references are remapped to global indices.  Drained shards
  /// remain registered as inert husks (late writers see a sealed shard)
  /// until reopen_shards(), clear() or destruction.  Callers must guarantee
  /// the shard writers have quiesced.  Returns the stats of *this* merge.
  MergeStats merge_shards();

  /// Resets every drained shard back to the recording state so its owner
  /// thread can keep appending (the logger's flush() path).  Quiesce first.
  void reopen_shards();

  [[nodiscard]] MergeStats merge_stats() const;
  [[nodiscard]] std::size_t shard_count() const;

  /// Worker threads used by merge_shards() for the k-way stitch.  0 (the
  /// default) picks hardware_concurrency, 1 forces the sequential path.
  /// Output is byte-identical regardless: the merge order (timestamp,
  /// shard id, append index) is a unique total order.
  void set_merge_threads(std::size_t n);

  // --- reader API ----------------------------------------------------------

  [[nodiscard]] const std::vector<CallRecord>& calls() const noexcept { return calls_; }
  [[nodiscard]] const std::vector<AexRecord>& aexs() const noexcept { return aexs_; }
  [[nodiscard]] const std::vector<PagingRecord>& paging() const noexcept { return paging_; }
  [[nodiscard]] const std::vector<SyncRecord>& syncs() const noexcept { return syncs_; }
  [[nodiscard]] const std::vector<EnclaveRecord>& enclaves() const noexcept { return enclaves_; }
  [[nodiscard]] const std::vector<CallNameRecord>& call_names() const noexcept {
    return call_names_;
  }
  [[nodiscard]] const std::vector<MetricSeriesRecord>& metric_series() const noexcept {
    return metric_series_;
  }
  [[nodiscard]] const std::vector<MetricSampleRecord>& metric_samples() const noexcept {
    return metric_samples_;
  }
  [[nodiscard]] const std::vector<LatencyRecord>& latencies() const noexcept {
    return latencies_;
  }
  [[nodiscard]] const std::vector<WindowRecord>& windows() const noexcept { return windows_; }
  [[nodiscard]] const std::vector<WindowSiteRecord>& window_sites() const noexcept {
    return window_sites_;
  }
  [[nodiscard]] const std::vector<AlertRecord>& alerts() const noexcept { return alerts_; }
  [[nodiscard]] const std::vector<OrderRuleRecord>& order_rules() const noexcept {
    return order_rules_;
  }

  /// Total events rejected by sealed shards over the database's lifetime
  /// (accumulated at merge time, persisted in format v3).  Nonzero means the
  /// trace is silently truncated — the analyser surfaces this as a warning.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Resolves a call's registered name; "<type>_<id>" if unregistered.
  [[nodiscard]] std::string name_of(EnclaveId enclave, CallType type, CallId id) const;

  /// Drops all rows and resets all shards and merge statistics (reuse
  /// between experiment repetitions).  Registered shards stay alive and
  /// recordable; their owner threads must be quiescent.
  void clear();

  // --- persistence (see serialize.cpp) -------------------------------------

  /// Binary format v3 (v2 plus the dropped-event count and the telemetry
  /// tables; load() still accepts v2 files).  Throws std::runtime_error on
  /// I/O or format errors, or std::logic_error if unmerged shard events
  /// exist (merge first — the file format has no notion of shards and must
  /// stay bit-stable).
  void save(const std::string& path) const;
  static TraceDatabase load(const std::string& path);

  /// Writes one CSV file per table into `directory` (created if needed).
  void export_csv(const std::string& directory) const;

 private:
  friend struct store::RawTables;

  mutable std::mutex mu_;
  std::vector<CallRecord> calls_;
  std::vector<AexRecord> aexs_;
  std::vector<PagingRecord> paging_;
  std::vector<SyncRecord> syncs_;
  std::vector<EnclaveRecord> enclaves_;
  std::vector<CallNameRecord> call_names_;
  std::vector<MetricSeriesRecord> metric_series_;
  std::vector<MetricSampleRecord> metric_samples_;
  std::vector<LatencyRecord> latencies_;
  std::vector<WindowRecord> windows_;
  std::vector<WindowSiteRecord> window_sites_;
  std::vector<AlertRecord> alerts_;
  std::vector<OrderRuleRecord> order_rules_;
  Nanoseconds window_period_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t stream_dropped_ = 0;

  std::vector<std::unique_ptr<EventShard>> shards_;
  MergeStats merge_stats_;
  std::size_t merge_threads_ = 0;
};

}  // namespace tracedb
