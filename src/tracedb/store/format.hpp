// On-disk format of the SGXSTORE multi-file trace database (internal).
//
// A store is a *directory* in the spirit of an HPCToolkit database
// (meta.db / profile.db / trace.db):
//
//   X.store/
//   |-- store.idx    index header: section table with per-section file name,
//   |                payload offset, length, CRC32 and row counts, plus a
//   |                commit generation and a trailing self-CRC
//   |-- meta.db      enclaves, call names, order rules, scalar counters
//   |-- profile.db   per-site HDR latency table, metric series/samples,
//   |                window snapshots and per-site window rows
//   |-- alerts.db    the alert history
//   `-- events.db    framed chunks of the four event tables (calls, AEXs,
//                    paging, syncs) + a footer directory keyed by virtual-
//                    time range and thread range, so readers can load only
//                    the chunks a query touches
//
// All integers are little-endian fixed-width; strings are u32-length-
// prefixed — exactly the flat v2–v6 encoding (serialize.cpp), so a store is
// a re-sectioning of the flat payload, not a new dialect.  Sections are
// independently checksummed and independently loadable; the event section is
// additionally chunked, each chunk carrying its own CRC32 so a partial load
// never trusts unverified bytes.
//
// Rewrites are crash-safe by construction: section files are committed under
// generation-suffixed names via temp+rename, and the index — which names the
// files — is renamed into place last.  A crash leaves either the old index
// (its files untouched) or the new one (its files fully committed).
//
// Unknown section ids are skipped on read (forward compatibility); every
// recognised structural defect is rejected with a distinct error and no
// partially-populated database escapes.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/crc32.hpp"
#include "tracedb/database.hpp"

namespace tracedb::store {

inline constexpr char kIndexMagic[8] = {'S', 'G', 'X', 'S', 'T', 'O', 'R', 'E'};
inline constexpr std::uint32_t kStoreVersion = 1;
/// Flat-format version whose payload semantics the sections carry.
inline constexpr std::uint8_t kPayloadVersion = 6;
inline constexpr const char* kIndexFileName = "store.idx";

inline constexpr std::uint32_t kChunkMagic = 0x43455853;   // "SXEC"
inline constexpr std::uint32_t kFooterMagic = 0x44455853;  // "SXED"

/// Section ids are pinned (persisted as a byte).  Readers skip unknown ids.
enum SectionId : std::uint8_t {
  kMetaSection = 0,
  kProfileSection = 1,
  kAlertsSection = 2,
  kEventsSection = 3,
};

[[nodiscard]] const char* section_name(std::uint8_t id);
[[nodiscard]] const char* section_file_stem(std::uint8_t id);

/// One row of the index's section table.  `counts` is a per-section list of
/// table row counts (self-describing, so unknown sections stay parseable):
///   meta:    {enclaves, call_names, order_rules}
///   profile: {latencies, metric_series, metric_samples, windows, window_sites}
///   alerts:  {alerts}
///   events:  {chunks, calls, aexs, paging, syncs}
struct IndexSection {
  std::uint8_t id = 0;
  std::string file;               // name relative to the store directory
  std::uint64_t offset = 0;       // payload offset inside the file (currently 0)
  std::uint64_t length = 0;       // payload bytes
  std::uint32_t crc = 0;          // CRC32 of the payload (events: of the footer)
  std::vector<std::uint64_t> counts;
};

struct StoreIndex {
  std::uint32_t version = kStoreVersion;
  std::uint8_t payload_version = kPayloadVersion;
  std::uint64_t generation = 0;   // bumped on every in-place rewrite
  std::vector<IndexSection> sections;

  [[nodiscard]] const IndexSection* find(std::uint8_t id) const noexcept;
};

[[nodiscard]] std::string encode_index(const StoreIndex& index);
/// Parses and validates `bytes` (magic, version, bounds, trailing self-CRC).
[[nodiscard]] StoreIndex parse_index(const std::string& bytes);

/// One entry of the event-section footer directory.  `call_rebase` is added
/// to every non-negative CallIndex reference (CallRecord::parent,
/// AexRecord::during_call) when the chunk is loaded — compaction shifts it
/// instead of rewriting chunk payloads.
struct ChunkDirEntry {
  std::uint64_t offset = 0;       // chunk start inside events.db
  std::uint64_t length = 0;       // chunk bytes (magic..crc inclusive)
  std::uint32_t crc = 0;          // CRC32 of the chunk bytes before the crc field
  std::uint64_t call_rebase = 0;
  std::uint64_t n_calls = 0;
  std::uint64_t n_aexs = 0;
  std::uint64_t n_paging = 0;
  std::uint64_t n_syncs = 0;
  Nanoseconds min_ns = 0;         // over every row in the chunk
  Nanoseconds max_ns = 0;
  ThreadId thread_min = 0;        // over rows that carry a thread id
  ThreadId thread_max = 0;
};

[[nodiscard]] std::string encode_footer(const std::vector<ChunkDirEntry>& chunks);
/// Parses the footer span of an events file; `file_size` bounds the chunk
/// extents ("truncated event chunk" is rejected here).
[[nodiscard]] std::vector<ChunkDirEntry> parse_footer(const char* data, std::size_t size,
                                                      std::uint64_t file_size);

// --- serialisation plumbing -------------------------------------------------

/// Append-only little-endian byte assembler (the in-memory Writer).
class BufWriter {
 public:
  void bytes(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void i64(std::int64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  [[nodiscard]] const std::string& str_ref() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte span; every overrun throws with the
/// caller-supplied context so "truncated X" errors name the section.
class SpanReader {
 public:
  SpanReader(const char* data, std::size_t size, std::string context)
      : p_(data), end_(data + size), context_(std::move(context)) {}

  void bytes(void* out, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      throw std::runtime_error("store: truncated " + context_);
    }
    std::memcpy(out, p_, n);
    p_ += n;
  }
  std::uint8_t u8() { std::uint8_t v; bytes(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; bytes(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; bytes(&v, 8); return v; }
  std::int64_t i64() { std::int64_t v; bytes(&v, 8); return v; }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > (1u << 24)) {
      throw std::runtime_error("store: implausible string length in " + context_);
    }
    std::string s(n, '\0');
    if (n > 0) bytes(s.data(), n);
    return s;
  }
  /// Guards a reserve(): `n` rows of at least `min_row_bytes` each must fit
  /// in the remaining span, so a corrupt count fails fast, not in malloc.
  void check_rows(std::uint64_t n, std::size_t min_row_bytes) {
    if (n * min_row_bytes > remaining()) {
      throw std::runtime_error("store: implausible row count in " + context_);
    }
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] const std::string& context() const noexcept { return context_; }

 private:
  const char* p_;
  const char* end_;
  std::string context_;
};

// --- raw table access -------------------------------------------------------

/// The store subsystem's keyhole into TraceDatabase's private tables: pack
/// reads through the public accessors, but unpack must restore rows (and the
/// scalar counters) exactly, without the id-reassignment or locking of the
/// public mutators.
struct RawTables {
  static std::vector<CallRecord>& calls(TraceDatabase& db) { return db.calls_; }
  static std::vector<AexRecord>& aexs(TraceDatabase& db) { return db.aexs_; }
  static std::vector<PagingRecord>& paging(TraceDatabase& db) { return db.paging_; }
  static std::vector<SyncRecord>& syncs(TraceDatabase& db) { return db.syncs_; }
  static std::vector<EnclaveRecord>& enclaves(TraceDatabase& db) { return db.enclaves_; }
  static std::vector<CallNameRecord>& call_names(TraceDatabase& db) { return db.call_names_; }
  static std::vector<MetricSeriesRecord>& metric_series(TraceDatabase& db) {
    return db.metric_series_;
  }
  static std::vector<MetricSampleRecord>& metric_samples(TraceDatabase& db) {
    return db.metric_samples_;
  }
  static std::vector<LatencyRecord>& latencies(TraceDatabase& db) { return db.latencies_; }
  static std::vector<WindowRecord>& windows(TraceDatabase& db) { return db.windows_; }
  static std::vector<WindowSiteRecord>& window_sites(TraceDatabase& db) {
    return db.window_sites_;
  }
  static std::vector<AlertRecord>& alerts(TraceDatabase& db) { return db.alerts_; }
  static std::vector<OrderRuleRecord>& order_rules(TraceDatabase& db) {
    return db.order_rules_;
  }
  static Nanoseconds& window_period(TraceDatabase& db) { return db.window_period_; }
  static std::uint64_t& dropped_events(TraceDatabase& db) { return db.dropped_events_; }
  static std::uint64_t& stream_dropped(TraceDatabase& db) { return db.stream_dropped_; }
};

// --- section payload codecs -------------------------------------------------

[[nodiscard]] std::string encode_meta(const TraceDatabase& db);
[[nodiscard]] std::string encode_profile(const TraceDatabase& db);
[[nodiscard]] std::string encode_alerts(const TraceDatabase& db);

void decode_meta(SpanReader& r, TraceDatabase& db);
void decode_profile(SpanReader& r, TraceDatabase& db);
void decode_alerts(SpanReader& r, TraceDatabase& db);

/// Row counts for the index section table (see IndexSection::counts).
[[nodiscard]] std::vector<std::uint64_t> meta_counts(const TraceDatabase& db);
[[nodiscard]] std::vector<std::uint64_t> profile_counts(const TraceDatabase& db);
[[nodiscard]] std::vector<std::uint64_t> alert_counts(const TraceDatabase& db);

/// Encodes one event chunk (magic, row counts, rows, trailing CRC32) and
/// fills `entry` (offset is left for the writer to assign).
[[nodiscard]] std::string encode_chunk(const CallRecord* calls, std::size_t n_calls,
                                       const AexRecord* aexs, std::size_t n_aexs,
                                       const PagingRecord* paging, std::size_t n_paging,
                                       const SyncRecord* syncs, std::size_t n_syncs,
                                       ChunkDirEntry& entry);

/// Verifies `entry.crc` over the chunk bytes and appends the rows to `db`,
/// shifting CallIndex references by `entry.call_rebase` plus the number of
/// calls already present in `db` from earlier stores is NOT applied here —
/// the rebase recorded in the directory is the complete shift.
void decode_chunk(const char* data, std::size_t size, const ChunkDirEntry& entry,
                  TraceDatabase& db);

}  // namespace tracedb::store
