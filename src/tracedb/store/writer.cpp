// StoreWriter: streaming, crash-safe construction of an SGXSTORE directory.
//
// Event batches are framed into chunks as they arrive: calls are cut every
// chunk_calls rows, and the aex/paging/sync tables are partitioned to the
// same virtual-time boundaries with a stable forward walk — concatenating
// the slices reproduces each input array byte-for-byte, which is what makes
// pack -> unpack lossless even for hand-built, unsorted databases.
//
// Commit order is the crash-safety argument: section files first (each via
// temp+rename, under generation-suffixed names so an existing store's files
// are never touched), the index — which names the files — last, stale files
// only after the new index is durable.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "support/atomic_file.hpp"
#include "tracedb/store/store.hpp"

namespace tracedb::store {
namespace {

std::string section_file_name(std::uint8_t id, std::uint64_t generation) {
  std::string name = section_file_stem(id);
  if (generation > 0) {
    name += '.';
    name += std::to_string(generation);
  }
  name += ".db";
  return name;
}

}  // namespace

StoreWriter::StoreWriter(std::string dir, WriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.chunk_calls == 0) options_.chunk_calls = 1;
  std::filesystem::create_directories(dir_);
  if (is_store(dir_)) {
    try {
      StoreReader old(dir_);
      generation_ = old.generation() + 1;
      for (const auto& s : old.info().sections) stale_files_.push_back(s.file);
    } catch (const std::exception&) {
      // A corrupt index means there is no previous generation to preserve;
      // gen-0 names get atomically replaced file by file.
      generation_ = 0;
    }
  }
}

void StoreWriter::add_events(const std::vector<CallRecord>& calls,
                             const std::vector<AexRecord>& aexs,
                             const std::vector<PagingRecord>& paging,
                             const std::vector<SyncRecord>& syncs) {
  if (calls.empty() && aexs.empty() && paging.empty() && syncs.empty()) return;

  const std::uint64_t batch_rebase = calls_written_;
  const std::size_t chunk_calls = options_.chunk_calls;
  const std::size_t n_chunks = calls.empty() ? 1 : (calls.size() + chunk_calls - 1) / chunk_calls;

  std::size_t ai = 0, pi = 0, si = 0;
  for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
    const std::size_t call_begin = chunk * chunk_calls;
    const std::size_t call_end = std::min(call_begin + chunk_calls, calls.size());
    const bool last = chunk + 1 == n_chunks;

    // Auxiliary rows travel with the chunk whose call-time span covers them.
    // The walk is a stable forward partition: every row lands in exactly one
    // chunk, in its original order, regardless of whether the input arrays
    // are time-sorted — so concatenating the slices is the identity.
    std::size_t ae = aexs.size(), pe = paging.size(), se = syncs.size();
    if (!last) {
      const Nanoseconds boundary = calls[call_end].start_ns;
      ae = ai;
      while (ae < aexs.size() && aexs[ae].timestamp_ns < boundary) ++ae;
      pe = pi;
      while (pe < paging.size() && paging[pe].timestamp_ns < boundary) ++pe;
      se = si;
      while (se < syncs.size() && syncs[se].timestamp_ns < boundary) ++se;
    }

    ChunkDirEntry entry;
    entry.call_rebase = batch_rebase;
    entry.offset = events_.size();
    const std::string bytes = encode_chunk(
        calls.data() + call_begin, call_end - call_begin, aexs.data() + ai, ae - ai,
        paging.data() + pi, pe - pi, syncs.data() + si, se - si, entry);
    events_ += bytes;
    chunks_.push_back(entry);
    ai = ae;
    pi = pe;
    si = se;
  }

  calls_written_ += calls.size();
  aexs_written_ += aexs.size();
  paging_written_ += paging.size();
  syncs_written_ += syncs.size();
}

void StoreWriter::add_raw_chunk(std::string_view bytes, ChunkDirEntry entry) {
  entry.offset = events_.size();
  entry.length = bytes.size();
  events_.append(bytes.data(), bytes.size());
  chunks_.push_back(entry);
  calls_written_ += entry.n_calls;
  aexs_written_ += entry.n_aexs;
  paging_written_ += entry.n_paging;
  syncs_written_ += entry.n_syncs;
}

void StoreWriter::commit(const TraceDatabase& summary) {
  if (committed_) {
    throw std::logic_error("store: StoreWriter::commit() called twice");
  }

  const std::string footer = encode_footer(chunks_);
  std::string events_file = events_;
  events_file += footer;
  const std::uint64_t footer_len = footer.size();
  events_file.append(reinterpret_cast<const char*>(&footer_len), 8);

  const std::string meta = encode_meta(summary);
  const std::string profile = encode_profile(summary);
  const std::string alerts = encode_alerts(summary);

  StoreIndex index;
  index.generation = generation_;
  auto add_section = [&](std::uint8_t id, const std::string& payload, std::uint32_t crc,
                         std::vector<std::uint64_t> counts) {
    IndexSection s;
    s.id = id;
    s.file = section_file_name(id, generation_);
    s.length = payload.size();
    s.crc = crc;
    s.counts = std::move(counts);
    support::write_file_atomic(dir_ + "/" + s.file, payload);
    index.sections.push_back(std::move(s));
  };
  add_section(kMetaSection, meta, support::crc32(meta.data(), meta.size()),
              meta_counts(summary));
  add_section(kProfileSection, profile, support::crc32(profile.data(), profile.size()),
              profile_counts(summary));
  add_section(kAlertsSection, alerts, support::crc32(alerts.data(), alerts.size()),
              alert_counts(summary));
  add_section(kEventsSection, events_file, support::crc32(footer.data(), footer.size()),
              {chunks_.size(), calls_written_, aexs_written_, paging_written_,
               syncs_written_});

  // The index names the new generation's files; once it is in place the old
  // generation is unreachable and safe to delete.
  support::write_file_atomic(dir_ + "/" + kIndexFileName, encode_index(index));
  for (const auto& old : stale_files_) {
    bool still_used = false;
    for (const auto& s : index.sections) still_used = still_used || s.file == old;
    if (!still_used) std::remove((dir_ + "/" + old).c_str());
  }
  committed_ = true;
}

void pack(const TraceDatabase& db, const std::string& dir, WriterOptions options) {
  StoreWriter w(dir, options);
  w.add_events(db.calls(), db.aexs(), db.paging(), db.syncs());
  w.commit(db);
}

TraceDatabase unpack(const std::string& dir) { return StoreReader(dir).load(kAllSections); }

}  // namespace tracedb::store
