// StoreReader: lazy, memory-mapped access to an SGXSTORE directory.
//
// Construction reads only store.idx.  Each section file is mmap(2)ed on
// first touch and its checksum verified then — so `sgxperf stats` against a
// store pays for meta+profile+alerts and never faults in the event log.
// The OpenIo counters are maintained precisely for that claim: index bytes,
// plus each mapped section's payload, plus (for events) the footer and every
// chunk actually decoded.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "tracedb/store/store.hpp"

namespace tracedb::store {
namespace {

std::string slurp(const std::string& path, bool& ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok = false;
    return {};
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  ok = true;
  return out;
}

}  // namespace

bool is_store(const std::string& path) {
  struct stat st{};
  if (::stat((path + "/" + kIndexFileName).c_str(), &st) != 0) return false;
  return S_ISREG(st.st_mode);
}

StoreReader::StoreReader(std::string dir) : dir_(std::move(dir)) {
  bool ok = false;
  const std::string bytes = slurp(dir_ + "/" + kIndexFileName, ok);
  if (!ok) {
    throw std::runtime_error("store: cannot open index in " + dir_);
  }
  index_ = parse_index(bytes);
  io_.bytes_read = bytes.size();
  io_.total_bytes = bytes.size();
  for (const auto& s : index_.sections) io_.total_bytes += s.length;
}

StoreReader::~StoreReader() {
  for (int id = 0; id < 4; ++id) {
    if (mapped_[id] && maps_[id].data != nullptr) {
      ::munmap(const_cast<char*>(maps_[id].data), maps_[id].size);
    }
  }
}

const IndexSection& StoreReader::require(std::uint8_t id) const {
  const IndexSection* s = index_.find(id);
  if (s == nullptr) {
    throw std::runtime_error("store: missing " + std::string(section_name(id)) +
                             " section in " + dir_);
  }
  return *s;
}

const StoreReader::Mapping& StoreReader::map_section(const IndexSection& s) {
  Mapping& m = maps_[s.id];
  if (mapped_[s.id]) return m;

  const std::string path = dir_ + "/" + s.file;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("store: cannot open section file " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("store: cannot stat section file " + path);
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < s.offset + s.length) {
    ::close(fd);
    throw std::runtime_error("store: truncated section file " + s.file);
  }
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("store: cannot map section file " + path + ": " +
                               std::strerror(errno));
    }
    m.data = static_cast<const char*>(addr);
    m.size = size;
  }
  ::close(fd);
  mapped_[s.id] = true;

  // Non-event sections are verified whole on first touch; the events section
  // checksums its footer in ensure_footer() and each chunk on chunk load.
  if (s.id != kEventsSection) {
    if (support::crc32(m.data + s.offset, s.length) != s.crc) {
      throw std::runtime_error("store: section checksum mismatch in " + s.file);
    }
    io_.bytes_read += s.length;
    io_.sections_loaded.emplace_back(section_name(s.id));
  }
  return m;
}

void StoreReader::ensure_footer() {
  if (footer_parsed_) return;
  const IndexSection& s = require(kEventsSection);
  const Mapping& m = map_section(s);
  // Minimum layout: an empty footer (magic + zero count, 12 bytes) plus the
  // trailing footer-length word — a zero-chunk store is valid.
  if (s.length < 20) {
    throw std::runtime_error("store: truncated event section");
  }
  std::uint64_t footer_len;
  std::memcpy(&footer_len, m.data + s.offset + s.length - 8, 8);
  if (footer_len + 8 > s.length) {
    throw std::runtime_error("store: truncated event section");
  }
  const char* footer = m.data + s.offset + s.length - 8 - footer_len;
  if (support::crc32(footer, footer_len) != s.crc) {
    throw std::runtime_error("store: section checksum mismatch in " + s.file);
  }
  const std::uint64_t chunk_area = s.length - 8 - footer_len;
  chunks_ = parse_footer(footer, footer_len, chunk_area);
  footer_parsed_ = true;
  io_.bytes_read += footer_len + 8;
  io_.sections_loaded.emplace_back(section_name(kEventsSection));
}

const std::vector<ChunkDirEntry>& StoreReader::chunk_directory() {
  ensure_footer();
  return chunks_;
}

std::string_view StoreReader::chunk_bytes(const ChunkDirEntry& entry) {
  ensure_footer();
  const IndexSection& s = require(kEventsSection);
  const Mapping& m = map_section(s);
  const char* data = m.data + s.offset + entry.offset;
  if (entry.length < 4 || support::crc32(data, entry.length - 4) != entry.crc) {
    throw std::runtime_error("store: event chunk checksum mismatch");
  }
  io_.bytes_read += entry.length;
  return {data, static_cast<std::size_t>(entry.length)};
}

TraceDatabase StoreReader::load(unsigned mask) {
  TraceDatabase db;
  if ((mask & kSectionMeta) != 0) {
    const IndexSection& s = require(kMetaSection);
    const Mapping& m = map_section(s);
    SpanReader r(m.data + s.offset, s.length,
                 std::string(section_name(kMetaSection)) + " section " + s.file);
    decode_meta(r, db);
  }
  if ((mask & kSectionProfile) != 0) {
    const IndexSection& s = require(kProfileSection);
    const Mapping& m = map_section(s);
    SpanReader r(m.data + s.offset, s.length,
                 std::string(section_name(kProfileSection)) + " section " + s.file);
    decode_profile(r, db);
  }
  if ((mask & kSectionAlerts) != 0) {
    const IndexSection& s = require(kAlertsSection);
    const Mapping& m = map_section(s);
    SpanReader r(m.data + s.offset, s.length,
                 std::string(section_name(kAlertsSection)) + " section " + s.file);
    decode_alerts(r, db);
  }
  if ((mask & kSectionEvents) != 0) {
    ensure_footer();
    const IndexSection& s = require(kEventsSection);
    const Mapping& m = map_section(s);
    for (const auto& entry : chunks_) {
      decode_chunk(m.data + s.offset + entry.offset, entry.length, entry, db);
      io_.bytes_read += entry.length;
    }
  }
  return db;
}

void StoreReader::load_events_overlapping(TraceDatabase& db, Nanoseconds from_ns,
                                          Nanoseconds to_ns, std::int64_t thread) {
  ensure_footer();
  const IndexSection& s = require(kEventsSection);
  const Mapping& m = map_section(s);
  for (const auto& entry : chunks_) {
    const bool has_rows =
        entry.n_calls + entry.n_aexs + entry.n_paging + entry.n_syncs > 0;
    if (!has_rows) continue;
    if (entry.max_ns < from_ns || entry.min_ns > to_ns) continue;
    if (thread >= 0 && (static_cast<std::int64_t>(entry.thread_max) < thread ||
                        static_cast<std::int64_t>(entry.thread_min) > thread)) {
      continue;
    }
    decode_chunk(m.data + s.offset + entry.offset, entry.length, entry, db);
    io_.bytes_read += entry.length;
  }
}

StoreInfo StoreReader::info() {
  StoreInfo out;
  out.generation = index_.generation;
  out.payload_version = index_.payload_version;
  out.total_bytes = io_.total_bytes;
  for (const auto& s : index_.sections) {
    SectionInfo sec;
    sec.name = section_name(s.id);
    sec.file = s.file;
    sec.length = s.length;
    sec.crc = s.crc;
    sec.counts = s.counts;
    if (s.id == kEventsSection && !s.counts.empty()) out.event_chunks = s.counts[0];
    out.sections.push_back(std::move(sec));
  }
  return out;
}

}  // namespace tracedb::store
