// SGXSTORE codecs: index header, event-chunk framing, section payloads.
//
// Row encodings deliberately mirror serialize.cpp field-for-field so that
// flat <-> store conversion is a re-sectioning of identical bytes, and so a
// reader of one format is trivially a reader of the other.  Validation also
// mirrors the flat loader (kind-byte ranges, interval sanity, bucket
// geometry, implausible-count ceilings) — a store must never admit a row the
// flat format would reject.
#include "tracedb/store/format.hpp"

#include <bit>

#include "telemetry/hdr_histogram.hpp"

namespace tracedb::store {
namespace {

/// Same ceiling the flat loader applies to v5/v6 tables: far above any real
/// trace, small enough that a corrupt count fails fast.
constexpr std::uint64_t kMaxRows = 1ull << 32;

constexpr std::size_t kMinIndexBytes = 8 /*magic*/ + 4 /*version*/ + 1 /*payload*/ +
                                       8 /*generation*/ + 4 /*n_sections*/ + 4 /*self-crc*/;

void put_f64(BufWriter& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }
double get_f64(SpanReader& r) { return std::bit_cast<double>(r.u64()); }

void check_count(std::uint64_t n, const char* what, const std::string& context) {
  if (n > kMaxRows) {
    throw std::runtime_error("store: implausible " + std::string(what) + " count in " + context);
  }
}

}  // namespace

const char* section_name(std::uint8_t id) {
  switch (id) {
    case kMetaSection: return "meta";
    case kProfileSection: return "profile";
    case kAlertsSection: return "alerts";
    case kEventsSection: return "events";
    default: return "unknown";
  }
}

const char* section_file_stem(std::uint8_t id) { return section_name(id); }

const IndexSection* StoreIndex::find(std::uint8_t id) const noexcept {
  for (const auto& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::string encode_index(const StoreIndex& index) {
  BufWriter w;
  w.bytes(kIndexMagic, sizeof(kIndexMagic));
  w.u32(index.version);
  w.u8(index.payload_version);
  w.u64(index.generation);
  w.u32(static_cast<std::uint32_t>(index.sections.size()));
  for (const auto& s : index.sections) {
    w.u8(s.id);
    w.str(s.file);
    w.u64(s.offset);
    w.u64(s.length);
    w.u32(static_cast<std::uint32_t>(s.counts.size()));
    for (const std::uint64_t c : s.counts) w.u64(c);
    w.u32(s.crc);
  }
  const std::uint32_t self = support::crc32(w.str_ref().data(), w.size());
  w.u32(self);
  return w.take();
}

StoreIndex parse_index(const std::string& bytes) {
  if (bytes.size() < 8) {
    throw std::runtime_error("store: truncated index header");
  }
  if (std::memcmp(bytes.data(), kIndexMagic, 8) != 0) {
    throw std::runtime_error("store: bad index magic");
  }
  if (bytes.size() < kMinIndexBytes) {
    throw std::runtime_error("store: truncated index header");
  }
  std::uint32_t trailing;
  std::memcpy(&trailing, bytes.data() + bytes.size() - 4, 4);
  if (support::crc32(bytes.data(), bytes.size() - 4) != trailing) {
    throw std::runtime_error("store: index checksum mismatch");
  }

  SpanReader r(bytes.data() + 8, bytes.size() - 8 - 4, "index header");
  StoreIndex index;
  index.version = r.u32();
  if (index.version != kStoreVersion) {
    throw std::runtime_error("store: unsupported store version " +
                             std::to_string(index.version));
  }
  index.payload_version = r.u8();
  if (index.payload_version > kPayloadVersion) {
    throw std::runtime_error("store: unsupported payload version " +
                             std::to_string(index.payload_version));
  }
  index.generation = r.u64();
  const std::uint32_t n_sections = r.u32();
  if (n_sections > 256) {
    throw std::runtime_error("store: implausible section count in index header");
  }
  index.sections.reserve(n_sections);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    IndexSection s;
    s.id = r.u8();
    s.file = r.str();
    if (s.file.empty() || s.file.find('/') != std::string::npos ||
        s.file.find("..") != std::string::npos) {
      throw std::runtime_error("store: bad section file name in index header");
    }
    s.offset = r.u64();
    s.length = r.u64();
    const std::uint32_t n_counts = r.u32();
    if (n_counts > 64) {
      throw std::runtime_error("store: implausible section count list in index header");
    }
    s.counts.reserve(n_counts);
    for (std::uint32_t c = 0; c < n_counts; ++c) s.counts.push_back(r.u64());
    s.crc = r.u32();
    index.sections.push_back(std::move(s));
  }
  return index;
}

// --- events footer ----------------------------------------------------------

std::string encode_footer(const std::vector<ChunkDirEntry>& chunks) {
  BufWriter w;
  w.u32(kFooterMagic);
  w.u64(chunks.size());
  for (const auto& c : chunks) {
    w.u64(c.offset);
    w.u64(c.length);
    w.u32(c.crc);
    w.u64(c.call_rebase);
    w.u64(c.n_calls);
    w.u64(c.n_aexs);
    w.u64(c.n_paging);
    w.u64(c.n_syncs);
    w.u64(c.min_ns);
    w.u64(c.max_ns);
    w.u32(c.thread_min);
    w.u32(c.thread_max);
  }
  return w.take();
}

std::vector<ChunkDirEntry> parse_footer(const char* data, std::size_t size,
                                        std::uint64_t file_size) {
  SpanReader r(data, size, "event footer");
  if (r.u32() != kFooterMagic) {
    throw std::runtime_error("store: bad event footer magic");
  }
  const std::uint64_t n = r.u64();
  r.check_rows(n, 8 * 9 + 4 * 3);
  std::vector<ChunkDirEntry> chunks;
  chunks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ChunkDirEntry c;
    c.offset = r.u64();
    c.length = r.u64();
    c.crc = r.u32();
    c.call_rebase = r.u64();
    c.n_calls = r.u64();
    c.n_aexs = r.u64();
    c.n_paging = r.u64();
    c.n_syncs = r.u64();
    c.min_ns = r.u64();
    c.max_ns = r.u64();
    c.thread_min = r.u32();
    c.thread_max = r.u32();
    if (c.offset > file_size || c.length > file_size - c.offset) {
      throw std::runtime_error("store: truncated event chunk");
    }
    chunks.push_back(c);
  }
  return chunks;
}

// --- meta section -----------------------------------------------------------

std::string encode_meta(const TraceDatabase& db) {
  BufWriter w;
  w.u64(db.window_period());
  w.u64(db.dropped_events());
  w.u64(db.stream_dropped());

  const auto& enclaves = db.enclaves();
  w.u64(enclaves.size());
  for (const auto& e : enclaves) {
    w.u64(e.enclave_id);
    w.str(e.name);
    w.u64(e.created_ns);
    w.u64(e.destroyed_ns);
    w.u32(e.tcs_count);
    w.u64(e.size_bytes);
  }

  const auto& names = db.call_names();
  w.u64(names.size());
  for (const auto& n : names) {
    w.u64(n.enclave_id);
    w.u8(static_cast<std::uint8_t>(n.type));
    w.u32(n.call_id);
    w.str(n.name);
  }

  const auto& rules = db.order_rules();
  w.u64(rules.size());
  for (const auto& rule : rules) {
    w.u64(rule.enclave_id);
    w.u8(static_cast<std::uint8_t>(rule.rule));
    w.u32(rule.a);
    w.u32(rule.b);
  }
  return w.take();
}

void decode_meta(SpanReader& r, TraceDatabase& db) {
  RawTables::window_period(db) = r.u64();
  RawTables::dropped_events(db) = r.u64();
  RawTables::stream_dropped(db) = r.u64();

  const std::uint64_t n_enc = r.u64();
  r.check_rows(n_enc, 8 + 4 + 8 + 8 + 4 + 8);
  auto& enclaves = RawTables::enclaves(db);
  enclaves.reserve(n_enc);
  for (std::uint64_t i = 0; i < n_enc; ++i) {
    EnclaveRecord e;
    e.enclave_id = r.u64();
    e.name = r.str();
    e.created_ns = r.u64();
    e.destroyed_ns = r.u64();
    e.tcs_count = r.u32();
    e.size_bytes = r.u64();
    enclaves.push_back(std::move(e));
  }

  const std::uint64_t n_names = r.u64();
  r.check_rows(n_names, 8 + 1 + 4 + 4);
  auto& names = RawTables::call_names(db);
  names.reserve(n_names);
  for (std::uint64_t i = 0; i < n_names; ++i) {
    CallNameRecord n;
    n.enclave_id = r.u64();
    n.type = static_cast<CallType>(r.u8());
    n.call_id = r.u32();
    n.name = r.str();
    names.push_back(std::move(n));
  }

  const std::uint64_t n_rules = r.u64();
  check_count(n_rules, "order-rule", r.context());
  r.check_rows(n_rules, 8 + 1 + 4 + 4);
  auto& rules = RawTables::order_rules(db);
  rules.reserve(n_rules);
  for (std::uint64_t i = 0; i < n_rules; ++i) {
    OrderRuleRecord rule;
    rule.enclave_id = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind >= kOrderRuleKindCount) {
      throw std::runtime_error("store: unknown order-rule kind in " + r.context());
    }
    rule.rule = static_cast<OrderRuleRecord::Rule>(kind);
    rule.a = r.u32();
    rule.b = r.u32();
    rules.push_back(rule);
  }
}

std::vector<std::uint64_t> meta_counts(const TraceDatabase& db) {
  return {db.enclaves().size(), db.call_names().size(), db.order_rules().size()};
}

// --- profile section --------------------------------------------------------

std::string encode_profile(const TraceDatabase& db) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(telemetry::hdr::kSubBits));
  w.u8(static_cast<std::uint8_t>(telemetry::hdr::kMaxExponent));

  const auto& latencies = db.latencies();
  w.u64(latencies.size());
  for (const auto& l : latencies) {
    w.u64(l.enclave_id);
    w.u8(static_cast<std::uint8_t>(l.type));
    w.u32(l.call_id);
    w.u64(l.count);
    w.u64(l.sum_ns);
    w.u32(static_cast<std::uint32_t>(l.buckets.size()));
    for (const auto& [idx, n] : l.buckets) {
      w.u32(idx);
      w.u64(n);
    }
  }

  const auto& series = db.metric_series();
  w.u64(series.size());
  for (const auto& s : series) {
    w.u32(s.series_id);
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.str(s.name);
    w.str(s.unit);
  }

  const auto& samples = db.metric_samples();
  w.u64(samples.size());
  for (const auto& s : samples) {
    w.u32(s.series_id);
    w.u64(s.timestamp_ns);
    put_f64(w, s.value);
  }

  const auto& windows = db.windows();
  w.u64(windows.size());
  for (const auto& win : windows) {
    w.u32(win.window_index);
    w.u64(win.start_ns);
    w.u64(win.end_ns);
    w.u64(win.calls);
    w.u64(win.aexs);
    w.u64(win.page_ins);
    w.u64(win.page_outs);
    w.u64(win.stream_dropped);
    w.u64(win.switchless_calls);
    w.u64(win.switchless_fallbacks);
    w.u64(win.switchless_wasted_ns);
    w.u32(win.active_alerts);
  }

  const auto& sites = db.window_sites();
  w.u64(sites.size());
  for (const auto& site : sites) {
    w.u32(site.window_index);
    w.u64(site.enclave_id);
    w.u8(static_cast<std::uint8_t>(site.type));
    w.u32(site.call_id);
    w.u64(site.calls);
    w.u64(site.aex_count);
    w.u64(site.p50_ns);
    w.u64(site.p99_ns);
  }
  return w.take();
}

void decode_profile(SpanReader& r, TraceDatabase& db) {
  const std::uint8_t sub_bits = r.u8();
  const std::uint8_t max_exp = r.u8();
  if (sub_bits != telemetry::hdr::kSubBits || max_exp != telemetry::hdr::kMaxExponent) {
    throw std::runtime_error("store: latency bucket geometry mismatch in " + r.context());
  }

  const std::uint64_t n_lat = r.u64();
  r.check_rows(n_lat, 8 + 1 + 4 + 8 + 8 + 4);
  auto& latencies = RawTables::latencies(db);
  latencies.reserve(n_lat);
  for (std::uint64_t i = 0; i < n_lat; ++i) {
    LatencyRecord l;
    l.enclave_id = r.u64();
    l.type = static_cast<CallType>(r.u8());
    l.call_id = r.u32();
    l.count = r.u64();
    l.sum_ns = r.u64();
    const std::uint32_t n_buckets = r.u32();
    if (n_buckets > telemetry::hdr::kBucketCount) {
      throw std::runtime_error("store: implausible latency bucket count in " + r.context());
    }
    l.buckets.reserve(n_buckets);
    for (std::uint32_t b = 0; b < n_buckets; ++b) {
      const std::uint32_t idx = r.u32();
      const std::uint64_t n = r.u64();
      l.buckets.emplace_back(idx, n);
    }
    latencies.push_back(std::move(l));
  }

  const std::uint64_t n_series = r.u64();
  r.check_rows(n_series, 4 + 1 + 4 + 4);
  auto& series = RawTables::metric_series(db);
  series.reserve(n_series);
  for (std::uint64_t i = 0; i < n_series; ++i) {
    MetricSeriesRecord s;
    s.series_id = r.u32();
    s.kind = static_cast<MetricKind>(r.u8());
    s.name = r.str();
    s.unit = r.str();
    series.push_back(std::move(s));
  }

  const std::uint64_t n_samples = r.u64();
  r.check_rows(n_samples, 4 + 8 + 8);
  auto& samples = RawTables::metric_samples(db);
  samples.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    MetricSampleRecord s;
    s.series_id = r.u32();
    s.timestamp_ns = r.u64();
    s.value = get_f64(r);
    samples.push_back(s);
  }

  const std::uint64_t n_windows = r.u64();
  check_count(n_windows, "window", r.context());
  r.check_rows(n_windows, 4 + 8 * 10 + 4);
  auto& windows = RawTables::windows(db);
  windows.reserve(n_windows);
  for (std::uint64_t i = 0; i < n_windows; ++i) {
    WindowRecord win;
    win.window_index = r.u32();
    win.start_ns = r.u64();
    win.end_ns = r.u64();
    win.calls = r.u64();
    win.aexs = r.u64();
    win.page_ins = r.u64();
    win.page_outs = r.u64();
    win.stream_dropped = r.u64();
    win.switchless_calls = r.u64();
    win.switchless_fallbacks = r.u64();
    win.switchless_wasted_ns = r.u64();
    win.active_alerts = r.u32();
    if (win.end_ns < win.start_ns) {
      throw std::runtime_error("store: malformed window interval in " + r.context());
    }
    windows.push_back(win);
  }

  const std::uint64_t n_sites = r.u64();
  check_count(n_sites, "window-site", r.context());
  r.check_rows(n_sites, 4 + 8 + 1 + 4 + 8 * 4);
  auto& sites = RawTables::window_sites(db);
  sites.reserve(n_sites);
  for (std::uint64_t i = 0; i < n_sites; ++i) {
    WindowSiteRecord site;
    site.window_index = r.u32();
    site.enclave_id = r.u64();
    site.type = static_cast<CallType>(r.u8());
    site.call_id = r.u32();
    site.calls = r.u64();
    site.aex_count = r.u64();
    site.p50_ns = r.u64();
    site.p99_ns = r.u64();
    if (site.window_index >= windows.size()) {
      throw std::runtime_error("store: window-site references unknown window in " +
                               r.context());
    }
    sites.push_back(site);
  }
}

std::vector<std::uint64_t> profile_counts(const TraceDatabase& db) {
  return {db.latencies().size(), db.metric_series().size(), db.metric_samples().size(),
          db.windows().size(), db.window_sites().size()};
}

// --- alerts section ---------------------------------------------------------

std::string encode_alerts(const TraceDatabase& db) {
  BufWriter w;
  const auto& alerts = db.alerts();
  w.u64(alerts.size());
  for (const auto& alert : alerts) {
    w.u8(static_cast<std::uint8_t>(alert.kind));
    w.u64(alert.enclave_id);
    w.u8(static_cast<std::uint8_t>(alert.type));
    w.u32(alert.call_id);
    w.u64(alert.onset_ns);
    w.u64(alert.resolved_ns);
    w.u32(alert.window_index);
    w.u64(alert.detail);
  }
  return w.take();
}

void decode_alerts(SpanReader& r, TraceDatabase& db) {
  const std::uint64_t n_alerts = r.u64();
  check_count(n_alerts, "alert", r.context());
  r.check_rows(n_alerts, 1 + 8 + 1 + 4 + 8 + 8 + 4 + 8);
  auto& alerts = RawTables::alerts(db);
  alerts.reserve(n_alerts);
  for (std::uint64_t i = 0; i < n_alerts; ++i) {
    AlertRecord alert;
    const std::uint8_t kind = r.u8();
    if (kind >= kAlertKindCount) {
      throw std::runtime_error("store: unknown alert kind in " + r.context());
    }
    alert.kind = static_cast<AlertKind>(kind);
    alert.enclave_id = r.u64();
    alert.type = static_cast<CallType>(r.u8());
    alert.call_id = r.u32();
    alert.onset_ns = r.u64();
    alert.resolved_ns = r.u64();
    alert.window_index = r.u32();
    alert.detail = r.u64();
    if (alert.resolved_ns != 0 && alert.resolved_ns < alert.onset_ns) {
      throw std::runtime_error("store: alert resolved before onset in " + r.context());
    }
    alerts.push_back(alert);
  }
}

std::vector<std::uint64_t> alert_counts(const TraceDatabase& db) {
  return {db.alerts().size()};
}

// --- event chunks -----------------------------------------------------------

std::string encode_chunk(const CallRecord* calls, std::size_t n_calls, const AexRecord* aexs,
                         std::size_t n_aexs, const PagingRecord* paging, std::size_t n_paging,
                         const SyncRecord* syncs, std::size_t n_syncs, ChunkDirEntry& entry) {
  BufWriter w;
  w.u32(kChunkMagic);
  w.u64(n_calls);
  w.u64(n_aexs);
  w.u64(n_paging);
  w.u64(n_syncs);

  bool have_ts = false, have_thread = false;
  auto note_ts = [&](Nanoseconds ts) {
    if (!have_ts || ts < entry.min_ns) entry.min_ns = ts;
    if (!have_ts || ts > entry.max_ns) entry.max_ns = ts;
    have_ts = true;
  };
  auto note_thread = [&](ThreadId t) {
    if (!have_thread || t < entry.thread_min) entry.thread_min = t;
    if (!have_thread || t > entry.thread_max) entry.thread_max = t;
    have_thread = true;
  };

  for (std::size_t i = 0; i < n_calls; ++i) {
    const auto& c = calls[i];
    w.u8(static_cast<std::uint8_t>(c.type));
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.u32(c.thread_id);
    w.u64(c.enclave_id);
    w.u32(c.call_id);
    w.i64(c.parent);
    w.u64(c.start_ns);
    w.u64(c.end_ns);
    w.u32(c.aex_count);
    note_ts(c.start_ns);
    note_ts(c.end_ns);
    note_thread(c.thread_id);
  }
  for (std::size_t i = 0; i < n_aexs; ++i) {
    const auto& a = aexs[i];
    w.u32(a.thread_id);
    w.u64(a.enclave_id);
    w.u64(a.timestamp_ns);
    w.i64(a.during_call);
    w.u8(static_cast<std::uint8_t>(a.cause));
    note_ts(a.timestamp_ns);
    note_thread(a.thread_id);
  }
  for (std::size_t i = 0; i < n_paging; ++i) {
    const auto& p = paging[i];
    w.u64(p.enclave_id);
    w.u64(p.page_number);
    w.u8(static_cast<std::uint8_t>(p.direction));
    w.u64(p.timestamp_ns);
    note_ts(p.timestamp_ns);
  }
  for (std::size_t i = 0; i < n_syncs; ++i) {
    const auto& s = syncs[i];
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u32(s.thread_id);
    w.u32(s.target_thread_id);
    w.u64(s.enclave_id);
    w.u64(s.timestamp_ns);
    note_ts(s.timestamp_ns);
    note_thread(s.thread_id);
  }

  entry.crc = support::crc32(w.str_ref().data(), w.size());
  w.u32(entry.crc);
  entry.n_calls = n_calls;
  entry.n_aexs = n_aexs;
  entry.n_paging = n_paging;
  entry.n_syncs = n_syncs;
  entry.length = w.size();
  return w.take();
}

void decode_chunk(const char* data, std::size_t size, const ChunkDirEntry& entry,
                  TraceDatabase& db) {
  if (size < 4) {
    throw std::runtime_error("store: truncated event chunk");
  }
  if (support::crc32(data, size - 4) != entry.crc) {
    throw std::runtime_error("store: event chunk checksum mismatch");
  }
  std::uint32_t trailing;
  std::memcpy(&trailing, data + size - 4, 4);
  if (trailing != entry.crc) {
    throw std::runtime_error("store: event chunk checksum mismatch");
  }

  SpanReader r(data, size - 4, "event chunk");
  if (r.u32() != kChunkMagic) {
    throw std::runtime_error("store: bad event chunk magic");
  }
  const std::uint64_t n_calls = r.u64();
  const std::uint64_t n_aexs = r.u64();
  const std::uint64_t n_paging = r.u64();
  const std::uint64_t n_syncs = r.u64();
  if (n_calls != entry.n_calls || n_aexs != entry.n_aexs || n_paging != entry.n_paging ||
      n_syncs != entry.n_syncs) {
    throw std::runtime_error("store: event chunk row counts disagree with directory");
  }

  const auto rebase = static_cast<CallIndex>(entry.call_rebase);
  auto& calls = RawTables::calls(db);
  r.check_rows(n_calls, 1 + 1 + 4 + 8 + 4 + 8 + 8 + 8 + 4);
  calls.reserve(calls.size() + n_calls);
  for (std::uint64_t i = 0; i < n_calls; ++i) {
    CallRecord c;
    c.type = static_cast<CallType>(r.u8());
    c.kind = static_cast<OcallKind>(r.u8());
    c.thread_id = r.u32();
    c.enclave_id = r.u64();
    c.call_id = r.u32();
    c.parent = r.i64();
    if (c.parent >= 0) c.parent += rebase;
    c.start_ns = r.u64();
    c.end_ns = r.u64();
    c.aex_count = r.u32();
    calls.push_back(c);
  }

  auto& aexs = RawTables::aexs(db);
  r.check_rows(n_aexs, 4 + 8 + 8 + 8 + 1);
  aexs.reserve(aexs.size() + n_aexs);
  for (std::uint64_t i = 0; i < n_aexs; ++i) {
    AexRecord a;
    a.thread_id = r.u32();
    a.enclave_id = r.u64();
    a.timestamp_ns = r.u64();
    a.during_call = r.i64();
    if (a.during_call >= 0) a.during_call += rebase;
    a.cause = static_cast<AexCause>(r.u8());
    aexs.push_back(a);
  }

  auto& paging = RawTables::paging(db);
  r.check_rows(n_paging, 8 + 8 + 1 + 8);
  paging.reserve(paging.size() + n_paging);
  for (std::uint64_t i = 0; i < n_paging; ++i) {
    PagingRecord p;
    p.enclave_id = r.u64();
    p.page_number = r.u64();
    p.direction = static_cast<PageDirection>(r.u8());
    p.timestamp_ns = r.u64();
    paging.push_back(p);
  }

  auto& syncs = RawTables::syncs(db);
  r.check_rows(n_syncs, 1 + 4 + 4 + 8 + 8);
  syncs.reserve(syncs.size() + n_syncs);
  for (std::uint64_t i = 0; i < n_syncs; ++i) {
    SyncRecord s;
    s.kind = static_cast<SyncKind>(r.u8());
    s.thread_id = r.u32();
    s.target_thread_id = r.u32();
    s.enclave_id = r.u64();
    s.timestamp_ns = r.u64();
    syncs.push_back(s);
  }
}

}  // namespace tracedb::store
