// Store compaction: fold several inputs (stores or flat traces) into one.
//
// The fleet serve daemon checkpoints each monitored process into its own
// store; compact() folds those checkpoints into a single queryable store
// without rewriting event bytes.  Summary tables genuinely merge:
//
//   latencies       summed bucket-wise per (enclave, type, call_id), output
//                   in sorted key order (deterministic regardless of input
//                   order within a key-disjoint fleet)
//   metric series   unioned by (kind, name, unit); sample ids remapped
//   windows         concatenated; window_index — and every window_index
//                   reference in window_sites and alerts — shifted by the
//                   windows already merged
//   enclaves        keyed by id: first row wins, destroyed_ns fills in,
//                   tcs/size take the max
//   call names      first row per (enclave, type, call_id) wins
//   order rules     exact-tuple dedup, first-seen order
//   counters        dropped/stream_dropped sum; window_period: first nonzero
//
// Event chunks from store inputs are copied verbatim — only the directory
// entry's call_rebase is shifted by the calls already written, which is the
// whole point of keeping call references chunk-directory-relative.  Flat
// inputs are framed into chunks on the way through.
#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>

#include "tracedb/store/store.hpp"

namespace tracedb::store {
namespace {

using LatKey = std::tuple<EnclaveId, std::uint8_t, CallId>;
using SeriesKey = std::tuple<std::uint8_t, std::string, std::string>;
using NameKey = std::tuple<EnclaveId, std::uint8_t, CallId>;
using RuleKey = std::tuple<EnclaveId, std::uint8_t, CallId, CallId>;

class SummaryMerger {
 public:
  void merge(const TraceDatabase& in) {
    auto& out = db_;
    if (RawTables::window_period(out) == 0) {
      RawTables::window_period(out) = in.window_period();
    }
    RawTables::dropped_events(out) += in.dropped_events();
    RawTables::stream_dropped(out) += in.stream_dropped();

    auto& enclaves = RawTables::enclaves(out);
    for (const auto& e : in.enclaves()) {
      const auto it = enclave_index_.find(e.enclave_id);
      if (it == enclave_index_.end()) {
        enclave_index_[e.enclave_id] = enclaves.size();
        enclaves.push_back(e);
      } else {
        EnclaveRecord& have = enclaves[it->second];
        if (have.destroyed_ns == 0) have.destroyed_ns = e.destroyed_ns;
        have.tcs_count = std::max(have.tcs_count, e.tcs_count);
        have.size_bytes = std::max(have.size_bytes, e.size_bytes);
      }
    }

    auto& names = RawTables::call_names(out);
    for (const auto& n : in.call_names()) {
      const NameKey key{n.enclave_id, static_cast<std::uint8_t>(n.type), n.call_id};
      if (seen_names_.insert(key).second) names.push_back(n);
    }

    auto& rules = RawTables::order_rules(out);
    for (const auto& rule : in.order_rules()) {
      const RuleKey key{rule.enclave_id, static_cast<std::uint8_t>(rule.rule), rule.a, rule.b};
      if (seen_rules_.insert(key).second) rules.push_back(rule);
    }

    for (const auto& l : in.latencies()) {
      const LatKey key{l.enclave_id, static_cast<std::uint8_t>(l.type), l.call_id};
      const auto it = latencies_.find(key);
      if (it == latencies_.end()) {
        latencies_[key] = l;
        continue;
      }
      LatencyRecord& have = it->second;
      have.count += l.count;
      have.sum_ns += l.sum_ns;
      std::map<std::uint32_t, std::uint64_t> buckets(have.buckets.begin(),
                                                     have.buckets.end());
      for (const auto& [idx, n] : l.buckets) buckets[idx] += n;
      have.buckets.assign(buckets.begin(), buckets.end());
    }

    auto& series = RawTables::metric_series(out);
    std::map<MetricSeriesId, MetricSeriesId> id_remap;
    for (const auto& s : in.metric_series()) {
      const SeriesKey key{static_cast<std::uint8_t>(s.kind), s.name, s.unit};
      const auto it = series_ids_.find(key);
      if (it == series_ids_.end()) {
        const auto id = static_cast<MetricSeriesId>(series.size());
        series_ids_[key] = id;
        id_remap[s.series_id] = id;
        MetricSeriesRecord merged = s;
        merged.series_id = id;
        series.push_back(std::move(merged));
      } else {
        id_remap[s.series_id] = it->second;
      }
    }
    auto& samples = RawTables::metric_samples(out);
    for (const auto& s : in.metric_samples()) {
      const auto it = id_remap.find(s.series_id);
      if (it == id_remap.end()) {
        throw std::runtime_error("store: metric sample references unknown series");
      }
      MetricSampleRecord merged = s;
      merged.series_id = it->second;
      samples.push_back(merged);
    }

    auto& windows = RawTables::windows(out);
    const auto window_base = static_cast<std::uint32_t>(windows.size());
    for (const auto& win : in.windows()) {
      WindowRecord merged = win;
      merged.window_index += window_base;
      windows.push_back(merged);
    }
    auto& sites = RawTables::window_sites(out);
    for (const auto& site : in.window_sites()) {
      WindowSiteRecord merged = site;
      merged.window_index += window_base;
      sites.push_back(merged);
    }
    auto& alerts = RawTables::alerts(out);
    for (const auto& alert : in.alerts()) {
      AlertRecord merged = alert;
      merged.window_index += window_base;
      alerts.push_back(merged);
    }
  }

  /// Finalises the merged summary (latency table in sorted key order).
  TraceDatabase take() {
    auto& latencies = RawTables::latencies(db_);
    latencies.reserve(latencies_.size());
    for (auto& [key, rec] : latencies_) latencies.push_back(std::move(rec));
    return std::move(db_);
  }

 private:
  TraceDatabase db_;
  std::map<EnclaveId, std::size_t> enclave_index_;
  std::set<NameKey> seen_names_;
  std::set<RuleKey> seen_rules_;
  std::map<LatKey, LatencyRecord> latencies_;
  std::map<SeriesKey, MetricSeriesId> series_ids_;
};

}  // namespace

void compact(const std::vector<std::string>& inputs, const std::string& out_dir,
             WriterOptions options) {
  if (inputs.empty()) {
    throw std::runtime_error("store: compact needs at least one input");
  }
  StoreWriter writer(out_dir, options);
  SummaryMerger merger;
  for (const auto& input : inputs) {
    if (is_store(input)) {
      StoreReader reader(input);
      const TraceDatabase summary = reader.load(kSummarySections);
      merger.merge(summary);
      const std::uint64_t call_base = writer.calls_written();
      for (ChunkDirEntry entry : reader.chunk_directory()) {
        const std::string_view bytes = reader.chunk_bytes(entry);
        entry.call_rebase += call_base;
        writer.add_raw_chunk(bytes, entry);
      }
    } else {
      const TraceDatabase flat = TraceDatabase::load(input);
      merger.merge(flat);
      writer.add_events(flat.calls(), flat.aexs(), flat.paging(), flat.syncs());
    }
  }
  writer.commit(merger.take());
}

}  // namespace tracedb::store
