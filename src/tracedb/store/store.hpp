// SGXSTORE: the multi-file trace database (public API of src/tracedb/store).
//
// Motivation (ROADMAP "fleet-scale trace store"): the flat SGXPTRC6 file is
// one payload — `sgxperf stats` on a 2 GB trace reads 2 GB even though the
// summary it prints derives from a few hundred kilobytes of per-site
// aggregate.  A store splits the payload into independently addressable,
// independently checksummed sections so summary consumers map meta+profile+
// alerts and never touch the event log, and the fleet serve daemon can fold
// checkpoints together without rewriting event bytes.  Conversion to and
// from the flat format is lossless in both directions.
//
// See format.hpp for the on-disk layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tracedb/database.hpp"
#include "tracedb/store/format.hpp"

namespace tracedb::store {

// Section selection masks for StoreReader::load().
inline constexpr unsigned kSectionMeta = 1u << 0;
inline constexpr unsigned kSectionProfile = 1u << 1;
inline constexpr unsigned kSectionAlerts = 1u << 2;
inline constexpr unsigned kSectionEvents = 1u << 3;
inline constexpr unsigned kAllSections =
    kSectionMeta | kSectionProfile | kSectionAlerts | kSectionEvents;
/// What the stats / analyzer-summary paths need: everything but the event
/// log.  (The analyser synthesises per-site stats rows from the latency
/// table when the call table is empty, so summaries stay complete.)
inline constexpr unsigned kSummarySections = kSectionMeta | kSectionProfile | kSectionAlerts;

/// True if `path` is a store directory (contains a store.idx).
[[nodiscard]] bool is_store(const std::string& path);

/// I/O accounting for one open: how many bytes of the store were actually
/// read versus its total size.  `sgxperf stats --json` surfaces this so the
/// lazy-loading claim is measurable, not aspirational.
struct OpenIo {
  std::uint64_t total_bytes = 0;  // index + every section payload
  std::uint64_t bytes_read = 0;   // index + sections (events: footer + loaded chunks)
  std::vector<std::string> sections_loaded;
};

struct SectionInfo {
  std::string name;   // "meta", "profile", ... or "unknown" for skipped ids
  std::string file;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  std::vector<std::uint64_t> counts;
};

struct StoreInfo {
  std::uint64_t generation = 0;
  std::uint8_t payload_version = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t event_chunks = 0;
  std::vector<SectionInfo> sections;
};

struct WriterOptions {
  /// Calls per event chunk; smaller chunks mean finer-grained lazy loads at
  /// the cost of more framing.  4096 keeps chunks around 200 KB.
  std::size_t chunk_calls = 4096;
};

/// Lazy, memory-mapping reader.  Construction parses and validates only the
/// index header; section files are mapped (and their checksums verified) on
/// first touch.  Not thread-safe; not copyable.
class StoreReader {
 public:
  explicit StoreReader(std::string dir);
  ~StoreReader();
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// Loads the selected sections into a fresh database.  Sections absent
  /// from the mask cost zero reads; unknown section ids in the index are
  /// skipped.  Throws on any structural defect — never returns a partially
  /// populated database.
  [[nodiscard]] TraceDatabase load(unsigned mask = kAllSections);

  /// Appends to `db` only the event chunks whose virtual-time range
  /// intersects [from_ns, to_ns] (and, when `thread` is non-negative, whose
  /// thread range covers it).  `db` should already hold the meta section if
  /// call names matter to the caller.
  void load_events_overlapping(TraceDatabase& db, Nanoseconds from_ns, Nanoseconds to_ns,
                               std::int64_t thread = -1);

  [[nodiscard]] StoreInfo info();
  [[nodiscard]] const OpenIo& io() const noexcept { return io_; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return index_.generation; }

  /// Raw access to the event chunk directory and bytes (compaction copies
  /// chunks verbatim).  chunk_bytes() verifies the per-chunk checksum.
  [[nodiscard]] const std::vector<ChunkDirEntry>& chunk_directory();
  [[nodiscard]] std::string_view chunk_bytes(const ChunkDirEntry& entry);

 private:
  struct Mapping {
    const char* data = nullptr;
    std::size_t size = 0;
  };

  [[nodiscard]] const IndexSection& require(std::uint8_t id) const;
  /// Maps a section file (first touch verifies the section checksum; the
  /// events section checksums its footer here and its chunks on chunk load).
  [[nodiscard]] const Mapping& map_section(const IndexSection& s);
  void ensure_footer();

  std::string dir_;
  StoreIndex index_;
  OpenIo io_;
  Mapping maps_[4];
  bool mapped_[4] = {false, false, false, false};
  std::vector<ChunkDirEntry> chunks_;
  bool footer_parsed_ = false;
};

/// Streaming writer.  Event batches are framed into chunks as they arrive;
/// commit() writes the summary sections and the index.  Every file is
/// committed via temp+rename, generation-suffixed when replacing an existing
/// store, and the index goes last — a crash leaves the previous store intact.
class StoreWriter {
 public:
  explicit StoreWriter(std::string dir, WriterOptions options = {});

  /// Frames one batch of event rows into chunks.  CallIndex references
  /// (parent / during_call) must be batch-relative; the writer records the
  /// batch's global rebase in each chunk directory entry.
  void add_events(const std::vector<CallRecord>& calls, const std::vector<AexRecord>& aexs,
                  const std::vector<PagingRecord>& paging,
                  const std::vector<SyncRecord>& syncs);

  /// Appends an already-encoded chunk verbatim (compaction).  `entry.offset`
  /// is reassigned; `entry.call_rebase` must already be output-global.
  void add_raw_chunk(std::string_view bytes, ChunkDirEntry entry);

  /// Number of event calls framed so far (the rebase for the next batch).
  [[nodiscard]] std::uint64_t calls_written() const noexcept { return calls_written_; }

  /// Writes meta/profile/alerts from `summary` (its event tables are ignored
  /// — events come from add_events/add_raw_chunk) plus footer and index, all
  /// atomically, then deletes superseded section files of the old generation.
  void commit(const TraceDatabase& summary);

 private:
  std::string dir_;
  WriterOptions options_;
  std::uint64_t generation_ = 0;
  std::vector<std::string> stale_files_;  // previous generation, removed on commit
  std::string events_;                    // framed chunks, accumulated
  std::vector<ChunkDirEntry> chunks_;
  std::uint64_t calls_written_ = 0;
  std::uint64_t aexs_written_ = 0;
  std::uint64_t paging_written_ = 0;
  std::uint64_t syncs_written_ = 0;
  bool committed_ = false;
};

/// Packs a fully-loaded database into a store directory (lossless).
void pack(const TraceDatabase& db, const std::string& dir, WriterOptions options = {});

/// Loads every section of a store back into a database (lossless inverse).
[[nodiscard]] TraceDatabase unpack(const std::string& dir);

/// Folds several inputs — store directories or flat trace files — into one
/// store at `out_dir`.  Summary tables are merged (histograms summed,
/// windows re-indexed, metric series unioned, scalar counters added); event
/// chunks from store inputs are copied verbatim with only their directory
/// rebase shifted.  Inputs are folded in argument order.
void compact(const std::vector<std::string>& inputs, const std::string& out_dir,
             WriterOptions options = {});

}  // namespace tracedb::store
