// Format-dispatching trace open/save: flat SGXPTRC files or SGXSTORE dirs.
//
// Everything above tracedb (the CLI, the fleet daemon, tests) goes through
// these helpers instead of TraceDatabase::load/save directly, so any trace
// argument — `sgxperf stats x.store` as readily as `sgxperf stats x.bin` —
// accepts either representation, and summary-only consumers can declare the
// section subset they need and skip the event log entirely when the input
// is a store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tracedb/database.hpp"
#include "tracedb/store/store.hpp"

namespace tracedb {

/// What one open_trace() actually read.  Flat files are all-or-nothing;
/// stores report per-section byte counts (store::OpenIo semantics).
struct OpenStats {
  bool store = false;
  std::uint64_t total_bytes = 0;
  std::uint64_t bytes_read = 0;
  std::vector<std::string> sections_loaded;
};

/// True if `path` names a store: an existing directory carrying a store
/// index, or (for not-yet-written outputs) a path with the ".store" suffix.
[[nodiscard]] bool is_store_path(const std::string& path);

/// Opens a trace in either representation.  `sections` (store::kSection*
/// masks) limits what is read from a store; flat files always load whole.
[[nodiscard]] TraceDatabase open_trace(const std::string& path,
                                       unsigned sections = store::kAllSections,
                                       OpenStats* stats = nullptr);

/// Saves in the representation `path` names (see is_store_path).
void save_trace(const TraceDatabase& db, const std::string& path);

/// Like save_trace, but a reader (or crash-restart) never observes a
/// half-written trace: flat files go through temp+rename, stores are
/// already committed atomically by the store writer.
void save_trace_atomic(const TraceDatabase& db, const std::string& path);

}  // namespace tracedb
