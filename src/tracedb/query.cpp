#include "tracedb/query.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace tracedb {

std::map<CallKey, CallInstances> group_calls(const TraceDatabase& db) {
  std::map<CallKey, CallInstances> out;
  const auto& calls = db.calls();
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    out[CallKey{c.enclave_id, c.type, c.call_id}].push_back(static_cast<CallIndex>(i));
  }
  return out;
}

std::vector<std::uint64_t> durations_of(const TraceDatabase& db, const CallKey& key) {
  std::vector<std::uint64_t> out;
  for (const auto& c : db.calls()) {
    if (c.enclave_id == key.enclave_id && c.type == key.type && c.call_id == key.call_id) {
      out.push_back(c.duration());
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> scatter_of(const TraceDatabase& db,
                                                                const CallKey& key) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& c : db.calls()) {
    if (c.enclave_id == key.enclave_id && c.type == key.type && c.call_id == key.call_id) {
      out.emplace_back(c.start_ns, c.duration());
    }
  }
  return out;
}

std::vector<CallIndex> calls_in_range(const TraceDatabase& db, CallType type,
                                      Nanoseconds from_ns, Nanoseconds to_ns) {
  std::vector<CallIndex> out;
  const auto& calls = db.calls();
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    if (c.type == type && c.start_ns >= from_ns && c.start_ns < to_ns) {
      out.push_back(static_cast<CallIndex>(i));
    }
  }
  return out;
}

std::size_t distinct_calls(const TraceDatabase& db, EnclaveId enclave, CallType type) {
  std::set<CallId> ids;
  for (const auto& c : db.calls()) {
    if (c.enclave_id == enclave && c.type == type) ids.insert(c.call_id);
  }
  return ids.size();
}

std::size_t total_calls(const TraceDatabase& db, EnclaveId enclave, CallType type) {
  std::size_t n = 0;
  for (const auto& c : db.calls()) {
    if (c.enclave_id == enclave && c.type == type) ++n;
  }
  return n;
}

double fraction_shorter_than(const TraceDatabase& db, EnclaveId enclave, CallType type,
                             Nanoseconds threshold_ns, Nanoseconds subtract_ns) {
  std::size_t total = 0;
  std::size_t below = 0;
  for (const auto& c : db.calls()) {
    if (c.enclave_id != enclave || c.type != type) continue;
    ++total;
    const Nanoseconds raw = c.duration();
    const Nanoseconds adjusted = raw > subtract_ns ? raw - subtract_ns : 0;
    if (adjusted < threshold_ns) ++below;
  }
  return total == 0 ? 0.0 : static_cast<double>(below) / static_cast<double>(total);
}

std::pair<std::size_t, std::size_t> paging_counts(const TraceDatabase& db, EnclaveId enclave) {
  std::size_t ins = 0;
  std::size_t outs = 0;
  for (const auto& p : db.paging()) {
    if (p.enclave_id != enclave) continue;
    if (p.direction == PageDirection::kPageIn) {
      ++ins;
    } else {
      ++outs;
    }
  }
  return {ins, outs};
}

std::vector<CallIndex> indirect_parents(const TraceDatabase& db) {
  const auto& calls = db.calls();
  std::vector<CallIndex> indirect(calls.size(), kNoParent);

  // Calls are stored in start order; per thread this order is preserved, and
  // same-thread calls of the same nesting level never overlap — so a single
  // forward scan with a (thread, type, direct parent) -> last-seen map
  // implements the Figure 4 rules.
  using Key = std::tuple<ThreadId, CallType, CallIndex>;
  std::map<Key, CallIndex> last_seen;

  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    const Key key{c.thread_id, c.type, c.parent};
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) indirect[i] = it->second;
    last_seen[key] = static_cast<CallIndex>(i);
  }
  return indirect;
}

std::optional<CallKey> find_call_by_name(const TraceDatabase& db, EnclaveId enclave,
                                         const std::string& name) {
  for (const auto& rec : db.call_names()) {
    if (rec.enclave_id == enclave && rec.name == name) {
      return CallKey{rec.enclave_id, rec.type, rec.call_id};
    }
  }
  // Fall back to the synthesized "ecall_<id>"/"ocall_<id>" names.
  for (const auto& [key, _] : group_calls(db)) {
    if (key.enclave_id == enclave &&
        db.name_of(key.enclave_id, key.type, key.call_id) == name) {
      return key;
    }
  }
  return std::nullopt;
}

std::vector<WindowSiteRecord> window_series_of(const TraceDatabase& db, const CallKey& key) {
  std::vector<WindowSiteRecord> rows;
  for (const auto& site : db.window_sites()) {
    if (site.enclave_id == key.enclave_id && site.type == key.type &&
        site.call_id == key.call_id) {
      rows.push_back(site);
    }
  }
  return rows;
}

std::vector<AlertRecord> active_alerts(const TraceDatabase& db) {
  std::vector<AlertRecord> out;
  for (const auto& a : db.alerts()) {
    if (a.resolved_ns == 0) out.push_back(a);
  }
  return out;
}

std::vector<AlertRecord> alerts_at(const TraceDatabase& db, Nanoseconds at_ns) {
  std::vector<AlertRecord> out;
  for (const auto& a : db.alerts()) {
    if (a.onset_ns <= at_ns && (a.resolved_ns == 0 || at_ns < a.resolved_ns)) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace tracedb
