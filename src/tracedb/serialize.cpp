// Binary persistence (formats v2–v6) and CSV export for TraceDatabase.
//
// Layout: magic "SGXPTRC6", then per table a u64 row count followed by rows.
// v2 added the AEX cause byte; v3 appends the dropped-event count and the
// telemetry tables (metric series, metric samples) after the v2 payload;
// v4 appends the streaming-drop count and the sparse HDR latency table
// after the v3 payload; v5 appends the online-analysis time-series tables
// (window period, window snapshots, per-site window rows, alerts) after the
// v4 payload; v6 appends the interface-orderliness rule table after the v5
// payload.  Each older format is exactly a newer file that ends early —
// load() accepts all five magics and leaves the newer fields at their
// defaults for older input.  v1 files are rejected by the magic check.
// Integers are little-endian fixed-width; strings are u32-length-prefixed;
// metric values are IEEE-754 doubles stored as their u64 bit pattern.  The
// latency table header records the compiled HDR bucket geometry (sub_bits,
// max_exponent); load() rejects mismatches rather than misinterpret bucket
// indices.  The v5/v6 tables are validated structurally: alert and rule
// kind bytes must be in range (alert kinds are version-gated — the
// orderliness kinds are only legal in v6 files), window intervals must be
// well-formed, and per-table row counts are bounded against the
// implausible.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>

#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"

namespace tracedb {
namespace {

constexpr char kMagicV2[8] = {'S', 'G', 'X', 'P', 'T', 'R', 'C', '2'};
constexpr char kMagicV3[8] = {'S', 'G', 'X', 'P', 'T', 'R', 'C', '3'};
constexpr char kMagicV4[8] = {'S', 'G', 'X', 'P', 'T', 'R', 'C', '4'};
constexpr char kMagicV5[8] = {'S', 'G', 'X', 'P', 'T', 'R', 'C', '5'};
constexpr char kMagicV6[8] = {'S', 'G', 'X', 'P', 'T', 'R', 'C', '6'};

/// Ceiling on v5/v6 table row counts: far above any real trace, small enough
/// that a corrupt count fails fast instead of reserving petabytes.
constexpr std::uint64_t kMaxV5Rows = 1ull << 32;

bool magic_is(const char (&magic)[8], const char (&want)[8]) {
  for (std::size_t i = 0; i < 8; ++i) {
    if (magic[i] != want[i]) return false;
  }
  return true;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

class Writer {
 public:
  explicit Writer(const std::string& path) : f_(std::fopen(path.c_str(), "wb")) {
    if (!f_) throw std::runtime_error("tracedb: cannot open for writing: " + path);
  }

  void bytes(const void* p, std::size_t n) {
    if (std::fwrite(p, 1, n, f_.get()) != n) throw std::runtime_error("tracedb: write failed");
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void i64(std::int64_t v) { bytes(&v, 8); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

 private:
  FilePtr f_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : f_(std::fopen(path.c_str(), "rb")) {
    if (!f_) throw std::runtime_error("tracedb: cannot open for reading: " + path);
  }

  void bytes(void* p, std::size_t n) {
    if (std::fread(p, 1, n, f_.get()) != n)
      throw std::runtime_error("tracedb: truncated trace file");
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, 8);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    bytes(&v, 8);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > (1u << 24)) throw std::runtime_error("tracedb: implausible string length");
    std::string s(n, '\0');
    if (n > 0) bytes(s.data(), n);
    return s;
  }

 private:
  FilePtr f_;
};

}  // namespace

void TraceDatabase::save(const std::string& path) const {
  std::lock_guard lock(mu_);
  for (const auto& shard : shards_) {
    if (!shard->drained() && shard->events_recorded() > 0) {
      throw std::logic_error(
          "tracedb: save() with unmerged shard events — call merge_shards() first");
    }
  }
  Writer w(path);
  w.bytes(kMagicV6, sizeof(kMagicV6));

  w.u64(calls_.size());
  for (const auto& c : calls_) {
    w.u8(static_cast<std::uint8_t>(c.type));
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.u32(c.thread_id);
    w.u64(c.enclave_id);
    w.u32(c.call_id);
    w.i64(c.parent);
    w.u64(c.start_ns);
    w.u64(c.end_ns);
    w.u32(c.aex_count);
  }

  w.u64(aexs_.size());
  for (const auto& a : aexs_) {
    w.u32(a.thread_id);
    w.u64(a.enclave_id);
    w.u64(a.timestamp_ns);
    w.i64(a.during_call);
    w.u8(static_cast<std::uint8_t>(a.cause));
  }

  w.u64(paging_.size());
  for (const auto& p : paging_) {
    w.u64(p.enclave_id);
    w.u64(p.page_number);
    w.u8(static_cast<std::uint8_t>(p.direction));
    w.u64(p.timestamp_ns);
  }

  w.u64(syncs_.size());
  for (const auto& s : syncs_) {
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u32(s.thread_id);
    w.u32(s.target_thread_id);
    w.u64(s.enclave_id);
    w.u64(s.timestamp_ns);
  }

  w.u64(enclaves_.size());
  for (const auto& e : enclaves_) {
    w.u64(e.enclave_id);
    w.str(e.name);
    w.u64(e.created_ns);
    w.u64(e.destroyed_ns);
    w.u32(e.tcs_count);
    w.u64(e.size_bytes);
  }

  w.u64(call_names_.size());
  for (const auto& n : call_names_) {
    w.u64(n.enclave_id);
    w.u8(static_cast<std::uint8_t>(n.type));
    w.u32(n.call_id);
    w.str(n.name);
  }

  // --- v3 additions ---------------------------------------------------------
  w.u64(dropped_events_);

  w.u64(metric_series_.size());
  for (const auto& s : metric_series_) {
    w.u32(s.series_id);
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.str(s.name);
    w.str(s.unit);
  }

  w.u64(metric_samples_.size());
  for (const auto& s : metric_samples_) {
    w.u32(s.series_id);
    w.u64(s.timestamp_ns);
    w.f64(s.value);
  }

  // --- v4 additions ---------------------------------------------------------
  w.u64(stream_dropped_);

  w.u8(static_cast<std::uint8_t>(telemetry::hdr::kSubBits));
  w.u8(static_cast<std::uint8_t>(telemetry::hdr::kMaxExponent));
  w.u64(latencies_.size());
  for (const auto& l : latencies_) {
    w.u64(l.enclave_id);
    w.u8(static_cast<std::uint8_t>(l.type));
    w.u32(l.call_id);
    w.u64(l.count);
    w.u64(l.sum_ns);
    w.u32(static_cast<std::uint32_t>(l.buckets.size()));
    for (const auto& [idx, n] : l.buckets) {
      w.u32(idx);
      w.u64(n);
    }
  }

  // --- v5 additions ---------------------------------------------------------
  w.u64(window_period_);

  w.u64(windows_.size());
  for (const auto& win : windows_) {
    w.u32(win.window_index);
    w.u64(win.start_ns);
    w.u64(win.end_ns);
    w.u64(win.calls);
    w.u64(win.aexs);
    w.u64(win.page_ins);
    w.u64(win.page_outs);
    w.u64(win.stream_dropped);
    w.u64(win.switchless_calls);
    w.u64(win.switchless_fallbacks);
    w.u64(win.switchless_wasted_ns);
    w.u32(win.active_alerts);
  }

  w.u64(window_sites_.size());
  for (const auto& site : window_sites_) {
    w.u32(site.window_index);
    w.u64(site.enclave_id);
    w.u8(static_cast<std::uint8_t>(site.type));
    w.u32(site.call_id);
    w.u64(site.calls);
    w.u64(site.aex_count);
    w.u64(site.p50_ns);
    w.u64(site.p99_ns);
  }

  w.u64(alerts_.size());
  for (const auto& alert : alerts_) {
    w.u8(static_cast<std::uint8_t>(alert.kind));
    w.u64(alert.enclave_id);
    w.u8(static_cast<std::uint8_t>(alert.type));
    w.u32(alert.call_id);
    w.u64(alert.onset_ns);
    w.u64(alert.resolved_ns);
    w.u32(alert.window_index);
    w.u64(alert.detail);
  }

  // --- v6 additions ---------------------------------------------------------
  w.u64(order_rules_.size());
  for (const auto& rule : order_rules_) {
    w.u64(rule.enclave_id);
    w.u8(static_cast<std::uint8_t>(rule.rule));
    w.u32(rule.a);
    w.u32(rule.b);
  }
}

TraceDatabase TraceDatabase::load(const std::string& path) {
  Reader r(path);
  char magic[8];
  r.bytes(magic, sizeof(magic));
  const bool v6 = magic_is(magic, kMagicV6);
  const bool v5 = v6 || magic_is(magic, kMagicV5);
  const bool v4 = v5 || magic_is(magic, kMagicV4);
  const bool v3 = v4 || magic_is(magic, kMagicV3);
  if (!v3 && !magic_is(magic, kMagicV2)) {
    throw std::runtime_error("tracedb: bad magic in " + path);
  }

  TraceDatabase db;
  const std::uint64_t n_calls = r.u64();
  db.calls_.reserve(n_calls);
  for (std::uint64_t i = 0; i < n_calls; ++i) {
    CallRecord c;
    c.type = static_cast<CallType>(r.u8());
    c.kind = static_cast<OcallKind>(r.u8());
    c.thread_id = r.u32();
    c.enclave_id = r.u64();
    c.call_id = r.u32();
    c.parent = r.i64();
    c.start_ns = r.u64();
    c.end_ns = r.u64();
    c.aex_count = r.u32();
    db.calls_.push_back(c);
  }

  const std::uint64_t n_aex = r.u64();
  db.aexs_.reserve(n_aex);
  for (std::uint64_t i = 0; i < n_aex; ++i) {
    AexRecord a;
    a.thread_id = r.u32();
    a.enclave_id = r.u64();
    a.timestamp_ns = r.u64();
    a.during_call = r.i64();
    a.cause = static_cast<AexCause>(r.u8());
    db.aexs_.push_back(a);
  }

  const std::uint64_t n_pg = r.u64();
  db.paging_.reserve(n_pg);
  for (std::uint64_t i = 0; i < n_pg; ++i) {
    PagingRecord p;
    p.enclave_id = r.u64();
    p.page_number = r.u64();
    p.direction = static_cast<PageDirection>(r.u8());
    p.timestamp_ns = r.u64();
    db.paging_.push_back(p);
  }

  const std::uint64_t n_sync = r.u64();
  db.syncs_.reserve(n_sync);
  for (std::uint64_t i = 0; i < n_sync; ++i) {
    SyncRecord s;
    s.kind = static_cast<SyncKind>(r.u8());
    s.thread_id = r.u32();
    s.target_thread_id = r.u32();
    s.enclave_id = r.u64();
    s.timestamp_ns = r.u64();
    db.syncs_.push_back(s);
  }

  const std::uint64_t n_enc = r.u64();
  db.enclaves_.reserve(n_enc);
  for (std::uint64_t i = 0; i < n_enc; ++i) {
    EnclaveRecord e;
    e.enclave_id = r.u64();
    e.name = r.str();
    e.created_ns = r.u64();
    e.destroyed_ns = r.u64();
    e.tcs_count = r.u32();
    e.size_bytes = r.u64();
    db.enclaves_.push_back(e);
  }

  const std::uint64_t n_names = r.u64();
  db.call_names_.reserve(n_names);
  for (std::uint64_t i = 0; i < n_names; ++i) {
    CallNameRecord n;
    n.enclave_id = r.u64();
    n.type = static_cast<CallType>(r.u8());
    n.call_id = r.u32();
    n.name = r.str();
    db.call_names_.push_back(n);
  }

  if (v3) {
    db.dropped_events_ = r.u64();

    const std::uint64_t n_series = r.u64();
    db.metric_series_.reserve(n_series);
    for (std::uint64_t i = 0; i < n_series; ++i) {
      MetricSeriesRecord s;
      s.series_id = r.u32();
      s.kind = static_cast<MetricKind>(r.u8());
      s.name = r.str();
      s.unit = r.str();
      db.metric_series_.push_back(std::move(s));
    }

    const std::uint64_t n_samples = r.u64();
    db.metric_samples_.reserve(n_samples);
    for (std::uint64_t i = 0; i < n_samples; ++i) {
      MetricSampleRecord s;
      s.series_id = r.u32();
      s.timestamp_ns = r.u64();
      s.value = r.f64();
      db.metric_samples_.push_back(s);
    }
  }

  if (v4) {
    db.stream_dropped_ = r.u64();

    const std::uint8_t sub_bits = r.u8();
    const std::uint8_t max_exp = r.u8();
    if (sub_bits != telemetry::hdr::kSubBits || max_exp != telemetry::hdr::kMaxExponent) {
      throw std::runtime_error("tracedb: latency table bucket geometry mismatch in " + path);
    }
    const std::uint64_t n_lat = r.u64();
    db.latencies_.reserve(n_lat);
    for (std::uint64_t i = 0; i < n_lat; ++i) {
      LatencyRecord l;
      l.enclave_id = r.u64();
      l.type = static_cast<CallType>(r.u8());
      l.call_id = r.u32();
      l.count = r.u64();
      l.sum_ns = r.u64();
      const std::uint32_t n_buckets = r.u32();
      if (n_buckets > telemetry::hdr::kBucketCount) {
        throw std::runtime_error("tracedb: implausible latency bucket count in " + path);
      }
      l.buckets.reserve(n_buckets);
      for (std::uint32_t b = 0; b < n_buckets; ++b) {
        const std::uint32_t idx = r.u32();
        const std::uint64_t n = r.u64();
        l.buckets.emplace_back(idx, n);
      }
      db.latencies_.push_back(std::move(l));
    }
  }

  if (v5) {
    db.window_period_ = r.u64();

    const std::uint64_t n_windows = r.u64();
    if (n_windows > kMaxV5Rows) {
      throw std::runtime_error("tracedb: implausible window count in " + path);
    }
    db.windows_.reserve(n_windows);
    for (std::uint64_t i = 0; i < n_windows; ++i) {
      WindowRecord win;
      win.window_index = r.u32();
      win.start_ns = r.u64();
      win.end_ns = r.u64();
      win.calls = r.u64();
      win.aexs = r.u64();
      win.page_ins = r.u64();
      win.page_outs = r.u64();
      win.stream_dropped = r.u64();
      win.switchless_calls = r.u64();
      win.switchless_fallbacks = r.u64();
      win.switchless_wasted_ns = r.u64();
      win.active_alerts = r.u32();
      if (win.end_ns < win.start_ns) {
        throw std::runtime_error("tracedb: malformed window interval in " + path);
      }
      db.windows_.push_back(win);
    }

    const std::uint64_t n_sites = r.u64();
    if (n_sites > kMaxV5Rows) {
      throw std::runtime_error("tracedb: implausible window-site count in " + path);
    }
    db.window_sites_.reserve(n_sites);
    for (std::uint64_t i = 0; i < n_sites; ++i) {
      WindowSiteRecord site;
      site.window_index = r.u32();
      site.enclave_id = r.u64();
      site.type = static_cast<CallType>(r.u8());
      site.call_id = r.u32();
      site.calls = r.u64();
      site.aex_count = r.u64();
      site.p50_ns = r.u64();
      site.p99_ns = r.u64();
      if (site.window_index >= db.windows_.size()) {
        throw std::runtime_error("tracedb: window-site references unknown window in " + path);
      }
      db.window_sites_.push_back(site);
    }

    const std::uint64_t n_alerts = r.u64();
    if (n_alerts > kMaxV5Rows) {
      throw std::runtime_error("tracedb: implausible alert count in " + path);
    }
    db.alerts_.reserve(n_alerts);
    // Orderliness alert kinds only exist from v6 on — a pre-v6 file carrying
    // one is corrupt, not forward-compatible.
    const std::uint8_t max_alert_kind = v6 ? kAlertKindCount : kAlertKindCountV5;
    for (std::uint64_t i = 0; i < n_alerts; ++i) {
      AlertRecord alert;
      const std::uint8_t kind = r.u8();
      if (kind >= max_alert_kind) {
        throw std::runtime_error("tracedb: unknown alert kind in " + path);
      }
      alert.kind = static_cast<AlertKind>(kind);
      alert.enclave_id = r.u64();
      alert.type = static_cast<CallType>(r.u8());
      alert.call_id = r.u32();
      alert.onset_ns = r.u64();
      alert.resolved_ns = r.u64();
      alert.window_index = r.u32();
      alert.detail = r.u64();
      if (alert.resolved_ns != 0 && alert.resolved_ns < alert.onset_ns) {
        throw std::runtime_error("tracedb: alert resolved before onset in " + path);
      }
      db.alerts_.push_back(alert);
    }
  }

  if (v6) {
    const std::uint64_t n_rules = r.u64();
    if (n_rules > kMaxV5Rows) {
      throw std::runtime_error("tracedb: implausible order-rule count in " + path);
    }
    db.order_rules_.reserve(n_rules);
    for (std::uint64_t i = 0; i < n_rules; ++i) {
      OrderRuleRecord rule;
      rule.enclave_id = r.u64();
      const std::uint8_t kind = r.u8();
      if (kind >= kOrderRuleKindCount) {
        throw std::runtime_error("tracedb: unknown order-rule kind in " + path);
      }
      rule.rule = static_cast<OrderRuleRecord::Rule>(kind);
      rule.a = r.u32();
      rule.b = r.u32();
      db.order_rules_.push_back(rule);
    }
  }

  return db;
}

void TraceDatabase::export_csv(const std::string& directory) const {
  std::lock_guard lock(mu_);
  namespace fs = std::filesystem;
  fs::create_directories(directory);

  auto open = [&](const char* name) {
    const std::string path = directory + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("tracedb: cannot write " + path);
    return FilePtr(f);
  };

  {
    FilePtr f = open("calls.csv");
    std::fprintf(f.get(),
                 "index,type,kind,thread_id,enclave_id,call_id,parent,start_ns,end_ns,"
                 "duration_ns,aex_count\n");
    for (std::size_t i = 0; i < calls_.size(); ++i) {
      const auto& c = calls_[i];
      std::fprintf(f.get(), "%zu,%u,%u,%u,%llu,%u,%lld,%llu,%llu,%llu,%u\n", i,
                   static_cast<unsigned>(c.type), static_cast<unsigned>(c.kind), c.thread_id,
                   static_cast<unsigned long long>(c.enclave_id), c.call_id,
                   static_cast<long long>(c.parent),
                   static_cast<unsigned long long>(c.start_ns),
                   static_cast<unsigned long long>(c.end_ns),
                   static_cast<unsigned long long>(c.duration()), c.aex_count);
    }
  }
  {
    FilePtr f = open("aexs.csv");
    std::fprintf(f.get(), "thread_id,enclave_id,timestamp_ns,during_call,cause\n");
    for (const auto& a : aexs_) {
      const char* cause = a.cause == AexCause::kInterrupt
                              ? "interrupt"
                              : (a.cause == AexCause::kPageFault ? "page_fault" : "unknown");
      std::fprintf(f.get(), "%u,%llu,%llu,%lld,%s\n", a.thread_id,
                   static_cast<unsigned long long>(a.enclave_id),
                   static_cast<unsigned long long>(a.timestamp_ns),
                   static_cast<long long>(a.during_call), cause);
    }
  }
  {
    FilePtr f = open("paging.csv");
    std::fprintf(f.get(), "enclave_id,page_number,direction,timestamp_ns\n");
    for (const auto& p : paging_) {
      std::fprintf(f.get(), "%llu,%llu,%s,%llu\n",
                   static_cast<unsigned long long>(p.enclave_id),
                   static_cast<unsigned long long>(p.page_number),
                   p.direction == PageDirection::kPageIn ? "in" : "out",
                   static_cast<unsigned long long>(p.timestamp_ns));
    }
  }
  {
    FilePtr f = open("syncs.csv");
    std::fprintf(f.get(), "kind,thread_id,target_thread_id,enclave_id,timestamp_ns\n");
    for (const auto& s : syncs_) {
      std::fprintf(f.get(), "%s,%u,%u,%llu,%llu\n",
                   s.kind == SyncKind::kSleep ? "sleep" : "wakeup", s.thread_id,
                   s.target_thread_id, static_cast<unsigned long long>(s.enclave_id),
                   static_cast<unsigned long long>(s.timestamp_ns));
    }
  }
  {
    FilePtr f = open("enclaves.csv");
    std::fprintf(f.get(), "enclave_id,name,created_ns,destroyed_ns,tcs_count,size_bytes\n");
    for (const auto& e : enclaves_) {
      std::fprintf(f.get(), "%llu,%s,%llu,%llu,%u,%llu\n",
                   static_cast<unsigned long long>(e.enclave_id), e.name.c_str(),
                   static_cast<unsigned long long>(e.created_ns),
                   static_cast<unsigned long long>(e.destroyed_ns), e.tcs_count,
                   static_cast<unsigned long long>(e.size_bytes));
    }
  }
  {
    FilePtr f = open("call_names.csv");
    std::fprintf(f.get(), "enclave_id,type,call_id,name\n");
    for (const auto& n : call_names_) {
      std::fprintf(f.get(), "%llu,%s,%u,%s\n", static_cast<unsigned long long>(n.enclave_id),
                   n.type == CallType::kEcall ? "ecall" : "ocall", n.call_id, n.name.c_str());
    }
  }
  {
    FilePtr f = open("metric_series.csv");
    std::fprintf(f.get(), "series_id,kind,name,unit\n");
    for (const auto& s : metric_series_) {
      std::fprintf(f.get(), "%u,%s,%s,%s\n", s.series_id,
                   s.kind == MetricKind::kCounter ? "counter" : "gauge", s.name.c_str(),
                   s.unit.c_str());
    }
  }
  {
    FilePtr f = open("metric_samples.csv");
    std::fprintf(f.get(), "series_id,timestamp_ns,value\n");
    for (const auto& s : metric_samples_) {
      std::fprintf(f.get(), "%u,%llu,%.17g\n", s.series_id,
                   static_cast<unsigned long long>(s.timestamp_ns), s.value);
    }
  }
  {
    FilePtr f = open("latency.csv");
    std::fprintf(f.get(), "enclave_id,type,call_id,count,sum_ns,p50_ns,p90_ns,p99_ns,p999_ns\n");
    for (const auto& l : latencies_) {
      telemetry::HdrSnapshot snap;
      for (const auto& [idx, n] : l.buckets) snap.add_bucket(idx, n);
      snap.set_exact_sum(l.sum_ns);
      std::fprintf(f.get(), "%llu,%s,%u,%llu,%llu,%llu,%llu,%llu,%llu\n",
                   static_cast<unsigned long long>(l.enclave_id),
                   l.type == CallType::kEcall ? "ecall" : "ocall", l.call_id,
                   static_cast<unsigned long long>(l.count),
                   static_cast<unsigned long long>(l.sum_ns),
                   static_cast<unsigned long long>(snap.value_at_percentile(50)),
                   static_cast<unsigned long long>(snap.value_at_percentile(90)),
                   static_cast<unsigned long long>(snap.value_at_percentile(99)),
                   static_cast<unsigned long long>(snap.value_at_percentile(99.9)));
    }
  }
  {
    FilePtr f = open("windows.csv");
    std::fprintf(f.get(),
                 "window_index,start_ns,end_ns,calls,aexs,page_ins,page_outs,stream_dropped,"
                 "switchless_calls,switchless_fallbacks,switchless_wasted_ns,active_alerts\n");
    for (const auto& w : windows_) {
      std::fprintf(f.get(), "%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%u\n",
                   w.window_index, static_cast<unsigned long long>(w.start_ns),
                   static_cast<unsigned long long>(w.end_ns),
                   static_cast<unsigned long long>(w.calls),
                   static_cast<unsigned long long>(w.aexs),
                   static_cast<unsigned long long>(w.page_ins),
                   static_cast<unsigned long long>(w.page_outs),
                   static_cast<unsigned long long>(w.stream_dropped),
                   static_cast<unsigned long long>(w.switchless_calls),
                   static_cast<unsigned long long>(w.switchless_fallbacks),
                   static_cast<unsigned long long>(w.switchless_wasted_ns), w.active_alerts);
    }
  }
  {
    FilePtr f = open("window_sites.csv");
    std::fprintf(f.get(),
                 "window_index,enclave_id,type,call_id,calls,aex_count,p50_ns,p99_ns\n");
    for (const auto& s : window_sites_) {
      std::fprintf(f.get(), "%u,%llu,%s,%u,%llu,%llu,%llu,%llu\n", s.window_index,
                   static_cast<unsigned long long>(s.enclave_id),
                   s.type == CallType::kEcall ? "ecall" : "ocall", s.call_id,
                   static_cast<unsigned long long>(s.calls),
                   static_cast<unsigned long long>(s.aex_count),
                   static_cast<unsigned long long>(s.p50_ns),
                   static_cast<unsigned long long>(s.p99_ns));
    }
  }
  {
    FilePtr f = open("alerts.csv");
    std::fprintf(f.get(),
                 "kind,enclave_id,type,call_id,onset_ns,resolved_ns,window_index,detail\n");
    for (const auto& a : alerts_) {
      std::fprintf(f.get(), "%u,%llu,%s,%u,%llu,%llu,%u,%llu\n",
                   static_cast<unsigned>(a.kind), static_cast<unsigned long long>(a.enclave_id),
                   a.type == CallType::kEcall ? "ecall" : "ocall", a.call_id,
                   static_cast<unsigned long long>(a.onset_ns),
                   static_cast<unsigned long long>(a.resolved_ns), a.window_index,
                   static_cast<unsigned long long>(a.detail));
    }
  }
  {
    FilePtr f = open("order_rules.csv");
    std::fprintf(f.get(), "enclave_id,rule,a,b\n");
    for (const auto& rule : order_rules_) {
      static constexpr const char* kRuleNames[] = {"init", "entry", "known", "edge",
                                                   "reentrant_ok"};
      std::fprintf(f.get(), "%llu,%s,%u,%u\n",
                   static_cast<unsigned long long>(rule.enclave_id),
                   kRuleNames[static_cast<std::size_t>(rule.rule)], rule.a, rule.b);
    }
  }
}

}  // namespace tracedb
