// Event-conservation ledger: the self-observability spine of the pipeline.
//
// Every stage an event crosses on its way from the logger to a dashboard —
// shard → merge → subscriber ring → MonitorSession → fleet wire → Aggregator
// → checkpoint/store — can drop work, and before this layer those losses
// lived in five unrelated counters with no cross-check.  The ledger gives
// each stage a row of produced / delivered / dropped{reason} counters and an
// audit() that verifies the conservation invariant
//
//     produced == delivered + Σ drops        (per stage)
//
// reporting the first stage that leaks.  A stage may also record
// `indeterminate` incidents — losses whose *size* cannot be known (a fleet
// producer that died mid-stream, a quarantined byte stream) — which fail the
// audit outright: unattributable loss is exactly what the ledger exists to
// reject.
//
// Stage rows are built three ways: live (Logger / StreamSubscription /
// MonitorSession / fleet::FrameSink / fleet::Aggregator expose fill_ledger or
// raw counters), from persisted artifacts (ledger_from_database,
// ledger_from_store), and over the wire (ledger_from_json round-trips the
// serve daemon's `status` query so `sgxperf doctor` can audit a remote
// daemon client-side).  See DESIGN.md §13.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace tracedb {
class TraceDatabase;
}

namespace telemetry {

/// One attributed drop bucket within a stage.
struct LedgerDrop {
  std::string reason;
  std::uint64_t count = 0;
};

/// One pipeline stage's conservation row.
struct LedgerStage {
  std::string name;
  std::string unit = "events";  // what this stage counts: "events" or "frames"
  std::uint64_t produced = 0;
  std::uint64_t delivered = 0;
  std::vector<LedgerDrop> drops;
  /// Incidents of unquantifiable loss (producer death mid-stream, poisoned
  /// parse).  Any non-zero value fails the audit: the whole point is that
  /// loss must be *attributed*, and these by construction cannot be.
  std::uint64_t indeterminate = 0;

  /// Adds `count` to the bucket for `reason`, creating it if absent.  Zero
  /// counts are recorded too so emitted schemas stay shape-stable.
  void add_drop(std::string_view reason, std::uint64_t count);

  [[nodiscard]] std::uint64_t dropped_total() const noexcept;
  /// produced - delivered - Σdrops; non-zero means this stage leaks.
  [[nodiscard]] std::int64_t leak() const noexcept;
};

/// Result of auditing a ledger stage-by-stage.
struct LedgerAudit {
  bool ok = true;
  std::string first_leak_stage;  // empty when ok
  std::int64_t first_leak = 0;   // signed leak at that stage (0 if indeterminate)
  std::uint64_t first_indeterminate = 0;
  std::uint64_t stages_failed = 0;
  std::uint64_t total_dropped = 0;  // attributed drops across all stages
};

/// Ordered collection of stages.  Stage order is insertion order and is
/// pipeline order by convention; emitters preserve it so JSON output is
/// deterministic and golden-testable.
class Ledger {
 public:
  /// Returns the stage named `name`, creating it (with `unit`) on first use.
  LedgerStage& stage(std::string_view name, std::string_view unit = "events");

  [[nodiscard]] const std::vector<LedgerStage>& stages() const noexcept { return stages_; }
  [[nodiscard]] const LedgerStage* find(std::string_view name) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return stages_.empty(); }

  /// Walks stages in order; fails on the first stage with leak() != 0 or
  /// indeterminate > 0.  Counts every failing stage and all attributed drops.
  [[nodiscard]] LedgerAudit audit() const;

  /// Writes `{"stages":[...],"conservation_ok":...,"first_leak_stage":...,
  /// "total_dropped":...}` as an object value (caller supplies surrounding
  /// document and schema_version).  Byte-deterministic.
  void write_json(support::json::Writer& w) const;

  /// Human-readable per-stage loss table (fixed-width columns, one trailing
  /// newline).  Deterministic.
  [[nodiscard]] std::string render_table() const;

 private:
  std::vector<LedgerStage> stages_;
};

/// Reconstructs record/stream stages from a flat trace's persisted loss
/// counters (dropped_events, stream_dropped).  Rows derived this way are
/// conserved by construction — the value is the attributed-loss table and
/// threshold gating, not leak detection; genuine cross-checks come from the
/// live, store and fleet builders.
[[nodiscard]] Ledger ledger_from_database(const tracedb::TraceDatabase& db);

/// Audits a .store directory: record/stream stages from the summary
/// sections' counters plus a genuine "store" stage checking the index
/// events-section totals against the chunk-directory row sums (and the
/// chunk count itself).  Throws on structural defects (bad CRC, missing
/// sections) like StoreReader does.
[[nodiscard]] Ledger ledger_from_store(const std::string& dir);

/// Inverse of write_json: rebuilds a ledger from the object it emitted (or
/// any object embedding a compatible "stages" array).  Throws
/// std::runtime_error on shape violations.
[[nodiscard]] Ledger ledger_from_json(const support::json::Value& v);

}  // namespace telemetry
