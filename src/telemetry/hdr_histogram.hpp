// HDR-style log-bucketed latency histograms.
//
// The analyser originally reported mean/stddev per call site, which hides
// exactly the tail behaviour the SISC/SDSC anti-patterns produce (a handful
// of 100x-slower transitions disappear into the average).  This header adds
// the per-primitive latency *distributions* the SGX benchmarking literature
// reports instead: a histogram whose buckets grow geometrically, giving a
// bounded relative error (~3% at 5 sub-bucket bits) over the full u64 range
// with a fixed, small memory footprint — the same trick as HdrHistogram.
//
// Two layers:
//
//   HdrSnapshot  — a plain, single-owner bucket array.  Used by readers
//                  (analyser, `sgxperf top`) and as the merge/persistence
//                  currency (the v4 trace format stores it sparsely).
//   HdrHistogram — the concurrent recorder: per-stripe cache-line-aligned
//                  atomic rows, exactly like telemetry::Histogram in
//                  metrics.hpp.  record() is lock-free and wait-free.
//
// Bucket math (standard HDR layout, kSubBits = B, kSubCount = S = 2^B):
//   v < S              -> bucket v                      (exact, width 1)
//   v in [2^h, 2^h+1)  -> group g = h-B+1, sub-bucket (v >> (h-B)) - S,
//                         bucket g*S + sub              (width 2^(h-B))
// Values at or above 2^(kMaxExponent+1) clamp into the last bucket.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

namespace telemetry {
namespace hdr {

/// Sub-bucket resolution: 2^5 = 32 linear buckets per power of two, i.e. a
/// worst-case relative error of 1/32 (~3%) on any reported percentile.
inline constexpr std::uint32_t kSubBits = 5;
inline constexpr std::uint64_t kSubCount = 1ull << kSubBits;

/// Largest tracked exponent: values up to 2^40 ns (~18 virtual minutes)
/// resolve normally; anything larger clamps into the final bucket.
inline constexpr std::uint32_t kMaxExponent = 39;

/// Total bucket count: one linear group plus one group per exponent above
/// the sub-bucket range.
inline constexpr std::size_t kBucketCount =
    static_cast<std::size_t>(kMaxExponent - kSubBits + 2) * kSubCount;

/// Bucket index of `v` (clamped to the last bucket for out-of-range values).
[[nodiscard]] constexpr std::size_t index_of(std::uint64_t v) noexcept {
  if (v < kSubCount) return static_cast<std::size_t>(v);
  std::uint32_t h = static_cast<std::uint32_t>(std::bit_width(v)) - 1;
  if (h > kMaxExponent) return kBucketCount - 1;
  const std::uint32_t g = h - kSubBits + 1;
  const std::uint64_t sub = (v >> (h - kSubBits)) - kSubCount;
  return static_cast<std::size_t>(g) * kSubCount + static_cast<std::size_t>(sub);
}

/// Smallest value that maps to bucket `idx`.
[[nodiscard]] constexpr std::uint64_t lower_bound(std::size_t idx) noexcept {
  if (idx < kSubCount) return idx;
  const std::uint64_t g = idx / kSubCount;
  const std::uint64_t sub = idx % kSubCount;
  return (kSubCount + sub) << (g - 1);
}

/// Largest value that maps to bucket `idx` (percentiles report this, so a
/// reported quantile is always an upper bound on the true one).
[[nodiscard]] constexpr std::uint64_t upper_bound(std::size_t idx) noexcept {
  if (idx < kSubCount) return idx;
  const std::uint64_t g = idx / kSubCount;
  return lower_bound(idx) + (1ull << (g - 1)) - 1;
}

}  // namespace hdr

/// A plain (single-owner) HDR bucket array with the derived statistics the
/// report writers need.  Cheap to merge; trivially serialisable (the trace
/// format stores only the non-zero buckets).
class HdrSnapshot {
 public:
  HdrSnapshot() : counts_(hdr::kBucketCount, 0) {}

  void record(std::uint64_t v, std::uint64_t n = 1) noexcept {
    counts_[hdr::index_of(v)] += n;
    count_ += n;
    sum_ += v * n;
  }

  /// Adds a raw bucket (persistence load path).  `idx` out of range clamps.
  void add_bucket(std::size_t idx, std::uint64_t n) noexcept {
    if (idx >= hdr::kBucketCount) idx = hdr::kBucketCount - 1;
    counts_[idx] += n;
    count_ += n;
    sum_ += hdr::upper_bound(idx) * n;
  }

  void merge(const HdrSnapshot& other) noexcept {
    for (std::size_t i = 0; i < hdr::kBucketCount; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
  }

  /// Value at percentile `q` in [0, 100]: the upper bound of the bucket
  /// containing the q-th rank.  0 on an empty snapshot.
  [[nodiscard]] std::uint64_t value_at_percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    auto rank = static_cast<std::uint64_t>(q / 100.0 * static_cast<double>(count_) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < hdr::kBucketCount; ++i) {
      seen += counts_[i];
      if (seen >= rank) return hdr::upper_bound(i);
    }
    return hdr::upper_bound(hdr::kBucketCount - 1);
  }

  /// Number of recorded values that fall in buckets entirely below `v` —
  /// a lower bound on the exact count, tight to one bucket's width.
  [[nodiscard]] std::uint64_t count_below(std::uint64_t v) const noexcept {
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < hdr::kBucketCount && hdr::upper_bound(i) < v; ++i) {
      below += counts_[i];
    }
    return below;
  }

  /// Upper bound of the highest non-empty bucket (~the observed maximum).
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    for (std::size_t i = hdr::kBucketCount; i-- > 0;) {
      if (counts_[i] > 0) return hdr::upper_bound(i);
    }
    return 0;
  }

  /// Replaces the bound-derived sum with an exactly-recorded one (used by
  /// HdrHistogram::snapshot() and the trace loader, which both carry it).
  void set_exact_sum(std::uint64_t sum) noexcept { sum_ = sum; }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Concurrent HDR recorder.  record() is lock-free: each of kHdrStripes
/// stripes owns a private row of bucket counters plus a sum cell, padded to
/// whole cache lines, and a thread only ever touches its own stripe (same
/// registration scheme as metrics.hpp).  snapshot() sums the stripes into a
/// racy-by-design point-in-time HdrSnapshot — what a live monitor wants.
class HdrHistogram {
 public:
  /// Stripes trade memory for contention; 8 rows * kBucketCount * 8 B ≈
  /// 74 KiB per instrument, small enough for one histogram per call site.
  static constexpr std::size_t kHdrStripes = 8;

  HdrHistogram() {
    cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(kRow * kHdrStripes);
    for (std::size_t i = 0; i < kRow * kHdrStripes; ++i) cells_[i] = 0;
  }

  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  void record(std::uint64_t v) noexcept {
    auto* row = &cells_[stripe() * kRow];
    row[hdr::index_of(v)].fetch_add(1, std::memory_order_relaxed);
    row[hdr::kBucketCount].fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] HdrSnapshot snapshot() const {
    HdrSnapshot snap;
    for (std::size_t s = 0; s < kHdrStripes; ++s) {
      const auto* row = &cells_[s * kRow];
      for (std::size_t i = 0; i < hdr::kBucketCount; ++i) {
        const std::uint64_t n = row[i].load(std::memory_order_relaxed);
        if (n > 0) snap.add_bucket(i, n);
      }
    }
    // add_bucket approximates the sum from bucket bounds; replace it with
    // the exact recorded sum the stripes carry.
    snap.set_exact_sum(exact_sum());
    return snap;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kHdrStripes; ++s) {
      const auto* row = &cells_[s * kRow];
      for (std::size_t i = 0; i < hdr::kBucketCount; ++i) {
        total += row[i].load(std::memory_order_relaxed);
      }
    }
    return total;
  }

  void reset() noexcept {
    for (std::size_t i = 0; i < kRow * kHdrStripes; ++i) {
      cells_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// Row layout per stripe: [bucket counts...][sum], padded to 64 bytes.
  static constexpr std::size_t kRow = (hdr::kBucketCount + 1 + 7) / 8 * 8;

  [[nodiscard]] std::uint64_t exact_sum() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kHdrStripes; ++s) {
      total += cells_[s * kRow + hdr::kBucketCount].load(std::memory_order_relaxed);
    }
    return total;
  }

  static std::size_t stripe() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t s =
        next.fetch_add(1, std::memory_order_relaxed) % kHdrStripes;
    return s;
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

}  // namespace telemetry
