// Chrome trace-event / Perfetto JSON export of a trace database.
//
// The original sgx-perf ships its own Qt-based visualiser; here the export
// path targets the ubiquitous trace-event format instead, so any recorded
// trace opens directly in chrome://tracing or ui.perfetto.dev:
//
//   * ecalls/ocalls  ->  "X" complete events, one track per thread
//   * AEXs           ->  "i" instant events (thread scope)
//   * paging events  ->  "i" instant events (process scope)
//   * metric samples ->  "C" counter events, one track per series
//
// Timestamps are virtual nanoseconds converted to the format's microsecond
// unit as exact microsecond doubles.  The output is deterministic: identical
// databases produce identical bytes (golden-file tested).
#pragma once

#include <string>

#include "tracedb/database.hpp"

namespace telemetry {

/// Renders `db` as a JSON object in the Chrome trace-event format.
[[nodiscard]] std::string export_chrome_trace(const tracedb::TraceDatabase& db);

/// Renders the `sgxperf metrics` summary: one line per metric series with
/// its final sampled value, plus sample/series counts.  Text mode.
[[nodiscard]] std::string render_metrics_summary(const tracedb::TraceDatabase& db);

}  // namespace telemetry
