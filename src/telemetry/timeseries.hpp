// Windowed time-series primitives for online (in-flight) analysis.
//
// The post-mortem analyser sees one cumulative distribution per call site;
// a live monitor needs the *per-window* view — "what did latency look like
// in the last interval" — plus a baseline to decide when a site's regime
// has moved.  This header provides the three building blocks:
//
//   hdr_delta()  — bucket-wise difference of two HDR snapshots, turning two
//                  cumulative checkpoints into the distribution of exactly
//                  the values recorded between them.
//   WindowedHdr  — a cumulative HdrSnapshot plus a checkpoint cursor, so a
//                  consumer can cut fixed-interval windows without keeping
//                  a second histogram in the hot path.
//   EwmaCusum    — EWMA baseline + two-sided CUSUM change detection over
//                  per-window aggregates (the classic quickest-detection
//                  scheme: robust to noise, O(1) per observation).
#pragma once

#include <cstddef>
#include <cstdint>

#include "telemetry/hdr_histogram.hpp"

namespace telemetry {

/// Bucket-wise `cumulative − baseline`.  `baseline` must be an earlier
/// checkpoint of the same recorder (every bucket monotonically grew);
/// short-falls clamp to zero rather than wrap.  The delta's sum is the
/// exact difference of the recorded sums.
[[nodiscard]] HdrSnapshot hdr_delta(const HdrSnapshot& cumulative, const HdrSnapshot& baseline);

/// Cumulative HDR recorder with a window cursor.  record() accumulates
/// forever; window_delta() is the distribution since the last checkpoint();
/// checkpoint() closes the window.
class WindowedHdr {
 public:
  void record(std::uint64_t v) noexcept { cumulative_.record(v); }

  [[nodiscard]] const HdrSnapshot& cumulative() const noexcept { return cumulative_; }
  [[nodiscard]] HdrSnapshot window_delta() const { return hdr_delta(cumulative_, baseline_); }
  [[nodiscard]] std::uint64_t window_count() const noexcept {
    return cumulative_.count() - baseline_.count();
  }

  /// Closes the current window: subsequent deltas are relative to now.
  void checkpoint() { baseline_ = cumulative_; }

 private:
  HdrSnapshot cumulative_;
  HdrSnapshot baseline_;
};

/// EWMA baseline plus two-sided CUSUM over per-window aggregates.
///
/// Each observation x updates g⁺ = max(0, g⁺ + (x−μ)/σ − k) (and the mirror
/// g⁻); a change-point fires when either side exceeds h, after which the
/// baseline re-anchors to x and both accumulators reset — the detector
/// adapts to the new regime instead of alarming forever.  μ is an EWMA of
/// the observations, σ an EWMA of |x−μ| (floored so a perfectly flat
/// baseline still tolerates quantization noise).
class EwmaCusum {
 public:
  struct Config {
    double alpha = 0.3;      // EWMA smoothing factor for μ and σ
    double drift = 0.5;      // k: slack per observation, in σ units
    double threshold = 4.0;  // h: alarm level, in σ units
    double min_sigma_frac = 0.05;  // σ floor as a fraction of μ
    std::size_t warmup = 3;  // observations before alarms may fire
  };

  EwmaCusum();  // defaults (defined below: NSDMIs of a nested class are
                // unusable as default arguments inside the enclosing class)
  explicit EwmaCusum(Config cfg) : cfg_(cfg) {}

  /// Feeds one window aggregate.  Returns true when a change-point fired on
  /// this observation (the alarm is edge-triggered, not a level).
  bool observe(double x);

  [[nodiscard]] double baseline() const noexcept { return mean_; }
  /// Larger of the two CUSUM accumulators — "how far out of regime".
  [[nodiscard]] double deviation() const noexcept { return g_up_ > g_dn_ ? g_up_ : g_dn_; }
  [[nodiscard]] std::size_t observations() const noexcept { return n_; }

 private:
  Config cfg_;
  double mean_ = 0.0;
  double sigma_ = 0.0;
  double g_up_ = 0.0;
  double g_dn_ = 0.0;
  std::size_t n_ = 0;
};

inline EwmaCusum::EwmaCusum() : EwmaCusum(Config()) {}

}  // namespace telemetry
