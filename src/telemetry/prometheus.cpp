#include "telemetry/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "telemetry/ledger.hpp"
#include "tracedb/database.hpp"

namespace telemetry {
namespace {

bool prom_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

/// Deterministic sample-value formatting: integers exactly, everything else
/// with 12 significant digits (matching support::json::Writer).
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

}  // namespace

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (prom_char(c, out.empty())) {
      out.push_back(c);
    } else if (!out.empty() && c >= '0' && c <= '9') {
      out.push_back(c);
    } else if (out.empty() && c >= '0' && c <= '9') {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

void append_ledger_rows(const Ledger& ledger, std::vector<MetricSnapshotRow>& rows) {
  for (const auto& s : ledger.stages()) {
    const std::string base = "ledger." + s.name;
    rows.push_back({base + ".produced", s.unit, MetricKind::kCounter,
                    static_cast<double>(s.produced)});
    rows.push_back({base + ".delivered", s.unit, MetricKind::kCounter,
                    static_cast<double>(s.delivered)});
    rows.push_back({base + ".dropped", s.unit, MetricKind::kCounter,
                    static_cast<double>(s.dropped_total())});
    for (const auto& d : s.drops) {
      rows.push_back({base + ".dropped." + d.reason, s.unit, MetricKind::kCounter,
                      static_cast<double>(d.count)});
    }
    rows.push_back({base + ".indeterminate", s.unit, MetricKind::kCounter,
                    static_cast<double>(s.indeterminate)});
  }
  rows.push_back({"ledger.conservation_ok", "", MetricKind::kGauge,
                  ledger.audit().ok ? 1.0 : 0.0});
}

std::string render_prometheus(const std::vector<MetricSnapshotRow>& rows,
                              std::string_view prefix) {
  std::string out;
  for (const auto& r : rows) {
    const std::string name = std::string(prefix) + prom_name(r.name);
    out += "# TYPE ";
    out += name;
    out += r.kind == MetricKind::kGauge ? " gauge\n" : " counter\n";
    out += name;
    out += ' ';
    out += format_value(r.value);
    out += '\n';
  }
  return out;
}

std::string render_prometheus(const tracedb::TraceDatabase& db) {
  std::vector<MetricSnapshotRow> rows;
  const auto counter = [&rows](std::string name, double v) {
    rows.push_back({std::move(name), "", MetricKind::kCounter, v});
  };
  counter("trace.calls", static_cast<double>(db.calls().size()));
  counter("trace.aexs", static_cast<double>(db.aexs().size()));
  counter("trace.paging", static_cast<double>(db.paging().size()));
  counter("trace.syncs", static_cast<double>(db.syncs().size()));
  counter("trace.enclaves", static_cast<double>(db.enclaves().size()));
  counter("trace.windows", static_cast<double>(db.windows().size()));
  counter("trace.alerts", static_cast<double>(db.alerts().size()));
  counter("trace.dropped_events", static_cast<double>(db.dropped_events()));
  counter("trace.stream_dropped", static_cast<double>(db.stream_dropped()));

  // Last sample per persisted metric series, in series-table order.
  std::unordered_map<std::uint64_t, double> last;
  for (const auto& sample : db.metric_samples()) {
    last[sample.series_id] = sample.value;
  }
  for (const auto& series : db.metric_series()) {
    const auto it = last.find(series.series_id);
    if (it == last.end()) continue;
    rows.push_back({series.name, series.unit,
                    series.kind == tracedb::MetricKind::kGauge ? MetricKind::kGauge
                                                               : MetricKind::kCounter,
                    it->second});
  }

  append_ledger_rows(ledger_from_database(db), rows);
  return render_prometheus(rows);
}

}  // namespace telemetry
