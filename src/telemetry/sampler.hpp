// TelemetrySampler: snapshots the metrics registry on a virtual-time cadence
// into the trace database's MetricSample table (format v3), so resource
// timeseries (EPC residency, events recorded, transitions, ...) ride along
// in the same file the analyser and the Chrome exporter read.
//
// The sampler is *polled*, not threaded: instrumented hot paths (the logger's
// ecall shadow, the ocall stubs) call poll() as they pass.  poll() is two
// relaxed atomic loads on the fast path; when the virtual deadline has
// passed, one caller claims the sample with a CAS and writes the snapshot
// under the database mutex.  This matches the simulation's virtual time
// model — there is no wall-clock thread that could observe virtual time
// advancing — and bounds the overhead to the sampling cadence.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "support/clock.hpp"
#include "telemetry/metrics.hpp"
#include "tracedb/database.hpp"

namespace telemetry {

class TelemetrySampler {
 public:
  /// Samples `registry` into `db` every `period_ns` of virtual time read
  /// from `clock`.  A period of 0 disables the sampler (poll() becomes a
  /// single load).  All referenced objects must outlive the sampler.
  TelemetrySampler(tracedb::TraceDatabase& db, const support::VirtualClock& clock,
                   MetricsRegistry& registry, support::Nanoseconds period_ns);

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Hot-path hook: takes a sample iff the virtual deadline has passed.
  /// Thread-safe; exactly one of the racing callers wins the CAS and writes.
  void poll();

  /// Takes a sample unconditionally (logger detach writes a final sample so
  /// the trace always ends with a complete snapshot).
  void sample_now();

  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_taken_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] support::Nanoseconds period_ns() const noexcept { return period_ns_; }

 private:
  void write_sample(support::Nanoseconds now);

  tracedb::TraceDatabase& db_;
  const support::VirtualClock& clock_;
  MetricsRegistry& registry_;
  support::Nanoseconds period_ns_;

  std::atomic<support::Nanoseconds> next_deadline_ns_;
  std::atomic<std::uint64_t> samples_taken_{0};

  /// Serialises writers so two concurrent sample_now() calls cannot
  /// interleave their per-series appends.
  std::mutex write_mu_;
};

}  // namespace telemetry
