#include "telemetry/ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "tracedb/database.hpp"
#include "tracedb/store/store.hpp"

namespace telemetry {

void LedgerStage::add_drop(std::string_view reason, std::uint64_t count) {
  for (auto& d : drops) {
    if (d.reason == reason) {
      d.count += count;
      return;
    }
  }
  drops.push_back({std::string(reason), count});
}

std::uint64_t LedgerStage::dropped_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : drops) total += d.count;
  return total;
}

std::int64_t LedgerStage::leak() const noexcept {
  return static_cast<std::int64_t>(produced) - static_cast<std::int64_t>(delivered) -
         static_cast<std::int64_t>(dropped_total());
}

LedgerStage& Ledger::stage(std::string_view name, std::string_view unit) {
  for (auto& s : stages_) {
    if (s.name == name) return s;
  }
  LedgerStage s;
  s.name = std::string(name);
  s.unit = std::string(unit);
  stages_.push_back(std::move(s));
  return stages_.back();
}

const LedgerStage* Ledger::find(std::string_view name) const noexcept {
  for (const auto& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

LedgerAudit Ledger::audit() const {
  LedgerAudit out;
  for (const auto& s : stages_) {
    out.total_dropped += s.dropped_total();
    const std::int64_t leak = s.leak();
    if (leak == 0 && s.indeterminate == 0) continue;
    out.stages_failed += 1;
    if (out.ok) {
      out.ok = false;
      out.first_leak_stage = s.name;
      out.first_leak = leak;
      out.first_indeterminate = s.indeterminate;
    }
  }
  return out;
}

void Ledger::write_json(support::json::Writer& w) const {
  const LedgerAudit a = audit();
  w.begin_object();
  w.key("stages").begin_array();
  for (const auto& s : stages_) {
    w.begin_object();
    w.kv("stage", s.name);
    w.kv("unit", s.unit);
    w.kv("produced", s.produced);
    w.kv("delivered", s.delivered);
    w.key("drops").begin_array();
    for (const auto& d : s.drops) {
      w.begin_object();
      w.kv("reason", d.reason);
      w.kv("count", d.count);
      w.end_object();
    }
    w.end_array();
    w.kv("dropped", s.dropped_total());
    w.kv("indeterminate", s.indeterminate);
    w.kv("leak", s.leak());
    w.end_object();
  }
  w.end_array();
  w.kv("conservation_ok", a.ok);
  w.kv("first_leak_stage", a.first_leak_stage);
  w.kv("first_leak", a.first_leak);
  w.kv("stages_failed", a.stages_failed);
  w.kv("total_dropped", a.total_dropped);
  w.end_object();
}

std::string Ledger::render_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-7s %12s %12s %10s %6s %5s  %s\n", "stage", "unit",
                "produced", "delivered", "dropped", "indet", "leak", "drop reasons");
  out += line;
  for (const auto& s : stages_) {
    std::string reasons;
    for (const auto& d : s.drops) {
      if (d.count == 0) continue;
      if (!reasons.empty()) reasons += ", ";
      reasons += d.reason;
      char n[32];
      std::snprintf(n, sizeof(n), "=%" PRIu64, d.count);
      reasons += n;
    }
    if (reasons.empty()) reasons = "-";
    std::snprintf(line, sizeof(line), "%-14s %-7s %12" PRIu64 " %12" PRIu64 " %10" PRIu64
                  " %6" PRIu64 " %5" PRId64 "  %s\n",
                  s.name.c_str(), s.unit.c_str(), s.produced, s.delivered, s.dropped_total(),
                  s.indeterminate, s.leak(), reasons.c_str());
    out += line;
  }
  const LedgerAudit a = audit();
  if (a.ok) {
    out += "conservation: ok";
  } else {
    std::snprintf(line, sizeof(line), "conservation: FAILED at stage %s (leak=%" PRId64
                  ", indeterminate=%" PRIu64 ", %" PRIu64 " stage(s) failing)",
                  a.first_leak_stage.c_str(), a.first_leak, a.first_indeterminate,
                  a.stages_failed);
    out += line;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), ", attributed drops=%" PRIu64 "\n", a.total_dropped);
  out += tail;
  return out;
}

namespace {

std::uint64_t db_event_count(const tracedb::TraceDatabase& db) {
  return db.calls().size() + db.aexs().size() + db.paging().size() + db.syncs().size();
}

/// Record + stream stages from persisted loss counters around a known event
/// total.  Shared by the flat-trace and store builders.
void fill_persisted_stages(Ledger& led, std::uint64_t events, std::uint64_t sealed_dropped,
                           std::uint64_t stream_dropped) {
  auto& record = led.stage("record");
  record.produced = events + sealed_dropped;
  record.delivered = events;
  record.add_drop("sealed_shard", sealed_dropped);

  auto& stream = led.stage("stream");
  stream.produced = events;
  if (stream_dropped > events) {
    // A stream that claims to have dropped more than the trace holds is
    // itself inconsistent; surface that as unattributable.
    stream.delivered = 0;
    stream.add_drop("ring_overflow", stream_dropped);
    stream.indeterminate = stream_dropped - events;
    stream.produced = stream_dropped;
  } else {
    stream.delivered = events - stream_dropped;
    stream.add_drop("ring_overflow", stream_dropped);
  }
}

}  // namespace

Ledger ledger_from_database(const tracedb::TraceDatabase& db) {
  Ledger led;
  fill_persisted_stages(led, db_event_count(db), db.dropped_events(), db.stream_dropped());
  return led;
}

Ledger ledger_from_store(const std::string& dir) {
  tracedb::store::StoreReader reader(dir);
  const tracedb::store::StoreInfo info = reader.info();

  // Index events-section counts: [chunks, calls, aexs, paging, syncs].
  std::uint64_t index_chunks = 0;
  std::uint64_t index_events = 0;
  bool have_events = false;
  for (const auto& s : info.sections) {
    if (s.name != "events" || s.counts.size() < 5) continue;
    have_events = true;
    index_chunks = s.counts[0];
    index_events = s.counts[1] + s.counts[2] + s.counts[3] + s.counts[4];
  }

  const tracedb::TraceDatabase summary = reader.load(tracedb::store::kSummarySections);

  Ledger led;
  fill_persisted_stages(led, index_events, summary.dropped_events(), summary.stream_dropped());

  // The genuine on-disk cross-check: what the index claims the events
  // section holds versus what the chunk directory rows actually sum to.
  auto& store = led.stage("store");
  store.produced = index_events;
  if (have_events) {
    std::uint64_t chunk_events = 0;
    const auto& chunks = reader.chunk_directory();
    for (const auto& c : chunks) {
      chunk_events += static_cast<std::uint64_t>(c.n_calls) + c.n_aexs + c.n_paging + c.n_syncs;
    }
    store.delivered = chunk_events;
    if (index_chunks != chunks.size()) {
      store.indeterminate +=
          index_chunks > chunks.size() ? index_chunks - chunks.size() : chunks.size() - index_chunks;
    }
  }
  return led;
}

namespace {

std::uint64_t num_field(const support::json::Value& obj, std::string_view key) {
  const support::json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::runtime_error("ledger json: missing numeric field '" + std::string(key) + "'");
  }
  if (v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

Ledger ledger_from_json(const support::json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("ledger json: not an object");
  const support::json::Value* stages = v.find("stages");
  if (stages == nullptr || !stages->is_array()) {
    throw std::runtime_error("ledger json: missing 'stages' array");
  }
  Ledger led;
  for (const auto& sv : stages->array) {
    if (!sv.is_object()) throw std::runtime_error("ledger json: stage is not an object");
    const support::json::Value* name = sv.find("stage");
    const support::json::Value* unit = sv.find("unit");
    if (name == nullptr || !name->is_string()) {
      throw std::runtime_error("ledger json: stage without a name");
    }
    LedgerStage& s =
        led.stage(name->string, unit != nullptr && unit->is_string() ? unit->string : "events");
    s.produced = num_field(sv, "produced");
    s.delivered = num_field(sv, "delivered");
    s.indeterminate = num_field(sv, "indeterminate");
    const support::json::Value* drops = sv.find("drops");
    if (drops != nullptr && drops->is_array()) {
      for (const auto& dv : drops->array) {
        const support::json::Value* reason = dv.find("reason");
        if (reason == nullptr || !reason->is_string()) {
          throw std::runtime_error("ledger json: drop without a reason");
        }
        s.add_drop(reason->string, num_field(dv, "count"));
      }
    }
  }
  return led;
}

}  // namespace telemetry
