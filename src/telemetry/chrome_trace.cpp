#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "support/json.hpp"
#include "support/strutil.hpp"

namespace telemetry {
namespace {

using support::json::Writer;

/// trace-event timestamps are microseconds; virtual ns divide exactly into
/// fractional-µs doubles (53-bit mantissa comfortably covers any simulated
/// trace length).
double to_us(tracedb::Nanoseconds ns) { return static_cast<double>(ns) / 1000.0; }

/// Counter tracks live under their own synthetic process so they do not
/// interleave with the per-thread call tracks.
constexpr std::uint64_t kTelemetryPid = 0;

void write_process_names(Writer& w, const tracedb::TraceDatabase& db) {
  for (const auto& e : db.enclaves()) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", e.enclave_id);
    w.key("args").begin_object();
    w.kv("name", e.name.empty() ? support::format("enclave %llu",
                                                  static_cast<unsigned long long>(e.enclave_id))
                                : "enclave " + e.name);
    w.end_object();
    w.end_object();
  }
  if (!db.metric_samples().empty()) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", kTelemetryPid);
    w.key("args").begin_object();
    w.kv("name", "telemetry");
    w.end_object();
    w.end_object();
  }
}

void write_calls(Writer& w, const tracedb::TraceDatabase& db) {
  const auto& calls = db.calls();
  // Self time per call — duration minus the time spent in direct children,
  // the same weighting the call-tree/flamegraph profiler uses.  Saturates at
  // zero so clock-skewed child records cannot underflow.
  std::vector<std::uint64_t> child_ns(calls.size(), 0);
  for (const auto& c : calls) {
    if (c.parent == tracedb::kNoParent) continue;
    child_ns[static_cast<std::size_t>(c.parent)] +=
        c.end_ns >= c.start_ns ? c.end_ns - c.start_ns : 0;
  }
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    const std::uint64_t dur = c.end_ns >= c.start_ns ? c.end_ns - c.start_ns : 0;
    w.begin_object();
    w.kv("name", db.name_of(c.enclave_id, c.type, c.call_id));
    w.kv("cat", c.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
    w.kv("ph", "X");
    w.kv("ts", to_us(c.start_ns));
    w.kv("dur", to_us(dur));
    w.kv("pid", c.enclave_id);
    w.kv("tid", static_cast<std::uint64_t>(c.thread_id));
    w.key("args").begin_object();
    w.kv("call_id", static_cast<std::uint64_t>(c.call_id));
    w.kv("self_ns", dur >= child_ns[i] ? dur - child_ns[i] : 0);
    if (c.aex_count > 0) w.kv("aex_count", static_cast<std::uint64_t>(c.aex_count));
    w.end_object();
    w.end_object();
  }
}

void write_aexs(Writer& w, const tracedb::TraceDatabase& db) {
  for (const auto& a : db.aexs()) {
    w.begin_object();
    w.kv("name", "AEX");
    w.kv("cat", "aex");
    w.kv("ph", "i");
    w.kv("s", "t");  // thread-scoped instant
    w.kv("ts", to_us(a.timestamp_ns));
    w.kv("pid", a.enclave_id);
    w.kv("tid", static_cast<std::uint64_t>(a.thread_id));
    w.key("args").begin_object();
    const char* cause = a.cause == tracedb::AexCause::kInterrupt
                            ? "interrupt"
                            : (a.cause == tracedb::AexCause::kPageFault ? "page_fault"
                                                                        : "unknown");
    w.kv("cause", cause);
    w.end_object();
    w.end_object();
  }
}

void write_paging(Writer& w, const tracedb::TraceDatabase& db) {
  for (const auto& p : db.paging()) {
    w.begin_object();
    w.kv("name", p.direction == tracedb::PageDirection::kPageIn ? "page_in" : "page_out");
    w.kv("cat", "paging");
    w.kv("ph", "i");
    w.kv("s", "p");  // process-scoped instant: paging is not tied to a thread
    w.kv("ts", to_us(p.timestamp_ns));
    w.kv("pid", p.enclave_id);
    w.kv("tid", static_cast<std::uint64_t>(0));
    w.key("args").begin_object();
    w.kv("page", p.page_number);
    w.end_object();
    w.end_object();
  }
}

void write_counters(Writer& w, const tracedb::TraceDatabase& db) {
  for (const auto& s : db.metric_samples()) {
    const auto& series = db.metric_series();
    if (s.series_id >= series.size()) continue;  // corrupt reference: skip
    const auto& meta = series[s.series_id];
    w.begin_object();
    w.kv("name", meta.name);
    w.kv("cat", "metric");
    w.kv("ph", "C");
    w.kv("ts", to_us(s.timestamp_ns));
    w.kv("pid", kTelemetryPid);
    w.key("args").begin_object();
    w.kv("value", s.value);
    w.end_object();
    w.end_object();
  }
}

}  // namespace

std::string export_chrome_trace(const tracedb::TraceDatabase& db) {
  Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents").begin_array();
  write_process_names(w, db);
  write_calls(w, db);
  write_aexs(w, db);
  write_paging(w, db);
  write_counters(w, db);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string render_metrics_summary(const tracedb::TraceDatabase& db) {
  std::string out;
  const auto& series = db.metric_series();
  const auto& samples = db.metric_samples();

  out += "---- telemetry ----\n";
  out += support::format("metric series:   %zu\n", series.size());
  out += support::format("metric samples:  %zu\n", samples.size());
  out += support::format("events dropped:  %llu\n",
                         static_cast<unsigned long long>(db.dropped_events()));

  // v5 time-series payload (sgxperf monitor): window snapshots carry the
  // cumulative switchless-pool economics, so the trade-off is visible even
  // when registry sampling was off during the run.
  if (!db.windows().empty()) {
    const auto& last = db.windows().back();
    out += "\n---- windows (v5 time-series) ----\n";
    out += support::format("windows:         %zu (period %.3fms, %zu site rows)\n",
                           db.windows().size(),
                           static_cast<double>(db.window_period()) / 1e6,
                           db.window_sites().size());
    // Count end-of-run actives from the records themselves: finish() can
    // resolve alerts after the final window snapshot was cut, so the last
    // window's active_alerts field may overstate the final verdict.
    std::size_t active = 0;
    for (const auto& a : db.alerts()) {
      if (a.resolved_ns == 0) ++active;
    }
    out += support::format("alerts:          %zu recorded, %zu active at end\n",
                           db.alerts().size(), active);
    out += support::format("stream dropped:  %llu\n",
                           static_cast<unsigned long long>(last.stream_dropped));
    out += "switchless:      ";
    out += support::format("%llu calls, %llu fallbacks, %.3fms wasted worker time\n",
                           static_cast<unsigned long long>(last.switchless_calls),
                           static_cast<unsigned long long>(last.switchless_fallbacks),
                           static_cast<double>(last.switchless_wasted_ns) / 1e6);
  }

  if (series.empty()) {
    out += "(no telemetry in this trace; record with sampling enabled)\n";
    return out;
  }

  // Final sampled value per series (samples are appended in time order).
  std::vector<const tracedb::MetricSampleRecord*> last(series.size(), nullptr);
  std::vector<std::size_t> count(series.size(), 0);
  for (const auto& s : samples) {
    if (s.series_id >= series.size()) continue;
    last[s.series_id] = &s;
    ++count[s.series_id];
  }

  out += "\nseries                                    kind     samples  last value\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& meta = series[i];
    std::string value = "-";
    if (last[i] != nullptr) {
      const double v = last[i]->value;
      if (v == static_cast<double>(static_cast<long long>(v))) {
        value = support::format("%lld", static_cast<long long>(v));
      } else {
        value = support::format("%.3f", v);
      }
      if (!meta.unit.empty()) value += " " + meta.unit;
    }
    out += support::format("%-41s %-8s %7zu  %s\n", meta.name.c_str(),
                           meta.kind == tracedb::MetricKind::kGauge ? "gauge" : "counter",
                           count[i], value.c_str());
  }
  return out;
}

}  // namespace telemetry
