#include "telemetry/timeseries.hpp"

#include <cmath>

namespace telemetry {

HdrSnapshot hdr_delta(const HdrSnapshot& cumulative, const HdrSnapshot& baseline) {
  HdrSnapshot out;
  const auto& cur = cumulative.buckets();
  const auto& base = baseline.buckets();
  for (std::size_t i = 0; i < hdr::kBucketCount; ++i) {
    if (cur[i] > base[i]) out.add_bucket(i, cur[i] - base[i]);
  }
  const std::uint64_t sum =
      cumulative.sum() > baseline.sum() ? cumulative.sum() - baseline.sum() : 0;
  out.set_exact_sum(sum);
  return out;
}

bool EwmaCusum::observe(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    sigma_ = std::abs(x) * cfg_.min_sigma_frac;
    return false;
  }

  const double floor_sigma = std::abs(mean_) * cfg_.min_sigma_frac;
  const double sigma = sigma_ > floor_sigma ? sigma_ : (floor_sigma > 1.0 ? floor_sigma : 1.0);
  const double z = (x - mean_) / sigma;

  bool fired = false;
  if (n_ > cfg_.warmup) {
    g_up_ = g_up_ + z - cfg_.drift;
    if (g_up_ < 0.0) g_up_ = 0.0;
    g_dn_ = g_dn_ - z - cfg_.drift;
    if (g_dn_ < 0.0) g_dn_ = 0.0;
    if (g_up_ > cfg_.threshold || g_dn_ > cfg_.threshold) {
      // Re-anchor to the new regime: the change is reported once, then the
      // detector starts watching for the *next* shift.
      fired = true;
      mean_ = x;
      sigma_ = std::abs(x) * cfg_.min_sigma_frac;
      g_up_ = 0.0;
      g_dn_ = 0.0;
      return fired;
    }
  }

  mean_ = cfg_.alpha * x + (1.0 - cfg_.alpha) * mean_;
  sigma_ = cfg_.alpha * std::abs(x - mean_) + (1.0 - cfg_.alpha) * sigma_;
  return fired;
}

}  // namespace telemetry
