#include "telemetry/sampler.hpp"

namespace telemetry {

TelemetrySampler::TelemetrySampler(tracedb::TraceDatabase& db,
                                   const support::VirtualClock& clock,
                                   MetricsRegistry& registry, support::Nanoseconds period_ns)
    : db_(db), clock_(clock), registry_(registry), period_ns_(period_ns) {
  next_deadline_ns_.store(period_ns == 0 ? ~support::Nanoseconds{0} : clock.now() + period_ns,
                          std::memory_order_relaxed);
}

void TelemetrySampler::poll() {
  if (period_ns_ == 0) return;
  const support::Nanoseconds now = clock_.now();
  support::Nanoseconds deadline = next_deadline_ns_.load(std::memory_order_relaxed);
  if (now < deadline) return;
  // Advance the deadline past `now` in one step, even if several periods
  // elapsed since the last poll (idle stretches do not cause sample bursts).
  support::Nanoseconds next = deadline;
  while (next <= now) next += period_ns_;
  if (!next_deadline_ns_.compare_exchange_strong(deadline, next, std::memory_order_relaxed)) {
    return;  // another thread claimed this deadline
  }
  write_sample(now);
}

void TelemetrySampler::sample_now() { write_sample(clock_.now()); }

void TelemetrySampler::write_sample(support::Nanoseconds now) {
  // Snapshot rows can shift position between samples when instruments
  // register mid-run, so series resolution goes by name through the
  // database's idempotent registration (a linear scan over tens of series —
  // the sampler cadence, not the event rate, bounds how often this runs).
  const std::vector<MetricSnapshotRow> rows = registry_.snapshot();
  std::lock_guard lock(write_mu_);
  for (const auto& row : rows) {
    const tracedb::MetricSeriesId id = db_.add_metric_series(
        row.kind == MetricKind::kGauge ? tracedb::MetricKind::kGauge
                                       : tracedb::MetricKind::kCounter,
        row.name, row.unit);
    tracedb::MetricSampleRecord rec;
    rec.series_id = id;
    rec.timestamp_ns = now;
    rec.value = row.value;
    db_.add_metric_sample(rec);
  }
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace telemetry
