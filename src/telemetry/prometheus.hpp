// Prometheus text-format exporter (exposition format 0.0.4).
//
// Fleet deployments already scrape Prometheus; this renders both the
// enclave-side metrics (registry snapshots, persisted trace metric series)
// and the tool's own self-metrics (ledger conservation rows, serve-daemon
// ingest/query counters) as `# TYPE` + sample lines so one scrape covers
// the workload and the profiler watching it.  Surfaced as
// `sgxperf metrics --prom <trace>` and `sgxperf serve --prom-out <file>`.
//
// Output is byte-deterministic for a given input: names are emitted in the
// order supplied, values with the same integer/12-significant-digit rule the
// JSON writer uses.  Histogram snapshot rows (`.count`/`.sum`/`.le_*`) are
// exported as individual counters, not native prom histograms — consumers
// get exact bucket counts without this exporter guessing at label schemes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace tracedb {
class TraceDatabase;
}

namespace telemetry {

class Ledger;

/// Maps an internal metric name ("logger.stream.monitor.dropped") onto the
/// Prometheus name charset ([a-zA-Z_:][a-zA-Z0-9_:]*): every other byte
/// becomes '_', and a leading digit gets a '_' prefix.
[[nodiscard]] std::string prom_name(std::string_view name);

/// Appends one row per ledger-stage counter (produced / delivered / dropped
/// total and per-reason / indeterminate) plus a `conservation_ok` gauge.
void append_ledger_rows(const Ledger& ledger, std::vector<MetricSnapshotRow>& rows);

/// Renders rows as Prometheus text.  Each row becomes a `# TYPE` line and a
/// sample line named `<prefix><sanitized name>`.
[[nodiscard]] std::string render_prometheus(const std::vector<MetricSnapshotRow>& rows,
                                            std::string_view prefix = "sgxperf_");

/// Trace/store exporter: event-table totals, loss counters, the last sample
/// of every persisted metric series, and the trace's reconstructed ledger.
[[nodiscard]] std::string render_prometheus(const tracedb::TraceDatabase& db);

}  // namespace telemetry
