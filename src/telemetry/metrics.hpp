// Lock-free runtime metrics registry — the first piece of the telemetry
// layer (Stress-SGX-style continuous health signals for the recorder and
// the simulator itself).
//
// Three instrument kinds:
//
//   Counter   — monotonically increasing u64 (events recorded, page-ins, ...)
//   Gauge     — signed value updated by deltas (EPC residency, TCS occupancy)
//   Histogram — fixed upper-bound buckets + sum (merge latency, charged ns)
//
// Hot-path contract: add()/observe() never take a lock.  Every instrument
// owns kStripes cache-line-aligned cells; a thread picks its stripe once
// (thread-local registration counter) and then only ever touches that cell
// with relaxed atomics, so concurrent writers on different threads do not
// share cache lines.  Reads (value()/snapshot()) sum the stripes — they are
// racy-by-design point-in-time views, exactly what a sampler wants.
//
// Registration (counter()/gauge()/histogram()) takes a mutex — call sites
// are expected to cache the returned reference (function-local static), so
// the lookup happens once per process.  Instruments live as long as the
// registry; references never dangle or move.
//
// This header is intentionally self-contained (support/ only) so that low
// layers (tracedb, sgxsim) can instrument themselves without a link-time
// dependency on the exporter library.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace telemetry {

/// Number of per-instrument thread stripes.  More threads than stripes is
/// correct (atomics), merely contended.
inline constexpr std::size_t kStripes = 16;

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
};

namespace detail {

struct alignas(64) Cell {
  std::atomic<std::int64_t> v{0};
};

/// Dense per-thread stripe index, assigned on first use, stable for the
/// thread's lifetime.
inline std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace detail

/// Monotonic counter.  add() is lock-free and wait-free.
class Counter {
 public:
  Counter(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    cells_[detail::thread_stripe()].v.fetch_add(static_cast<std::int64_t>(delta),
                                                std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return static_cast<std::uint64_t>(sum);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::string unit_;
  std::array<detail::Cell, kStripes> cells_;
};

/// Signed gauge updated by deltas (so updates stay per-stripe and lock-free;
/// absolute set() would need cross-stripe coordination and is deliberately
/// not offered).
class Gauge {
 public:
  Gauge(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t delta) noexcept {
    cells_[detail::thread_stripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::string unit_;
  std::array<detail::Cell, kStripes> cells_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last
/// bound.  observe() is lock-free: each stripe owns a private row of bucket
/// counts plus a sum, padded to whole cache lines.
class Histogram {
 public:
  Histogram(std::string name, std::vector<std::uint64_t> bounds, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)), bounds_(std::move(bounds)) {
    // Row layout per stripe: [bucket counts...][sum], padded to 64 bytes.
    const std::size_t slots = bounds_.size() + 2;  // buckets + overflow + sum
    stride_ = (slots + 7) / 8 * 8;                 // 8 atomics per cache line
    cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(stride_ * kStripes);
    for (std::size_t i = 0; i < stride_ * kStripes; ++i) cells_[i] = 0;
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    auto* row = &cells_[detail::thread_stripe() * stride_];
    row[b].fetch_add(1, std::memory_order_relaxed);
    row[bounds_.size() + 1].fetch_add(v, std::memory_order_relaxed);
  }

  /// Count in bucket `b` (b == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kStripes; ++s)
      sum += cells_[s * stride_ + b].load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t b = 0; b <= bounds_.size(); ++b) total += bucket_count(b);
    return total;
  }

  [[nodiscard]] std::uint64_t sum() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kStripes; ++s)
      total += cells_[s * stride_ + bounds_.size() + 1].load(std::memory_order_relaxed);
    return total;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }

  void reset() noexcept {
    for (std::size_t i = 0; i < stride_ * kStripes; ++i)
      cells_[i].store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::string unit_;
  std::vector<std::uint64_t> bounds_;
  std::size_t stride_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// One aggregated value at snapshot time.  Histograms flatten into several
/// rows: `<name>.count`, `<name>.sum` and one `<name>.le_<bound>` row per
/// bucket — all counter-kind, so any exporter can treat rows uniformly.
struct MetricSnapshotRow {
  std::string name;
  std::string unit;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

/// Owner of all instruments.  Registration is idempotent by name (the first
/// registration wins; kind mismatches throw).  Instrument references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view unit = "") {
    std::lock_guard lock(mu_);
    for (const auto& c : counters_) {
      if (c->name() == name) return *c;
    }
    counters_.push_back(std::make_unique<Counter>(std::string(name), std::string(unit)));
    return *counters_.back();
  }

  Gauge& gauge(std::string_view name, std::string_view unit = "") {
    std::lock_guard lock(mu_);
    for (const auto& g : gauges_) {
      if (g->name() == name) return *g;
    }
    gauges_.push_back(std::make_unique<Gauge>(std::string(name), std::string(unit)));
    return *gauges_.back();
  }

  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds,
                       std::string_view unit = "") {
    std::lock_guard lock(mu_);
    for (const auto& h : histograms_) {
      if (h->name() == name) return *h;
    }
    histograms_.push_back(
        std::make_unique<Histogram>(std::string(name), std::move(bounds), std::string(unit)));
    return *histograms_.back();
  }

  /// Point-in-time aggregated view of every instrument, in registration
  /// order (stable across snapshots, which keeps exported series ids
  /// stable).
  [[nodiscard]] std::vector<MetricSnapshotRow> snapshot() const {
    std::lock_guard lock(mu_);
    std::vector<MetricSnapshotRow> rows;
    rows.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
    for (const auto& c : counters_) {
      rows.push_back({c->name(), c->unit(), MetricKind::kCounter,
                      static_cast<double>(c->value())});
    }
    for (const auto& g : gauges_) {
      rows.push_back(
          {g->name(), g->unit(), MetricKind::kGauge, static_cast<double>(g->value())});
    }
    for (const auto& h : histograms_) {
      rows.push_back({h->name() + ".count", "", MetricKind::kCounter,
                      static_cast<double>(h->count())});
      rows.push_back({h->name() + ".sum", h->unit(), MetricKind::kCounter,
                      static_cast<double>(h->sum())});
      for (std::size_t b = 0; b < h->bounds().size(); ++b) {
        rows.push_back({h->name() + ".le_" + std::to_string(h->bounds()[b]), "",
                        MetricKind::kCounter, static_cast<double>(h->bucket_count(b))});
      }
    }
    return rows;
  }

  /// Zeroes every instrument (experiment / test isolation).  Quiesce hot
  /// writers first if exact-zero reads matter.
  void reset() {
    std::lock_guard lock(mu_);
    for (const auto& c : counters_) c->reset();
    for (const auto& g : gauges_) g->reset();
    for (const auto& h : histograms_) h->reset();
  }

  [[nodiscard]] std::size_t instrument_count() const {
    std::lock_guard lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every built-in instrumentation site uses.
/// Values accumulate for the process lifetime (like /proc counters); the
/// sampler turns them into per-trace timeseries.
inline MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace telemetry
