#include "glamdring/glamdring.hpp"

#include <atomic>

#include "crypto/sha256.hpp"

namespace glamdring {

using bignum::BigNum;
using bignum::Limb;
using sgxsim::CallId;
using sgxsim::SgxStatus;
using sgxsim::TrustedContext;

const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::kNative: return "native";
    case Variant::kPartitioned: return "glamdring-partitioned";
    case Variant::kOptimized: return "sgx-perf-optimised";
  }
  return "?";
}

// The partitioned interface: the handful of kernels the slicer put inside,
// plus a sample of the generated breadth (the real partitioning has 171
// ecalls and thousands of generated ocall wrappers).
const char* const kGlamdringEdl = R"(
enclave {
  trusted {
    public uint64_t ecall_bn_sub_part_words([user_check] uint32_t* r,
                                            [user_check] const uint32_t* a,
                                            [user_check] const uint32_t* b, int cl, int dl);
    public void ecall_bn_mul_recursive([user_check] uint32_t* r,
                                       [user_check] const uint32_t* a,
                                       [user_check] const uint32_t* b, int n2,
                                       [user_check] uint32_t* t);
    public int ecall_sign_init([in, size=32] const uint8_t* digest, size_t len);
    public int ecall_sign_finish(void);
    public uint64_t ecall_bn_add_words([user_check] uint32_t* r,
                                       [user_check] const uint32_t* a,
                                       [user_check] const uint32_t* b, int n);
    public int ecall_bn_cmp_words([user_check] const uint32_t* a,
                                  [user_check] const uint32_t* b, int n);
    // Unused breadth of the generated partition:
    public void ecall_bn_sqr_words([user_check] uint32_t* r, [user_check] const uint32_t* a, int n);
    public uint64_t ecall_bn_mul_add_words([user_check] uint32_t* r, [user_check] const uint32_t* a, int n, uint32_t w);
    public uint64_t ecall_bn_div_words(uint32_t h, uint32_t l, uint32_t d);
    public int ecall_BN_mod_exp_start(uint64_t bn);
    public int ecall_BN_mod_mul_reciprocal(uint64_t r, uint64_t x, uint64_t y);
    public int ecall_BN_from_montgomery(uint64_t r, uint64_t a);
    public int ecall_EVP_DigestInit(uint64_t ctx_handle);
    public int ecall_EVP_DigestUpdate(uint64_t ctx_handle, [user_check] const void* d, size_t len);
    public int ecall_EVP_DigestFinal(uint64_t ctx_handle, [user_check] unsigned char* md);
    public int ecall_RSA_padding_add(uint64_t rsa, [user_check] unsigned char* to, int tlen);
    public int ecall_BN_bn2bin(uint64_t a, [user_check] unsigned char* to);
    public uint64_t ecall_BN_num_bits(uint64_t a);
  };
  untrusted {
    uint64_t ocall_BN_new([user_check] void* host);
    void ocall_BN_free([user_check] void* host, uint64_t bn);
    void ocall_BN_clear([user_check] void* host, uint64_t bn);
    uint64_t ocall_BN_CTX_get([user_check] void* host);
    void ocall_BN_CTX_release([user_check] void* host);
    void ocall_glamdring_log([in, size=len] const char* msg, size_t len);
  };
};
)";

namespace {

/// Marshalling struct shared by all glamdring ecalls/ocalls.
struct GlamMs {
  void* host = nullptr;
  Limb* r = nullptr;
  const Limb* a = nullptr;
  const Limb* b = nullptr;
  Limb* t = nullptr;
  int cl = 0;
  int dl = 0;
  int n2 = 0;
  const std::uint8_t* digest = nullptr;
  std::uint64_t len = 0;
  std::uint64_t u64_ret = 0;
  int iret = 0;
};

enum class GlamOcall : CallId {
  kBnNew = 0,
  kBnFree = 1,
  kBnClear = 2,
};

struct HostBnRegistry {
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint64_t> live{0};
  support::VirtualClock* clock = nullptr;
};

SgxStatus ocall_bn_new(void* msp) {
  auto* ms = static_cast<GlamMs*>(msp);
  auto* reg = static_cast<HostBnRegistry*>(ms->host);
  reg->clock->advance(300);  // tiny untrusted allocation — the short BN_ ocall body
  ms->u64_ret = reg->next_id.fetch_add(1, std::memory_order_relaxed);
  reg->live.fetch_add(1, std::memory_order_relaxed);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_bn_free(void* msp) {
  auto* ms = static_cast<GlamMs*>(msp);
  auto* reg = static_cast<HostBnRegistry*>(ms->host);
  reg->clock->advance(250);
  reg->live.fetch_sub(1, std::memory_order_relaxed);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_unused(void* /*ms*/) { return SgxStatus::kSuccess; }

}  // namespace

struct SigningBenchmark::TrustedState {
  TrustedContext* ctx = nullptr;
  void* host_registry = nullptr;
  SignCosts costs;
  sgxsim::EnclaveAddr scratch = 0;  // working-set: trusted scratch buffers
};

SigningBenchmark::SigningBenchmark(sgxsim::Urts& urts, Variant variant, std::uint64_t key_seed,
                                   SignCosts costs)
    : urts_(urts),
      variant_(variant),
      costs_(costs),
      // 2048-bit modulus, 64-bit exponent: ~96 multiplications and ~2,500
      // bn_sub_part_words invocations per signature — the §5.2.3 storm.
      signer_(key_seed, 2048, 64),
      trusted_(std::make_unique<TrustedState>()) {
  if (variant_ == Variant::kNative) return;

  sgxsim::EnclaveConfig config;
  config.name = "glamdring-libressl";
  config.code_pages = 24;
  config.heap_pages = 40;  // a small enclave: §5.2.3 measured 61/32 pages used
  config.stack_pages = 4;
  config.tcs_count = 2;
  eid_ = urts_.create_enclave(std::move(config), sgxsim::edl::parse(kGlamdringEdl));

  static HostBnRegistry registry;  // shared across benchmarks; ids are opaque
  registry.clock = &urts_.clock();
  trusted_->host_registry = &registry;
  trusted_->costs = costs_;

  std::vector<sgxsim::OcallFn> entries = {&ocall_bn_new, &ocall_bn_free, &ocall_unused,
                                          &ocall_unused, &ocall_unused, &ocall_unused};
  table_ = sgxsim::make_ocall_table(std::move(entries));

  TrustedState* ts = trusted_.get();
  sgxsim::Enclave& enclave = urts_.enclave(eid_);

  struct CtxScope {
    TrustedState* ts;
    CtxScope(TrustedState* s, TrustedContext& ctx) : ts(s) { ts->ctx = &ctx; }
    ~CtxScope() { ts->ctx = nullptr; }
  };

  enclave.register_ecall("ecall_bn_sub_part_words", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    // user_check pointers: the kernel works on untrusted memory in place —
    // no marshalling copies, just the (short) computation.
    ctx.work(ts->costs.per_sub_part_words_ns);
    ms->u64_ret = bignum::bn_sub_part_words(ms->r, ms->a, ms->b, ms->cl, ms->dl);
    return SgxStatus::kSuccess;
  });

  enclave.register_ecall("ecall_bn_mul_recursive", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    ctx.work(ts->costs.per_mul_ns);
    // Temporary BIGNUM containers still live in untrusted memory under the
    // Glamdring slice, so even the moved-in multiplication allocates and
    // releases them through short ocalls.
    GlamMs alloc;
    alloc.host = ts->host_registry;
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnNew), &alloc);
    // The whole recursion now runs inside; the sub_part_words pairs become
    // plain function calls whose cost is charged in-enclave.
    bignum::KernelHooks hooks;
    hooks.sub_part_words = [ts, &ctx](Limb* r, const Limb* a, const Limb* b, int cl, int dl) {
      ctx.work(ts->costs.per_sub_part_words_ns);
      return bignum::bn_sub_part_words(r, a, b, cl, dl);
    };
    bignum::bn_mul_recursive(ms->r, ms->a, ms->b, ms->n2, ms->t, &hooks);
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnFree), &alloc);
    return SgxStatus::kSuccess;
  });

  enclave.register_ecall("ecall_sign_init", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    ctx.copy_in(ms->len);
    ctx.work(ts->costs.per_sign_setup_ns);
    if (ts->scratch == 0) {
      // First use initialises the full trusted scratch area (the start-up
      // working set); steady-state signing reuses a small slice of it.
      ts->scratch = ctx.malloc(24 * sgxsim::kPageSize);
    } else if (ts->scratch != 0) {
      ctx.touch(ts->scratch, 6 * sgxsim::kPageSize, sgxsim::MemAccess::kWrite);
    }
    // The sliced code allocates untrusted BIGNUM containers through short
    // ocalls right at the start of the ecall — the SNC pattern of §3.3.
    GlamMs alloc;
    alloc.host = ts->host_registry;
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnNew), &alloc);
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnNew), &alloc);
    return SgxStatus::kSuccess;
  });

  enclave.register_ecall("ecall_sign_finish", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    (void)ms;
    ctx.work(1'000);
    GlamMs free_ms;
    free_ms.host = ts->host_registry;
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnFree), &free_ms);
    ctx.ocall(static_cast<CallId>(GlamOcall::kBnFree), &free_ms);
    return SgxStatus::kSuccess;
  });

  enclave.register_ecall("ecall_bn_add_words", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    ctx.work(300);
    ms->u64_ret = bignum::bn_add_words(ms->r, ms->a, ms->b, ms->cl);
    return SgxStatus::kSuccess;
  });

  enclave.register_ecall("ecall_bn_cmp_words", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<GlamMs*>(msp);
    ctx.work(200);
    ms->iret = bignum::bn_cmp_words(ms->a, ms->b, ms->cl);
    return SgxStatus::kSuccess;
  });
}

SigningBenchmark::~SigningBenchmark() {
  if (eid_ != 0) urts_.destroy_enclave(eid_);
}

BigNum SigningBenchmark::mod_mul(const BigNum& a, const BigNum& b, const BigNum& n) {
  BigNum product;
  switch (variant_) {
    case Variant::kNative: {
      // All compute outside; charge the same per-operation costs.
      urts_.clock().advance(costs_.per_mul_ns);
      bignum::KernelHooks hooks;
      hooks.sub_part_words = [this](Limb* r, const Limb* x, const Limb* y, int cl, int dl) {
        urts_.clock().advance(costs_.per_sub_part_words_ns);
        return bignum::bn_sub_part_words(r, x, y, cl, dl);
      };
      product = a.mul(b, &hooks);
      break;
    }
    case Variant::kPartitioned: {
      // bn_mul_recursive runs untrusted but every bn_sub_part_words is an
      // ecall — Glamdring's slice.
      urts_.clock().advance(costs_.per_mul_ns);
      bignum::KernelHooks hooks;
      hooks.sub_part_words = [this](Limb* r, const Limb* x, const Limb* y, int cl, int dl) {
        GlamMs ms;
        ms.r = r;
        ms.a = x;
        ms.b = y;
        ms.cl = cl;
        ms.dl = dl;
        urts_.sgx_ecall(eid_, 0, &table_, &ms);
        return static_cast<Limb>(ms.u64_ret);
      };
      product = a.mul(b, &hooks);
      break;
    }
    case Variant::kOptimized: {
      // One ecall for the whole multiplication (caller moved inside).
      const std::size_t max_len = std::max(a.limb_count(), b.limb_count());
      const auto n2 = static_cast<int>(std::bit_ceil(std::max<std::size_t>(max_len, 2)));
      std::vector<Limb> ap(static_cast<std::size_t>(n2), 0);
      std::vector<Limb> bp(static_cast<std::size_t>(n2), 0);
      std::copy(a.limbs().begin(), a.limbs().end(), ap.begin());
      std::copy(b.limbs().begin(), b.limbs().end(), bp.begin());
      std::vector<Limb> r(static_cast<std::size_t>(2 * n2), 0);
      std::vector<Limb> t(static_cast<std::size_t>(4 * n2), 0);
      GlamMs ms;
      ms.r = r.data();
      ms.a = ap.data();
      ms.b = bp.data();
      ms.n2 = n2;
      ms.t = t.data();
      urts_.sgx_ecall(eid_, 1, &table_, &ms);
      product = BigNum::from_bytes_be(nullptr, 0);  // zero; replaced below
      // Rebuild a BigNum from the raw limbs.
      std::string hex;
      {
        static constexpr char kHex[] = "0123456789abcdef";
        for (auto it = r.rbegin(); it != r.rend(); ++it) {
          for (int shift = 28; shift >= 0; shift -= 4) {
            hex.push_back(kHex[(*it >> shift) & 0xF]);
          }
        }
        const auto nz = hex.find_first_not_of('0');
        hex = nz == std::string::npos ? "0" : hex.substr(nz);
      }
      product = hex == "0" ? BigNum() : BigNum::from_hex(hex);
      break;
    }
  }
  urts_.clock().advance(costs_.per_divmod_ns);
  return product.mod(n);
}

BigNum SigningBenchmark::sign(std::uint64_t index) {
  const bignum::Certificate cert = bignum::make_test_certificate(1, index);
  const std::string body = cert.serialize();
  const crypto::Sha256Digest digest = crypto::sha256(body);

  if (variant_ == Variant::kNative) {
    urts_.clock().advance(costs_.per_sign_setup_ns);
  } else {
    GlamMs init;
    init.digest = digest.data();
    init.len = digest.size();
    urts_.sgx_ecall(eid_, 2, &table_, &init);
    // A sprinkle of rarely-used kernels (the "<1% of the time" ecalls).
    if (signs_done_ % 32 == 0) {
      Limb buf[4] = {1, 2, 3, 4};
      Limb out[4];
      GlamMs ms;
      ms.r = out;
      ms.a = buf;
      ms.b = buf;
      ms.cl = 4;
      urts_.sgx_ecall(eid_, 4, &table_, &ms);  // ecall_bn_add_words
      urts_.sgx_ecall(eid_, 5, &table_, &ms);  // ecall_bn_cmp_words
    }
  }

  const BigNum& n = signer_.modulus();
  const BigNum& d = signer_.exponent();
  BigNum base = BigNum::from_bytes_be(digest.data(), digest.size()).mod(n);
  BigNum result = BigNum(1).mod(n);
  for (int i = d.bit_length() - 1; i >= 0; --i) {
    result = mod_mul(result, result, n);
    if (d.bit(i)) result = mod_mul(result, base, n);
  }

  if (variant_ != Variant::kNative) {
    GlamMs fin;
    urts_.sgx_ecall(eid_, 3, &table_, &fin);
  }
  ++signs_done_;
  return result;
}

SigningBenchmark::Result SigningBenchmark::run_for(support::Nanoseconds virtual_duration) {
  Result result;
  const auto start = urts_.clock().now();
  const auto deadline = start + virtual_duration;
  std::uint64_t index = 0;
  while (urts_.clock().now() < deadline) {
    (void)sign(index++);
    ++result.signs;
  }
  result.elapsed_ns = urts_.clock().now() - start;
  result.signs_per_s =
      static_cast<double>(result.signs) / (static_cast<double>(result.elapsed_ns) / 1e9);
  return result;
}

}  // namespace glamdring
