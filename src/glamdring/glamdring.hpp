// Glamdring-partitioned LibreSSL signing (§5.2.3).
//
// Glamdring statically slices an application at the functions that touch
// sensitive data.  For LibreSSL's signer this produced a partitioning where
// the low-level kernel `bn_sub_part_words` landed *inside* the enclave while
// its caller `bn_mul_recursive` stayed outside — so every Karatsuba step
// issues a pair of ecalls whose work is shorter than the transition: the
// SISC anti-pattern sgx-perf flags.  The fix the paper applies (moving
// `bn_mul_recursive` inside, one ecall per multiplication) is the kOptimized
// variant; 2.16x on the unpatched machine, more with Spectre/L1TF microcode.
//
// Three builds of the same signer:
//   kNative      — no enclave at all
//   kPartitioned — Glamdring's output: bn_sub_part_words behind an ecall
//   kOptimized   — bn_mul_recursive moved inside (sgx-perf's recommendation)
#pragma once

#include <cstdint>
#include <memory>

#include "bignum/signing.hpp"
#include "sgxsim/runtime.hpp"

namespace glamdring {

enum class Variant { kNative, kPartitioned, kOptimized };

[[nodiscard]] const char* to_string(Variant v) noexcept;

extern const char* const kGlamdringEdl;

/// Virtual-time costs of the signing computation itself (identical hardware
/// inside and outside the enclave; only the transitions differ between
/// variants).  Calibrated so the native signer lands near the paper's
/// 145 signs/s on this machine class.
struct SignCosts {
  support::Nanoseconds per_sub_part_words_ns = 400;  // one kernel invocation
  support::Nanoseconds per_mul_ns = 20'000;          // Karatsuba bookkeeping + base muls
  support::Nanoseconds per_divmod_ns = 25'000;       // Knuth-D reduction
  support::Nanoseconds per_sign_setup_ns = 25'000;   // hashing, certificate encode
};

/// The certificate-signing benchmark of §5.2.3 in a chosen variant.
class SigningBenchmark {
 public:
  SigningBenchmark(sgxsim::Urts& urts, Variant variant, std::uint64_t key_seed = 1234,
                   SignCosts costs = {});
  ~SigningBenchmark();

  SigningBenchmark(const SigningBenchmark&) = delete;
  SigningBenchmark& operator=(const SigningBenchmark&) = delete;

  /// Signs test certificate `index`; the result is identical across
  /// variants (the partitioning must not change the math).
  [[nodiscard]] bignum::BigNum sign(std::uint64_t index);

  struct Result {
    std::uint64_t signs = 0;
    support::Nanoseconds elapsed_ns = 0;
    double signs_per_s = 0.0;
  };
  /// Signs certificates until `virtual_duration` has elapsed (the paper's
  /// 30-second benchmark loop).
  [[nodiscard]] Result run_for(support::Nanoseconds virtual_duration);

  [[nodiscard]] Variant variant() const noexcept { return variant_; }
  /// 0 for the native variant.
  [[nodiscard]] sgxsim::EnclaveId enclave_id() const noexcept { return eid_; }
  [[nodiscard]] const bignum::Signer& signer() const noexcept { return signer_; }

 private:
  struct TrustedState;

  /// One modular multiplication routed according to the variant.
  [[nodiscard]] bignum::BigNum mod_mul(const bignum::BigNum& a, const bignum::BigNum& b,
                                       const bignum::BigNum& n);

  sgxsim::Urts& urts_;
  Variant variant_;
  SignCosts costs_;
  bignum::Signer signer_;
  sgxsim::EnclaveId eid_ = 0;
  sgxsim::OcallTable table_;
  std::unique_ptr<TrustedState> trusted_;
  std::uint64_t signs_done_ = 0;
};

}  // namespace glamdring
