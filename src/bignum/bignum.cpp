#include "bignum/bignum.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace bignum {

// --- kernels ------------------------------------------------------------------

Limb bn_add_words(Limb* r, const Limb* a, const Limb* b, int n) noexcept {
  DoubleLimb carry = 0;
  for (int i = 0; i < n; ++i) {
    const DoubleLimb s = DoubleLimb{a[i]} + b[i] + carry;
    r[i] = static_cast<Limb>(s);
    carry = s >> kLimbBits;
  }
  return static_cast<Limb>(carry);
}

Limb bn_sub_words(Limb* r, const Limb* a, const Limb* b, int n) noexcept {
  DoubleLimb borrow = 0;
  for (int i = 0; i < n; ++i) {
    const DoubleLimb d = DoubleLimb{a[i]} - b[i] - borrow;
    r[i] = static_cast<Limb>(d);
    borrow = (d >> kLimbBits) & 1;
  }
  return static_cast<Limb>(borrow);
}

Limb bn_sub_part_words(Limb* r, const Limb* a, const Limb* b, int cl, int dl) noexcept {
  // Common prefix of cl limbs.
  Limb borrow = bn_sub_words(r, a, b, cl);
  if (dl == 0) return borrow;
  if (dl > 0) {
    // a is dl limbs longer: propagate the borrow through a's tail.
    for (int i = 0; i < dl; ++i) {
      const DoubleLimb d = DoubleLimb{a[cl + i]} - borrow;
      r[cl + i] = static_cast<Limb>(d);
      borrow = static_cast<Limb>((d >> kLimbBits) & 1);
    }
    return borrow;
  }
  // b is -dl limbs longer: subtract b's tail from zero.
  for (int i = 0; i < -dl; ++i) {
    const DoubleLimb d = DoubleLimb{0} - b[cl + i] - borrow;
    r[cl + i] = static_cast<Limb>(d);
    borrow = static_cast<Limb>((d >> kLimbBits) & 1);
  }
  return borrow;
}

int bn_cmp_words(const Limb* a, const Limb* b, int n) noexcept {
  for (int i = n - 1; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i] ? 1 : -1;
  }
  return 0;
}

void bn_mul_normal(Limb* r, const Limb* a, int na, const Limb* b, int nb) noexcept {
  std::memset(r, 0, static_cast<std::size_t>(na + nb) * sizeof(Limb));
  for (int i = 0; i < na; ++i) {
    DoubleLimb carry = 0;
    const DoubleLimb ai = a[i];
    for (int j = 0; j < nb; ++j) {
      const DoubleLimb s = DoubleLimb{r[i + j]} + ai * b[j] + carry;
      r[i + j] = static_cast<Limb>(s);
      carry = s >> kLimbBits;
    }
    r[i + nb] = static_cast<Limb>(carry);
  }
}

namespace {

/// Adds `v` (n limbs) into r (propagating carry into r's remaining limbs up
/// to limit).  Returns carry out of the limit.
Limb add_into(Limb* r, const Limb* v, int n, int limit) noexcept {
  DoubleLimb carry = 0;
  int i = 0;
  for (; i < n; ++i) {
    const DoubleLimb s = DoubleLimb{r[i]} + v[i] + carry;
    r[i] = static_cast<Limb>(s);
    carry = s >> kLimbBits;
  }
  for (; carry != 0 && i < limit; ++i) {
    const DoubleLimb s = DoubleLimb{r[i]} + carry;
    r[i] = static_cast<Limb>(s);
    carry = s >> kLimbBits;
  }
  return static_cast<Limb>(carry);
}

/// Subtracts `v` (n limbs) from r (propagating borrow up to limit).
Limb sub_into(Limb* r, const Limb* v, int n, int limit) noexcept {
  DoubleLimb borrow = 0;
  int i = 0;
  for (; i < n; ++i) {
    const DoubleLimb d = DoubleLimb{r[i]} - v[i] - borrow;
    r[i] = static_cast<Limb>(d);
    borrow = (d >> kLimbBits) & 1;
  }
  for (; borrow != 0 && i < limit; ++i) {
    const DoubleLimb d = DoubleLimb{r[i]} - borrow;
    r[i] = static_cast<Limb>(d);
    borrow = (d >> kLimbBits) & 1;
  }
  return static_cast<Limb>(borrow);
}

Limb call_sub_part_words(const KernelHooks* hooks, Limb* r, const Limb* a, const Limb* b,
                         int cl, int dl) {
  if (hooks != nullptr && hooks->sub_part_words) return hooks->sub_part_words(r, a, b, cl, dl);
  return bn_sub_part_words(r, a, b, cl, dl);
}

}  // namespace

void bn_mul_recursive(Limb* r, const Limb* a, const Limb* b, int n2, Limb* t,
                      const KernelHooks* hooks) {
  if (n2 <= kKaratsubaBase || (n2 & 1) != 0) {
    bn_mul_normal(r, a, n2, b, n2);
    return;
  }
  const int n = n2 / 2;

  // Signs of (a0 - a1) and (b1 - b0); 0 when the halves are equal.
  const int c1 = bn_cmp_words(a, a + n, n);
  const int c2 = bn_cmp_words(b + n, b, n);

  // Two successive bn_sub_part_words calls computing |a0 - a1| into t[0..n)
  // and |b1 - b0| into t[n..2n) — the pair structure of LibreSSL's
  // bn_mul_recursive that §5.2.3 of the paper identifies as SISC.  `neg`
  // tracks the sign of the product (a0 - a1)(b1 - b0).
  bool zero = false;
  bool neg = false;
  switch (c1 * 3 + c2) {
    case -4:  // a0 < a1, b1 < b0
      call_sub_part_words(hooks, t, a + n, a, n, 0);      // a1 - a0
      call_sub_part_words(hooks, t + n, b, b + n, n, 0);  // b0 - b1
      break;
    case -3:  // a0 < a1, b1 == b0
    case -2:  // a0 < a1, b1 > b0
      call_sub_part_words(hooks, t, a + n, a, n, 0);      // a1 - a0
      call_sub_part_words(hooks, t + n, b + n, b, n, 0);  // b1 - b0
      neg = true;
      break;
    case -1:  // a0 == a1
    case 0:
    case 1:
      zero = true;
      // LibreSSL still issues the subtractions for constant-time-ish shape.
      call_sub_part_words(hooks, t, a, a + n, n, 0);
      call_sub_part_words(hooks, t + n, b + n, b, n, 0);
      break;
    case 2:  // a0 > a1, b1 < b0
      call_sub_part_words(hooks, t, a, a + n, n, 0);      // a0 - a1
      call_sub_part_words(hooks, t + n, b, b + n, n, 0);  // b0 - b1
      neg = true;
      break;
    case 3:  // a0 > a1, b1 == b0
    case 4:  // a0 > a1, b1 > b0
      call_sub_part_words(hooks, t, a, a + n, n, 0);      // a0 - a1
      call_sub_part_words(hooks, t + n, b + n, b, n, 0);  // b1 - b0
      break;
    default: break;
  }
  if (c1 == 0 || c2 == 0) zero = true;

  // Recursive products:
  //   r[0..n2)   = a0 * b0
  //   r[n2..2n2) = a1 * b1
  //   t[n2..2n2) = |a0 - a1| * |b1 - b0|
  bn_mul_recursive(r, a, b, n, t + 2 * n2, hooks);
  bn_mul_recursive(r + n2, a + n, b + n, n, t + 2 * n2, hooks);
  if (!zero) {
    bn_mul_recursive(t + n2, t, t + n, n, t + 2 * n2, hooks);
  } else {
    std::memset(t + n2, 0, static_cast<std::size_t>(n2) * sizeof(Limb));
  }

  // Combine: mid = a0b0 + a1b1 + sign * |a0-a1||b1-b0|, added at offset n.
  // (a0b1 + a1b0 = a0b0 + a1b1 + (a0-a1)(b1-b0).)
  std::vector<Limb> mid(static_cast<std::size_t>(n2) + 1, 0);
  std::memcpy(mid.data(), r, static_cast<std::size_t>(n2) * sizeof(Limb));
  mid[static_cast<std::size_t>(n2)] =
      add_into(mid.data(), r + n2, n2, n2);  // a0b0 + a1b1
  if (!zero) {
    if (neg) {
      sub_into(mid.data(), t + n2, n2, n2 + 1);
    } else {
      mid[static_cast<std::size_t>(n2)] += add_into(mid.data(), t + n2, n2, n2);
    }
  }
  add_into(r + n, mid.data(), n2 + 1, 2 * n2 - n);
}

// --- BigNum --------------------------------------------------------------------

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<Limb>(v));
    if ((v >> kLimbBits) != 0) limbs_.push_back(static_cast<Limb>(v >> kLimbBits));
  }
}

void BigNum::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_limbs(std::vector<Limb> limbs) {
  BigNum n;
  n.limbs_ = std::move(limbs);
  n.trim();
  return n;
}

BigNum BigNum::from_hex(const std::string& hex) {
  BigNum n;
  if (hex.empty()) throw std::invalid_argument("BigNum::from_hex: empty string");
  int shift = 0;
  Limb current = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    const char c = *it;
    Limb digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<Limb>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<Limb>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<Limb>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("BigNum::from_hex: bad character");
    }
    current |= digit << shift;
    shift += 4;
    if (shift == kLimbBits) {
      n.limbs_.push_back(current);
      current = 0;
      shift = 0;
    }
  }
  if (current != 0) n.limbs_.push_back(current);
  n.trim();
  return n;
}

BigNum BigNum::from_bytes_be(const std::uint8_t* data, std::size_t len) {
  BigNum n;
  for (std::size_t i = 0; i < len; ++i) {
    n = n.shift_left(8);
    if (data[i] != 0 || !n.limbs_.empty()) {
      if (n.limbs_.empty()) n.limbs_.push_back(0);
      n.limbs_[0] |= data[i];
    }
  }
  n.trim();
  return n;
}

BigNum BigNum::random(std::function<std::uint64_t()> next_u64, int bits) {
  if (bits <= 0) return BigNum();
  const int limbs = (bits + kLimbBits - 1) / kLimbBits;
  std::vector<Limb> v(static_cast<std::size_t>(limbs));
  for (auto& l : v) l = static_cast<Limb>(next_u64());
  // Mask to the requested width and force the top bit so bit_length == bits.
  const int top_bits = bits - (limbs - 1) * kLimbBits;
  Limb mask = top_bits == kLimbBits ? ~Limb{0} : ((Limb{1} << top_bits) - 1);
  v.back() &= mask;
  v.back() |= Limb{1} << (top_bits - 1);
  return from_limbs(std::move(v));
}

std::string BigNum::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = kLimbBits - 4; shift >= 0; shift -= 4) {
      out.push_back(kHex[(*it >> shift) & 0xF]);
    }
  }
  const std::size_t nz = out.find_first_not_of('0');
  return nz == std::string::npos ? "0" : out.substr(nz);
}

int BigNum::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return static_cast<int>(limbs_.size() - 1) * kLimbBits +
         (kLimbBits - std::countl_zero(limbs_.back()));
}

bool BigNum::bit(int i) const noexcept {
  const auto limb = static_cast<std::size_t>(i / kLimbBits);
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

std::uint64_t BigNum::to_u64() const noexcept {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= std::uint64_t{limbs_[1]} << kLimbBits;
  return v;
}

int BigNum::compare(const BigNum& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() > other.limbs_.size() ? 1 : -1;
  }
  if (limbs_.empty()) return 0;
  return bn_cmp_words(limbs_.data(), other.limbs_.data(), static_cast<int>(limbs_.size()));
}

BigNum BigNum::add(const BigNum& other) const {
  const auto n = std::max(limbs_.size(), other.limbs_.size());
  std::vector<Limb> r(n + 1, 0);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const DoubleLimb s = carry + (i < limbs_.size() ? limbs_[i] : 0) +
                         (i < other.limbs_.size() ? other.limbs_[i] : 0);
    r[i] = static_cast<Limb>(s);
    carry = s >> kLimbBits;
  }
  r[n] = static_cast<Limb>(carry);
  return from_limbs(std::move(r));
}

BigNum BigNum::sub(const BigNum& other) const {
  if (compare(other) < 0) throw std::underflow_error("BigNum::sub: negative result");
  std::vector<Limb> r(limbs_.size(), 0);
  DoubleLimb borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const DoubleLimb d =
        DoubleLimb{limbs_[i]} - (i < other.limbs_.size() ? other.limbs_[i] : 0) - borrow;
    r[i] = static_cast<Limb>(d);
    borrow = (d >> kLimbBits) & 1;
  }
  return from_limbs(std::move(r));
}

BigNum BigNum::shift_left(int bits) const {
  if (limbs_.empty() || bits == 0) return *this;
  const int limb_shift = bits / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  std::vector<Limb> r(limbs_.size() + static_cast<std::size_t>(limb_shift) + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::size_t j = i + static_cast<std::size_t>(limb_shift);
    r[j] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) r[j + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
  }
  return from_limbs(std::move(r));
}

BigNum BigNum::shift_right(int bits) const {
  const int limb_shift = bits / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  if (static_cast<std::size_t>(limb_shift) >= limbs_.size()) return BigNum();
  std::vector<Limb> r(limbs_.size() - static_cast<std::size_t>(limb_shift), 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    const std::size_t j = i + static_cast<std::size_t>(limb_shift);
    r[i] = bit_shift == 0 ? limbs_[j] : (limbs_[j] >> bit_shift);
    if (bit_shift != 0 && j + 1 < limbs_.size()) {
      r[i] |= limbs_[j + 1] << (kLimbBits - bit_shift);
    }
  }
  return from_limbs(std::move(r));
}

BigNum BigNum::mul(const BigNum& other, const KernelHooks* hooks) const {
  if (is_zero() || other.is_zero()) return BigNum();

  const std::size_t max_len = std::max(limbs_.size(), other.limbs_.size());
  if (max_len > kKaratsubaBase) {
    // Pad both operands to the next power of two and run Karatsuba with the
    // LibreSSL recursion (and its hookable bn_sub_part_words pairs).
    const auto n2 = static_cast<std::size_t>(std::bit_ceil(max_len));
    std::vector<Limb> a(n2, 0);
    std::vector<Limb> b(n2, 0);
    std::copy(limbs_.begin(), limbs_.end(), a.begin());
    std::copy(other.limbs_.begin(), other.limbs_.end(), b.begin());
    std::vector<Limb> r(2 * n2, 0);
    std::vector<Limb> t(4 * n2, 0);
    bn_mul_recursive(r.data(), a.data(), b.data(), static_cast<int>(n2), t.data(), hooks);
    return from_limbs(std::move(r));
  }

  std::vector<Limb> r(limbs_.size() + other.limbs_.size(), 0);
  bn_mul_normal(r.data(), limbs_.data(), static_cast<int>(limbs_.size()), other.limbs_.data(),
                static_cast<int>(other.limbs_.size()));
  return from_limbs(std::move(r));
}

DivMod BigNum::divmod(const BigNum& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigNum: division by zero");
  if (compare(divisor) < 0) return {BigNum(), *this};
  if (divisor.limbs_.size() == 1) {
    // Single-limb fast path.
    const Limb d = divisor.limbs_[0];
    std::vector<Limb> q(limbs_.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const DoubleLimb cur = (rem << kLimbBits) | limbs_[i];
      q[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), BigNum(static_cast<std::uint64_t>(rem))};
  }

  // Knuth Algorithm D.  Normalise so the divisor's top limb has its high bit
  // set, then estimate quotient digits limb by limb.
  const int shift = std::countl_zero(divisor.limbs_.back());
  const BigNum u = shift_left(shift);
  const BigNum v = divisor.shift_left(shift);
  const auto n = static_cast<int>(v.limbs_.size());
  const auto m = static_cast<int>(u.limbs_.size()) - n;

  std::vector<Limb> un(u.limbs_);
  un.push_back(0);  // room for the virtual high limb
  const std::vector<Limb>& vn = v.limbs_;
  std::vector<Limb> q(static_cast<std::size_t>(m) + 1, 0);

  for (int j = m; j >= 0; --j) {
    const DoubleLimb top =
        (DoubleLimb{un[static_cast<std::size_t>(j + n)]} << kLimbBits) |
        un[static_cast<std::size_t>(j + n - 1)];
    DoubleLimb qhat = top / vn[static_cast<std::size_t>(n - 1)];
    DoubleLimb rhat = top % vn[static_cast<std::size_t>(n - 1)];
    while (qhat >= (DoubleLimb{1} << kLimbBits) ||
           qhat * vn[static_cast<std::size_t>(n - 2)] >
               ((rhat << kLimbBits) | un[static_cast<std::size_t>(j + n - 2)])) {
      --qhat;
      rhat += vn[static_cast<std::size_t>(n - 1)];
      if (rhat >= (DoubleLimb{1} << kLimbBits)) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    DoubleLimb borrow = 0;
    DoubleLimb carry = 0;
    for (int i = 0; i < n; ++i) {
      const DoubleLimb p = qhat * vn[static_cast<std::size_t>(i)] + carry;
      carry = p >> kLimbBits;
      const DoubleLimb d =
          DoubleLimb{un[static_cast<std::size_t>(j + i)]} - static_cast<Limb>(p) - borrow;
      un[static_cast<std::size_t>(j + i)] = static_cast<Limb>(d);
      borrow = (d >> kLimbBits) & 1;
    }
    const DoubleLimb d = DoubleLimb{un[static_cast<std::size_t>(j + n)]} - carry - borrow;
    un[static_cast<std::size_t>(j + n)] = static_cast<Limb>(d);

    if ((d >> kLimbBits) & 1) {
      // qhat was one too large: add v back.
      --qhat;
      DoubleLimb c = 0;
      for (int i = 0; i < n; ++i) {
        const DoubleLimb s =
            DoubleLimb{un[static_cast<std::size_t>(j + i)]} + vn[static_cast<std::size_t>(i)] + c;
        un[static_cast<std::size_t>(j + i)] = static_cast<Limb>(s);
        c = s >> kLimbBits;
      }
      un[static_cast<std::size_t>(j + n)] = static_cast<Limb>(un[static_cast<std::size_t>(j + n)] + c);
    }
    q[static_cast<std::size_t>(j)] = static_cast<Limb>(qhat);
  }

  BigNum quotient = from_limbs(std::move(q));
  un.resize(static_cast<std::size_t>(n));
  BigNum remainder = from_limbs(std::move(un)).shift_right(shift);
  return {std::move(quotient), std::move(remainder)};
}

BigNum BigNum::mod(const BigNum& modulus) const { return divmod(modulus).remainder; }

BigNum BigNum::modexp(const BigNum& exponent, const BigNum& modulus,
                      const KernelHooks* hooks) const {
  if (modulus.is_zero()) throw std::domain_error("BigNum::modexp: zero modulus");
  BigNum result(1);
  result = result.mod(modulus);
  BigNum base = mod(modulus);
  const int bits = exponent.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    result = result.mul(result, hooks).mod(modulus);
    if (exponent.bit(i)) {
      result = result.mul(base, hooks).mod(modulus);
    }
  }
  return result;
}

}  // namespace bignum
