// Arbitrary-precision arithmetic with LibreSSL-shaped internals.
//
// The Glamdring experiment of the paper (§5.2.3) partitions LibreSSL and
// ends up with `bn_sub_part_words` behind an ecall, called in pairs by the
// Karatsuba routine `bn_mul_recursive` — the SISC anti-pattern sgx-perf
// detects.  To reproduce that emergently, this module implements real
// multi-precision arithmetic with the same kernel structure: a portable
// `bn_sub_part_words`, a recursive Karatsuba `bn_mul_recursive` that issues
// exactly two successive `bn_sub_part_words` calls per recursion step (via a
// hookable indirection so the workload can route them through an enclave),
// schoolbook multiplication, Knuth-D division and modular exponentiation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bignum {

using Limb = std::uint32_t;
using DoubleLimb = std::uint64_t;

inline constexpr int kLimbBits = 32;

// --- low-level kernels (LibreSSL bn_asm-style, little-endian limb arrays) ---

/// r = a + b over n limbs; returns the carry out (0/1).
Limb bn_add_words(Limb* r, const Limb* a, const Limb* b, int n) noexcept;

/// r = a - b over n limbs; returns the borrow out (0/1).
Limb bn_sub_words(Limb* r, const Limb* a, const Limb* b, int n) noexcept;

/// LibreSSL's ragged-tail subtraction: r = a - b where a has cl+dl limbs and
/// b has cl limbs when dl > 0 (or a has cl and b has cl-dl... the SDK keeps
/// the general form; here dl >= 0 means a is longer by dl limbs, dl < 0
/// means b is longer by -dl limbs).  Returns the borrow out.
Limb bn_sub_part_words(Limb* r, const Limb* a, const Limb* b, int cl, int dl) noexcept;

/// Compares two n-limb numbers: -1, 0 or 1.
int bn_cmp_words(const Limb* a, const Limb* b, int n) noexcept;

/// Schoolbook product: r[0..na+nb) = a[0..na) * b[0..nb).  r must not alias.
void bn_mul_normal(Limb* r, const Limb* a, int na, const Limb* b, int nb) noexcept;

/// Hook for routing `bn_sub_part_words` call sites (e.g. through an enclave).
/// Also counts invocations in instrumentation scenarios.
struct KernelHooks {
  std::function<Limb(Limb* r, const Limb* a, const Limb* b, int cl, int dl)> sub_part_words;
};

/// Karatsuba product of two n2-limb numbers (n2 a power of two >= 2):
/// r[0..2*n2) = a * b, using t[0..2*n2) as scratch.  Each recursion step
/// issues two successive bn_sub_part_words calls (through `hooks` when its
/// sub_part_words member is set), mirroring LibreSSL's structure:
///
///   switch (c1 * 3 + c2) {
///     case -4: bn_sub_part_words(t, &a[n], a, ...);      // a1 - a0
///              bn_sub_part_words(&t[n], b, &b[n], ...);  // b0 - b1
///     ...
///   }
void bn_mul_recursive(Limb* r, const Limb* a, const Limb* b, int n2, Limb* t,
                      const KernelHooks* hooks = nullptr);

/// Limbs below which bn_mul_recursive falls back to bn_mul_normal.
inline constexpr int kKaratsubaBase = 8;

// --- the BigNum value type ----------------------------------------------------

struct DivMod;

/// Unsigned arbitrary-precision integer (the workloads need no negatives at
/// the value level; sign handling lives inside the Karatsuba kernels).
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);

  /// Parses lowercase/uppercase hex (no 0x prefix).  Throws on bad input.
  static BigNum from_hex(const std::string& hex);
  /// Builds from big-endian bytes (e.g. a SHA-256 digest).
  static BigNum from_bytes_be(const std::uint8_t* data, std::size_t len);
  /// `bits` pseudo-random bits from the caller's generator (top bit set).
  static BigNum random(std::function<std::uint64_t()> next_u64, int bits);

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] int bit_length() const noexcept;
  [[nodiscard]] bool bit(int i) const noexcept;
  [[nodiscard]] std::size_t limb_count() const noexcept { return limbs_.size(); }
  [[nodiscard]] std::uint64_t to_u64() const noexcept;  // low 64 bits

  [[nodiscard]] int compare(const BigNum& other) const noexcept;
  bool operator==(const BigNum& other) const noexcept { return compare(other) == 0; }
  bool operator<(const BigNum& other) const noexcept { return compare(other) < 0; }
  bool operator<=(const BigNum& other) const noexcept { return compare(other) <= 0; }
  bool operator>(const BigNum& other) const noexcept { return compare(other) > 0; }

  [[nodiscard]] BigNum add(const BigNum& other) const;
  /// this - other; requires this >= other (throws std::underflow_error).
  [[nodiscard]] BigNum sub(const BigNum& other) const;
  [[nodiscard]] BigNum shift_left(int bits) const;
  [[nodiscard]] BigNum shift_right(int bits) const;

  /// Product; routed through bn_mul_recursive for large operands (optionally
  /// via `hooks`), bn_mul_normal otherwise.
  [[nodiscard]] BigNum mul(const BigNum& other, const KernelHooks* hooks = nullptr) const;

  /// Quotient and remainder (Knuth Algorithm D).  Throws on division by zero.
  [[nodiscard]] DivMod divmod(const BigNum& divisor) const;
  [[nodiscard]] BigNum mod(const BigNum& modulus) const;

  /// this^exponent mod modulus, square-and-multiply; multiplications are
  /// routed through `hooks` so workloads can enclave them.
  [[nodiscard]] BigNum modexp(const BigNum& exponent, const BigNum& modulus,
                              const KernelHooks* hooks = nullptr) const;

  [[nodiscard]] const std::vector<Limb>& limbs() const noexcept { return limbs_; }

 private:
  void trim() noexcept;
  static BigNum from_limbs(std::vector<Limb> limbs);

  std::vector<Limb> limbs_;  // little-endian, trimmed (no leading zeros)
};

struct DivMod {
  BigNum quotient;
  BigNum remainder;
};

}  // namespace bignum
