// Certificate signing on top of the bignum library — the workload of the
// paper's Glamdring experiment (§5.2.3: "the signing benchmark of the paper
// (signing certificates) ... tries to sign as many certificates as
// possible").
//
// The signature primitive is an RSA-style modular exponentiation of the
// certificate's SHA-256 digest with a private exponent d modulo n.  Key
// material is generated deterministically from a seed (no primality needed
// for a performance workload; the arithmetic shape — modexp via Karatsuba —
// is what matters).
#pragma once

#include <cstdint>
#include <string>

#include "bignum/bignum.hpp"

namespace bignum {

/// A toy X.509-ish certificate body.
struct Certificate {
  std::string subject;
  std::string issuer;
  std::uint64_t serial = 0;
  std::uint64_t not_before = 0;
  std::uint64_t not_after = 0;
  std::string public_key_hex;

  /// Canonical byte serialisation (what gets hashed and signed).
  [[nodiscard]] std::string serialize() const;
};

class Signer {
 public:
  /// Deterministic "key": `modulus_bits` odd modulus and an exponent of
  /// `exponent_bits` bits derived from `seed`.
  Signer(std::uint64_t seed, int modulus_bits = 1024, int exponent_bits = 64);

  /// Signs the certificate: modexp(SHA-256(cert), d, n).  Multiplications
  /// inside the modexp are routed through `hooks` when provided — this is
  /// the seam the Glamdring workload uses to place bn kernels in an enclave.
  [[nodiscard]] BigNum sign(const Certificate& cert, const KernelHooks* hooks = nullptr) const;

  /// Recomputes the signature and compares (stand-in for verification).
  [[nodiscard]] bool check(const Certificate& cert, const BigNum& signature,
                           const KernelHooks* hooks = nullptr) const;

  [[nodiscard]] const BigNum& modulus() const noexcept { return n_; }
  [[nodiscard]] const BigNum& exponent() const noexcept { return d_; }

 private:
  BigNum n_;
  BigNum d_;
};

/// Deterministically generates the i-th test certificate.
[[nodiscard]] Certificate make_test_certificate(std::uint64_t seed, std::uint64_t index);

}  // namespace bignum
