#include "bignum/signing.hpp"

#include "crypto/sha256.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace bignum {

std::string Certificate::serialize() const {
  return support::format("subject=%s;issuer=%s;serial=%llu;nb=%llu;na=%llu;pk=%s",
                         subject.c_str(), issuer.c_str(),
                         static_cast<unsigned long long>(serial),
                         static_cast<unsigned long long>(not_before),
                         static_cast<unsigned long long>(not_after), public_key_hex.c_str());
}

Signer::Signer(std::uint64_t seed, int modulus_bits, int exponent_bits) {
  support::Rng rng(seed);
  auto next = [&rng] { return rng.next_u64(); };
  n_ = BigNum::random(next, modulus_bits);
  if (!n_.is_odd()) n_ = n_.add(BigNum(1));
  d_ = BigNum::random(next, exponent_bits);
}

BigNum Signer::sign(const Certificate& cert, const KernelHooks* hooks) const {
  const std::string body = cert.serialize();
  const crypto::Sha256Digest digest = crypto::sha256(body);
  const BigNum h = BigNum::from_bytes_be(digest.data(), digest.size());
  return h.modexp(d_, n_, hooks);
}

bool Signer::check(const Certificate& cert, const BigNum& signature,
                   const KernelHooks* hooks) const {
  return sign(cert, hooks) == signature;
}

Certificate make_test_certificate(std::uint64_t seed, std::uint64_t index) {
  support::Rng rng(seed ^ (index * 0x9E3779B97F4A7C15ull));
  Certificate cert;
  cert.subject = "CN=host-" + rng.next_string(12) + ".example.com";
  cert.issuer = "CN=Repro Test CA";
  cert.serial = index;
  cert.not_before = 1'600'000'000 + index;
  cert.not_after = cert.not_before + 86'400 * 365;
  cert.public_key_hex = rng.next_string(64);
  return cert;
}

}  // namespace bignum
