// What-if scenarios over a recorded trace.
//
// A Scenario is a declarative bundle of transformation passes the replay
// engine applies to a recorded TraceDatabase before re-costing it: convert
// call sites to switchless calls (with a bounded worker pool), eliminate
// transition overhead of a site (move the caller in/out per Table 1), merge
// Eq.3 batch/merge candidates into their indirect parents, swap the
// transition-cost profile (unpatched/Spectre/L1TF, §2.3.1), and resize the
// simulated EPC.  Scenarios are plain data so they can be built by the
// analyser (one per recommendation), by the CLI (ad-hoc flags), or by tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sgxsim/cost_model.hpp"
#include "tracedb/query.hpp"

namespace replay {

/// Serve every instance of `site` (an ecall) through `workers` in-enclave
/// worker threads instead of EENTER/EEXIT.  Instances that find all workers
/// busy fall back to a full transition, exactly like the SDK does.
struct SwitchlessSpec {
  tracedb::CallKey site;
  std::size_t workers = 1;
};

/// Remove the transition overhead of every instance of `site`: for an ecall,
/// the caller moves inside the enclave (or the work moves out); for an
/// ocall, its functionality is duplicated inside / the caller moves out.
/// The body time stays — only the crossing disappears.
struct EliminateSpec {
  tracedb::CallKey site;
};

/// Eq.3 batching/merging: instances of `site` that have an indirect parent
/// ride along with that parent's transition and lose their own.  When
/// `partner` is set, only instances whose indirect parent is an instance of
/// `partner` are merged (the SDSC case); otherwise any indirect parent
/// qualifies (the SISC batch case).
struct MergeSpec {
  tracedb::CallKey site;
  std::optional<tracedb::CallKey> partner;
};

/// One complete what-if configuration.  All passes compose: their per-call
/// time deltas are additive and the re-timing walk clamps each call's self
/// time at zero.
struct Scenario {
  std::string name;
  std::vector<SwitchlessSpec> switchless;
  std::vector<EliminateSpec> eliminate;
  std::vector<MergeSpec> merge;
  /// Re-cost every transition under this patch level instead of the one the
  /// trace was recorded with.
  std::optional<sgxsim::PatchLevel> cost_profile;
  /// Re-simulate the recorded fault sequence with this EPC capacity (pages).
  std::optional<std::size_t> epc_pages;
};

/// Per-site outcome of a switchless pass.
struct SwitchlessOutcome {
  tracedb::CallKey site;
  std::string site_name;
  std::size_t workers = 0;
  std::uint64_t served = 0;     // instances handled by a worker
  std::uint64_t fallbacks = 0;  // all workers busy -> full transition kept
  std::uint64_t busy_ns = 0;    // worker-ns spent serving requests
  /// Worker-ns spent busy-waiting on an empty queue over the replayed run:
  /// workers x replayed span - busy_ns.  The cost side of switchless.
  std::uint64_t wasted_worker_ns = 0;
};

/// Re-costed outcome of one scenario.
struct ScenarioResult {
  std::string name;
  std::uint64_t recorded_span_ns = 0;  // last call end - first call start
  std::uint64_t replayed_span_ns = 0;
  std::uint64_t transitions_removed = 0;  // eliminated + merged + switchless-served
  std::uint64_t page_faults_before = 0;   // recorded page-in events (EPC pass only)
  std::uint64_t page_faults_after = 0;
  std::vector<SwitchlessOutcome> switchless;

  [[nodiscard]] double speedup() const noexcept {
    if (recorded_span_ns == 0 || replayed_span_ns == 0) return 1.0;
    return static_cast<double>(recorded_span_ns) / static_cast<double>(replayed_span_ns);
  }
  [[nodiscard]] std::int64_t saved_ns() const noexcept {
    return static_cast<std::int64_t>(recorded_span_ns) -
           static_cast<std::int64_t>(replayed_span_ns);
  }
};

/// Result of replaying the *unmodified* trace: the empty scenario must
/// reproduce the recorded span, and the recorded durations must be
/// consistent with the cost model's transition floor.
struct ValidationResult {
  std::uint64_t recorded_span_ns = 0;
  std::uint64_t replayed_span_ns = 0;
  /// |replayed - recorded| / recorded.
  double span_error = 0.0;
  /// Ecalls whose recorded duration is below the modeled transition floor
  /// (full ecall + AEX costs) — nonzero means the trace and the cost model
  /// disagree and predictions will be unreliable.
  std::uint64_t ecalls_below_floor = 0;
  /// Total floor deficit over total recorded ecall time.
  double floor_error = 0.0;

  [[nodiscard]] bool within(double tolerance = 0.01) const noexcept {
    return span_error <= tolerance;
  }
};

/// Result of a switchless worker-count sweep over one site.
struct SweepResult {
  tracedb::CallKey site;
  std::string site_name;
  /// One entry per worker count, ascending from the sweep's lower bound.
  std::vector<ScenarioResult> points;
  /// Smallest worker count attaining the minimum replayed span (adding
  /// workers past this point only wastes cycles).
  std::size_t best_workers = 0;
  double best_speedup = 1.0;
};

}  // namespace replay
