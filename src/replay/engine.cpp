#include "replay/engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <thread>

#include "tracedb/query.hpp"

namespace replay {

using sgxsim::CostModel;
using tracedb::CallIndex;
using tracedb::CallKey;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::kNoParent;

namespace {

/// key of the call record at `idx`.
CallKey key_of(const CallRecord& c) noexcept {
  return CallKey{c.enclave_id, c.type, c.call_id};
}

/// u + d, saturating at 0 from below.
std::uint64_t clamp_add(std::uint64_t u, std::int64_t d) noexcept {
  if (d >= 0) return u + static_cast<std::uint64_t>(d);
  const auto neg = static_cast<std::uint64_t>(-d);
  return u > neg ? u - neg : 0;
}

}  // namespace

ReplayEngine::ReplayEngine(const tracedb::TraceDatabase& db, ReplayConfig config)
    : db_(db), config_(config) {
  const auto& calls = db_.calls();
  children_.resize(calls.size());

  // Children lists and per-thread top-level sequences.  Trace order is start
  // order (merged traces are globally time-sorted), so appending in index
  // order keeps every sequence start-ordered.
  std::map<tracedb::ThreadId, std::size_t> thread_slot;
  std::uint64_t min_start = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_end = 0;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    min_start = std::min(min_start, c.start_ns);
    max_end = std::max(max_end, c.end_ns);
    if (c.parent != kNoParent) {
      children_[static_cast<std::size_t>(c.parent)].push_back(static_cast<CallIndex>(i));
    } else {
      const auto [it, inserted] = thread_slot.emplace(c.thread_id, top_level_.size());
      if (inserted) top_level_.emplace_back();
      top_level_[it->second].push_back(static_cast<CallIndex>(i));
    }
  }
  if (!calls.empty()) {
    recorded_start_ = min_start;
    recorded_span_ = max_end - min_start;
  }

  indirect_ = tracedb::indirect_parents(db_);

  // Paging attribution: the innermost recorded call of the same enclave whose
  // window contains the fault timestamp.  Paging records carry no thread id,
  // so "innermost" means latest-starting containing call across all threads.
  const auto& paging = db_.paging();
  paging_call_.assign(paging.size(), kNoParent);
  std::vector<std::uint64_t> starts;
  starts.reserve(calls.size());
  for (const auto& c : calls) starts.push_back(c.start_ns);
  for (std::size_t p = 0; p < paging.size(); ++p) {
    const auto& pr = paging[p];
    auto i = static_cast<std::size_t>(
        std::upper_bound(starts.begin(), starts.end(), pr.timestamp_ns) - starts.begin());
    // Bounded backwards scan; containing calls nest, so the first hit (the
    // latest start at or before the fault) is the innermost.
    for (std::size_t scanned = 0; i > 0 && scanned < 4096; ++scanned) {
      --i;
      const auto& c = calls[i];
      if (c.enclave_id == pr.enclave_id && c.start_ns <= pr.timestamp_ns &&
          c.end_ns > pr.timestamp_ns) {
        paging_call_[p] = static_cast<CallIndex>(i);
        break;
      }
    }
  }
}

std::uint64_t ReplayEngine::apply_passes(const Scenario& scenario,
                                         std::vector<std::int64_t>& delta,
                                         ScenarioResult& result) const {
  const auto& calls = db_.calls();
  const CostModel& old_cost = config_.recorded_cost;
  std::uint64_t unattributed_saved = 0;

  // Ocall transition costs live in the *parent ecall's* self time (§4.1.2:
  // ocall timestamps exclude the transitions around the untrusted stub), so
  // ocall-site savings are written onto the direct parent when there is one.
  const auto remove_ocall_transition = [&](CallIndex idx) {
    const auto& c = calls[static_cast<std::size_t>(idx)];
    const CallIndex target = c.parent != kNoParent ? c.parent : idx;
    delta[static_cast<std::size_t>(target)] -=
        static_cast<std::int64_t>(old_cost.full_ocall_ns());
  };

  // --- switchless conversion (worker occupancy included) --------------------
  for (const auto& spec : scenario.switchless) {
    SwitchlessOutcome outcome;
    outcome.site = spec.site;
    outcome.site_name =
        db_.name_of(spec.site.enclave_id, spec.site.type, spec.site.call_id);
    outcome.workers = std::max<std::size_t>(1, spec.workers);
    if (spec.site.type != CallType::kEcall) {  // only ecalls have a fast path
      result.switchless.push_back(std::move(outcome));
      continue;
    }
    const auto gain = static_cast<std::int64_t>(old_cost.switchless_call_ns) -
                      static_cast<std::int64_t>(old_cost.full_ecall_ns());
    std::vector<std::uint64_t> busy_until(outcome.workers, 0);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const auto& c = calls[i];
      if (key_of(c) != spec.site) continue;
      // Earliest-available worker; ties resolve to the lowest index.
      std::size_t w = 0;
      for (std::size_t j = 1; j < busy_until.size(); ++j) {
        if (busy_until[j] < busy_until[w]) w = j;
      }
      if (busy_until[w] > c.start_ns) {
        ++outcome.fallbacks;  // all workers busy: full transition stays
        continue;
      }
      delta[i] += gain;
      const std::uint64_t serve =
          std::max(clamp_add(c.duration(), gain), old_cost.switchless_call_ns);
      busy_until[w] = c.start_ns + serve;
      outcome.busy_ns += serve;
      ++outcome.served;
      ++result.transitions_removed;
    }
    result.switchless.push_back(std::move(outcome));
  }

  // --- eliminate transitions (move caller in / out) --------------------------
  for (const auto& spec : scenario.eliminate) {
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const auto& c = calls[i];
      if (key_of(c) != spec.site) continue;
      if (c.type == CallType::kEcall) {
        delta[i] -= static_cast<std::int64_t>(old_cost.full_ecall_ns()) +
                    static_cast<std::int64_t>(c.aex_count) *
                        static_cast<std::int64_t>(old_cost.aex_ns);
      } else {
        remove_ocall_transition(static_cast<CallIndex>(i));
      }
      ++result.transitions_removed;
    }
  }

  // --- Eq.3 batch / merge into the indirect parent ---------------------------
  for (const auto& spec : scenario.merge) {
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const auto& c = calls[i];
      if (key_of(c) != spec.site) continue;
      const CallIndex ip = indirect_[i];
      if (ip == kNoParent) continue;  // first of its run keeps its transition
      if (spec.partner &&
          key_of(calls[static_cast<std::size_t>(ip)]) != *spec.partner) {
        continue;
      }
      if (c.type == CallType::kEcall) {
        delta[i] -= static_cast<std::int64_t>(old_cost.full_ecall_ns());
      } else {
        remove_ocall_transition(static_cast<CallIndex>(i));
      }
      ++result.transitions_removed;
    }
  }

  // --- transition-cost profile swap (§2.3.1) ---------------------------------
  if (scenario.cost_profile) {
    const CostModel new_cost = CostModel::preset(*scenario.cost_profile);
    const auto d_ecall = static_cast<std::int64_t>(new_cost.full_ecall_ns()) -
                         static_cast<std::int64_t>(old_cost.full_ecall_ns());
    const auto d_ocall = static_cast<std::int64_t>(new_cost.full_ocall_ns()) -
                         static_cast<std::int64_t>(old_cost.full_ocall_ns());
    const auto d_aex = static_cast<std::int64_t>(new_cost.aex_ns) -
                       static_cast<std::int64_t>(old_cost.aex_ns);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const auto& c = calls[i];
      if (c.type == CallType::kEcall) {
        delta[i] += d_ecall + static_cast<std::int64_t>(c.aex_count) * d_aex;
      } else {
        const CallIndex target = c.parent != kNoParent ? c.parent : static_cast<CallIndex>(i);
        delta[static_cast<std::size_t>(target)] += d_ocall;
      }
    }
  }

  // --- EPC resize: LRU over the recorded fault sequence ----------------------
  const auto& paging = db_.paging();
  for (const auto& pr : paging) {
    if (pr.direction == tracedb::PageDirection::kPageIn) ++result.page_faults_before;
  }
  result.page_faults_after = result.page_faults_before;
  if (scenario.epc_pages) {
    const std::size_t capacity = std::max<std::size_t>(1, *scenario.epc_pages);
    const std::uint64_t saved_per_fault = old_cost.page_fault_ns + old_cost.page_in_ns;
    // Per-enclave LRU keyed by fault recency (the only recency signal the
    // trace has).  tick orders are per-engine deterministic.
    struct Lru {
      std::map<std::uint64_t, std::uint64_t> page_tick;  // page -> last tick
      std::map<std::uint64_t, std::uint64_t> tick_page;  // tick -> page
    };
    std::map<tracedb::EnclaveId, Lru> lru;
    std::uint64_t tick = 0;
    for (std::size_t p = 0; p < paging.size(); ++p) {
      const auto& pr = paging[p];
      if (pr.direction != tracedb::PageDirection::kPageIn) continue;
      Lru& l = lru[pr.enclave_id];
      ++tick;
      if (const auto it = l.page_tick.find(pr.page_number); it != l.page_tick.end()) {
        // Still resident at this capacity: the recorded fault disappears.
        l.tick_page.erase(it->second);
        l.tick_page.emplace(tick, pr.page_number);
        it->second = tick;
        --result.page_faults_after;
        if (paging_call_[p] != kNoParent) {
          delta[static_cast<std::size_t>(paging_call_[p])] -=
              static_cast<std::int64_t>(saved_per_fault);
        } else {
          unattributed_saved += saved_per_fault;
        }
        continue;
      }
      l.page_tick.emplace(pr.page_number, tick);
      l.tick_page.emplace(tick, pr.page_number);
      if (l.page_tick.size() > capacity) {
        const auto victim = l.tick_page.begin();
        l.page_tick.erase(victim->second);
        l.tick_page.erase(victim);
      }
    }
  }
  return unattributed_saved;
}

std::uint64_t ReplayEngine::retime_call(CallIndex idx, std::uint64_t new_start,
                                        const std::vector<std::int64_t>& delta,
                                        Retimed& out) const {
  const auto& calls = db_.calls();
  const auto& c = calls[static_cast<std::size_t>(idx)];
  out.start_ns[static_cast<std::size_t>(idx)] = new_start;

  // Walk the call's self-time segments (before / between / after its nested
  // calls), absorbing the delta.  A negative delta carries across segments
  // until absorbed; whatever the total self time cannot absorb is clamped.
  std::uint64_t t = new_start;
  std::int64_t carry = delta[static_cast<std::size_t>(idx)];
  std::uint64_t prev_end = c.start_ns;
  for (const CallIndex ch : children_[static_cast<std::size_t>(idx)]) {
    const auto& cc = calls[static_cast<std::size_t>(ch)];
    std::uint64_t seg = cc.start_ns >= prev_end ? cc.start_ns - prev_end : 0;
    if (carry != 0) {
      const std::int64_t adjusted = static_cast<std::int64_t>(seg) + carry;
      if (adjusted < 0) {
        carry = adjusted;
        seg = 0;
      } else {
        seg = static_cast<std::uint64_t>(adjusted);
        carry = 0;
      }
    }
    t += seg;
    t = retime_call(ch, t, delta, out);
    prev_end = std::max(prev_end, cc.end_ns);
  }
  std::uint64_t tail = c.end_ns >= prev_end ? c.end_ns - prev_end : 0;
  if (carry != 0) tail = clamp_add(tail, carry);
  t += tail;
  out.end_ns[static_cast<std::size_t>(idx)] = t;
  return t;
}

ReplayEngine::Retimed ReplayEngine::retime(const std::vector<std::int64_t>& delta) const {
  const auto& calls = db_.calls();
  Retimed out;
  out.start_ns.assign(calls.size(), 0);
  out.end_ns.assign(calls.size(), 0);

  for (const auto& seq : top_level_) {
    std::uint64_t prev_new_end = 0;
    std::uint64_t prev_rec_end = 0;
    bool first = true;
    for (const CallIndex idx : seq) {
      const auto& c = calls[static_cast<std::size_t>(idx)];
      std::uint64_t new_start;
      if (first) {
        new_start = c.start_ns;  // the recorded lead-in is not ours to move
        first = false;
      } else {
        // Preserve the recorded think time between consecutive calls.
        const std::uint64_t gap = c.start_ns >= prev_rec_end ? c.start_ns - prev_rec_end : 0;
        new_start = prev_new_end + gap;
      }
      prev_new_end = retime_call(idx, new_start, delta, out);
      prev_rec_end = c.end_ns;
    }
  }

  if (!calls.empty()) {
    std::uint64_t max_end = 0;
    for (const auto e : out.end_ns) max_end = std::max(max_end, e);
    out.span_ns = max_end > recorded_start_ ? max_end - recorded_start_ : 0;
  }
  return out;
}

ScenarioResult ReplayEngine::run(const Scenario& scenario) const {
  ScenarioResult result;
  result.name = scenario.name;
  result.recorded_span_ns = recorded_span_;

  std::vector<std::int64_t> delta(db_.calls().size(), 0);
  const std::uint64_t unattributed = apply_passes(scenario, delta, result);
  const Retimed rt = retime(delta);

  std::uint64_t span = rt.span_ns;
  span = span > unattributed ? span - unattributed : 0;
  result.replayed_span_ns = span;

  for (auto& o : result.switchless) {
    const std::uint64_t pool = static_cast<std::uint64_t>(o.workers) * span;
    o.wasted_worker_ns = pool > o.busy_ns ? pool - o.busy_ns : 0;
  }
  return result;
}

std::vector<ScenarioResult> ReplayEngine::run_all(
    const std::vector<Scenario>& scenarios) const {
  std::vector<ScenarioResult> out(scenarios.size());
  if (scenarios.empty()) return out;

  std::size_t workers = config_.threads != 0
                            ? config_.threads
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, scenarios.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) out[i] = run(scenarios[i]);
    return out;
  }

  // Each scenario writes its own pre-sized slot; the claim order is the only
  // nondeterminism and it does not affect the results.
  std::atomic<std::size_t> next{0};
  const auto body = [&] {
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < scenarios.size();) {
      out[i] = run(scenarios[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(body);
  for (auto& t : pool) t.join();
  return out;
}

ValidationResult ReplayEngine::validate() const {
  ValidationResult v;
  v.recorded_span_ns = recorded_span_;

  Scenario identity;
  identity.name = "identity";
  v.replayed_span_ns = run(identity).replayed_span_ns;
  if (v.recorded_span_ns > 0) {
    const auto diff = v.replayed_span_ns > v.recorded_span_ns
                          ? v.replayed_span_ns - v.recorded_span_ns
                          : v.recorded_span_ns - v.replayed_span_ns;
    v.span_error = static_cast<double>(diff) / static_cast<double>(v.recorded_span_ns);
  }

  // Model-consistency floor: a recorded ecall can never be shorter than its
  // own transitions plus its AEX round trips.
  const CostModel& cost = config_.recorded_cost;
  std::uint64_t deficit = 0;
  std::uint64_t total = 0;
  for (const auto& c : db_.calls()) {
    if (c.type != CallType::kEcall) continue;
    const std::uint64_t floor =
        cost.full_ecall_ns() + static_cast<std::uint64_t>(c.aex_count) * cost.aex_ns;
    total += c.duration();
    if (c.duration() < floor) {
      ++v.ecalls_below_floor;
      deficit += floor - c.duration();
    }
  }
  if (total > 0) v.floor_error = static_cast<double>(deficit) / static_cast<double>(total);
  return v;
}

SweepResult ReplayEngine::sweep_switchless(const CallKey& site, std::size_t min_workers,
                                           std::size_t max_workers) const {
  SweepResult sweep;
  sweep.site = site;
  sweep.site_name = db_.name_of(site.enclave_id, site.type, site.call_id);
  min_workers = std::max<std::size_t>(1, min_workers);
  max_workers = std::max(min_workers, max_workers);

  std::vector<Scenario> scenarios;
  scenarios.reserve(max_workers - min_workers + 1);
  for (std::size_t w = min_workers; w <= max_workers; ++w) {
    Scenario s;
    s.name = "switchless " + sweep.site_name + " x" + std::to_string(w);
    s.switchless.push_back(SwitchlessSpec{site, w});
    scenarios.push_back(std::move(s));
  }
  sweep.points = run_all(scenarios);

  // Smallest worker count attaining the minimum span (strict integer
  // compare, so the choice is deterministic).
  std::size_t best = 0;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].replayed_span_ns < sweep.points[best].replayed_span_ns) best = i;
  }
  if (!sweep.points.empty()) {
    sweep.best_workers = min_workers + best;
    sweep.best_speedup = sweep.points[best].speedup();
  }
  return sweep;
}

tracedb::TraceDatabase ReplayEngine::materialize(const Scenario& scenario) const {
  ScenarioResult result;
  result.recorded_span_ns = recorded_span_;
  std::vector<std::int64_t> delta(db_.calls().size(), 0);
  (void)apply_passes(scenario, delta, result);
  const Retimed rt = retime(delta);

  tracedb::TraceDatabase out;
  for (const auto& e : db_.enclaves()) out.add_enclave(e);
  for (const auto& n : db_.call_names()) out.add_call_name(n);
  const auto& calls = db_.calls();
  for (std::size_t i = 0; i < calls.size(); ++i) {
    CallRecord rec = calls[i];  // keeps type, ids, parent index, AEX count
    rec.start_ns = rt.start_ns[i];
    rec.end_ns = rt.end_ns[i];
    out.add_call(rec);
  }
  return out;
}

}  // namespace replay
