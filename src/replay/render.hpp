// Text and JSON rendering of what-if results (`sgxperf whatif`).
#pragma once

#include <string>
#include <vector>

#include "replay/scenario.hpp"
#include "support/json.hpp"

namespace replay {

/// One-line validation summary (recorded vs identity-replay span).
[[nodiscard]] std::string render_validation(const ValidationResult& v);

/// Ranked scenario table: speedup, saved time, transitions, switchless
/// worker economics.  `results` are printed in the given order.
[[nodiscard]] std::string render_whatif_text(const std::vector<ScenarioResult>& results);

/// Deterministic JSON document (byte-stable for golden tests): validation
/// header plus one object per scenario.
[[nodiscard]] std::string render_whatif_json(const ValidationResult& validation,
                                             const std::vector<ScenarioResult>& results);

/// Writes the "validation" and "scenarios" members into an already-open JSON
/// object, so callers can append their own members (the CLI adds a ranked
/// recommendation list).
void write_whatif_json(support::json::Writer& w, const ValidationResult& validation,
                       const std::vector<ScenarioResult>& results);

/// Worker-sweep table for one site: span/speedup/wasted cycles per count.
[[nodiscard]] std::string render_sweep_text(const SweepResult& sweep,
                                            std::size_t min_workers);

}  // namespace replay
