#include "replay/render.hpp"

#include "support/json.hpp"
#include "support/strutil.hpp"

namespace replay {

using support::format;

std::string render_validation(const ValidationResult& v) {
  std::string out = format(
      "validation: recorded span %s, identity replay %s (error %.4f%%)\n",
      support::format_duration_ns(v.recorded_span_ns).c_str(),
      support::format_duration_ns(v.replayed_span_ns).c_str(), 100.0 * v.span_error);
  if (v.ecalls_below_floor > 0) {
    out += format(
        "  WARNING: %llu ecall(s) shorter than the modeled transition floor "
        "(%.2f%% of ecall time) — check --recorded-profile\n",
        static_cast<unsigned long long>(v.ecalls_below_floor), 100.0 * v.floor_error);
  }
  return out;
}

std::string render_whatif_text(const std::vector<ScenarioResult>& results) {
  std::string out;
  out += format("%-44s %12s %12s %8s %12s\n", "scenario", "recorded", "replayed", "speedup",
                "transitions");
  for (const auto& r : results) {
    out += format("%-44s %12s %12s %7.2fx %12llu\n", r.name.c_str(),
                  support::format_duration_ns(r.recorded_span_ns).c_str(),
                  support::format_duration_ns(r.replayed_span_ns).c_str(), r.speedup(),
                  static_cast<unsigned long long>(r.transitions_removed));
    for (const auto& s : r.switchless) {
      out += format("    switchless %s: %zu worker(s), %llu served, %llu fallback(s), "
                    "%s wasted worker time\n",
                    s.site_name.c_str(), s.workers,
                    static_cast<unsigned long long>(s.served),
                    static_cast<unsigned long long>(s.fallbacks),
                    support::format_duration_ns(s.wasted_worker_ns).c_str());
    }
    if (r.page_faults_after != r.page_faults_before) {
      out += format("    paging: %llu -> %llu faults\n",
                    static_cast<unsigned long long>(r.page_faults_before),
                    static_cast<unsigned long long>(r.page_faults_after));
    }
  }
  return out;
}

std::string render_whatif_json(const ValidationResult& validation,
                               const std::vector<ScenarioResult>& results) {
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  write_whatif_json(w, validation, results);
  w.end_object();
  return w.take();
}

void write_whatif_json(support::json::Writer& w, const ValidationResult& validation,
                       const std::vector<ScenarioResult>& results) {
  w.key("validation");
  w.begin_object();
  w.kv("recorded_span_ns", validation.recorded_span_ns);
  w.kv("replayed_span_ns", validation.replayed_span_ns);
  w.kv("span_error", validation.span_error);
  w.kv("ecalls_below_floor", validation.ecalls_below_floor);
  w.kv("floor_error", validation.floor_error);
  w.end_object();
  w.key("scenarios");
  w.begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("recorded_span_ns", r.recorded_span_ns);
    w.kv("replayed_span_ns", r.replayed_span_ns);
    w.kv("speedup", r.speedup());
    w.kv("saved_ns", r.saved_ns());
    w.kv("transitions_removed", r.transitions_removed);
    w.kv("page_faults_before", r.page_faults_before);
    w.kv("page_faults_after", r.page_faults_after);
    w.key("switchless");
    w.begin_array();
    for (const auto& s : r.switchless) {
      w.begin_object();
      w.kv("site", s.site_name);
      w.kv("workers", static_cast<std::uint64_t>(s.workers));
      w.kv("served", s.served);
      w.kv("fallbacks", s.fallbacks);
      w.kv("busy_ns", s.busy_ns);
      w.kv("wasted_worker_ns", s.wasted_worker_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

std::string render_sweep_text(const SweepResult& sweep, std::size_t min_workers) {
  std::string out = format("switchless sweep for %s:\n", sweep.site_name.c_str());
  out += format("  %7s %12s %8s %10s %10s %16s\n", "workers", "replayed", "speedup", "served",
                "fallbacks", "wasted");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& p = sweep.points[i];
    std::uint64_t served = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t wasted = 0;
    for (const auto& s : p.switchless) {
      served += s.served;
      fallbacks += s.fallbacks;
      wasted += s.wasted_worker_ns;
    }
    out += format("  %7zu %12s %7.2fx %10llu %10llu %16s\n", min_workers + i,
                  support::format_duration_ns(p.replayed_span_ns).c_str(), p.speedup(),
                  static_cast<unsigned long long>(served),
                  static_cast<unsigned long long>(fallbacks),
                  support::format_duration_ns(wasted).c_str());
  }
  out += format("  best: %zu worker(s), %.2fx\n", sweep.best_workers, sweep.best_speedup);
  return out;
}

}  // namespace replay
