// Deterministic trace-replay and what-if prediction engine.
//
// The engine reconstructs virtual time from a recorded TraceDatabase: each
// call is decomposed into *self time* segments (the stretches not covered by
// nested calls — which for ecalls include the modeled transition overhead,
// §4.1.2) and the recorded gaps between calls.  A transformation pass
// expresses its effect as one signed time delta per call; the re-timing walk
// then rebuilds every per-thread call tree, absorbing negative deltas into
// the call's self-time segments (clamped at zero) and shifting everything
// downstream, so the empty scenario reproduces the recorded timeline
// *exactly* and any transformed scenario yields a predicted one.
//
// Approximations, by design:
//  * Virtual time is one global clock shared by all recording threads, so a
//    recorded duration may include advances made by other threads.  Replay
//    re-times each thread's call sequence independently; cross-thread clock
//    coupling is not re-simulated.
//  * EPC resizing replays the recorded *fault* sequence through an LRU of
//    the new capacity.  Growing the EPC turns recorded faults into hits;
//    shrinking cannot discover faults the original run never had, so the
//    shrink direction under-estimates cost.
//  * Paging records carry no thread id; saved faults are attributed to the
//    innermost recorded call of the same enclave containing the timestamp,
//    and to the whole-trace span when no such call exists.
//
// Everything is deterministic: scenarios are themselves replayed
// single-threaded, and run_all() distributes *whole scenarios* across a
// thread pool writing into a pre-sized slot per scenario — results are
// byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/scenario.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/driver.hpp"
#include "tracedb/database.hpp"

namespace replay {

struct ReplayConfig {
  /// Cost model the trace was recorded under.  The trace file does not store
  /// the machine's patch level, so this defaults to the paper's unpatched
  /// testbed; pass the matching preset when replaying Spectre/L1TF traces.
  sgxsim::CostModel recorded_cost = sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched);
  /// EPC capacity (pages) of the recording machine, for the paging pass.
  std::size_t recorded_epc_pages = sgxsim::Driver::kDefaultEpcPages;
  /// Worker threads for run_all() (0 = hardware concurrency).  Results are
  /// identical for every value; this only changes wall-clock time.
  std::size_t threads = 0;
};

class ReplayEngine {
 public:
  explicit ReplayEngine(const tracedb::TraceDatabase& db, ReplayConfig config = {});

  /// Replays the empty scenario and checks the recorded trace against the
  /// cost model (see ValidationResult).
  [[nodiscard]] ValidationResult validate() const;

  /// Re-costs the trace under one scenario.  Deterministic.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;

  /// Runs independent scenarios in parallel; out[i] corresponds to
  /// scenarios[i] and is byte-identical at any thread count.
  [[nodiscard]] std::vector<ScenarioResult> run_all(
      const std::vector<Scenario>& scenarios) const;

  /// Switchless worker-count sweep over [min_workers, max_workers].
  [[nodiscard]] SweepResult sweep_switchless(const tracedb::CallKey& site,
                                             std::size_t min_workers = 1,
                                             std::size_t max_workers = 8) const;

  /// Builds the re-timed trace a scenario predicts, suitable for
  /// perf::compare_traces against the recorded one.  Calls keep their ids,
  /// parents and AEX counts; only timestamps move.  Paging/sync/telemetry
  /// tables are not carried over (they describe the recorded machine).
  [[nodiscard]] tracedb::TraceDatabase materialize(const Scenario& scenario) const;

  /// Recorded span: last call end minus first call start (0 if no calls).
  [[nodiscard]] std::uint64_t recorded_span_ns() const noexcept { return recorded_span_; }

  [[nodiscard]] const ReplayConfig& config() const noexcept { return config_; }

 private:
  struct Retimed {
    std::vector<std::uint64_t> start_ns;
    std::vector<std::uint64_t> end_ns;
    std::uint64_t span_ns = 0;
  };

  /// Applies every pass of `scenario`, filling per-call deltas and the
  /// result's counters.  Returns the span reduction that could not be
  /// attributed to any call (EPC savings outside all calls).
  std::uint64_t apply_passes(const Scenario& scenario, std::vector<std::int64_t>& delta,
                             ScenarioResult& result) const;

  /// Rebuilds every thread's call timeline under the given deltas.
  [[nodiscard]] Retimed retime(const std::vector<std::int64_t>& delta) const;

  /// Re-times one call tree rooted at `idx`, returning the new end time.
  std::uint64_t retime_call(tracedb::CallIndex idx, std::uint64_t new_start,
                            const std::vector<std::int64_t>& delta, Retimed& out) const;

  const tracedb::TraceDatabase& db_;
  ReplayConfig config_;

  /// Direct children (nested calls) of each call, in start order.
  std::vector<std::vector<tracedb::CallIndex>> children_;
  /// Top-level call sequences, one per recorded thread, in start order.
  std::vector<std::vector<tracedb::CallIndex>> top_level_;
  /// Indirect parents (Figure 4), for the merge pass.
  std::vector<tracedb::CallIndex> indirect_;
  /// For each paging record: the innermost containing call, or kNoParent.
  std::vector<tracedb::CallIndex> paging_call_;
  std::uint64_t recorded_span_ = 0;
  std::uint64_t recorded_start_ = 0;
};

}  // namespace replay
