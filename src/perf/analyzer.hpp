// The sgx-perf analyser (§4.3): general statistics, anti-pattern detection
// (SISC, SDSC, SNC, SSC, paging) via the paper's Equations 1-3, and enclave
// interface security analysis (§3.6).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sgxsim/cost_model.hpp"
#include "sgxsim/edl.hpp"
#include "support/stats.hpp"
#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace perf {

/// All weights default to the paper's values (§4.3.2); thresholds are virtual
/// nanoseconds.
struct AnalyzerConfig {
  // Equation 1 — moving / duplication opportunities.
  // "(i) 35% of calls are shorter than 1us, (ii) 50% shorter than 5us or
  //  (iii) 65% shorter than 10us."
  double eq1_alpha = 0.35;
  double eq1_beta = 0.50;
  double eq1_gamma = 0.65;

  // Equation 2 — reordering opportunities (calls near the start/end of their
  // direct parent).
  double eq2_alpha = 1.00;
  double eq2_beta = 0.75;
  double eq2_gamma = 0.50;

  // Equation 3 — merging / batching opportunities (gap to indirect parent).
  double eq3_alpha = 1.00;
  double eq3_beta = 0.75;
  double eq3_gamma = 0.50;
  double eq3_delta = 0.35;
  double eq3_epsilon = 0.35;
  double eq3_lambda = 0.35;

  /// Transition time subtracted from *ecall* durations before comparing with
  /// the short-call thresholds (§4.1.2: ecall timestamps include transition
  /// time, ocall timestamps do not).
  support::Nanoseconds ecall_transition_ns = 4205;

  /// Short-call threshold for SSC/overview statistics (§4.3.2: "we chose to
  /// look at calls with execution times below 10us").
  support::Nanoseconds short_call_ns = 10'000;

  /// Minimum instances before a call site is considered by the detectors.
  std::size_t min_calls = 8;

  /// Paging events above this count raise a paging finding.
  std::size_t paging_threshold = 64;

  /// Tail-latency finding: fires when a call site's p99 exceeds both
  /// `tail_ratio` × p50 and `tail_min_ns` (means hide exactly this — a few
  /// 100x-slower transitions disappear into the average).
  double tail_ratio = 8.0;
  support::Nanoseconds tail_min_ns = 50'000;

  /// When true, analyze() replays the trace through the what-if engine and
  /// attaches a predicted whole-run speedup (and, for switchless, the best
  /// worker count) to every recommendation it can model.
  bool predict_speedups = true;
  /// Cost model the trace was recorded under, for the replay predictions
  /// (the trace file does not store the machine's patch level).
  sgxsim::CostModel replay_cost = sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched);
  /// Worker-count sweep bounds for switchless predictions.
  std::size_t switchless_min_workers = 1;
  std::size_t switchless_max_workers = 8;
  /// Scenario-level replay parallelism (0 = hardware concurrency; results
  /// are identical for every value).
  std::size_t replay_threads = 0;
};

/// What kind of problem a finding describes (Table 1).
enum class FindingKind {
  kShortCalls,          // Eq.1 fired: SISC/SDSC via moving (or duplication)
  kReorderStart,        // Eq.2 fired at parent start: SNC
  kReorderEnd,          // Eq.2 fired at parent end: SNC
  kBatchable,           // Eq.3, call is its own indirect parent: SISC
  kMergeable,           // Eq.3, different indirect parent: SDSC
  kSyncContention,      // SSC: short sync ocalls
  kPaging,              // paging events observed
  kTailLatency,         // p99 ≫ p50: a tail the mean-based stats hide
  kOutOfOrderEcall,     // orderliness: illegal consecutive top-level pair
  kReentrantEcall,      // orderliness: unexpected nested re-entry
  kUseBeforeInit,       // orderliness: ecall before the init phase completed
  kUseAfterDestroy,     // orderliness: ecall after enclave destruction
  kPhaseViolation,      // orderliness: init phase re-entered
  kPrivateEcallCandidate,
  kExcessAllowedEcalls,
  kMinimalAllowSet,  // no EDL given: the smallest allow() set observed
  kUserCheckPointer,
};

[[nodiscard]] const char* to_string(FindingKind k) noexcept;

/// Mitigation strategies of Table 1, ordered by the priority rules of
/// §4.3.2: reordering does not grow the TCB and is evaluated first; moving
/// *out* of the enclave needs a security evaluation.
enum class Recommendation {
  kReorder,
  kBatch,
  kMerge,
  kMoveCallerIn,
  kMoveCallerOut,
  kDuplicateInEnclave,
  kSwitchless,
  kHybridLock,
  kLockFreeStructure,
  kReduceMemoryUsage,
  kPreloadPages,
  kAlternativeMemoryManagement,
  kInvestigateTail,
  kAuditCallSequence,
  kMakePrivate,
  kRestrictAllowedEcalls,
  kCheckPointerHandling,
};

[[nodiscard]] const char* to_string(Recommendation r) noexcept;

/// One recommendation plus the replay engine's prediction of what it buys.
/// Implicitly constructible from a bare Recommendation so the detectors can
/// keep listing actions; the prediction pass fills in the rest.
struct RecommendationEntry {
  RecommendationEntry() = default;
  RecommendationEntry(Recommendation a) : action(a) {}  // NOLINT(google-explicit-constructor)

  Recommendation action = Recommendation::kReorder;
  /// Predicted whole-run speedup of applying this recommendation (1.0 =
  /// neutral or not modeled).
  double predicted_speedup = 1.0;
  /// Best switchless worker count, when the prediction swept workers.
  std::size_t best_workers = 0;
  /// Name of the replayed scenario backing the prediction ("" = none).
  std::string scenario;
};

struct Finding {
  FindingKind kind = FindingKind::kShortCalls;
  tracedb::CallKey subject;
  std::string subject_name;
  /// Merge partner / parent call, when the finding relates two calls.
  std::optional<tracedb::CallKey> partner;
  std::string partner_name;
  std::vector<RecommendationEntry> recommendations;
  std::string detail;
  /// Sort key: roughly the number of transitions that could be saved.
  double severity = 0.0;
};

/// §4.3.1 general statistics for one call site.
struct CallStats {
  tracedb::CallKey key;
  std::string name;
  support::Summary duration_ns;
  std::uint64_t aex_total = 0;
  double fraction_below_10us = 0.0;
  /// HDR-quantized latency percentiles (ns).  Sourced from the trace's v4
  /// latency table when present, otherwise reconstructed from the per-call
  /// durations with the same bucket geometry — so both paths report
  /// identically quantized values.
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

struct EnclaveOverview {
  tracedb::EnclaveId enclave_id = 0;
  std::string name;
  std::size_t ecalls_defined = 0;   // from EDL, when supplied
  std::size_t ocalls_defined = 0;
  std::size_t ecalls_called = 0;    // distinct ids observed
  std::size_t ocalls_called = 0;
  std::size_t ecall_instances = 0;
  std::size_t ocall_instances = 0;
  double ecalls_below_10us = 0.0;   // fraction (transition-adjusted)
  double ocalls_below_10us = 0.0;
  std::size_t page_ins = 0;
  std::size_t page_outs = 0;
};

struct AnalysisReport {
  std::vector<EnclaveOverview> overviews;
  std::vector<CallStats> stats;          // sorted by call count, descending
  std::vector<Finding> findings;         // sorted by severity, descending
  /// Events rejected by sealed shards while recording (from the trace, v3).
  /// Nonzero means the trace is silently truncated.
  std::uint64_t dropped_events = 0;
  /// Events dropped by live streaming subscriptions (from the trace, v4).
  /// These never affect the recorded tables — only live consumers lagged.
  std::uint64_t stream_dropped = 0;
};

class Analyzer {
 public:
  explicit Analyzer(const tracedb::TraceDatabase& db, AnalyzerConfig config = {});

  /// Supplies the EDL of an enclave, enabling the allow()-list comparison and
  /// user_check highlighting (§4.3.2 "Optionally, the analyser can be
  /// supplied the EDL file of the enclave").
  void set_interface(tracedb::EnclaveId enclave, sgxsim::edl::InterfaceSpec spec);

  [[nodiscard]] AnalysisReport analyze() const;

 private:
  void compute_overviews(AnalysisReport& report) const;
  void compute_stats(AnalysisReport& report) const;
  void detect_short_calls(AnalysisReport& report) const;           // Eq. 1
  void detect_reordering(AnalysisReport& report) const;            // Eq. 2
  void detect_merge_batch(AnalysisReport& report,
                          const std::vector<tracedb::CallIndex>& indirect) const;  // Eq. 3
  void detect_sync(AnalysisReport& report) const;                  // SSC
  void detect_paging(AnalysisReport& report) const;
  /// Validates the trace against the orderliness model embedded in its v6
  /// order-rules table (no-op when the trace carries none), turning each
  /// folded alert into a finding.  Runs check_trace(), so the findings agree
  /// with the online checker's end-of-run alert set.
  void detect_orderliness(AnalysisReport& report) const;
  /// Flags call sites whose p99/p50 ratio betrays a tail (needs the
  /// percentiles compute_stats() filled in, so runs after it).
  void detect_tail_latency(AnalysisReport& report) const;
  void analyze_security(AnalysisReport& report) const;
  /// Builds one what-if scenario per modelable recommendation, replays them
  /// (in parallel) and writes predicted speedups back onto the findings.
  /// Appends a kSwitchless recommendation to short-ecall findings, carrying
  /// the worker-sweep optimum.
  void annotate_predictions(AnalysisReport& report) const;

  /// Duration with the ecall transition time subtracted (§4.1.2).
  [[nodiscard]] support::Nanoseconds adjusted_duration(const tracedb::CallRecord& c) const;

  const tracedb::TraceDatabase& db_;
  AnalyzerConfig config_;
  std::map<tracedb::EnclaveId, sgxsim::edl::InterfaceSpec> interfaces_;
};

}  // namespace perf
