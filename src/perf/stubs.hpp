// Runtime-generated ocall call stubs (Figure 3 of the paper).
//
// The SDK's ocall table contains raw function pointers to the final ocall
// implementations — there is no common trampoline to intercept.  sgx-perf
// therefore generates, at runtime, one small call stub per table slot; the
// stub knows the ocall id, the enclave and the original function pointer,
// logs entry/exit events and forwards to the original.  All stubs of a table
// are assembled into a shadow table oT_logger that replaces the original at
// every traced sgx_ecall.
//
// C++ cannot emit machine code at runtime, so the "generated" stubs come
// from a fixed pool of template-instantiated trampolines, each statically
// bound to one slot of a global registry — the observable behaviour (a
// distinct OcallFn per (table, slot) carrying its own metadata) is identical.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sgxsim/types.hpp"

namespace perf {

class Logger;

/// Pool of pre-instantiated stub trampolines plus per-stub metadata.
class OcallStubRegistry {
 public:
  static constexpr std::size_t kMaxStubs = 4096;

  struct StubInfo {
    Logger* logger = nullptr;
    sgxsim::EnclaveId enclave_id = 0;
    sgxsim::CallId ocall_id = 0;
    sgxsim::OcallFn original = nullptr;
    bool is_sync = false;          // slot >= sync_base of its table
    std::size_t sync_offset = 0;   // id - sync_base when is_sync
  };

  OcallStubRegistry() = default;
  OcallStubRegistry(const OcallStubRegistry&) = delete;
  OcallStubRegistry& operator=(const OcallStubRegistry&) = delete;

  /// Returns the logger's shadow table for `original`, building it (and its
  /// stubs) on first sight.  "Call stub and table creation is only needed
  /// once per ocall table" (§4.1.2) — subsequent calls hit a thread-local
  /// cache (invalidated by reset()), so a traced ecall takes no lock here.
  const sgxsim::OcallTable* shadow_table(Logger& logger, sgxsim::EnclaveId enclave,
                                         const sgxsim::OcallTable* original);

  /// Drops all cached tables and releases their stub slots.
  void reset();

  [[nodiscard]] std::size_t stubs_in_use() const;
  [[nodiscard]] std::size_t tables_cached() const;

  /// Global registry backing the static trampolines.  One per process is
  /// enough (mirrors the single preloaded library); tests may use several
  /// registries, but slots are a process-wide resource.
  static OcallStubRegistry& instance();

  /// Invoked by trampoline `slot`; dispatches to the stub's metadata.
  static sgxsim::SgxStatus dispatch(std::size_t slot, void* ms);

 private:
  std::size_t allocate_slot(const StubInfo& info);
  const sgxsim::OcallTable* shadow_table_locked(Logger& logger, sgxsim::EnclaveId enclave,
                                                const sgxsim::OcallTable* original);

  mutable std::mutex mu_;
  /// Bumped by reset(); invalidates the per-thread shadow-table caches.
  std::atomic<std::uint64_t> generation_{1};
  std::unordered_map<const sgxsim::OcallTable*, std::unique_ptr<sgxsim::OcallTable>> tables_;
  std::vector<std::size_t> slots_per_table_;  // for reset bookkeeping

  // Slot metadata shared with the static trampolines.
  static std::array<StubInfo, kMaxStubs> slots_;
  static std::atomic<std::size_t> next_slot_;
};

}  // namespace perf
