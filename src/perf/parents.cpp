#include "perf/parents.hpp"

#include <map>
#include <tuple>

namespace perf {

std::vector<tracedb::CallIndex> compute_indirect_parents(const tracedb::TraceDatabase& db) {
  const auto& calls = db.calls();
  std::vector<tracedb::CallIndex> indirect(calls.size(), tracedb::kNoParent);

  // Calls are stored in start order; per thread this order is preserved, and
  // same-thread calls of the same nesting level never overlap — so a single
  // forward scan with a (thread, type, direct parent) -> last-seen map
  // implements the Figure 4 rules.
  using Key = std::tuple<tracedb::ThreadId, tracedb::CallType, tracedb::CallIndex>;
  std::map<Key, tracedb::CallIndex> last_seen;

  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    const Key key{c.thread_id, c.type, c.parent};
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) indirect[i] = it->second;
    last_seen[key] = static_cast<tracedb::CallIndex>(i);
  }
  return indirect;
}

}  // namespace perf
