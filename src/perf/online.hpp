// Online (in-flight) anti-pattern detection.
//
// The analyser (§4.3) runs post-mortem: nothing fires until the trace is
// sealed.  This layer runs the same detectors *incrementally* against a
// Logger::subscribe() stream, so a long-running workload raises SISC/SDSC/
// SNC/SSC, paging and tail-latency alerts the moment a site crosses its
// threshold — with an onset timestamp — instead of averaging the problem
// away until shutdown.
//
// Correctness anchor: the detectors maintain *cumulative* per-site state
// whose predicates are byte-for-byte the post-mortem ones (same AnalyzerConfig
// thresholds, same Eq. 1–3 arithmetic, same HDR geometry).  On a quiesced
// workload where no stream events were dropped, the end-of-run active-alert
// set therefore equals the post-mortem recommendation set — the property
// tests/online_analyzer_test.cpp pins on demo/minikv/minidb.
//
// On top of the parity detectors, fixed-interval *windows* (virtual-time
// aligned, so replays are deterministic) cut per-site rate/percentile
// snapshots (HDR deltas via telemetry::WindowedHdr) and run EWMA+CUSUM
// change detection over per-window mean latency (AlertKind::kLatencyShift —
// an online-only signal with no post-mortem analogue).  Windows, per-site
// window rows and the full alert history persist as the v5 trace tables.
//
// Threading: single-consumer.  feed()/on_window()/finish() belong to one
// monitoring thread; the producers are the traced workload threads on the
// other side of the stream subscription.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "perf/analyzer.hpp"
#include "perf/orderliness.hpp"
#include "perf/stream.hpp"
#include "telemetry/timeseries.hpp"
#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace perf {

/// Stable lowercase identifier for an alert kind (JSON-lines field, goldens).
[[nodiscard]] const char* to_string(tracedb::AlertKind k) noexcept;

struct OnlineConfig {
  /// Detector thresholds — shared with the post-mortem analyser so the
  /// end-of-run verdicts agree.  (predict_speedups is ignored here.)
  AnalyzerConfig analyzer;
  /// Virtual-time window length for the snapshot tables.
  support::Nanoseconds window_ns = 1'000'000;
  /// EWMA/CUSUM parameters for the per-site latency-shift detector.
  telemetry::EwmaCusum::Config change;
  /// Per-thread cap on parents with buffered children awaiting the parent's
  /// completion event (Eq. 2 end-side correlation).  Overflow evicts the
  /// oldest parent — bounded memory even if parent completions are dropped.
  std::size_t max_pending_parents = 4096;
  /// Interface-orderliness model (learned or declared).  Empty disables the
  /// checker; otherwise every call/lifecycle event is validated and the five
  /// v6 orderliness AlertKinds are raised with virtual-time onsets.
  OrderModel order;
};

/// External cumulative counters folded into each window snapshot.  The
/// analyser cannot reach the runtime itself, so the monitor supplies them.
struct WindowExternals {
  std::uint64_t stream_dropped = 0;
  std::uint64_t switchless_calls = 0;
  std::uint64_t switchless_fallbacks = 0;
  std::uint64_t switchless_wasted_ns = 0;
};

/// One closed window's per-site view as handed to a window sink: the
/// persisted row plus the window-local HDR delta (the mergeable currency a
/// fleet aggregator needs — bucket-wise sums of deltas reconstruct the
/// cumulative distribution exactly).
struct WindowSiteSnapshot {
  tracedb::WindowSiteRecord row;
  telemetry::HdrSnapshot delta;
};

class OnlineAnalyzer {
 public:
  using ExternalsFn = std::function<WindowExternals()>;
  /// Invoked on every alert transition: raised (resolved == false) the
  /// moment the predicate first holds, resolved when it stops holding.
  using AlertSink = std::function<void(const tracedb::AlertRecord&, bool resolved)>;
  /// Invoked each time a window closes, with the window row and one
  /// snapshot per site that completed a call inside it.  The HDR deltas are
  /// only materialised when a window sink is installed.
  using WindowSink =
      std::function<void(const tracedb::WindowRecord&, const std::vector<WindowSiteSnapshot>&)>;

  explicit OnlineAnalyzer(OnlineConfig config = {});

  void set_externals(ExternalsFn fn) { externals_ = std::move(fn); }
  void set_alert_sink(AlertSink sink) { sink_ = std::move(sink); }
  void set_window_sink(WindowSink sink) { window_sink_ = std::move(sink); }

  /// Feeds one stream event.  Cheap-predicate detectors (Eq. 1–3, SSC,
  /// paging) re-evaluate the affected site immediately; percentile-based
  /// ones run at window boundaries.
  void feed(const StreamEvent& ev);
  void feed(const std::vector<StreamEvent>& batch) {
    for (const auto& ev : batch) feed(ev);
  }

  /// Seals the run at virtual time `end_ns`: closes the final window,
  /// re-evaluates every site (tail latency included) and resolves alerts
  /// whose predicates no longer hold.  Call once, after the last feed().
  void finish(support::Nanoseconds end_ns);

  /// Writes the window/alert tables (and the window period) into `db` —
  /// the v5 payload.  Typically called after finish(), on the same database
  /// the logger recorded into.
  void persist(tracedb::TraceDatabase& db) const;

  // --- results --------------------------------------------------------------
  [[nodiscard]] const std::vector<tracedb::WindowRecord>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const std::vector<tracedb::WindowSiteRecord>& window_sites() const noexcept {
    return window_sites_;
  }
  /// Full alert history, in onset order.  resolved_ns == 0 means still
  /// active (after finish(): the end-of-run verdict set).
  [[nodiscard]] const std::vector<tracedb::AlertRecord>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] std::vector<tracedb::AlertRecord> active_alerts() const;
  [[nodiscard]] std::uint64_t events_seen() const noexcept { return events_seen_; }
  /// Eq. 2 child buffers discarded by the pending-parent cap (0 on healthy
  /// streams; nonzero means end-side reorder counts undercount).
  [[nodiscard]] std::uint64_t pending_evicted() const noexcept { return pending_evicted_; }

 private:
  /// Cumulative per-site detector state — the online mirror of what each
  /// post-mortem detector derives from the full trace.
  struct SiteState {
    // Eq. 1 (+ stats): counts over *adjusted* durations.
    std::uint64_t count = 0;
    std::uint64_t c1 = 0, c5 = 0, c10 = 0;
    bool any_nested_ocall = false;
    std::uint64_t aex_total = 0;
    // Eq. 2: nesting counts relative to the direct parent.
    std::uint64_t nested = 0;
    std::uint64_t start10 = 0, start20 = 0, end10 = 0, end20 = 0;
    std::map<tracedb::CallKey, std::uint64_t> parent_freq;
    // Eq. 3: per-indirect-parent gap stats.
    struct PairStats {
      std::uint64_t count = 0;
      std::uint64_t p1 = 0, p5 = 0, p10 = 0, p20 = 0;
    };
    std::map<tracedb::CallKey, PairStats> by_parent;
    // SSC: classification plus short-instance count (raw durations).
    tracedb::OcallKind kind = tracedb::OcallKind::kGeneric;
    std::uint64_t short_sync = 0;
    // Latency: cumulative HDR (tail detector) with a window cursor.
    telemetry::WindowedHdr latency;
    std::uint64_t window_calls = 0;  // completions in the open window
    std::uint64_t window_aex = 0;
    // Change detection over per-window mean latency.
    telemetry::EwmaCusum change;
    bool touched_this_window = false;

    explicit SiteState(const telemetry::EwmaCusum::Config& cfg) : change(cfg) {}
  };

  /// Per-enclave paging tallies (detector subject: CallKey{eid, kEcall, 0}).
  struct PagingState {
    std::uint64_t total = 0;
    std::uint64_t window_ins = 0;
    std::uint64_t window_outs = 0;
  };

  /// One child completion waiting for its parent's end timestamp.
  struct PendingChild {
    tracedb::CallKey site;
    std::uint64_t end_ns = 0;
  };
  struct ThreadState {
    /// parent_start_ns -> children completed inside that parent (Eq. 2
    /// end-side).  std::map keeps eviction of the oldest parent O(log n).
    std::map<std::uint64_t, std::vector<PendingChild>> pending;
    /// (child type, direct-parent instance) -> last completed call of that
    /// key, mirroring tracedb::indirect_parents (Eq. 3).  Valid online
    /// because same-key calls never overlap: completion order == start
    /// order.
    struct LastCall {
      tracedb::CallKey site;
      std::uint64_t end_ns = 0;
    };
    std::map<std::pair<tracedb::CallType, std::uint64_t>, LastCall> last_same_key;
  };

  void on_call(const StreamEvent& ev);
  void on_instant(const StreamEvent& ev);
  /// Folds one orderliness violation into the alert tables: first occurrence
  /// per (kind, site) raises, repeats bump the count in the detail word —
  /// the same fold OrderAlertFolder applies on the batch path.
  void on_order_violation(const OrderViolation& v);
  /// Closes windows until `ts` falls inside the open one.
  void roll_windows(std::uint64_t ts);
  void close_window(std::uint64_t window_end);

  /// Alert kinds whose cumulative predicate holds for `site` right now.
  /// `with_tail` controls the O(buckets) percentile predicates.
  [[nodiscard]] std::vector<std::pair<tracedb::AlertKind, std::uint64_t>> evaluate_site(
      const tracedb::CallKey& site, const SiteState& st, bool with_tail) const;
  void reconcile_site(const tracedb::CallKey& site, const SiteState& st, bool with_tail,
                      std::uint64_t now);
  void reconcile_paging(tracedb::EnclaveId eid, std::uint64_t now);
  void raise_alert(tracedb::AlertKind kind, const tracedb::CallKey& site, std::uint64_t now,
                   std::uint64_t detail);
  void resolve_alert(tracedb::AlertKind kind, const tracedb::CallKey& site, std::uint64_t now);

  [[nodiscard]] support::Nanoseconds adjusted(const StreamEvent& ev) const noexcept;

  OnlineConfig config_;
  ExternalsFn externals_;
  AlertSink sink_;
  WindowSink window_sink_;

  std::map<tracedb::CallKey, SiteState> sites_;
  std::map<tracedb::EnclaveId, PagingState> paging_;
  std::map<std::uint32_t, ThreadState> threads_;

  /// Present iff config_.order is non-empty.
  std::optional<OrderChecker> order_checker_;

  /// (kind, site) -> index into alerts_ of the active record.
  std::map<std::pair<tracedb::AlertKind, tracedb::CallKey>, std::size_t> active_;

  std::vector<tracedb::WindowRecord> windows_;
  std::vector<tracedb::WindowSiteRecord> window_sites_;
  std::vector<tracedb::AlertRecord> alerts_;

  bool window_open_ = false;
  std::uint64_t window_start_ = 0;
  std::uint32_t window_index_ = 0;
  std::uint64_t window_calls_ = 0;
  std::uint64_t window_aexs_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t pending_evicted_ = 0;
  bool finished_ = false;
};

}  // namespace perf
