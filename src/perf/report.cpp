#include "perf/report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "perf/parents.hpp"
#include "support/strutil.hpp"

namespace perf {

using support::format;
using tracedb::CallKey;
using tracedb::CallType;

std::string render_text(const AnalysisReport& report) {
  std::string out;
  out += "================ sgx-perf analysis report ================\n\n";

  for (const auto& ov : report.overviews) {
    out += format("enclave %llu%s%s\n", static_cast<unsigned long long>(ov.enclave_id),
                  ov.name.empty() ? "" : " — ", ov.name.c_str());
    if (ov.ecalls_defined > 0 || ov.ocalls_defined > 0) {
      out += format("  interface: %zu ecalls, %zu ocalls defined\n", ov.ecalls_defined,
                    ov.ocalls_defined);
    }
    out += format("  observed:  %zu ecalls called %zu times, %zu ocalls called %zu times\n",
                  ov.ecalls_called, ov.ecall_instances, ov.ocalls_called, ov.ocall_instances);
    out += format("  short:     %.2f%% of ecalls and %.2f%% of ocalls were shorter than 10us\n",
                  100.0 * ov.ecalls_below_10us, 100.0 * ov.ocalls_below_10us);
    if (ov.page_ins + ov.page_outs > 0) {
      out += format("  paging:    %zu page-ins, %zu page-outs\n", ov.page_ins, ov.page_outs);
    }
    out += "\n";
  }

  out += "---- general statistics (top call sites by count) ----\n";
  out += format("%-48s %10s %10s %10s %10s %10s %10s %8s\n", "call", "count", "mean[us]",
                "p50[us]", "p90[us]", "p99[us]", "p99.9[us]", "aex");
  const std::size_t limit = std::min<std::size_t>(report.stats.size(), 40);
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& s = report.stats[i];
    const char* type = s.key.type == CallType::kEcall ? "E" : "O";
    out += format("%s %-46s %10zu %10.2f %10.2f %10.2f %10.2f %10.2f %8llu\n", type,
                  s.name.c_str(), s.duration_ns.count, s.duration_ns.mean / 1e3,
                  static_cast<double>(s.p50_ns) / 1e3, static_cast<double>(s.p90_ns) / 1e3,
                  static_cast<double>(s.p99_ns) / 1e3, static_cast<double>(s.p999_ns) / 1e3,
                  static_cast<unsigned long long>(s.aex_total));
  }
  if (report.stats.size() > limit) {
    out += format("  ... and %zu more call sites\n", report.stats.size() - limit);
  }
  if (report.dropped_events > 0) {
    out += format(
        "WARNING: %llu event(s) were dropped by sealed trace shards during "
        "recording — this trace is incomplete and the statistics above "
        "undercount.\n",
        static_cast<unsigned long long>(report.dropped_events));
  }
  if (report.stream_dropped > 0) {
    out += format(
        "note: %llu event(s) were dropped by live streaming subscribers — the "
        "recorded trace itself is complete, only live consumers lagged.\n",
        static_cast<unsigned long long>(report.stream_dropped));
  }
  out += "\n";

  out += format("---- findings (%zu) ----\n", report.findings.size());
  std::size_t n = 0;
  for (const auto& f : report.findings) {
    out += format("[%zu] %s: %s", ++n, to_string(f.kind), f.subject_name.c_str());
    if (f.partner) out += format(" (with %s)", f.partner_name.c_str());
    out += "\n";
    out += format("     %s\n", f.detail.c_str());
    for (const auto& r : f.recommendations) {
      out += format("     -> %s", to_string(r.action));
      if (!r.scenario.empty() || r.predicted_speedup != 1.0) {
        out += format(" [predicted %.2fx", r.predicted_speedup);
        if (r.best_workers > 0) out += format(", %zu worker(s)", r.best_workers);
        out += "]";
      }
      out += "\n";
    }
  }
  if (report.findings.empty()) {
    out += "  no problems detected — the enclave interface looks well designed\n";
  }
  return out;
}

std::string render_callgraph_dot(const tracedb::TraceDatabase& db) {
  const auto& calls = db.calls();
  const auto indirect = compute_indirect_parents(db);

  // Aggregate direct and indirect edges by (parent key, child key).
  std::map<std::pair<CallKey, CallKey>, std::uint64_t> direct_edges;
  std::map<std::pair<CallKey, CallKey>, std::uint64_t> indirect_edges;
  std::set<CallKey> nodes;

  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto& c = calls[i];
    const CallKey ck{c.enclave_id, c.type, c.call_id};
    nodes.insert(ck);
    if (c.parent != tracedb::kNoParent) {
      const auto& p = calls[static_cast<std::size_t>(c.parent)];
      ++direct_edges[{CallKey{p.enclave_id, p.type, p.call_id}, ck}];
    }
    if (indirect[i] != tracedb::kNoParent) {
      const auto& p = calls[static_cast<std::size_t>(indirect[i])];
      ++indirect_edges[{CallKey{p.enclave_id, p.type, p.call_id}, ck}];
    }
  }

  auto node_id = [](const CallKey& k) {
    return format("%s_%llu_%u", k.type == CallType::kEcall ? "e" : "o",
                  static_cast<unsigned long long>(k.enclave_id), k.call_id);
  };

  std::string out = "digraph calls {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (const auto& k : nodes) {
    const std::string name = db.name_of(k.enclave_id, k.type, k.call_id);
    // Square nodes are ecalls, round nodes are ocalls (Figure 5).
    out += format("  %s [label=\"[%u] %s\", shape=%s];\n", node_id(k).c_str(), k.call_id,
                  name.c_str(), k.type == CallType::kEcall ? "box" : "ellipse");
  }
  for (const auto& [edge, count] : direct_edges) {
    out += format("  %s -> %s [label=\"%llu\", style=solid];\n", node_id(edge.first).c_str(),
                  node_id(edge.second).c_str(), static_cast<unsigned long long>(count));
  }
  for (const auto& [edge, count] : indirect_edges) {
    out += format("  %s -> %s [label=\"%llu\", style=dashed];\n", node_id(edge.first).c_str(),
                  node_id(edge.second).c_str(), static_cast<unsigned long long>(count));
  }
  out += "}\n";
  return out;
}

support::Histogram duration_histogram(const tracedb::TraceDatabase& db, const CallKey& key,
                                      std::size_t bins) {
  const auto durations = tracedb::durations_of(db, key);
  std::vector<double> us;
  us.reserve(durations.size());
  for (const auto d : durations) us.push_back(static_cast<double>(d) / 1e3);
  return support::Histogram::from_values(us, bins);
}

std::string scatter_csv(const tracedb::TraceDatabase& db, const CallKey& key) {
  std::string out = "time_since_start_ns,duration_ns\n";
  const auto points = tracedb::scatter_of(db, key);
  if (points.empty()) return out;
  const std::uint64_t t0 = points.front().first;
  for (const auto& [start, duration] : points) {
    out += format("%llu,%llu\n", static_cast<unsigned long long>(start - t0),
                  static_cast<unsigned long long>(duration));
  }
  return out;
}

std::string render_scatter_ascii(const tracedb::TraceDatabase& db, const CallKey& key,
                                 std::size_t width, std::size_t height) {
  const auto points = tracedb::scatter_of(db, key);
  if (points.empty()) return "(no data)\n";

  std::uint64_t t_min = points.front().first;
  std::uint64_t t_max = t_min;
  std::uint64_t d_min = points.front().second;
  std::uint64_t d_max = d_min;
  for (const auto& [t, d] : points) {
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
    d_min = std::min(d_min, d);
    d_max = std::max(d_max, d);
  }
  const double t_span = std::max<double>(1.0, static_cast<double>(t_max - t_min));
  const double d_span = std::max<double>(1.0, static_cast<double>(d_max - d_min));

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& [t, d] : points) {
    const auto x = static_cast<std::size_t>(static_cast<double>(t - t_min) / t_span *
                                            static_cast<double>(width - 1));
    const auto y = static_cast<std::size_t>(static_cast<double>(d - d_min) / d_span *
                                            static_cast<double>(height - 1));
    char& cell = grid[height - 1 - y][x];
    cell = cell == ' ' ? '.' : (cell == '.' ? 'o' : '#');
  }

  std::string out = format("duration [%s .. %s] over time [0 .. %s]\n",
                           support::format_duration_ns(d_min).c_str(),
                           support::format_duration_ns(d_max).c_str(),
                           support::format_duration_ns(t_max - t_min).c_str());
  for (const auto& row : grid) out += "|" + row + "|\n";
  return out;
}

}  // namespace perf
