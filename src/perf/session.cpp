#include "perf/session.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sgxsim/runtime.hpp"
#include "support/json.hpp"
#include "support/strutil.hpp"

namespace perf {

std::string alert_json(const tracedb::AlertRecord& alert, bool resolved,
                       const std::string& site_name) {
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("event", resolved ? "resolve" : "raise");
  w.kv("alert", to_string(alert.kind));
  w.kv("site", site_name);
  w.kv("enclave_id", static_cast<std::uint64_t>(alert.enclave_id));
  w.kv("type", alert.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
  w.kv("call_id", static_cast<std::uint64_t>(alert.call_id));
  w.kv("onset_ns", static_cast<std::uint64_t>(alert.onset_ns));
  if (resolved) w.kv("resolved_ns", static_cast<std::uint64_t>(alert.resolved_ns));
  w.kv("window", static_cast<std::uint64_t>(alert.window_index));
  w.kv("detail", alert.detail);
  w.end_object();
  return w.take();
}

void JsonLinesSink::on_alert(const tracedb::AlertRecord& alert, bool resolved,
                             const std::string& site_name) {
  if (out_ == nullptr) return;
  const std::string line = alert_json(alert, resolved, site_name);
  std::fprintf(out_, "%s\n", line.c_str());
}

MonitorSession::MonitorSession(Logger& logger, MonitorSessionConfig config)
    : logger_(logger), config_(std::move(config)), online_(config_.online) {
  sub_ = logger_.subscribe(config_.subscription_name, config_.subscription_capacity);
  batch_.reserve(4096);
  wire_analyzer();
}

MonitorSession::MonitorSession(Logger& logger, sgxsim::Urts& urts, MonitorSessionConfig config)
    : MonitorSession(logger, std::move(config)) {
  urts_ = &urts;
}

MonitorSession::~MonitorSession() {
  if (sub_ != nullptr) sub_->close();
}

void MonitorSession::wire_analyzer() {
  online_.set_externals([this] {
    WindowExternals ext;
    ext.stream_dropped = sub_ != nullptr ? sub_->dropped() : 0;
    if (urts_ != nullptr) {
      for (const auto eid : urts_->enclave_ids()) {
        const auto s = urts_->switchless_stats(eid);
        ext.switchless_calls += s.calls;
        ext.switchless_fallbacks += s.fallbacks;
        ext.switchless_wasted_ns += s.wasted_worker_ns;
      }
    }
    return ext;
  });
  online_.set_alert_sink([this](const tracedb::AlertRecord& a, bool resolved) {
    (resolved ? resolved_ : raised_) += 1;
    const std::string name = name_of(a.enclave_id, a.type, a.call_id);
    const std::string& site =
        a.kind == tracedb::AlertKind::kPaging
            ? support::format("enclave %llu", static_cast<unsigned long long>(a.enclave_id))
            : name;
    for (const auto& sink : sinks_) sink->on_alert(a, resolved, site);
  });
  online_.set_window_sink([this](const tracedb::WindowRecord& win,
                                 const std::vector<WindowSiteSnapshot>& sites) {
    if (sinks_.empty()) return;
    std::vector<SessionWindowSite> rows;
    rows.reserve(sites.size());
    for (const auto& s : sites) {
      rows.push_back({s.row, name_of(s.row.enclave_id, s.row.type, s.row.call_id), s.delta});
    }
    for (const auto& sink : sinks_) sink->on_window(win, rows);
  });
}

std::string MonitorSession::name_of(tracedb::EnclaveId enclave, tracedb::CallType type,
                                    tracedb::CallId id) const {
  return logger_.database().name_of(enclave, type, id);
}

void MonitorSession::add_sink(std::shared_ptr<MonitorSink> sink) {
  if (sink == nullptr) return;
  SessionInfo info;
  info.identity = config_.identity;
  info.window_ns = config_.online.window_ns;
  sink->on_session_start(info);
  sinks_.push_back(std::move(sink));
}

std::size_t MonitorSession::poll() {
  if (sub_ == nullptr || finished_) return 0;
  std::size_t total = 0;
  for (;;) {
    batch_.clear();
    if (sub_->poll(batch_) == 0) break;
    total += batch_.size();
    polled_ += batch_.size();
    if (!batch_.empty()) {
      last_event_ns_ = std::max(last_event_ns_, batch_.back().end_ns);
    }
    online_.feed(batch_);
  }
  return total;
}

std::uint64_t MonitorSession::pump(const std::atomic<bool>& done, std::size_t interval_ms) {
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t n = poll();
    total += n;
    if (n > 0) continue;  // keep draining while events are flowing
    if (done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  total += poll();  // everything published before `done` flipped is in the ring
  return total;
}

void MonitorSession::finish() {
  if (finished_) return;
  poll();
  if (sub_ != nullptr) sub_->close();
  finished_ = true;

  // Seal virtual time at the last recorded event so the final window — and
  // the parity of the end-of-run verdicts with the post-mortem analyser —
  // does not depend on wall-clock scheduling.  The database view is exact
  // once the embedder has detached/flushed the logger; the stream high-water
  // mark covers the attached case.
  std::uint64_t end_ns = last_event_ns_;
  const auto& db = logger_.database();
  for (const auto& c : db.calls()) end_ns = std::max(end_ns, c.end_ns);
  for (const auto& a : db.aexs()) end_ns = std::max(end_ns, a.timestamp_ns);
  for (const auto& p : db.paging()) end_ns = std::max(end_ns, p.timestamp_ns);
  end_ns_ = end_ns;
  online_.finish(end_ns);

  const SessionStats final_stats = stats();
  for (const auto& sink : sinks_) sink->on_stats(final_stats);
  for (const auto& sink : sinks_) sink->on_finish(end_ns_);
}

void MonitorSession::persist() { online_.persist(logger_.database()); }

void MonitorSession::fill_ledger(telemetry::Ledger& led) const {
  const auto& db = logger_.database();
  const std::uint64_t db_events =
      db.calls().size() + db.aexs().size() + db.paging().size() + db.syncs().size();

  auto& record = led.stage("record");
  record.produced += logger_.events_produced();
  record.delivered += db_events;
  record.add_drop("sealed_shard", db.merge_stats().dropped);

  auto& stream = led.stage("stream");
  if (sub_ != nullptr) {
    stream.produced += sub_->published();
    stream.delivered += sub_->delivered();
    stream.add_drop("ring_overflow", sub_->dropped());
  } else {
    stream.add_drop("ring_overflow", 0);
  }

  auto& session = led.stage("session");
  session.produced += polled_;
  session.delivered += online_.events_seen();
}

telemetry::Ledger MonitorSession::ledger() const {
  telemetry::Ledger led;
  fill_ledger(led);
  return led;
}

SessionStats MonitorSession::stats() const {
  SessionStats s;
  s.events = online_.events_seen();
  s.stream_dropped = sub_ != nullptr ? sub_->dropped() : 0;
  s.sealed_dropped = logger_.database().merge_stats().dropped;
  s.pending_evicted = online_.pending_evicted();
  s.alerts_raised = raised_;
  s.alerts_resolved = resolved_;
  return s;
}

}  // namespace perf
