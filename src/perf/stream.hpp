// Live event streaming for the logger.
//
// sgx-perf is a post-mortem tool: nothing is observable until
// Logger::detach() seals the shards and merges the trace.  A production
// enclave can never be detached, so this layer lets consumers subscribe to
// a bounded, lock-free event feed while recording is in flight:
//
//   auto sub = logger.subscribe("top", 1 << 14);
//   ... workload runs in other threads ...
//   std::vector<perf::StreamEvent> batch;
//   sub->poll(batch, 4096);     // consumer side, any thread
//
// Design constraints, in order:
//   1. The recording hot path must stay wait-free: publish() does one
//      relaxed load when nobody is subscribed, and at most one CAS +
//      store per subscriber otherwise (Vyukov bounded MPMC ring).
//   2. Never block, never allocate on the hot path: a full ring *drops*
//      the event and counts the drop — per subscriber — in both the
//      subscription and the metrics registry
//      ("logger.stream.<name>.dropped"), mirroring how sealed-shard drops
//      are already surfaced.
//   3. No reclamation races: the hub owns every subscription it ever
//      created (shared_ptr) and only hands out additional owners.  close()
//      flips an atomic flag that producers observe; the storage outlives
//      any concurrent publish by construction, so the scheme is TSan-clean
//      without hazard pointers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tracedb/schema.hpp"

namespace telemetry {
class Counter;
}

namespace perf {

/// One event as seen by a live subscriber.  A fixed-size POD copied into
/// the ring: calls are published on *completion* (so the duration is
/// known); AEX, paging and enclave-lifecycle events are published as they
/// happen.  Lifecycle events (format v6) carry only enclave_id/start_ns —
/// they feed the online orderliness checker's create/destroy edges.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    kCall = 0,
    kAex = 1,
    kPaging = 2,
    kEnclaveCreated = 3,
    kEnclaveDestroyed = 4,
  };

  Kind kind = Kind::kCall;
  tracedb::CallType call_type = tracedb::CallType::kEcall;
  /// kCall ocalls: the sleep/wake classification (§4.1.3), so online
  /// consumers can run the SSC detector without a name lookup.
  tracedb::OcallKind ocall_kind = tracedb::OcallKind::kGeneric;
  /// kCall: true when the direct parent fields below are meaningful (the
  /// call was nested inside a call of the other type on the same thread).
  bool parent_valid = false;
  std::uint32_t thread_id = 0;
  std::uint64_t enclave_id = 0;
  std::uint32_t call_id = 0;
  std::uint32_t aex_count = 0;   // kCall: AEXs during this call
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;      // kAex/kPaging: == start_ns
  /// Direct parent (§4.3.2), identified by its call id and start timestamp.
  /// The (thread_id, parent_start_ns) pair names one parent *instance*: the
  /// per-thread virtual clock strictly advances, so no two calls on a
  /// thread share a start time.  Children publish on completion, before
  /// their parent completes — consumers correlate on the parent's own
  /// completion event.
  tracedb::CallType parent_type = tracedb::CallType::kEcall;
  std::uint32_t parent_call_id = 0;
  std::uint64_t parent_start_ns = 0;
};

/// A bounded MPMC ring (Vyukov queue) between the recording threads and one
/// consumer.  try_push() never blocks: when the consumer lags, events are
/// dropped and accounted.
class StreamSubscription {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  StreamSubscription(std::string name, std::size_t capacity);

  StreamSubscription(const StreamSubscription&) = delete;
  StreamSubscription& operator=(const StreamSubscription&) = delete;

  /// Producer side: enqueues `ev`, or counts a drop if the ring is full.
  /// Safe from any thread, lock-free.
  void publish(const StreamEvent& ev) noexcept;

  /// Consumer side: appends up to `max` pending events to `out`.  Returns
  /// the number drained.  Safe from any thread.
  std::size_t poll(std::vector<StreamEvent>& out, std::size_t max = 4096);

  /// Stops delivery: producers skip this subscription from now on.  Events
  /// already enqueued can still be poll()ed.  Idempotent.
  void close() noexcept;

  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Events offered to this subscription (enqueued + dropped) — the
  /// "produced" side of the ledger's stream stage.  Once the ring is
  /// drained, published() == delivered() + dropped().
  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  friend class StreamHub;

  struct Cell {
    std::atomic<std::size_t> seq;
    StreamEvent ev;
  };

  [[nodiscard]] bool try_push(const StreamEvent& ev) noexcept;
  [[nodiscard]] bool try_pop(StreamEvent& ev) noexcept;

  std::string name_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<bool> active_{true};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> published_{0};
  /// Registry counter "logger.stream.<name>.dropped" — resolved once at
  /// construction so drops are a relaxed add, like every other hot-path
  /// metric.  Never null.
  telemetry::Counter* drop_metric_ = nullptr;
  /// Hub's live-subscriber count; decremented exactly once by close().
  std::atomic<int>* live_ = nullptr;
};

/// Fan-out point owned by the Logger.  Fixed slot array so the hot path is
/// a bounded scan of raw atomics; subscribe/close are the cold path.
class StreamHub {
 public:
  static constexpr std::size_t kMaxSubscribers = 8;

  /// Registers a new subscription.  Returns nullptr when all slots are held
  /// by *active* subscriptions (closed slots are reused; their old rings
  /// stay owned by the hub until it is destroyed, keeping concurrent
  /// publishers safe).
  std::shared_ptr<StreamSubscription> subscribe(std::string name, std::size_t capacity);

  /// Hot-path gate: one relaxed load.  True iff at least one subscription
  /// is active.
  [[nodiscard]] bool has_subscribers() const noexcept {
    return live_.load(std::memory_order_relaxed) > 0;
  }

  /// Delivers `ev` to every active subscription.
  void publish(const StreamEvent& ev) noexcept;

  /// Sum of drop counts over every subscription ever registered (closed
  /// ones included) — the number reported next to sealed-shard drops.
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Closes every subscription (consumers see active() == false).
  void close_all() noexcept;

 private:
  std::array<std::atomic<StreamSubscription*>, kMaxSubscribers> slots_{};
  std::atomic<int> live_{0};
  mutable std::mutex mu_;
  /// Owns every subscription ever created so a raw slot pointer read by a
  /// concurrent publisher can never dangle.
  std::vector<std::shared_ptr<StreamSubscription>> owned_;
};

}  // namespace perf
