#include "perf/stream.hpp"

#include <bit>

#include "telemetry/metrics.hpp"

namespace perf {

StreamSubscription::StreamSubscription(std::string name, std::size_t capacity)
    : name_(std::move(name)) {
  if (capacity < 8) capacity = 8;
  capacity = std::bit_ceil(capacity);
  mask_ = capacity - 1;
  cells_ = std::make_unique<Cell[]>(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  drop_metric_ = &telemetry::metrics().counter("logger.stream." + name_ + ".dropped", "events");
}

bool StreamSubscription::try_push(const StreamEvent& ev) noexcept {
  Cell* cell = nullptr;
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    cell = &cells_[pos & mask_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
    } else if (dif < 0) {
      return false;  // ring full: the slot still holds an unconsumed event
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->ev = ev;
  cell->seq.store(pos + 1, std::memory_order_release);
  return true;
}

bool StreamSubscription::try_pop(StreamEvent& ev) noexcept {
  Cell* cell = nullptr;
  std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    cell = &cells_[pos & mask_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
    } else if (dif < 0) {
      return false;  // ring empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
  ev = cell->ev;
  cell->seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

void StreamSubscription::publish(const StreamEvent& ev) noexcept {
  published_.fetch_add(1, std::memory_order_relaxed);
  if (try_push(ev)) return;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  drop_metric_->add();
}

std::size_t StreamSubscription::poll(std::vector<StreamEvent>& out, std::size_t max) {
  std::size_t n = 0;
  StreamEvent ev;
  while (n < max && try_pop(ev)) {
    out.push_back(ev);
    ++n;
  }
  delivered_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void StreamSubscription::close() noexcept {
  if (active_.exchange(false, std::memory_order_acq_rel)) {
    if (live_ != nullptr) live_->fetch_sub(1, std::memory_order_release);
  }
}

std::shared_ptr<StreamSubscription> StreamHub::subscribe(std::string name,
                                                         std::size_t capacity) {
  std::lock_guard lock(mu_);
  for (auto& slot : slots_) {
    StreamSubscription* cur = slot.load(std::memory_order_relaxed);
    if (cur != nullptr && cur->active()) continue;
    auto sub = std::make_shared<StreamSubscription>(std::move(name), capacity);
    sub->live_ = &live_;
    owned_.push_back(sub);  // keeps the old occupant (if any) alive too
    live_.fetch_add(1, std::memory_order_release);
    slot.store(sub.get(), std::memory_order_release);
    return sub;
  }
  return nullptr;  // all slots held by active subscriptions
}

void StreamHub::publish(const StreamEvent& ev) noexcept {
  for (auto& slot : slots_) {
    StreamSubscription* sub = slot.load(std::memory_order_acquire);
    if (sub != nullptr && sub->active()) sub->publish(ev);
  }
}

std::uint64_t StreamHub::total_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& sub : owned_) total += sub->dropped();
  return total;
}

void StreamHub::close_all() noexcept {
  std::lock_guard lock(mu_);
  for (const auto& sub : owned_) sub->close();
}

}  // namespace perf
