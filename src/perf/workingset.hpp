// The enclave working-set estimator (§4.2).
//
// Strips all MMU page permissions from the enclave, catches the resulting
// access faults and restores permissions on first touch.  This exploits the
// double permission check of SGX systems: MMU page-table permissions are
// consulted *before* the EPCM ones and can be changed at runtime from
// outside, while the SGX permissions are fixed after creation.  Counting the
// restored pages between two configurable points yields the working set at
// page granularity — the tool the paper uses to right-size enclaves
// (SecureKeeper: 322 pages at start-up, 94 during execution).
//
// This interferes heavily with execution (every first touch faults), which
// is why it is a separate tool and not part of the event logger.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "sgxsim/enclave.hpp"

namespace perf {

class WorkingSetEstimator {
 public:
  /// Attaches to `enclave` but does not start measuring yet.
  explicit WorkingSetEstimator(sgxsim::Enclave& enclave);
  /// Restores all permissions if still measuring.
  ~WorkingSetEstimator();

  WorkingSetEstimator(const WorkingSetEstimator&) = delete;
  WorkingSetEstimator& operator=(const WorkingSetEstimator&) = delete;

  /// First configurable point: strips permissions and starts recording.
  void start();

  /// Second configurable point: returns the set of pages accessed since the
  /// last start()/checkpoint() and immediately re-strips permissions so a new
  /// interval begins (e.g. "after start-up" vs "during benchmark execution").
  std::set<std::uint64_t> checkpoint();

  /// Stops measuring and restores the enclave's natural permissions.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Pages accessed in the current interval so far.
  [[nodiscard]] std::set<std::uint64_t> accessed_pages() const;
  [[nodiscard]] std::size_t accessed_page_count() const;
  [[nodiscard]] std::uint64_t accessed_bytes() const;

  /// Per-page-type breakdown of the current interval (code/heap/stack/...).
  [[nodiscard]] std::map<sgxsim::PageType, std::size_t> breakdown() const;

  /// Renders a one-interval summary ("N pages (X MiB): code=.., heap=..").
  [[nodiscard]] std::string summary() const;

 private:
  void on_fault(sgxsim::EnclaveId enclave, std::uint64_t page, sgxsim::MemAccess access);

  sgxsim::Enclave& enclave_;
  bool running_ = false;

  mutable std::mutex mu_;
  std::set<std::uint64_t> accessed_;
};

}  // namespace perf
