#include "perf/online.hpp"

#include <algorithm>
#include <utility>

namespace perf {

using support::Nanoseconds;
using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallKey;
using tracedb::CallType;
using tracedb::OcallKind;

namespace {

/// Direct-parent instance id for the Eq. 3 same-key map when a call has no
/// parent: mirrors tracedb::kNoParent as a map key (no real start time can
/// collide — the virtual clock never reaches 2^64-1).
constexpr std::uint64_t kNoParentInstance = ~0ull;

}  // namespace

const char* to_string(AlertKind k) noexcept {
  switch (k) {
    case AlertKind::kShortCalls: return "short_calls";
    case AlertKind::kReorderStart: return "reorder_start";
    case AlertKind::kReorderEnd: return "reorder_end";
    case AlertKind::kBatchable: return "batchable";
    case AlertKind::kMergeable: return "mergeable";
    case AlertKind::kSyncContention: return "sync_contention";
    case AlertKind::kPaging: return "paging";
    case AlertKind::kTailLatency: return "tail_latency";
    case AlertKind::kLatencyShift: return "latency_shift";
    case AlertKind::kOutOfOrderEcall: return "out_of_order_ecall";
    case AlertKind::kReentrantEcall: return "reentrant_ecall";
    case AlertKind::kUseBeforeInit: return "use_before_init";
    case AlertKind::kUseAfterDestroy: return "use_after_destroy";
    case AlertKind::kPhaseViolation: return "phase_violation";
  }
  return "?";
}

OnlineAnalyzer::OnlineAnalyzer(OnlineConfig config) : config_(std::move(config)) {
  if (!config_.order.empty()) {
    order_checker_.emplace(config_.order,
                           [this](const OrderViolation& v) { on_order_violation(v); });
  }
}

Nanoseconds OnlineAnalyzer::adjusted(const StreamEvent& ev) const noexcept {
  const Nanoseconds raw = ev.end_ns - ev.start_ns;
  if (ev.call_type == CallType::kEcall) {
    const Nanoseconds t = config_.analyzer.ecall_transition_ns;
    return raw > t ? raw - t : 0;
  }
  return raw;
}

void OnlineAnalyzer::feed(const StreamEvent& ev) {
  ++events_seen_;
  roll_windows(ev.end_ns);
  switch (ev.kind) {
    case StreamEvent::Kind::kCall:
      on_call(ev);
      break;
    case StreamEvent::Kind::kEnclaveCreated:
      if (order_checker_) order_checker_->on_enclave_created(ev.enclave_id, ev.start_ns);
      break;
    case StreamEvent::Kind::kEnclaveDestroyed:
      if (order_checker_) order_checker_->on_enclave_destroyed(ev.enclave_id, ev.start_ns);
      break;
    default:
      on_instant(ev);
      break;
  }
}

void OnlineAnalyzer::roll_windows(std::uint64_t ts) {
  const std::uint64_t period = config_.window_ns;
  if (period == 0) return;
  if (!window_open_) {
    window_start_ = ts / period * period;
    window_open_ = true;
    return;
  }
  // Stragglers (cross-thread reordering in the ring) fold into the open
  // window; boundaries only ever move forward.
  while (ts >= window_start_ + period) {
    close_window(window_start_ + period);
    window_start_ += period;
    ++window_index_;
  }
}

void OnlineAnalyzer::on_call(const StreamEvent& ev) {
  if (order_checker_) {
    const bool nested = ev.parent_valid && ev.parent_type == CallType::kOcall;
    order_checker_->on_call(ev.call_type, ev.enclave_id, ev.call_id, ev.thread_id, ev.start_ns,
                            ev.end_ns, nested);
  }

  const CallKey key{ev.enclave_id, ev.call_type, ev.call_id};
  auto [it, inserted] = sites_.try_emplace(key, config_.change);
  SiteState& st = it->second;

  const std::uint64_t raw = ev.end_ns - ev.start_ns;
  const Nanoseconds adj = adjusted(ev);

  ++st.count;
  ++st.window_calls;
  st.touched_this_window = true;
  ++window_calls_;
  st.aex_total += ev.aex_count;
  st.window_aex += ev.aex_count;
  if (adj < 1'000) ++st.c1;
  if (adj < 5'000) ++st.c5;
  if (adj < 10'000) ++st.c10;
  st.latency.record(raw);

  if (ev.call_type == CallType::kOcall) {
    if (ev.ocall_kind != OcallKind::kGeneric) st.kind = ev.ocall_kind;
    if (raw < static_cast<std::uint64_t>(config_.analyzer.short_call_ns)) ++st.short_sync;
    if (ev.parent_valid) st.any_nested_ocall = true;
  }

  ThreadState& ts = threads_[ev.thread_id];

  // --- Eq. 2, start side + parent histogram ---------------------------------
  if (ev.parent_valid) {
    ++st.nested;
    ++st.parent_freq[CallKey{ev.enclave_id, ev.parent_type, ev.parent_call_id}];
    const std::uint64_t from_start = ev.start_ns - ev.parent_start_ns;
    if (from_start <= 10'000) ++st.start10;
    if (from_start <= 20'000) ++st.start20;

    // End side needs the parent's end timestamp — buffer until the parent's
    // own completion event arrives (parents always complete after nested
    // children, and the stream preserves per-thread order).
    auto& bucket = ts.pending[ev.parent_start_ns];
    bucket.push_back(PendingChild{key, ev.end_ns});
    if (ts.pending.size() > config_.max_pending_parents) {
      auto oldest = ts.pending.begin();
      pending_evicted_ += oldest->second.size();
      ts.pending.erase(oldest);
    }
  }

  // --- Eq. 3: indirect parent via the (type, direct-parent instance) map ----
  {
    const std::pair<CallType, std::uint64_t> same_key{
        ev.call_type, ev.parent_valid ? ev.parent_start_ns : kNoParentInstance};
    auto prev = ts.last_same_key.find(same_key);
    if (prev != ts.last_same_key.end()) {
      auto& ps = st.by_parent[prev->second.site];
      ++ps.count;
      if (ev.start_ns >= prev->second.end_ns) {
        const std::uint64_t gap = ev.start_ns - prev->second.end_ns;
        if (gap <= 1'000) ++ps.p1;
        if (gap <= 5'000) ++ps.p5;
        if (gap <= 10'000) ++ps.p10;
        if (gap <= 20'000) ++ps.p20;
      }
    }
    ts.last_same_key[same_key] = ThreadState::LastCall{key, ev.end_ns};
  }

  // --- Eq. 2, end side: this completion is some children's parent ----------
  auto waiting = ts.pending.find(ev.start_ns);
  if (waiting != ts.pending.end()) {
    for (const PendingChild& child : waiting->second) {
      if (ev.end_ns < child.end_ns) continue;
      const std::uint64_t to_end = ev.end_ns - child.end_ns;
      auto child_it = sites_.find(child.site);
      if (child_it == sites_.end()) continue;
      if (to_end <= 10'000) ++child_it->second.end10;
      if (to_end <= 20'000) ++child_it->second.end20;
      if (child.site != key) {
        reconcile_site(child.site, child_it->second, /*with_tail=*/false, ev.end_ns);
      }
    }
    ts.pending.erase(waiting);
  }

  reconcile_site(key, st, /*with_tail=*/false, ev.end_ns);
}

void OnlineAnalyzer::on_instant(const StreamEvent& ev) {
  if (ev.kind == StreamEvent::Kind::kAex) {
    ++window_aexs_;
    return;
  }
  // kPaging: call_id carries the direction (0 = in, 1 = out).
  PagingState& pg = paging_[ev.enclave_id];
  ++pg.total;
  if (ev.call_id == 0) {
    ++pg.window_ins;
  } else {
    ++pg.window_outs;
  }
  reconcile_paging(ev.enclave_id, ev.end_ns);
}

std::vector<std::pair<AlertKind, std::uint64_t>> OnlineAnalyzer::evaluate_site(
    const CallKey& site, const SiteState& st, bool with_tail) const {
  std::vector<std::pair<AlertKind, std::uint64_t>> firing;
  const AnalyzerConfig& cfg = config_.analyzer;
  const auto total = static_cast<double>(st.count);

  if (st.count >= cfg.min_calls) {
    // Eq. 1 — identical arithmetic to Analyzer::detect_short_calls().
    const double f1 = static_cast<double>(st.c1) / total;
    const double f5 = static_cast<double>(st.c5) / total;
    const double f10 = static_cast<double>(st.c10) / total;
    if (f1 >= cfg.eq1_alpha || f5 >= cfg.eq1_beta || f10 >= cfg.eq1_gamma) {
      firing.emplace_back(AlertKind::kShortCalls, static_cast<std::uint64_t>(f10 * 1000.0));
    }

    // Eq. 2 — detect_reordering().
    if (st.nested > 0) {
      const double s_start = static_cast<double>(st.start10) / total * cfg.eq2_alpha +
                             static_cast<double>(st.start20) / total * cfg.eq2_beta;
      const double s_end = static_cast<double>(st.end10) / total * cfg.eq2_alpha +
                           static_cast<double>(st.end20) / total * cfg.eq2_beta;
      if (s_start >= cfg.eq2_gamma) {
        firing.emplace_back(AlertKind::kReorderStart,
                            static_cast<std::uint64_t>(s_start * 1000.0));
      }
      if (s_end >= cfg.eq2_gamma) {
        firing.emplace_back(AlertKind::kReorderEnd, static_cast<std::uint64_t>(s_end * 1000.0));
      }
    }

    // Eq. 3 — detect_merge_batch(): one verdict per kind, best score wins.
    double best_batch = -1.0;
    double best_merge = -1.0;
    for (const auto& [parent_key, ps] : st.by_parent) {
      const double ip_fraction = static_cast<double>(ps.count) / total;
      if (ip_fraction < cfg.eq3_lambda) continue;
      const auto p_total = static_cast<double>(ps.count);
      const double score = static_cast<double>(ps.p1) / p_total * cfg.eq3_alpha +
                           static_cast<double>(ps.p5) / p_total * cfg.eq3_beta +
                           static_cast<double>(ps.p10) / p_total * cfg.eq3_gamma +
                           static_cast<double>(ps.p20) / p_total * cfg.eq3_delta;
      if (score < cfg.eq3_epsilon) continue;
      if (parent_key == site) {
        best_batch = std::max(best_batch, score);
      } else {
        best_merge = std::max(best_merge, score);
      }
    }
    if (best_batch >= 0.0) {
      firing.emplace_back(AlertKind::kBatchable, static_cast<std::uint64_t>(best_batch * 1000.0));
    }
    if (best_merge >= 0.0) {
      firing.emplace_back(AlertKind::kMergeable, static_cast<std::uint64_t>(best_merge * 1000.0));
    }
  }

  // SSC — detect_sync(): no min_calls gate post-mortem, none here.
  if (site.type == CallType::kOcall && st.kind != OcallKind::kGeneric && st.count >= 2 &&
      st.short_sync > 0) {
    firing.emplace_back(AlertKind::kSyncContention, st.short_sync);
  }

  // Tail — detect_tail_latency(), on the cumulative distribution.
  if (with_tail && st.count >= cfg.min_calls) {
    const auto& snap = st.latency.cumulative();
    const std::uint64_t p99 = snap.value_at_percentile(99);
    const std::uint64_t p50 = snap.value_at_percentile(50);
    if (p99 >= static_cast<std::uint64_t>(cfg.tail_min_ns)) {
      const double p50d = static_cast<double>(p50 > 0 ? p50 : 1);
      if (static_cast<double>(p99) >= cfg.tail_ratio * p50d) {
        firing.emplace_back(
            AlertKind::kTailLatency,
            static_cast<std::uint64_t>(static_cast<double>(p99) / p50d * 1000.0));
      }
    }
  }

  return firing;
}

void OnlineAnalyzer::reconcile_site(const CallKey& site, const SiteState& st, bool with_tail,
                                    std::uint64_t now) {
  const auto firing = evaluate_site(site, st, with_tail);

  static constexpr AlertKind kCheap[] = {
      AlertKind::kShortCalls, AlertKind::kReorderStart, AlertKind::kReorderEnd,
      AlertKind::kBatchable,  AlertKind::kMergeable,    AlertKind::kSyncContention,
  };
  const auto fires = [&](AlertKind k) {
    return std::any_of(firing.begin(), firing.end(),
                       [&](const auto& f) { return f.first == k; });
  };

  for (const auto& [kind, detail] : firing) {
    if (!active_.contains({kind, site})) raise_alert(kind, site, now, detail);
  }
  for (const AlertKind kind : kCheap) {
    if (!fires(kind) && active_.contains({kind, site})) resolve_alert(kind, site, now);
  }
  if (with_tail && !fires(AlertKind::kTailLatency) &&
      active_.contains({AlertKind::kTailLatency, site})) {
    resolve_alert(AlertKind::kTailLatency, site, now);
  }
}

void OnlineAnalyzer::reconcile_paging(tracedb::EnclaveId eid, std::uint64_t now) {
  const auto it = paging_.find(eid);
  if (it == paging_.end()) return;
  // Subject mirrors Analyzer::detect_paging(): the enclave as a pseudo-site.
  const CallKey subject{eid, CallType::kEcall, 0};
  const bool fires = it->second.total >= config_.analyzer.paging_threshold;
  const bool is_active = active_.contains({AlertKind::kPaging, subject});
  if (fires && !is_active) {
    raise_alert(AlertKind::kPaging, subject, now, it->second.total);
  }
  // The event count only grows — a paging alert never resolves.
}

void OnlineAnalyzer::on_order_violation(const OrderViolation& v) {
  // Same fold as OrderAlertFolder: the first violation per (kind, site)
  // raises the alert with detail = thread<<32 | 1; repeats bump the count
  // word in place.  Orderliness alerts never resolve (see reconcile_site's
  // kind lists), so active_ always holds the live index.
  const CallKey site{v.enclave_id, CallType::kEcall, v.call_id};
  const auto it = active_.find({v.kind, site});
  if (it != active_.end()) {
    ++alerts_[it->second].detail;
    return;
  }
  raise_alert(v.kind, site, v.at_ns,
              (static_cast<std::uint64_t>(v.thread_id) << 32) | 1u);
}

void OnlineAnalyzer::raise_alert(AlertKind kind, const CallKey& site, std::uint64_t now,
                                 std::uint64_t detail) {
  AlertRecord rec;
  rec.kind = kind;
  rec.enclave_id = site.enclave_id;
  rec.type = site.type;
  rec.call_id = site.call_id;
  rec.onset_ns = now;
  rec.resolved_ns = 0;
  rec.window_index = window_index_;
  rec.detail = detail;
  active_[{kind, site}] = alerts_.size();
  alerts_.push_back(rec);
  if (sink_) sink_(rec, /*resolved=*/false);
}

void OnlineAnalyzer::resolve_alert(AlertKind kind, const CallKey& site, std::uint64_t now) {
  const auto it = active_.find({kind, site});
  if (it == active_.end()) return;
  AlertRecord& rec = alerts_[it->second];
  rec.resolved_ns = now > rec.onset_ns ? now : rec.onset_ns;
  active_.erase(it);
  if (sink_) sink_(rec, /*resolved=*/true);
}

void OnlineAnalyzer::close_window(std::uint64_t window_end) {
  // Latency-shift alerts are change-point markers: they live exactly one
  // window, so resolve survivors from earlier windows first.
  std::vector<std::pair<AlertKind, CallKey>> expired;
  for (const auto& [k, idx] : active_) {
    if (k.first == AlertKind::kLatencyShift && alerts_[idx].window_index < window_index_) {
      expired.push_back(k);
    }
  }
  for (const auto& [kind, site] : expired) resolve_alert(kind, site, window_end);

  std::uint64_t page_ins = 0;
  std::uint64_t page_outs = 0;
  for (auto& [eid, pg] : paging_) {
    page_ins += pg.window_ins;
    page_outs += pg.window_outs;
    pg.window_ins = 0;
    pg.window_outs = 0;
  }

  std::vector<WindowSiteSnapshot> sink_sites;
  for (auto& [key, st] : sites_) {
    if (!st.touched_this_window) continue;
    const telemetry::HdrSnapshot delta = st.latency.window_delta();

    tracedb::WindowSiteRecord row;
    row.window_index = window_index_;
    row.enclave_id = key.enclave_id;
    row.type = key.type;
    row.call_id = key.call_id;
    row.calls = st.window_calls;
    row.aex_count = st.window_aex;
    row.p50_ns = delta.value_at_percentile(50);
    row.p99_ns = delta.value_at_percentile(99);
    window_sites_.push_back(row);
    if (window_sink_) sink_sites.push_back({row, delta});

    if (delta.count() > 0 && st.change.observe(delta.mean())) {
      raise_alert(AlertKind::kLatencyShift, key, window_end,
                  static_cast<std::uint64_t>(st.change.deviation() * 1000.0));
    }

    // Percentile predicates (tail) run here, on the cumulative state.
    reconcile_site(key, st, /*with_tail=*/true, window_end);

    st.latency.checkpoint();
    st.window_calls = 0;
    st.window_aex = 0;
    st.touched_this_window = false;
  }

  tracedb::WindowRecord win;
  win.window_index = window_index_;
  win.start_ns = window_start_;
  win.end_ns = window_end;
  win.calls = window_calls_;
  win.aexs = window_aexs_;
  win.page_ins = page_ins;
  win.page_outs = page_outs;
  if (externals_) {
    const WindowExternals ext = externals_();
    win.stream_dropped = ext.stream_dropped;
    win.switchless_calls = ext.switchless_calls;
    win.switchless_fallbacks = ext.switchless_fallbacks;
    win.switchless_wasted_ns = ext.switchless_wasted_ns;
  }
  win.active_alerts = static_cast<std::uint32_t>(active_.size());
  windows_.push_back(win);
  if (window_sink_) window_sink_(win, sink_sites);

  window_calls_ = 0;
  window_aexs_ = 0;
}

void OnlineAnalyzer::finish(Nanoseconds end_ns) {
  if (finished_) return;
  finished_ = true;

  // Flush use-before-init candidates for enclaves whose init never landed
  // before sealing the last window, so the alerts make it into the tables.
  if (order_checker_) order_checker_->finish();

  if (window_open_) {
    const std::uint64_t window_end =
        end_ns > window_start_ ? static_cast<std::uint64_t>(end_ns) : window_start_;
    close_window(window_end);
    ++window_index_;
  }

  // Final reconciliation: every site, every predicate — after this the
  // active set is exactly the post-mortem analyser's verdict set (change
  // markers excluded: they are online-only and expire below).
  for (const auto& [key, st] : sites_) {
    reconcile_site(key, st, /*with_tail=*/true, end_ns);
  }
  for (const auto& [eid, pg] : paging_) reconcile_paging(eid, end_ns);

  std::vector<std::pair<AlertKind, CallKey>> shifts;
  for (const auto& [k, idx] : active_) {
    if (k.first == AlertKind::kLatencyShift) shifts.push_back(k);
  }
  for (const auto& [kind, site] : shifts) resolve_alert(kind, site, end_ns);
}

void OnlineAnalyzer::persist(tracedb::TraceDatabase& db) const {
  db.set_window_period(config_.window_ns);
  for (const auto& w : windows_) db.add_window(w);
  for (const auto& s : window_sites_) db.add_window_site(s);
  for (const auto& a : alerts_) db.add_alert(a);
  // Embed the model so the persisted trace is self-checking: `sgxperf order
  // check` re-validates against the same rules without a side-channel file.
  if (!config_.order.empty()) db.set_order_rules(rules_from_model(config_.order));
}

std::vector<AlertRecord> OnlineAnalyzer::active_alerts() const {
  std::vector<AlertRecord> out;
  for (const auto& a : alerts_) {
    if (a.resolved_ns == 0) out.push_back(a);
  }
  return out;
}

}  // namespace perf
