#include "perf/workingset.hpp"

#include "support/strutil.hpp"

namespace perf {

WorkingSetEstimator::WorkingSetEstimator(sgxsim::Enclave& enclave) : enclave_(enclave) {}

WorkingSetEstimator::~WorkingSetEstimator() {
  if (running_) stop();
}

void WorkingSetEstimator::start() {
  {
    std::lock_guard lock(mu_);
    accessed_.clear();
  }
  enclave_.set_mmu_fault_handler(
      [this](sgxsim::EnclaveId eid, std::uint64_t page, sgxsim::MemAccess access) {
        on_fault(eid, page, access);
      });
  enclave_.strip_mmu_permissions();
  running_ = true;
}

void WorkingSetEstimator::on_fault(sgxsim::EnclaveId /*enclave*/, std::uint64_t page,
                                   sgxsim::MemAccess /*access*/) {
  // Restore the page's permissions so subsequent accesses run at full speed,
  // and remember the page: one fault per page per interval.
  enclave_.restore_mmu_permission(page);
  std::lock_guard lock(mu_);
  accessed_.insert(page);
}

std::set<std::uint64_t> WorkingSetEstimator::checkpoint() {
  std::set<std::uint64_t> result;
  {
    std::lock_guard lock(mu_);
    result.swap(accessed_);
  }
  enclave_.strip_mmu_permissions();
  return result;
}

void WorkingSetEstimator::stop() {
  enclave_.set_mmu_fault_handler(nullptr);
  enclave_.restore_mmu_permissions();
  running_ = false;
}

std::set<std::uint64_t> WorkingSetEstimator::accessed_pages() const {
  std::lock_guard lock(mu_);
  return accessed_;
}

std::size_t WorkingSetEstimator::accessed_page_count() const {
  std::lock_guard lock(mu_);
  return accessed_.size();
}

std::uint64_t WorkingSetEstimator::accessed_bytes() const {
  return accessed_page_count() * sgxsim::kPageSize;
}

std::map<sgxsim::PageType, std::size_t> WorkingSetEstimator::breakdown() const {
  std::lock_guard lock(mu_);
  std::map<sgxsim::PageType, std::size_t> out;
  for (const auto page : accessed_) ++out[enclave_.page_type(page)];
  return out;
}

std::string WorkingSetEstimator::summary() const {
  const auto pages = accessed_page_count();
  std::string out = support::format("working set: %zu pages (%s)", pages,
                                    support::format_bytes(pages * sgxsim::kPageSize).c_str());
  bool first = true;
  for (const auto& [type, count] : breakdown()) {
    out += first ? ": " : ", ";
    first = false;
    out += support::format("%s=%zu", to_string(type), count);
  }
  return out;
}

}  // namespace perf
