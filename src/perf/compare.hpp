// Before/after trace comparison.
//
// The sgx-perf workflow is iterative: profile, apply a recommendation,
// profile again (§5: "implement recommendations when applicable ... and
// present our findings").  This module diffs two traces of the same workload
// — typically the naive and the optimised build — matching calls by *name*
// (ids may differ between builds) and reporting count and duration deltas
// plus the estimated transitions saved.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tracedb/database.hpp"

namespace perf {

struct CallDelta {
  std::string name;
  tracedb::CallType type = tracedb::CallType::kEcall;
  std::size_t count_before = 0;
  std::size_t count_after = 0;
  double mean_ns_before = 0.0;
  double mean_ns_after = 0.0;

  [[nodiscard]] std::int64_t count_delta() const noexcept {
    return static_cast<std::int64_t>(count_after) - static_cast<std::int64_t>(count_before);
  }
};

struct TraceComparison {
  std::vector<CallDelta> deltas;  // sorted by |count delta|, descending
  std::size_t ecalls_before = 0;
  std::size_t ecalls_after = 0;
  std::size_t ocalls_before = 0;
  std::size_t ocalls_after = 0;
  /// Wall (virtual) span of each trace: last call end minus first call start.
  support::Nanoseconds span_before = 0;
  support::Nanoseconds span_after = 0;

  /// Transitions saved per run (ecall+ocall count delta, negated).
  [[nodiscard]] std::int64_t transitions_saved() const noexcept {
    return static_cast<std::int64_t>(ecalls_before + ocalls_before) -
           static_cast<std::int64_t>(ecalls_after + ocalls_after);
  }
  /// Speed-up of the after-trace over the before-trace (by span), when both
  /// spans are non-zero.
  [[nodiscard]] std::optional<double> speedup() const noexcept {
    if (span_before == 0 || span_after == 0) return std::nullopt;
    return static_cast<double>(span_before) / static_cast<double>(span_after);
  }
};

[[nodiscard]] TraceComparison compare_traces(const tracedb::TraceDatabase& before,
                                             const tracedb::TraceDatabase& after);

/// Human-readable rendering of the comparison.
[[nodiscard]] std::string render_comparison(const TraceComparison& comparison,
                                            std::size_t max_rows = 20);

}  // namespace perf
