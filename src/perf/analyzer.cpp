#include "perf/analyzer.hpp"

#include <algorithm>
#include <set>

#include "perf/orderliness.hpp"
#include "perf/parents.hpp"
#include "replay/engine.hpp"
#include "support/strutil.hpp"
#include "telemetry/hdr_histogram.hpp"

namespace perf {

using support::Nanoseconds;
using tracedb::CallIndex;
using tracedb::CallKey;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::kNoParent;
using tracedb::OcallKind;

const char* to_string(FindingKind k) noexcept {
  switch (k) {
    case FindingKind::kShortCalls: return "short calls (SISC/SDSC)";
    case FindingKind::kReorderStart: return "short nested call at parent start (SNC)";
    case FindingKind::kReorderEnd: return "short nested call at parent end (SNC)";
    case FindingKind::kBatchable: return "short identical successive calls (SISC)";
    case FindingKind::kMergeable: return "short different successive calls (SDSC)";
    case FindingKind::kSyncContention: return "short synchronisation calls (SSC)";
    case FindingKind::kPaging: return "EPC paging";
    case FindingKind::kTailLatency: return "tail latency (p99 far above p50)";
    case FindingKind::kOutOfOrderEcall: return "out-of-order ecall (illegal transition)";
    case FindingKind::kReentrantEcall: return "unexpected re-entrant ecall";
    case FindingKind::kUseBeforeInit: return "ecall before init completed";
    case FindingKind::kUseAfterDestroy: return "ecall after enclave destruction";
    case FindingKind::kPhaseViolation: return "lifecycle phase violation (init re-entered)";
    case FindingKind::kPrivateEcallCandidate: return "ecall can be made private";
    case FindingKind::kExcessAllowedEcalls: return "allow() list larger than necessary";
    case FindingKind::kMinimalAllowSet: return "smallest observed allow() set";
    case FindingKind::kUserCheckPointer: return "user_check pointer argument";
  }
  return "?";
}

const char* to_string(Recommendation r) noexcept {
  switch (r) {
    case Recommendation::kReorder: return "reorder the call before/after its parent";
    case Recommendation::kBatch: return "batch successive calls into one";
    case Recommendation::kMerge: return "merge the successive calls into a single call";
    case Recommendation::kMoveCallerIn: return "move the caller inside the enclave";
    case Recommendation::kMoveCallerOut:
      return "move the caller outside the enclave (needs security evaluation)";
    case Recommendation::kDuplicateInEnclave:
      return "duplicate the ocall's functionality inside the enclave (grows the TCB)";
    case Recommendation::kSwitchless:
      return "convert the call site to a switchless call (in-enclave worker threads)";
    case Recommendation::kHybridLock: return "use a hybrid spin-then-sleep lock";
    case Recommendation::kLockFreeStructure: return "use lock-free data structures";
    case Recommendation::kReduceMemoryUsage: return "reduce in-enclave memory usage";
    case Recommendation::kPreloadPages: return "pre-load pages before issuing the ecall";
    case Recommendation::kAlternativeMemoryManagement:
      return "manage memory inside the enclave instead of relying on SGX paging";
    case Recommendation::kInvestigateTail:
      return "inspect the slowest instances (AEX storms, paging, lock convoys) — the "
             "mean hides them";
    case Recommendation::kAuditCallSequence:
      return "audit the offending call path — it violates the enclave's interface "
             "ordering model";
    case Recommendation::kMakePrivate: return "declare the ecall private in the EDL";
    case Recommendation::kRestrictAllowedEcalls: return "shrink the ocall's allow() list";
    case Recommendation::kCheckPointerHandling:
      return "verify all checks on the user_check pointer";
  }
  return "?";
}

Analyzer::Analyzer(const tracedb::TraceDatabase& db, AnalyzerConfig config)
    : db_(db), config_(config) {}

void Analyzer::set_interface(tracedb::EnclaveId enclave, sgxsim::edl::InterfaceSpec spec) {
  interfaces_[enclave] = std::move(spec);
}

Nanoseconds Analyzer::adjusted_duration(const CallRecord& c) const {
  const Nanoseconds raw = c.duration();
  if (c.type == CallType::kEcall) {
    return raw > config_.ecall_transition_ns ? raw - config_.ecall_transition_ns : 0;
  }
  return raw;
}

AnalysisReport Analyzer::analyze() const {
  AnalysisReport report;
  report.dropped_events = db_.dropped_events();
  report.stream_dropped = db_.stream_dropped();
  compute_overviews(report);
  compute_stats(report);
  detect_tail_latency(report);
  detect_short_calls(report);
  detect_reordering(report);
  const auto indirect = compute_indirect_parents(db_);
  detect_merge_batch(report, indirect);
  detect_sync(report);
  detect_paging(report);
  detect_orderliness(report);
  analyze_security(report);
  if (config_.predict_speedups) annotate_predictions(report);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.severity > b.severity; });
  return report;
}

// --- what-if predictions (replay engine) -------------------------------------
void Analyzer::annotate_predictions(AnalysisReport& report) const {
  if (report.findings.empty()) return;

  replay::ReplayConfig replay_config;
  replay_config.recorded_cost = config_.replay_cost;
  replay_config.threads = config_.replay_threads;
  const replay::ReplayEngine engine(db_, replay_config);
  if (engine.recorded_span_ns() == 0) return;

  const auto site_name = [&](const CallKey& k) {
    return db_.name_of(k.enclave_id, k.type, k.call_id);
  };

  // One scenario per modelable (finding, recommendation) pair, deduplicated
  // by scenario name so e.g. "move in" and "move out" of the same site share
  // a single replay.
  struct Slot {
    std::size_t finding = 0;
    std::size_t rec = 0;
    std::size_t scenario = 0;
  };
  std::vector<replay::Scenario> scenarios;
  std::vector<Slot> slots;
  std::map<std::string, std::size_t> by_name;

  const auto add_slot = [&](std::size_t fi, std::size_t ri, replay::Scenario&& s) {
    const auto [it, inserted] = by_name.emplace(s.name, scenarios.size());
    if (inserted) scenarios.push_back(std::move(s));
    slots.push_back(Slot{fi, ri, it->second});
  };

  std::vector<std::size_t> sweep_findings;  // short-ecall sites: worker sweep
  for (std::size_t fi = 0; fi < report.findings.size(); ++fi) {
    const Finding& f = report.findings[fi];
    for (std::size_t ri = 0; ri < f.recommendations.size(); ++ri) {
      replay::Scenario s;
      switch (f.recommendations[ri].action) {
        case Recommendation::kMoveCallerIn:
        case Recommendation::kMoveCallerOut:
        case Recommendation::kDuplicateInEnclave:
        case Recommendation::kHybridLock:
        case Recommendation::kLockFreeStructure:
          // All of these remove the site's transitions; the body stays.
          s.name = "eliminate " + site_name(f.subject);
          s.eliminate.push_back(replay::EliminateSpec{f.subject});
          break;
        case Recommendation::kBatch:
        case Recommendation::kMerge:
          s.name = "merge " + site_name(f.subject) + " into " +
                   (f.partner ? site_name(*f.partner) : std::string("indirect parent"));
          s.merge.push_back(replay::MergeSpec{f.subject, f.partner});
          break;
        case Recommendation::kReduceMemoryUsage:
        case Recommendation::kPreloadPages:
        case Recommendation::kAlternativeMemoryManagement:
          // Best-case bound: enough EPC headroom that recorded re-faults
          // become hits.
          s.name = "epc x2";
          s.epc_pages = replay_config.recorded_epc_pages * 2;
          break;
        default:
          break;  // reorder / tail / security actions have no replay model
      }
      if (!s.name.empty()) add_slot(fi, ri, std::move(s));
    }
    if (f.kind == FindingKind::kShortCalls && f.subject.type == CallType::kEcall) {
      sweep_findings.push_back(fi);
    }
  }

  const auto results = engine.run_all(scenarios);
  for (const auto& slot : slots) {
    auto& entry = report.findings[slot.finding].recommendations[slot.rec];
    entry.predicted_speedup = results[slot.scenario].speedup();
    entry.scenario = results[slot.scenario].name;
  }

  // Short ecalls additionally get the switchless alternative, quantified by
  // a worker-count sweep (Configless-style: the count is part of the answer).
  for (const std::size_t fi : sweep_findings) {
    const auto sweep = engine.sweep_switchless(
        report.findings[fi].subject, config_.switchless_min_workers,
        config_.switchless_max_workers);
    RecommendationEntry entry{Recommendation::kSwitchless};
    entry.predicted_speedup = sweep.best_speedup;
    entry.best_workers = sweep.best_workers;
    entry.scenario = "switchless " + sweep.site_name + " x" +
                     std::to_string(sweep.best_workers);
    report.findings[fi].recommendations.push_back(std::move(entry));
  }
}

void Analyzer::compute_overviews(AnalysisReport& report) const {
  std::set<tracedb::EnclaveId> ids;
  for (const auto& e : db_.enclaves()) ids.insert(e.enclave_id);
  for (const auto& c : db_.calls()) ids.insert(c.enclave_id);

  for (const auto id : ids) {
    EnclaveOverview ov;
    ov.enclave_id = id;
    for (const auto& e : db_.enclaves()) {
      if (e.enclave_id == id) ov.name = e.name;
    }
    const auto spec = interfaces_.find(id);
    if (spec != interfaces_.end()) {
      ov.ecalls_defined = spec->second.ecalls.size();
      ov.ocalls_defined = spec->second.ocalls.size();
    }
    ov.ecalls_called = tracedb::distinct_calls(db_, id, CallType::kEcall);
    ov.ocalls_called = tracedb::distinct_calls(db_, id, CallType::kOcall);
    ov.ecall_instances = tracedb::total_calls(db_, id, CallType::kEcall);
    ov.ocall_instances = tracedb::total_calls(db_, id, CallType::kOcall);
    ov.ecalls_below_10us = tracedb::fraction_shorter_than(
        db_, id, CallType::kEcall, config_.short_call_ns, config_.ecall_transition_ns);
    ov.ocalls_below_10us =
        tracedb::fraction_shorter_than(db_, id, CallType::kOcall, config_.short_call_ns);
    const auto [ins, outs] = tracedb::paging_counts(db_, id);
    ov.page_ins = ins;
    ov.page_outs = outs;
    report.overviews.push_back(std::move(ov));
  }
}

void Analyzer::compute_stats(AnalysisReport& report) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();
  for (const auto& [key, instances] : groups) {
    CallStats cs;
    cs.key = key;
    cs.name = db_.name_of(key.enclave_id, key.type, key.call_id);
    std::vector<std::uint64_t> durations;
    durations.reserve(instances.size());
    std::size_t below = 0;
    for (const auto idx : instances) {
      const auto& c = calls[static_cast<std::size_t>(idx)];
      durations.push_back(c.duration());
      cs.aex_total += c.aex_count;
      if (adjusted_duration(c) < config_.short_call_ns) ++below;
    }
    cs.duration_ns = support::summarize(durations);
    cs.fraction_below_10us =
        instances.empty() ? 0.0 : static_cast<double>(below) / static_cast<double>(instances.size());

    // Percentiles: prefer the recorder's v4 latency table (covers events a
    // truncated call table may have lost); reconstruct with the same HDR
    // geometry otherwise, so quantization is identical either way.
    telemetry::HdrSnapshot snap;
    if (const tracedb::LatencyRecord* lat =
            db_.find_latency(key.enclave_id, key.type, key.call_id);
        lat != nullptr && lat->count > 0) {
      for (const auto& [idx, n] : lat->buckets) snap.add_bucket(idx, n);
      snap.set_exact_sum(lat->sum_ns);
    } else {
      for (const auto d : durations) snap.record(d);
    }
    cs.p50_ns = snap.value_at_percentile(50);
    cs.p90_ns = snap.value_at_percentile(90);
    cs.p99_ns = snap.value_at_percentile(99);
    cs.p999_ns = snap.value_at_percentile(99.9);
    report.stats.push_back(std::move(cs));
  }
  // Sites present only in the latency table still get a stats row: a fleet
  // checkpoint (sgxperf serve) persists cumulative HDR histograms without
  // raw call instances, and the histogram carries count, sum and
  // percentiles on its own.
  for (const auto& lat : db_.latencies()) {
    if (lat.count == 0) continue;
    const tracedb::CallKey key{lat.enclave_id, lat.type, lat.call_id};
    if (groups.find(key) != groups.end()) continue;  // raw calls covered it
    CallStats cs;
    cs.key = key;
    cs.name = db_.name_of(key.enclave_id, key.type, key.call_id);
    telemetry::HdrSnapshot snap;
    for (const auto& [idx, n] : lat.buckets) snap.add_bucket(idx, n);
    snap.set_exact_sum(lat.sum_ns);
    cs.duration_ns.count = static_cast<std::size_t>(lat.count);
    cs.duration_ns.mean = static_cast<double>(lat.sum_ns) / static_cast<double>(lat.count);
    cs.p50_ns = snap.value_at_percentile(50);
    cs.duration_ns.median = static_cast<double>(cs.p50_ns);
    cs.p90_ns = snap.value_at_percentile(90);
    cs.p99_ns = snap.value_at_percentile(99);
    cs.p999_ns = snap.value_at_percentile(99.9);
    report.stats.push_back(std::move(cs));
  }
  std::stable_sort(report.stats.begin(), report.stats.end(),
                   [](const CallStats& a, const CallStats& b) {
                     return a.duration_ns.count > b.duration_ns.count;
                   });
}

// --- tail latency: the distribution problem means cannot show ---------------
void Analyzer::detect_tail_latency(AnalysisReport& report) const {
  for (const auto& s : report.stats) {
    if (s.duration_ns.count < config_.min_calls) continue;
    if (s.p99_ns < config_.tail_min_ns) continue;
    const double p50 = static_cast<double>(s.p50_ns > 0 ? s.p50_ns : 1);
    if (static_cast<double>(s.p99_ns) < config_.tail_ratio * p50) continue;
    Finding f;
    f.kind = FindingKind::kTailLatency;
    f.subject = s.key;
    f.subject_name = s.name;
    f.recommendations = {Recommendation::kInvestigateTail};
    f.detail = support::format(
        "p50 %.1fus but p99 %.1fus / p99.9 %.1fus over %zu calls — %.0fx tail the mean "
        "(%.1fus) does not show",
        static_cast<double>(s.p50_ns) / 1e3, static_cast<double>(s.p99_ns) / 1e3,
        static_cast<double>(s.p999_ns) / 1e3, s.duration_ns.count,
        static_cast<double>(s.p99_ns) / p50, s.duration_ns.mean / 1e3);
    // Severity: excess tail time over the median, across the slowest 1%.
    f.severity = static_cast<double>(s.p99_ns - s.p50_ns) *
                 (static_cast<double>(s.duration_ns.count) * 0.01) / 1e3;
    report.findings.push_back(std::move(f));
  }
}

// --- Equation 1: moving / duplication ---------------------------------------
void Analyzer::detect_short_calls(AnalysisReport& report) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();
  for (const auto& [key, instances] : groups) {
    if (instances.size() < config_.min_calls) continue;
    std::size_t c1 = 0;
    std::size_t c5 = 0;
    std::size_t c10 = 0;
    bool any_nested_ocall = false;
    for (const auto idx : instances) {
      const auto& c = calls[static_cast<std::size_t>(idx)];
      const Nanoseconds d = adjusted_duration(c);
      if (d < 1'000) ++c1;
      if (d < 5'000) ++c5;
      if (d < 10'000) ++c10;
      if (c.type == CallType::kOcall && c.parent != kNoParent) any_nested_ocall = true;
    }
    const auto total = static_cast<double>(instances.size());
    const bool fires = (static_cast<double>(c1) / total >= config_.eq1_alpha) ||
                       (static_cast<double>(c5) / total >= config_.eq1_beta) ||
                       (static_cast<double>(c10) / total >= config_.eq1_gamma);
    if (!fires) continue;

    Finding f;
    f.kind = FindingKind::kShortCalls;
    f.subject = key;
    f.subject_name = db_.name_of(key.enclave_id, key.type, key.call_id);
    if (key.type == CallType::kEcall) {
      // Moving the caller *in* keeps secrets inside; moving it *out* needs a
      // security evaluation (§3.1).
      f.recommendations = {Recommendation::kMoveCallerIn, Recommendation::kMoveCallerOut};
    } else {
      f.recommendations = {Recommendation::kMoveCallerOut};
      if (any_nested_ocall) f.recommendations.push_back(Recommendation::kDuplicateInEnclave);
    }
    f.detail = support::format(
        "%zu calls; %.1f%% < 1us, %.1f%% < 5us, %.1f%% < 10us "
        "(ecall durations transition-adjusted by %llu ns)",
        instances.size(), 100.0 * static_cast<double>(c1) / total,
        100.0 * static_cast<double>(c5) / total, 100.0 * static_cast<double>(c10) / total,
        static_cast<unsigned long long>(
            key.type == CallType::kEcall ? config_.ecall_transition_ns : 0));
    f.severity = static_cast<double>(c10);
    report.findings.push_back(std::move(f));
  }
}

// --- Equation 2: reordering ----------------------------------------------------
void Analyzer::detect_reordering(AnalysisReport& report) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();
  for (const auto& [key, instances] : groups) {
    if (instances.size() < config_.min_calls) continue;
    std::size_t start10 = 0;
    std::size_t start20 = 0;
    std::size_t end10 = 0;
    std::size_t end20 = 0;
    std::size_t nested = 0;
    // Aggregate partner (parent) for reporting: the most frequent parent key.
    std::map<CallKey, std::size_t> parent_freq;
    for (const auto idx : instances) {
      const auto& c = calls[static_cast<std::size_t>(idx)];
      if (c.parent == kNoParent) continue;
      ++nested;
      const auto& p = calls[static_cast<std::size_t>(c.parent)];
      ++parent_freq[CallKey{p.enclave_id, p.type, p.call_id}];
      const Nanoseconds from_start = c.start_ns - p.start_ns;
      if (from_start <= 10'000) ++start10;
      if (from_start <= 20'000) ++start20;
      // The parent's end is known post-mortem.
      if (p.end_ns >= c.end_ns) {
        const Nanoseconds to_end = p.end_ns - c.end_ns;
        if (to_end <= 10'000) ++end10;
        if (to_end <= 20'000) ++end20;
      }
    }
    if (nested == 0) continue;
    const auto total = static_cast<double>(instances.size());

    const auto score = [&](std::size_t c10, std::size_t c20) {
      return static_cast<double>(c10) / total * config_.eq2_alpha +
             static_cast<double>(c20) / total * config_.eq2_beta;
    };

    CallKey partner_key{};
    std::size_t best = 0;
    for (const auto& [pk, n] : parent_freq) {
      if (n > best) {
        best = n;
        partner_key = pk;
      }
    }

    const double s_start = score(start10, start20);
    const double s_end = score(end10, end20);
    for (int at_end = 0; at_end < 2; ++at_end) {
      const double s = at_end ? s_end : s_start;
      if (s < config_.eq2_gamma) continue;
      Finding f;
      f.kind = at_end ? FindingKind::kReorderEnd : FindingKind::kReorderStart;
      f.subject = key;
      f.subject_name = db_.name_of(key.enclave_id, key.type, key.call_id);
      f.partner = partner_key;
      f.partner_name = db_.name_of(partner_key.enclave_id, partner_key.type, partner_key.call_id);
      f.recommendations = {Recommendation::kReorder};
      if (key.type == CallType::kOcall) {
        f.recommendations.push_back(Recommendation::kDuplicateInEnclave);
      }
      f.detail = support::format(
          "%zu/%zu instances nested in %s; weighted share near parent %s = %.2f (>= %.2f)",
          nested, instances.size(), f.partner_name.c_str(), at_end ? "end" : "start", s,
          config_.eq2_gamma);
      f.severity = static_cast<double>(at_end ? end20 : start20);
      report.findings.push_back(std::move(f));
    }
  }
}

// --- Equation 3: merging / batching ----------------------------------------------
void Analyzer::detect_merge_batch(AnalysisReport& report,
                                  const std::vector<CallIndex>& indirect) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();

  // Instance counts per key, for the PΣ / CΣ ratio.
  std::map<CallKey, std::size_t> totals;
  for (const auto& [key, instances] : groups) totals[key] = instances.size();

  for (const auto& [key, instances] : groups) {
    if (instances.size() < config_.min_calls) continue;

    // Group this key's instances by the key of their indirect parent.
    struct PairStats {
      std::size_t count = 0;  // C instances whose ip belongs to the partner key
      std::size_t p1 = 0, p5 = 0, p10 = 0, p20 = 0;
    };
    std::map<CallKey, PairStats> by_parent;
    for (const auto idx : instances) {
      const CallIndex ip = indirect[static_cast<std::size_t>(idx)];
      if (ip == kNoParent) continue;
      const auto& c = calls[static_cast<std::size_t>(idx)];
      const auto& p = calls[static_cast<std::size_t>(ip)];
      auto& ps = by_parent[CallKey{p.enclave_id, p.type, p.call_id}];
      ++ps.count;
      if (c.start_ns < p.end_ns) continue;  // overlapping records: skip gap stats
      const Nanoseconds gap = c.start_ns - p.end_ns;
      if (gap <= 1'000) ++ps.p1;
      if (gap <= 5'000) ++ps.p5;
      if (gap <= 10'000) ++ps.p10;
      if (gap <= 20'000) ++ps.p20;
    }

    for (const auto& [parent_key, ps] : by_parent) {
      // "the analyser only considers calls for merging that are indirect
      // parents at least 35% of the time (λ)": the fraction of this call's
      // instances whose indirect parent is an instance of parent_key.
      const double ip_fraction =
          static_cast<double>(ps.count) / static_cast<double>(instances.size());
      if (ip_fraction < config_.eq3_lambda) continue;
      const auto p_total = static_cast<double>(ps.count);
      const double score = static_cast<double>(ps.p1) / p_total * config_.eq3_alpha +
                           static_cast<double>(ps.p5) / p_total * config_.eq3_beta +
                           static_cast<double>(ps.p10) / p_total * config_.eq3_gamma +
                           static_cast<double>(ps.p20) / p_total * config_.eq3_delta;
      if (score < config_.eq3_epsilon) continue;

      Finding f;
      const bool batching = parent_key == key;  // its own indirect parent
      f.kind = batching ? FindingKind::kBatchable : FindingKind::kMergeable;
      f.subject = key;
      f.subject_name = db_.name_of(key.enclave_id, key.type, key.call_id);
      f.partner = parent_key;
      f.partner_name =
          db_.name_of(parent_key.enclave_id, parent_key.type, parent_key.call_id);
      f.recommendations = {batching ? Recommendation::kBatch : Recommendation::kMerge};
      f.recommendations.push_back(key.type == CallType::kEcall ? Recommendation::kMoveCallerIn
                                                               : Recommendation::kMoveCallerOut);
      f.detail = support::format(
          "%zu instances follow %s (%.0f%% of %zu); gaps: %.0f%% <= 1us, %.0f%% <= 5us, "
          "%.0f%% <= 10us, %.0f%% <= 20us; weighted score %.2f >= %.2f",
          ps.count, f.partner_name.c_str(), 100.0 * ip_fraction, instances.size(),
          100.0 * static_cast<double>(ps.p1) / p_total,
          100.0 * static_cast<double>(ps.p5) / p_total,
          100.0 * static_cast<double>(ps.p10) / p_total,
          100.0 * static_cast<double>(ps.p20) / p_total, score, config_.eq3_epsilon);
      f.severity = static_cast<double>(ps.count) * 2.0;  // merging saves round trips
      report.findings.push_back(std::move(f));
    }
  }
}

// --- SSC: short synchronisation calls ------------------------------------------
void Analyzer::detect_sync(AnalysisReport& report) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();
  for (const auto& [key, instances] : groups) {
    if (key.type != CallType::kOcall || instances.empty()) continue;
    const auto kind = calls[static_cast<std::size_t>(instances.front())].kind;
    if (kind == OcallKind::kGeneric) continue;

    // Wake-ups are "typically very short (<10us)" — every one is a wasted
    // transition.  Short sleeps signal a briefly-held lock (§3.4).
    std::size_t short_calls = 0;
    for (const auto idx : instances) {
      if (calls[static_cast<std::size_t>(idx)].duration() < config_.short_call_ns) {
        ++short_calls;
      }
    }
    const bool is_sleep = kind == OcallKind::kSleep || kind == OcallKind::kWakeOneAndSleep;
    if (short_calls == 0) continue;
    if (instances.size() < 2) continue;

    Finding f;
    f.kind = FindingKind::kSyncContention;
    f.subject = key;
    f.subject_name = db_.name_of(key.enclave_id, key.type, key.call_id);
    f.recommendations = {Recommendation::kHybridLock, Recommendation::kLockFreeStructure};
    f.detail = support::format(
        "%zu %s ocalls, %zu shorter than 10us — the transition dominates; consider keeping "
        "the contention inside the enclave",
        instances.size(), is_sleep ? "sleep" : "wake-up", short_calls);
    f.severity = static_cast<double>(short_calls);
    report.findings.push_back(std::move(f));
  }
}

// --- paging -----------------------------------------------------------------------
void Analyzer::detect_paging(AnalysisReport& report) const {
  std::map<tracedb::EnclaveId, std::size_t> events;
  for (const auto& p : db_.paging()) ++events[p.enclave_id];
  for (const auto& [eid, count] : events) {
    if (count < config_.paging_threshold) continue;
    Finding f;
    f.kind = FindingKind::kPaging;
    f.subject = CallKey{eid, CallType::kEcall, 0};
    f.subject_name = support::format("enclave %llu", static_cast<unsigned long long>(eid));
    for (const auto& e : db_.enclaves()) {
      if (e.enclave_id == eid && !e.name.empty()) f.subject_name = e.name;
    }
    f.recommendations = {Recommendation::kReduceMemoryUsage, Recommendation::kPreloadPages,
                         Recommendation::kAlternativeMemoryManagement};
    f.detail = support::format(
        "%zu EPC paging events — each one costs a transition plus page re-encryption", count);
    f.severity = static_cast<double>(count) * 4.0;  // paging is the costliest pattern
    report.findings.push_back(std::move(f));
  }
}

// --- interface orderliness (v6 model embedded in the trace) -------------------------
void Analyzer::detect_orderliness(AnalysisReport& report) const {
  const OrderModel model = model_from_rules(db_.order_rules());
  if (model.empty()) return;

  const auto finding_kind = [](tracedb::AlertKind k) {
    switch (k) {
      case tracedb::AlertKind::kReentrantEcall: return FindingKind::kReentrantEcall;
      case tracedb::AlertKind::kUseBeforeInit: return FindingKind::kUseBeforeInit;
      case tracedb::AlertKind::kUseAfterDestroy: return FindingKind::kUseAfterDestroy;
      case tracedb::AlertKind::kPhaseViolation: return FindingKind::kPhaseViolation;
      default: return FindingKind::kOutOfOrderEcall;
    }
  };

  for (const auto& a : check_trace(db_, model)) {
    const std::uint64_t count = a.detail & 0xffffffffull;
    const auto thread = static_cast<std::uint32_t>(a.detail >> 32);
    Finding f;
    f.kind = finding_kind(a.kind);
    f.subject = CallKey{a.enclave_id, a.type, a.call_id};
    f.subject_name = db_.name_of(a.enclave_id, a.type, a.call_id);
    f.recommendations = {Recommendation::kAuditCallSequence};
    f.detail = support::format(
        "%llu violation%s, first on thread %u at %.3fms (virtual)",
        static_cast<unsigned long long>(count), count == 1 ? "" : "s", thread,
        static_cast<double>(a.onset_ns) / 1e6);
    // Orderliness violations outrank every perf pattern: a wrong call
    // sequence is a correctness/security alarm, not a tuning opportunity.
    f.severity = static_cast<double>(count) * 1e6;
    report.findings.push_back(std::move(f));
  }
}

// --- interface security (§3.6, §4.3.2) ----------------------------------------------
void Analyzer::analyze_security(AnalysisReport& report) const {
  const auto groups = tracedb::group_calls(db_);
  const auto& calls = db_.calls();

  // 1. Private-ecall candidates: every instance was issued during an ocall.
  for (const auto& [key, instances] : groups) {
    if (key.type != CallType::kEcall || instances.empty()) continue;
    bool all_nested = true;
    std::set<std::string> parent_ocalls;
    for (const auto idx : instances) {
      const auto& c = calls[static_cast<std::size_t>(idx)];
      if (c.parent == kNoParent) {
        all_nested = false;
        break;
      }
      const auto& p = calls[static_cast<std::size_t>(c.parent)];
      parent_ocalls.insert(db_.name_of(p.enclave_id, p.type, p.call_id));
    }
    if (!all_nested) continue;

    // Skip if the EDL already declares it private.
    const auto spec = interfaces_.find(key.enclave_id);
    if (spec != interfaces_.end() && key.call_id < spec->second.ecalls.size() &&
        !spec->second.ecalls[key.call_id].is_public) {
      continue;
    }

    Finding f;
    f.kind = FindingKind::kPrivateEcallCandidate;
    f.subject = key;
    f.subject_name = db_.name_of(key.enclave_id, key.type, key.call_id);
    f.recommendations = {Recommendation::kMakePrivate};
    std::string parents;
    for (const auto& name : parent_ocalls) {
      if (!parents.empty()) parents += ", ";
      parents += name;
    }
    f.detail = support::format(
        "all %zu instances were issued during ocalls; allow it from: %s "
        "(note: this recommendation is workload-dependent)",
        instances.size(), parents.c_str());
    f.severity = 1.0;
    report.findings.push_back(std::move(f));
  }

  // 2a. Without an EDL, "the analyser will state the smallest set of allowed
  //     ecalls" (§4.3.2): report, per ocall that hosted nested ecalls, the
  //     exact set observed — the minimal allow() list the developer needs.
  {
    std::map<CallKey, std::set<std::string>> observed_per_ocall;
    for (const auto& c : calls) {
      if (c.type != CallType::kEcall || c.parent == kNoParent) continue;
      if (interfaces_.contains(c.enclave_id)) continue;  // EDL supplied: 2b handles it
      const auto& p = calls[static_cast<std::size_t>(c.parent)];
      observed_per_ocall[CallKey{p.enclave_id, p.type, p.call_id}].insert(
          db_.name_of(c.enclave_id, CallType::kEcall, c.call_id));
    }
    for (const auto& [okey, ecall_names] : observed_per_ocall) {
      Finding f;
      f.kind = FindingKind::kMinimalAllowSet;
      f.subject = okey;
      f.subject_name = db_.name_of(okey.enclave_id, okey.type, okey.call_id);
      f.recommendations = {Recommendation::kRestrictAllowedEcalls};
      std::vector<std::string> names(ecall_names.begin(), ecall_names.end());
      f.detail = support::format("allow (%s) suffices for this workload",
                                 support::join(names, ", ").c_str());
      f.severity = 0.5;
      report.findings.push_back(std::move(f));
    }
  }

  // 2b. allow() lists vs observed nesting, and user_check pointers (EDL only).
  for (const auto& [eid, spec] : interfaces_) {
    // Observed: which ecalls actually ran during each ocall.
    std::map<tracedb::CallId, std::set<std::string>> observed;  // ocall id -> ecall names
    for (const auto& c : calls) {
      if (c.type != CallType::kEcall || c.parent == kNoParent || c.enclave_id != eid) continue;
      const auto& p = calls[static_cast<std::size_t>(c.parent)];
      observed[p.call_id].insert(db_.name_of(c.enclave_id, CallType::kEcall, c.call_id));
    }
    for (std::size_t oid = 0; oid < spec.ocalls.size(); ++oid) {
      const auto& o = spec.ocalls[oid];
      if (o.allowed_ecalls.empty()) continue;
      const auto& used = observed[static_cast<tracedb::CallId>(oid)];
      std::vector<std::string> excess;
      for (const auto& allowed : o.allowed_ecalls) {
        if (!used.contains(allowed)) excess.push_back(allowed);
      }
      if (excess.empty()) continue;
      Finding f;
      f.kind = FindingKind::kExcessAllowedEcalls;
      f.subject = CallKey{eid, CallType::kOcall, static_cast<tracedb::CallId>(oid)};
      f.subject_name = o.name;
      f.recommendations = {Recommendation::kRestrictAllowedEcalls};
      f.detail = support::format("allowed but never called during this ocall: %s "
                                 "(note: this recommendation is workload-dependent)",
                                 support::join(excess, ", ").c_str());
      f.severity = static_cast<double>(excess.size());
      report.findings.push_back(std::move(f));
    }

    // user_check pointers.
    auto flag_user_check = [&](const CallKey& key, const std::string& name,
                               const std::vector<sgxsim::edl::Parameter>& params) {
      std::vector<std::string> bad;
      for (const auto& p : params) {
        if (p.direction == sgxsim::edl::PointerDirection::kUserCheck) bad.push_back(p.name);
      }
      if (bad.empty()) return;
      Finding f;
      f.kind = FindingKind::kUserCheckPointer;
      f.subject = key;
      f.subject_name = name;
      f.recommendations = {Recommendation::kCheckPointerHandling};
      f.detail = support::format("user_check pointer parameter(s): %s — vulnerable to "
                                 "buffer overflows, TOCTTOU and in-enclave addresses if "
                                 "left unchecked",
                                 support::join(bad, ", ").c_str());
      f.severity = static_cast<double>(bad.size());
      report.findings.push_back(std::move(f));
    };
    for (std::size_t i = 0; i < spec.ecalls.size(); ++i) {
      flag_user_check(CallKey{eid, CallType::kEcall, static_cast<tracedb::CallId>(i)},
                      spec.ecalls[i].name, spec.ecalls[i].params);
    }
    for (std::size_t i = 0; i < spec.ocalls.size(); ++i) {
      flag_user_check(CallKey{eid, CallType::kOcall, static_cast<tracedb::CallId>(i)},
                      spec.ocalls[i].name, spec.ocalls[i].params);
    }
  }
}

}  // namespace perf
