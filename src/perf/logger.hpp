// The sgx-perf event logger (§4, §4.1).
//
// In the original tool this is a shared library preloaded via LD_PRELOAD; it
// shadows sgx_ecall (Figure 2), rewrites ocall tables with generated stubs
// (Figure 3), optionally patches the AEP to count or trace AEXs (§4.1.4) and
// attaches kprobes to the driver's paging paths (§4.1.5).  Here it installs
// the equivalent hooks on the simulated URTS/driver — the application, the
// enclave and the SDK remain unmodified.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "perf/stubs.hpp"
#include "sgxsim/runtime.hpp"
#include "tracedb/database.hpp"

namespace perf {

struct LoggerConfig {
  /// Count AEXs per ecall (cheap; Table 2 measures ~1,076 ns per AEX).
  bool count_aex = true;
  /// Additionally record each AEX with its timestamp (~1,118 ns per AEX).
  bool trace_aex = false;
  /// Subscribe to the driver's paging events (kprobe analogue).
  bool trace_paging = true;
};

/// Traces ecalls, ocalls, AEXs, synchronisation and paging into a
/// TraceDatabase.  Attach to a Urts before the workload runs, detach after.
class Logger {
 public:
  Logger(tracedb::TraceDatabase& db, LoggerConfig config = {});
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Installs all hooks.  Enclaves created *before* attach are registered
  /// lazily on their first traced ecall.
  void attach(sgxsim::Urts& urts);
  /// Restores the original hooks and flushes state.
  void detach();

  [[nodiscard]] bool attached() const noexcept { return urts_ != nullptr; }
  [[nodiscard]] tracedb::TraceDatabase& database() noexcept { return db_; }
  [[nodiscard]] const LoggerConfig& config() const noexcept { return config_; }

  // --- stub callbacks (invoked by OcallStubRegistry trampolines) ------------
  sgxsim::SgxStatus on_stub_call(const OcallStubRegistry::StubInfo& info, void* ms);

 private:
  /// The shadow of sgx_ecall: records the event, swaps the ocall table for
  /// the stub table, chains to the real URTS implementation.
  sgxsim::SgxStatus shadow_sgx_ecall(sgxsim::EnclaveId eid, sgxsim::CallId id,
                                     const sgxsim::OcallTable* table, void* ms);

  /// Patched AEP: counts and/or traces the AEX.
  void on_aex(sgxsim::EnclaveId eid, sgxsim::ThreadId tid, support::Nanoseconds now,
              sgxsim::AexCause cause);

  void on_paging(sgxsim::EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir,
                 support::Nanoseconds now);

  void on_enclave_created(const sgxsim::Enclave& enclave);
  void on_enclave_destroyed(sgxsim::EnclaveId eid, support::Nanoseconds now);

  /// Registers ecall/ocall names for an enclave (from its EDL) once.
  void register_names(const sgxsim::Enclave& enclave);

  // Per-thread bookkeeping: the stack of in-flight traced calls, used to set
  // direct parents and attribute AEXs.
  struct ThreadTrace {
    std::vector<tracedb::CallIndex> stack;
    std::uint32_t aex_count_current_ecall = 0;
  };
  ThreadTrace& thread_trace(sgxsim::ThreadId tid);

  tracedb::TraceDatabase& db_;
  LoggerConfig config_;
  sgxsim::Urts* urts_ = nullptr;

  std::mutex mu_;
  std::unordered_map<sgxsim::ThreadId, ThreadTrace> threads_;
  std::unordered_map<sgxsim::EnclaveId, bool> names_registered_;
};

}  // namespace perf
