// The sgx-perf event logger (§4, §4.1).
//
// In the original tool this is a shared library preloaded via LD_PRELOAD; it
// shadows sgx_ecall (Figure 2), rewrites ocall tables with generated stubs
// (Figure 3), optionally patches the AEP to count or trace AEXs (§4.1.4) and
// attaches kprobes to the driver's paging paths (§4.1.5).  Here it installs
// the equivalent hooks on the simulated URTS/driver — the application, the
// enclave and the SDK remain unmodified.
//
// Recording path: like the real tool, each worker thread appends to its own
// per-thread buffer (a tracedb::EventShard) with no locking on the hot path;
// detach() (or flush()) seals the shards and merges them into the globally
// time-ordered database, so the analyser and the serialized format never see
// a difference.  Set LoggerConfig::sharded = false to fall back to the old
// single-mutex path (kept for A/B benchmarking of the contention win).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "perf/stream.hpp"
#include "perf/stubs.hpp"
#include "sgxsim/runtime.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/sampler.hpp"
#include "tracedb/database.hpp"

namespace perf {

struct LoggerConfig {
  /// Count AEXs per ecall (cheap; Table 2 measures ~1,076 ns per AEX).
  bool count_aex = true;
  /// Additionally record each AEX with its timestamp (~1,118 ns per AEX).
  bool trace_aex = false;
  /// Subscribe to the driver's paging events (kprobe analogue).
  bool trace_paging = true;
  /// Record into per-thread shards (lock-free hot path, merged at detach).
  /// false = serialize every record through the database mutex.
  bool sharded = true;
  /// Virtual-time cadence at which the telemetry registry is sampled into
  /// the trace (MetricSample table, format v3).  0 = sampling off, which
  /// keeps traces byte-identical to pre-telemetry recordings.
  support::Nanoseconds metric_sample_period_ns = 0;
  /// Record per-(enclave, type, call_id) HDR latency histograms on the call
  /// return path and persist them as the v4 latency table at detach/flush.
  /// Lock-free after a call site's first completion on a thread.
  bool latency_histograms = true;
  /// Worker threads for the shard merge at detach (0 = hardware
  /// concurrency, 1 = sequential).  Output is byte-identical either way.
  std::size_t merge_threads = 0;
};

/// Traces ecalls, ocalls, AEXs, synchronisation and paging into a
/// TraceDatabase.  Attach to a Urts before the workload runs, detach after.
class Logger {
 public:
  Logger(tracedb::TraceDatabase& db, LoggerConfig config = {});
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Installs all hooks.  Enclaves created *before* attach are registered
  /// lazily on their first traced ecall.
  void attach(sgxsim::Urts& urts);

  /// Restores the original hooks, finalizes calls still in flight (their
  /// end timestamp becomes the detach time — never leaked half-open) and
  /// merges all shards into the database.  Safe to call from inside a
  /// traced call: the frames unwinding through the detached logger record
  /// nothing further.
  void detach();

  /// Merges everything recorded so far into the database and reopens the
  /// shards for further recording — the mid-session quiescent point tests
  /// and tools use to inspect a trace without detaching.  Throws
  /// std::logic_error if any traced call is still in flight.  All worker
  /// threads must have quiesced.  No-op in non-sharded mode.
  void flush();

  [[nodiscard]] bool attached() const noexcept { return urts_ != nullptr; }
  [[nodiscard]] tracedb::TraceDatabase& database() noexcept { return db_; }
  [[nodiscard]] const LoggerConfig& config() const noexcept { return config_; }

  /// Registers a live event subscription (see stream.hpp) — callable while
  /// recording is in flight, from any thread.  Returns nullptr when all
  /// subscriber slots are taken.  Subscriptions outlive detach(); close()
  /// them (or drop the handle) when done.
  std::shared_ptr<StreamSubscription> subscribe(std::string name,
                                                std::size_t capacity = 1 << 12);

  /// Events dropped across all streaming subscriptions so far.
  [[nodiscard]] std::uint64_t stream_dropped() const { return stream_.total_dropped(); }

  /// Events this logger's shards accepted or rejected (call starts, traced
  /// AEXs, paging, syncs), derived from the merge accounting — valid once
  /// detach() has merged the shards, at zero per-event cost.  This is the
  /// "produced" side of the ledger's record stage: with a fresh database it
  /// must equal db events + merge_stats().dropped, so the audit genuinely
  /// cross-checks the merge bookkeeping against the stitched tables.
  [[nodiscard]] std::uint64_t events_produced() const noexcept {
    const auto& m = db_.merge_stats();
    return m.calls + m.aexs + m.paging + m.syncs + m.dropped;
  }

  /// Cumulative latency snapshot for one call site (empty if none
  /// recorded).  Safe while recording is in flight — snapshots are
  /// racy-by-design point-in-time views.
  [[nodiscard]] telemetry::HdrSnapshot latency_snapshot(sgxsim::EnclaveId eid,
                                                        tracedb::CallType type,
                                                        sgxsim::CallId id) const;

  // --- stub callbacks (invoked by OcallStubRegistry trampolines) ------------
  sgxsim::SgxStatus on_stub_call(const OcallStubRegistry::StubInfo& info, void* ms);

 private:
  /// The shadow of sgx_ecall: records the event, swaps the ocall table for
  /// the stub table, chains to the real URTS implementation.
  sgxsim::SgxStatus shadow_sgx_ecall(sgxsim::EnclaveId eid, sgxsim::CallId id,
                                     const sgxsim::OcallTable* table, void* ms);

  /// Patched AEP: counts and/or traces the AEX.
  void on_aex(sgxsim::EnclaveId eid, sgxsim::ThreadId tid, support::Nanoseconds now,
              sgxsim::AexCause cause);

  void on_paging(sgxsim::EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir,
                 support::Nanoseconds now);

  void on_enclave_created(const sgxsim::Enclave& enclave);
  void on_enclave_destroyed(sgxsim::EnclaveId eid, support::Nanoseconds now);

  /// Registers ecall/ocall names for an enclave (from its EDL) once.
  void register_names(const sgxsim::Enclave& enclave);

  /// One in-flight traced call.  The record type is cached here so the hot
  /// path never reads the database (whose arrays another thread's merge
  /// could be growing) to classify the parent.
  struct StackEntry {
    tracedb::CallIndex index = tracedb::kNoParent;  // shard-local if sharded
    tracedb::CallType type = tracedb::CallType::kEcall;
    /// Stream identity of this in-flight call: (call_id, start_ns) lets a
    /// nested call's completion event name its parent *instance* without
    /// touching the database (per-thread start times are unique).
    tracedb::CallId call_id = 0;
    support::Nanoseconds start_ns = 0;
  };

  /// Key of one per-call-site latency histogram.
  using LatencyKey = std::tuple<sgxsim::EnclaveId, tracedb::CallType, sgxsim::CallId>;

  /// Per-thread recording state, touched only by its owner thread on the
  /// hot path.  In sharded mode `shard` points at this thread's EventShard;
  /// in mutex mode it is null and records go straight to the database.
  struct PerThread {
    tracedb::EventShard* shard = nullptr;
    std::vector<StackEntry> stack;
    std::uint32_t aex_count_current_ecall = 0;
    /// Enclaves whose lazy registration this thread has already verified —
    /// keeps the per-ecall registration check off the logger mutex.
    std::vector<sgxsim::EnclaveId> enclaves_seen;
    /// Thread-local view of the shared latency map: the logger mutex is
    /// taken once per (thread, call site), relaxed adds after that.
    std::map<LatencyKey, telemetry::HdrHistogram*> latency_cache;
  };

  /// This thread's recording state for the current attach epoch.  Uses a
  /// thread-local cache keyed by a globally unique attach token (the same
  /// pattern as Urts::thread_state), so the lookup is lock-free after the
  /// first call and never confuses epochs or logger instances.
  PerThread& per_thread();

  // Record routing: shard in sharded mode, database mutex otherwise.
  tracedb::CallIndex record_call(PerThread& pt, const tracedb::CallRecord& rec);
  void record_finish(PerThread& pt, tracedb::CallIndex idx, support::Nanoseconds end_ns,
                     std::uint32_t aex_count);
  void record_kind(PerThread& pt, tracedb::CallIndex idx, tracedb::OcallKind kind);

  /// Ensures `eid`'s enclave record and call names exist (lazy path for
  /// enclaves created before attach).
  void ensure_enclave_registered(PerThread& pt, sgxsim::EnclaveId eid);

  /// Finalizes every in-flight call of every thread at time `now`.
  void finalize_open_calls(support::Nanoseconds now);

  /// This thread's latency histogram for a call site (null when latency
  /// recording is off).  Lock-free after the first lookup per thread.
  telemetry::HdrHistogram* latency_for(PerThread& pt, sgxsim::EnclaveId eid,
                                       tracedb::CallType type, sgxsim::CallId id);

  /// Upserts every latency histogram plus the stream-drop count into the
  /// database (the v4 tables) — called at detach() and flush().
  void persist_latency();

  tracedb::TraceDatabase& db_;
  LoggerConfig config_;
  sgxsim::Urts* urts_ = nullptr;
  std::uint64_t attach_token_ = 0;

  /// Snapshots the metrics registry into the database on a virtual-time
  /// cadence; polled from the recording hot paths.  Null when sampling is
  /// off (the default).
  std::unique_ptr<telemetry::TelemetrySampler> sampler_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PerThread>> per_threads_;
  std::unordered_map<sgxsim::EnclaveId, bool> names_registered_;

  /// Live-subscriber fan-out.  The hot paths pay one relaxed load when
  /// nobody is subscribed.
  StreamHub stream_;

  /// Per-call-site concurrent latency histograms; pointers handed to
  /// per-thread caches stay valid until the logger dies (entries are never
  /// erased, only reset at attach()).  Guarded by mu_.
  std::map<LatencyKey, std::unique_ptr<telemetry::HdrHistogram>> latency_;
};

}  // namespace perf
