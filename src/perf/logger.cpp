#include "perf/logger.hpp"

#include <stdexcept>

namespace perf {

using sgxsim::CallId;
using sgxsim::EnclaveId;
using sgxsim::SgxStatus;
using sgxsim::SyncOcall;
using sgxsim::ThreadId;
using support::Nanoseconds;
using tracedb::CallIndex;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::OcallKind;

namespace {

/// Names the SDK gives its synchronisation ocalls; registered so analyser
/// reports read like the real tool's output.
const char* sync_ocall_name(std::size_t offset) {
  switch (offset) {
    case 0: return "sgx_thread_wait_untrusted_event_ocall";
    case 1: return "sgx_thread_set_untrusted_event_ocall";
    case 2: return "sgx_thread_set_multiple_untrusted_events_ocall";
    case 3: return "sgx_thread_setwait_untrusted_events_ocall";
    default: return "sgx_thread_unknown_sync_ocall";
  }
}

OcallKind sync_kind(std::size_t offset) {
  switch (static_cast<SyncOcall>(offset)) {
    case SyncOcall::kWaitEvent: return OcallKind::kSleep;
    case SyncOcall::kSetEvent: return OcallKind::kWakeOne;
    case SyncOcall::kSetMultipleEvents: return OcallKind::kWakeMultiple;
    case SyncOcall::kSetWaitEvent: return OcallKind::kWakeOneAndSleep;
  }
  return OcallKind::kGeneric;
}

}  // namespace

Logger::Logger(tracedb::TraceDatabase& db, LoggerConfig config) : db_(db), config_(config) {}

Logger::~Logger() {
  if (attached()) detach();
}

void Logger::attach(sgxsim::Urts& urts) {
  if (attached()) throw std::logic_error("Logger: already attached");
  urts_ = &urts;

  auto& hooks = urts.hooks();
  hooks.sgx_ecall = [this](EnclaveId eid, CallId id, const sgxsim::OcallTable* table, void* ms) {
    return shadow_sgx_ecall(eid, id, table, ms);
  };
  if (config_.count_aex || config_.trace_aex) {
    hooks.aep = [this](EnclaveId eid, ThreadId tid, Nanoseconds now, sgxsim::AexCause cause) {
      on_aex(eid, tid, now, cause);
    };
  }
  hooks.enclave_created = [this](const sgxsim::Enclave& e) { on_enclave_created(e); };
  hooks.enclave_destroyed = [this](EnclaveId eid, Nanoseconds now) {
    on_enclave_destroyed(eid, now);
  };
  if (config_.trace_paging) {
    urts.driver().set_trace_hooks(
        [this](EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir, Nanoseconds now) {
          on_paging(eid, page, dir, now);
        });
  }
}

void Logger::detach() {
  if (!attached()) return;
  auto& hooks = urts_->hooks();
  hooks.sgx_ecall = nullptr;
  hooks.aep = nullptr;
  hooks.enclave_created = nullptr;
  hooks.enclave_destroyed = nullptr;
  if (config_.trace_paging) urts_->driver().clear_trace_hooks();
  OcallStubRegistry::instance().reset();
  urts_ = nullptr;
  std::lock_guard lock(mu_);
  threads_.clear();
  names_registered_.clear();
}

Logger::ThreadTrace& Logger::thread_trace(ThreadId tid) {
  std::lock_guard lock(mu_);
  return threads_[tid];  // unordered_map references are rehash-stable
}

void Logger::register_names(const sgxsim::Enclave& enclave) {
  {
    std::lock_guard lock(mu_);
    auto& done = names_registered_[enclave.id()];
    if (done) return;
    done = true;
  }
  const auto& spec = enclave.interface();
  for (std::size_t i = 0; i < spec.ecalls.size(); ++i) {
    db_.add_call_name({enclave.id(), CallType::kEcall, static_cast<CallId>(i),
                       spec.ecalls[i].name});
  }
  for (std::size_t i = 0; i < spec.ocalls.size(); ++i) {
    db_.add_call_name({enclave.id(), CallType::kOcall, static_cast<CallId>(i),
                       spec.ocalls[i].name});
  }
  for (std::size_t off = 0; off < sgxsim::kNumSyncOcalls; ++off) {
    db_.add_call_name({enclave.id(), CallType::kOcall,
                       static_cast<CallId>(spec.ocalls.size() + off), sync_ocall_name(off)});
  }
}

void Logger::on_enclave_created(const sgxsim::Enclave& enclave) {
  tracedb::EnclaveRecord rec;
  rec.enclave_id = enclave.id();
  rec.name = enclave.config().name;
  rec.created_ns = urts_->clock().now();
  rec.tcs_count = static_cast<std::uint32_t>(enclave.tcs_count());
  rec.size_bytes = enclave.size_bytes();
  db_.add_enclave(rec);
  register_names(enclave);
}

void Logger::on_enclave_destroyed(EnclaveId eid, Nanoseconds now) {
  db_.set_enclave_destroyed(eid, now);
}

SgxStatus Logger::shadow_sgx_ecall(EnclaveId eid, CallId id, const sgxsim::OcallTable* table,
                                   void* ms) {
  // Enclaves created before attach: register lazily on first traced call.
  if (const sgxsim::Enclave* enclave = urts_->find_enclave(eid)) {
    bool need_record = false;
    {
      std::lock_guard lock(mu_);
      need_record = !names_registered_.contains(eid);
    }
    if (need_record) on_enclave_created(*enclave);
  }

  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  const ThreadId tid = urts_->current_thread_id();
  ThreadTrace& trace = thread_trace(tid);

  // Record entry: timestamp, thread, ids, direct parent (the enclosing ocall,
  // if this ecall was issued from one).
  clock.advance(cost.logger_ecall_pre_ns);
  CallRecord rec;
  rec.type = CallType::kEcall;
  rec.thread_id = tid;
  rec.enclave_id = eid;
  rec.call_id = id;
  if (!trace.stack.empty()) {
    const auto& top = db_.calls()[static_cast<std::size_t>(trace.stack.back())];
    if (top.type == CallType::kOcall) rec.parent = trace.stack.back();
  }
  rec.start_ns = clock.now();
  const CallIndex idx = db_.add_call(rec);
  trace.stack.push_back(idx);
  const std::uint32_t saved_aex = trace.aex_count_current_ecall;
  trace.aex_count_current_ecall = 0;

  // Swap in the shadow ocall table — always, "as we cannot know beforehand"
  // whether the ecall performs ocalls (§4.1.2) — and chain to the URTS.
  const sgxsim::OcallTable* shadow =
      table != nullptr ? OcallStubRegistry::instance().shadow_table(*this, eid, table) : nullptr;
  const SgxStatus ret = urts_->real_sgx_ecall(eid, id, shadow, ms);

  // Record exit.
  clock.advance(cost.logger_ecall_post_ns);
  db_.finish_call(idx, clock.now(), trace.aex_count_current_ecall);
  trace.stack.pop_back();
  trace.aex_count_current_ecall = saved_aex;
  return ret;
}

SgxStatus Logger::on_stub_call(const OcallStubRegistry::StubInfo& info, void* ms) {
  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  const ThreadId tid = urts_->current_thread_id();
  ThreadTrace& trace = thread_trace(tid);

  clock.advance(cost.logger_ocall_pre_ns);
  CallRecord rec;
  rec.type = CallType::kOcall;
  rec.thread_id = tid;
  rec.enclave_id = info.enclave_id;
  rec.call_id = info.ocall_id;
  if (!trace.stack.empty()) {
    const auto& top = db_.calls()[static_cast<std::size_t>(trace.stack.back())];
    if (top.type == CallType::kEcall) rec.parent = trace.stack.back();
  }
  rec.start_ns = clock.now();

  const CallIndex idx = db_.add_call(rec);
  trace.stack.push_back(idx);

  // Synchronisation ocalls reduce to sleep / wake-up events (§4.1.3); the
  // marshalling struct layout is SDK-public, so the logger can read the
  // wake-up targets to track cross-thread dependencies.
  if (info.is_sync) {
    const auto* s = static_cast<const sgxsim::SyncOcallMs*>(ms);
    const std::size_t offset = info.sync_offset;
    db_.set_call_kind(idx, sync_kind(offset));
    tracedb::SyncRecord sync;
    sync.enclave_id = info.enclave_id;
    sync.timestamp_ns = clock.now();
    switch (static_cast<SyncOcall>(offset)) {
      case SyncOcall::kWaitEvent:
        sync.kind = tracedb::SyncKind::kSleep;
        sync.thread_id = tid;
        db_.add_sync(sync);
        break;
      case SyncOcall::kSetEvent:
        sync.kind = tracedb::SyncKind::kWakeup;
        sync.thread_id = tid;
        sync.target_thread_id = s->target;
        db_.add_sync(sync);
        break;
      case SyncOcall::kSetMultipleEvents:
        if (s->targets != nullptr) {
          for (ThreadId t : *s->targets) {
            sync.kind = tracedb::SyncKind::kWakeup;
            sync.thread_id = tid;
            sync.target_thread_id = t;
            db_.add_sync(sync);
          }
        }
        break;
      case SyncOcall::kSetWaitEvent: {
        sync.kind = tracedb::SyncKind::kWakeup;
        sync.thread_id = tid;
        sync.target_thread_id = s->target;
        db_.add_sync(sync);
        tracedb::SyncRecord sleep = sync;
        sleep.kind = tracedb::SyncKind::kSleep;
        sleep.target_thread_id = 0;
        db_.add_sync(sleep);
        break;
      }
    }
  }

  const SgxStatus ret = info.original(ms);

  clock.advance(cost.logger_ocall_post_ns);
  db_.finish_call(idx, clock.now(), 0);
  trace.stack.pop_back();
  return ret;
}

void Logger::on_aex(EnclaveId eid, ThreadId tid, Nanoseconds now, sgxsim::AexCause cause) {
  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  ThreadTrace& trace = thread_trace(tid);
  ++trace.aex_count_current_ecall;
  if (config_.trace_aex) {
    clock.advance(cost.logger_aex_trace_ns);
    tracedb::AexRecord rec;
    rec.thread_id = tid;
    rec.enclave_id = eid;
    rec.timestamp_ns = now;
    // §4.1.4: only SGX v2 records the exit type, and the logger may read it
    // only from debug enclaves; everywhere else the cause stays unknown.
    if (urts_->sgx_version() >= 2) {
      const sgxsim::Enclave* enclave = urts_->find_enclave(eid);
      if (enclave != nullptr && enclave->config().debug) {
        rec.cause = cause == sgxsim::AexCause::kPageFault ? tracedb::AexCause::kPageFault
                                                          : tracedb::AexCause::kInterrupt;
      }
    }
    // Attribute to the innermost in-flight ecall of this thread.
    for (auto it = trace.stack.rbegin(); it != trace.stack.rend(); ++it) {
      if (db_.calls()[static_cast<std::size_t>(*it)].type == CallType::kEcall) {
        rec.during_call = *it;
        break;
      }
    }
    db_.add_aex(rec);
  } else {
    clock.advance(cost.logger_aex_count_ns);
  }
}

void Logger::on_paging(EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir,
                       Nanoseconds now) {
  tracedb::PagingRecord rec;
  rec.enclave_id = eid;
  rec.page_number = page;
  rec.direction = dir == sgxsim::PageDirection::kIn ? tracedb::PageDirection::kPageIn
                                                    : tracedb::PageDirection::kPageOut;
  rec.timestamp_ns = now;
  db_.add_paging(rec);
}

}  // namespace perf
