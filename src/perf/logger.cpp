#include "perf/logger.hpp"

#include <atomic>
#include <map>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace perf {

using sgxsim::CallId;
using sgxsim::EnclaveId;
using sgxsim::SgxStatus;
using sgxsim::SyncOcall;
using sgxsim::ThreadId;
using support::Nanoseconds;
using tracedb::CallIndex;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::OcallKind;

namespace {

/// Names the SDK gives its synchronisation ocalls; registered so analyser
/// reports read like the real tool's output.
const char* sync_ocall_name(std::size_t offset) {
  switch (offset) {
    case 0: return "sgx_thread_wait_untrusted_event_ocall";
    case 1: return "sgx_thread_set_untrusted_event_ocall";
    case 2: return "sgx_thread_set_multiple_untrusted_events_ocall";
    case 3: return "sgx_thread_setwait_untrusted_events_ocall";
    default: return "sgx_thread_unknown_sync_ocall";
  }
}

OcallKind sync_kind(std::size_t offset) {
  switch (static_cast<SyncOcall>(offset)) {
    case SyncOcall::kWaitEvent: return OcallKind::kSleep;
    case SyncOcall::kSetEvent: return OcallKind::kWakeOne;
    case SyncOcall::kSetMultipleEvents: return OcallKind::kWakeMultiple;
    case SyncOcall::kSetWaitEvent: return OcallKind::kWakeOneAndSleep;
  }
  return OcallKind::kGeneric;
}

/// Distinguishes attach epochs across all Logger instances, so the
/// thread-local PerThread cache can never hand out state from a previous
/// attach (or a different logger) after a detach/re-attach cycle.
std::atomic<std::uint64_t> g_attach_counter{1};

/// Registry handles resolved once per process; the recording hot paths pay
/// only relaxed atomic adds after that.
struct LoggerMetrics {
  telemetry::Counter& events = telemetry::metrics().counter("logger.events_recorded", "events");
  telemetry::Counter& ecalls = telemetry::metrics().counter("logger.ecalls_recorded", "calls");
  telemetry::Counter& ocalls = telemetry::metrics().counter("logger.ocalls_recorded", "calls");
  telemetry::Counter& aexs = telemetry::metrics().counter("logger.aexs_recorded", "events");
  telemetry::Counter& paging = telemetry::metrics().counter("logger.paging_recorded", "events");
  telemetry::Counter& syncs = telemetry::metrics().counter("logger.syncs_recorded", "events");
  telemetry::Counter& late_drops = telemetry::metrics().counter("logger.late_drops", "events");
  telemetry::Counter& instr_ns =
      telemetry::metrics().counter("logger.instrumentation_ns", "ns");
};

LoggerMetrics& logger_metrics() {
  static LoggerMetrics m;
  return m;
}

}  // namespace

Logger::Logger(tracedb::TraceDatabase& db, LoggerConfig config) : db_(db), config_(config) {}

Logger::~Logger() {
  if (attached()) detach();
}

void Logger::attach(sgxsim::Urts& urts) {
  if (attached()) throw std::logic_error("Logger: already attached");
  urts_ = &urts;
  {
    std::lock_guard lock(mu_);
    attach_token_ = g_attach_counter.fetch_add(1, std::memory_order_relaxed);
    // Previous epoch's per-thread state (sealed shard husks included) can go
    // now: all its frames must have unwound before a re-attach.
    per_threads_.clear();
    names_registered_.clear();
  }

  {
    // Fresh recording session: last epoch's histograms were persisted at
    // detach; stale PerThread caches died with per_threads_ above.
    std::lock_guard lock(mu_);
    latency_.clear();
  }
  db_.set_merge_threads(config_.merge_threads);

  sampler_.reset();
  if (config_.metric_sample_period_ns > 0) {
    sampler_ = std::make_unique<telemetry::TelemetrySampler>(
        db_, urts.clock(), telemetry::metrics(), config_.metric_sample_period_ns);
  }

  auto& hooks = urts.hooks();
  hooks.sgx_ecall = [this](EnclaveId eid, CallId id, const sgxsim::OcallTable* table, void* ms) {
    return shadow_sgx_ecall(eid, id, table, ms);
  };
  if (config_.count_aex || config_.trace_aex) {
    hooks.aep = [this](EnclaveId eid, ThreadId tid, Nanoseconds now, sgxsim::AexCause cause) {
      on_aex(eid, tid, now, cause);
    };
  }
  hooks.enclave_created = [this](const sgxsim::Enclave& e) { on_enclave_created(e); };
  hooks.enclave_destroyed = [this](EnclaveId eid, Nanoseconds now) {
    on_enclave_destroyed(eid, now);
  };
  if (config_.trace_paging) {
    urts.driver().set_trace_hooks(
        [this](EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir, Nanoseconds now) {
          on_paging(eid, page, dir, now);
        });
  }
}

void Logger::detach() {
  if (!attached()) return;
  auto& hooks = urts_->hooks();
  hooks.sgx_ecall = nullptr;
  hooks.aep = nullptr;
  hooks.enclave_created = nullptr;
  hooks.enclave_destroyed = nullptr;
  if (config_.trace_paging) urts_->driver().clear_trace_hooks();
  OcallStubRegistry::instance().reset();

  const Nanoseconds now = urts_->clock().now();
  // From here on, frames unwinding through the detached logger see
  // attached() == false and record nothing further.
  urts_ = nullptr;

  finalize_open_calls(now);
  if (config_.sharded) db_.merge_shards();
  persist_latency();
  // A final unconditional sample closes every counter track at detach time
  // (after the merge, so tracedb's merge metrics are included).  The sampler
  // object stays alive until the next attach: a frame still unwinding
  // through the detached logger may poll it harmlessly.
  if (sampler_ != nullptr) sampler_->sample_now();
}

void Logger::flush() {
  if (!config_.sharded) return;
  {
    std::lock_guard lock(mu_);
    for (const auto& pt : per_threads_) {
      if (!pt->stack.empty()) {
        throw std::logic_error("Logger: flush() with traced calls in flight");
      }
    }
  }
  db_.merge_shards();
  db_.reopen_shards();
  persist_latency();
}

std::shared_ptr<StreamSubscription> Logger::subscribe(std::string name, std::size_t capacity) {
  return stream_.subscribe(std::move(name), capacity);
}

telemetry::HdrSnapshot Logger::latency_snapshot(EnclaveId eid, CallType type,
                                                CallId id) const {
  std::lock_guard lock(mu_);
  const auto it = latency_.find(LatencyKey{eid, type, id});
  return it != latency_.end() ? it->second->snapshot() : telemetry::HdrSnapshot{};
}

telemetry::HdrHistogram* Logger::latency_for(PerThread& pt, EnclaveId eid, CallType type,
                                             CallId id) {
  if (!config_.latency_histograms) return nullptr;
  const LatencyKey key{eid, type, id};
  const auto cached = pt.latency_cache.find(key);
  if (cached != pt.latency_cache.end()) return cached->second;

  std::lock_guard lock(mu_);
  auto& slot = latency_[key];
  if (slot == nullptr) slot = std::make_unique<telemetry::HdrHistogram>();
  pt.latency_cache.emplace(key, slot.get());
  return slot.get();
}

void Logger::persist_latency() {
  std::lock_guard lock(mu_);
  for (const auto& [key, hist] : latency_) {
    const telemetry::HdrSnapshot snap = hist->snapshot();
    tracedb::LatencyRecord rec;
    rec.enclave_id = std::get<0>(key);
    rec.type = std::get<1>(key);
    rec.call_id = std::get<2>(key);
    rec.count = snap.count();
    rec.sum_ns = snap.sum();
    const auto& buckets = snap.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] > 0) rec.buckets.emplace_back(static_cast<std::uint32_t>(i), buckets[i]);
    }
    db_.set_latency(rec);
  }
  db_.set_stream_dropped(stream_.total_dropped());
}

void Logger::finalize_open_calls(Nanoseconds now) {
  std::lock_guard lock(mu_);
  for (auto& pt : per_threads_) {
    // The AEX counter belongs to the innermost in-flight ecall; outer open
    // calls close with a count of zero, as they would on a normal return.
    bool innermost_ecall = true;
    for (auto it = pt->stack.rbegin(); it != pt->stack.rend(); ++it) {
      std::uint32_t aex = 0;
      if (it->type == CallType::kEcall && innermost_ecall) {
        aex = pt->aex_count_current_ecall;
        innermost_ecall = false;
      }
      record_finish(*pt, it->index, now, aex);
    }
    pt->stack.clear();
    pt->aex_count_current_ecall = 0;
  }
}

Logger::PerThread& Logger::per_thread() {
  thread_local std::uint64_t cached_token = 0;
  thread_local PerThread* cached = nullptr;
  if (cached_token == attach_token_ && cached != nullptr) return *cached;

  // Slow path: first touch of this epoch by this thread (or the thread is
  // alternating between two attached loggers).  Stale epochs' entries are
  // never looked up again — their tokens are globally unique and retired.
  thread_local std::map<std::uint64_t, PerThread*> epochs;
  const auto it = epochs.find(attach_token_);
  if (it != epochs.end()) {
    cached_token = attach_token_;
    cached = it->second;
    return *cached;
  }

  std::lock_guard lock(mu_);
  auto pt = std::make_unique<PerThread>();
  if (config_.sharded) {
    pt->shard = &db_.register_shard(urts_->current_thread_id(), urts_->current_thread_slot());
  }
  PerThread* raw = pt.get();
  per_threads_.push_back(std::move(pt));
  epochs.emplace(attach_token_, raw);
  cached_token = attach_token_;
  cached = raw;
  return *raw;
}

CallIndex Logger::record_call(PerThread& pt, const CallRecord& rec) {
  const CallIndex idx = pt.shard != nullptr ? pt.shard->add_call(rec) : db_.add_call(rec);
  auto& m = logger_metrics();
  if (pt.shard != nullptr && idx == tracedb::kShardSealed) {
    m.late_drops.add();
  } else {
    m.events.add();
    (rec.type == CallType::kEcall ? m.ecalls : m.ocalls).add();
  }
  return idx;
}

void Logger::record_finish(PerThread& pt, CallIndex idx, Nanoseconds end_ns,
                           std::uint32_t aex_count) {
  if (pt.shard != nullptr) {
    pt.shard->finish_call(idx, end_ns, aex_count);
  } else {
    db_.finish_call(idx, end_ns, aex_count);
  }
}

void Logger::record_kind(PerThread& pt, CallIndex idx, OcallKind kind) {
  if (pt.shard != nullptr) {
    pt.shard->set_call_kind(idx, kind);
  } else {
    db_.set_call_kind(idx, kind);
  }
}

void Logger::register_names(const sgxsim::Enclave& enclave) {
  {
    std::lock_guard lock(mu_);
    auto& done = names_registered_[enclave.id()];
    if (done) return;
    done = true;
  }
  const auto& spec = enclave.interface();
  for (std::size_t i = 0; i < spec.ecalls.size(); ++i) {
    db_.add_call_name({enclave.id(), CallType::kEcall, static_cast<CallId>(i),
                       spec.ecalls[i].name});
  }
  for (std::size_t i = 0; i < spec.ocalls.size(); ++i) {
    db_.add_call_name({enclave.id(), CallType::kOcall, static_cast<CallId>(i),
                       spec.ocalls[i].name});
  }
  for (std::size_t off = 0; off < sgxsim::kNumSyncOcalls; ++off) {
    db_.add_call_name({enclave.id(), CallType::kOcall,
                       static_cast<CallId>(spec.ocalls.size() + off), sync_ocall_name(off)});
  }
}

void Logger::on_enclave_created(const sgxsim::Enclave& enclave) {
  tracedb::EnclaveRecord rec;
  rec.enclave_id = enclave.id();
  rec.name = enclave.config().name;
  rec.created_ns = urts_->clock().now();
  rec.tcs_count = static_cast<std::uint32_t>(enclave.tcs_count());
  rec.size_bytes = enclave.size_bytes();
  db_.add_enclave(rec);
  register_names(enclave);
  if (stream_.has_subscribers()) {
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::kEnclaveCreated;
    ev.enclave_id = enclave.id();
    ev.start_ns = rec.created_ns;
    ev.end_ns = rec.created_ns;
    stream_.publish(ev);
  }
}

void Logger::on_enclave_destroyed(EnclaveId eid, Nanoseconds now) {
  db_.set_enclave_destroyed(eid, now);
  if (stream_.has_subscribers()) {
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::kEnclaveDestroyed;
    ev.enclave_id = eid;
    ev.start_ns = now;
    ev.end_ns = now;
    stream_.publish(ev);
  }
}

void Logger::ensure_enclave_registered(PerThread& pt, EnclaveId eid) {
  for (const EnclaveId seen : pt.enclaves_seen) {
    if (seen == eid) return;
  }
  // Enclaves created before attach: register lazily on first traced call.
  if (const sgxsim::Enclave* enclave = urts_->find_enclave(eid)) {
    bool need_record = false;
    {
      std::lock_guard lock(mu_);
      need_record = !names_registered_.contains(eid);
    }
    if (need_record) on_enclave_created(*enclave);
  }
  pt.enclaves_seen.push_back(eid);
}

SgxStatus Logger::shadow_sgx_ecall(EnclaveId eid, CallId id, const sgxsim::OcallTable* table,
                                   void* ms) {
  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  const ThreadId tid = urts_->current_thread_id();
  PerThread& pt = per_thread();
  const std::uint64_t epoch = attach_token_;

  ensure_enclave_registered(pt, eid);

  // Record entry: timestamp, thread, ids, direct parent (the enclosing ocall,
  // if this ecall was issued from one).
  clock.advance(cost.logger_ecall_pre_ns);
  logger_metrics().instr_ns.add(cost.logger_ecall_pre_ns);
  CallRecord rec;
  rec.type = CallType::kEcall;
  rec.thread_id = tid;
  rec.enclave_id = eid;
  rec.call_id = id;
  StackEntry parent_entry;
  bool has_parent = false;
  if (!pt.stack.empty() && pt.stack.back().type == CallType::kOcall) {
    parent_entry = pt.stack.back();
    has_parent = true;
    rec.parent = parent_entry.index;
  }
  rec.start_ns = clock.now();
  const CallIndex idx = record_call(pt, rec);
  pt.stack.push_back({idx, CallType::kEcall, id, rec.start_ns});
  const std::uint32_t saved_aex = pt.aex_count_current_ecall;
  pt.aex_count_current_ecall = 0;
  if (sampler_ != nullptr) sampler_->poll();

  // Swap in the shadow ocall table — always, "as we cannot know beforehand"
  // whether the ecall performs ocalls (§4.1.2) — and chain to the URTS.
  const sgxsim::OcallTable* shadow =
      table != nullptr ? OcallStubRegistry::instance().shadow_table(*this, eid, table) : nullptr;
  const SgxStatus ret = urts_->real_sgx_ecall(eid, id, shadow, ms);

  // Record exit — unless the logger was detached while this call was in
  // flight, in which case detach() already finalized the record.
  if (attached() && attach_token_ == epoch) {
    clock.advance(cost.logger_ecall_post_ns);
    logger_metrics().instr_ns.add(cost.logger_ecall_post_ns);
    const Nanoseconds end_ns = clock.now();
    record_finish(pt, idx, end_ns, pt.aex_count_current_ecall);
    if (auto* hist = latency_for(pt, eid, CallType::kEcall, id)) {
      hist->record(end_ns - rec.start_ns);
    }
    if (stream_.has_subscribers()) {
      StreamEvent ev;
      ev.kind = StreamEvent::Kind::kCall;
      ev.call_type = CallType::kEcall;
      ev.thread_id = tid;
      ev.enclave_id = eid;
      ev.call_id = id;
      ev.aex_count = pt.aex_count_current_ecall;
      ev.start_ns = rec.start_ns;
      ev.end_ns = end_ns;
      if (has_parent) {
        ev.parent_valid = true;
        ev.parent_type = parent_entry.type;
        ev.parent_call_id = parent_entry.call_id;
        ev.parent_start_ns = parent_entry.start_ns;
      }
      stream_.publish(ev);
    }
    pt.stack.pop_back();
    pt.aex_count_current_ecall = saved_aex;
    if (sampler_ != nullptr) sampler_->poll();
  }
  return ret;
}

SgxStatus Logger::on_stub_call(const OcallStubRegistry::StubInfo& info, void* ms) {
  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  const ThreadId tid = urts_->current_thread_id();
  PerThread& pt = per_thread();
  const std::uint64_t epoch = attach_token_;

  clock.advance(cost.logger_ocall_pre_ns);
  logger_metrics().instr_ns.add(cost.logger_ocall_pre_ns);
  CallRecord rec;
  rec.type = CallType::kOcall;
  rec.thread_id = tid;
  rec.enclave_id = info.enclave_id;
  rec.call_id = info.ocall_id;
  StackEntry parent_entry;
  bool has_parent = false;
  if (!pt.stack.empty() && pt.stack.back().type == CallType::kEcall) {
    parent_entry = pt.stack.back();
    has_parent = true;
    rec.parent = parent_entry.index;
  }
  rec.start_ns = clock.now();

  const CallIndex idx = record_call(pt, rec);
  pt.stack.push_back({idx, CallType::kOcall, info.ocall_id, rec.start_ns});

  // Synchronisation ocalls reduce to sleep / wake-up events (§4.1.3); the
  // marshalling struct layout is SDK-public, so the logger can read the
  // wake-up targets to track cross-thread dependencies.
  if (info.is_sync) {
    const auto* s = static_cast<const sgxsim::SyncOcallMs*>(ms);
    const std::size_t offset = info.sync_offset;
    record_kind(pt, idx, sync_kind(offset));
    tracedb::SyncRecord sync;
    sync.enclave_id = info.enclave_id;
    sync.timestamp_ns = clock.now();
    auto record_sync = [&](const tracedb::SyncRecord& r) {
      if (pt.shard != nullptr) {
        pt.shard->add_sync(r);
      } else {
        db_.add_sync(r);
      }
      logger_metrics().syncs.add();
      logger_metrics().events.add();
    };
    switch (static_cast<SyncOcall>(offset)) {
      case SyncOcall::kWaitEvent:
        sync.kind = tracedb::SyncKind::kSleep;
        sync.thread_id = tid;
        record_sync(sync);
        break;
      case SyncOcall::kSetEvent:
        sync.kind = tracedb::SyncKind::kWakeup;
        sync.thread_id = tid;
        sync.target_thread_id = s->target;
        record_sync(sync);
        break;
      case SyncOcall::kSetMultipleEvents:
        if (s->targets != nullptr) {
          for (ThreadId t : *s->targets) {
            sync.kind = tracedb::SyncKind::kWakeup;
            sync.thread_id = tid;
            sync.target_thread_id = t;
            record_sync(sync);
          }
        }
        break;
      case SyncOcall::kSetWaitEvent: {
        sync.kind = tracedb::SyncKind::kWakeup;
        sync.thread_id = tid;
        sync.target_thread_id = s->target;
        record_sync(sync);
        tracedb::SyncRecord sleep = sync;
        sleep.kind = tracedb::SyncKind::kSleep;
        sleep.target_thread_id = 0;
        record_sync(sleep);
        break;
      }
    }
  }

  if (sampler_ != nullptr) sampler_->poll();
  const SgxStatus ret = info.original(ms);

  if (attached() && attach_token_ == epoch) {
    clock.advance(cost.logger_ocall_post_ns);
    logger_metrics().instr_ns.add(cost.logger_ocall_post_ns);
    const Nanoseconds end_ns = clock.now();
    record_finish(pt, idx, end_ns, 0);
    if (auto* hist = latency_for(pt, info.enclave_id, CallType::kOcall, info.ocall_id)) {
      hist->record(end_ns - rec.start_ns);
    }
    if (stream_.has_subscribers()) {
      StreamEvent ev;
      ev.kind = StreamEvent::Kind::kCall;
      ev.call_type = CallType::kOcall;
      ev.ocall_kind = info.is_sync ? sync_kind(info.sync_offset) : tracedb::OcallKind::kGeneric;
      ev.thread_id = tid;
      ev.enclave_id = info.enclave_id;
      ev.call_id = info.ocall_id;
      ev.start_ns = rec.start_ns;
      ev.end_ns = end_ns;
      if (has_parent) {
        ev.parent_valid = true;
        ev.parent_type = parent_entry.type;
        ev.parent_call_id = parent_entry.call_id;
        ev.parent_start_ns = parent_entry.start_ns;
      }
      stream_.publish(ev);
    }
    pt.stack.pop_back();
    if (sampler_ != nullptr) sampler_->poll();
  }
  return ret;
}

void Logger::on_aex(EnclaveId eid, ThreadId tid, Nanoseconds now, sgxsim::AexCause cause) {
  auto& clock = urts_->clock();
  const auto& cost = urts_->cost();
  // AEXs are delivered on the thread that was executing in-enclave, so this
  // thread's own recording state is the right one.
  PerThread& pt = per_thread();
  ++pt.aex_count_current_ecall;
  if (stream_.has_subscribers()) {
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::kAex;
    ev.thread_id = tid;
    ev.enclave_id = eid;
    ev.start_ns = now;
    ev.end_ns = now;
    stream_.publish(ev);
  }
  if (config_.trace_aex) {
    clock.advance(cost.logger_aex_trace_ns);
    logger_metrics().instr_ns.add(cost.logger_aex_trace_ns);
    tracedb::AexRecord rec;
    rec.thread_id = tid;
    rec.enclave_id = eid;
    rec.timestamp_ns = now;
    // §4.1.4: only SGX v2 records the exit type, and the logger may read it
    // only from debug enclaves; everywhere else the cause stays unknown.
    if (urts_->sgx_version() >= 2) {
      const sgxsim::Enclave* enclave = urts_->find_enclave(eid);
      if (enclave != nullptr && enclave->config().debug) {
        rec.cause = cause == sgxsim::AexCause::kPageFault ? tracedb::AexCause::kPageFault
                                                          : tracedb::AexCause::kInterrupt;
      }
    }
    // Attribute to the innermost in-flight ecall of this thread.
    for (auto it = pt.stack.rbegin(); it != pt.stack.rend(); ++it) {
      if (it->type == CallType::kEcall) {
        rec.during_call = it->index;
        break;
      }
    }
    if (pt.shard != nullptr) {
      pt.shard->add_aex(rec);
    } else {
      db_.add_aex(rec);
    }
    logger_metrics().aexs.add();
    logger_metrics().events.add();
  } else {
    clock.advance(cost.logger_aex_count_ns);
    logger_metrics().instr_ns.add(cost.logger_aex_count_ns);
  }
}

void Logger::on_paging(EnclaveId eid, std::uint64_t page, sgxsim::PageDirection dir,
                       Nanoseconds now) {
  tracedb::PagingRecord rec;
  rec.enclave_id = eid;
  rec.page_number = page;
  rec.direction = dir == sgxsim::PageDirection::kIn ? tracedb::PageDirection::kPageIn
                                                    : tracedb::PageDirection::kPageOut;
  rec.timestamp_ns = now;
  PerThread& pt = per_thread();
  if (pt.shard != nullptr) {
    pt.shard->add_paging(rec);
  } else {
    db_.add_paging(rec);
  }
  if (stream_.has_subscribers()) {
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::kPaging;
    ev.enclave_id = eid;
    // Paging events carry no call id; the field holds the direction.
    ev.call_id = dir == sgxsim::PageDirection::kIn ? 0 : 1;
    ev.start_ns = now;
    ev.end_ns = now;
    stream_.publish(ev);
  }
  logger_metrics().paging.add();
  logger_metrics().events.add();
}

}  // namespace perf
