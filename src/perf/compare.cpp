#include "perf/compare.hpp"

#include <algorithm>
#include <map>

#include "support/strutil.hpp"
#include "tracedb/query.hpp"

namespace perf {

namespace {

struct Accum {
  std::size_t count = 0;
  double total_ns = 0.0;
  tracedb::CallType type = tracedb::CallType::kEcall;
};

std::map<std::string, Accum> accumulate(const tracedb::TraceDatabase& db) {
  std::map<std::string, Accum> out;
  for (const auto& c : db.calls()) {
    auto& a = out[db.name_of(c.enclave_id, c.type, c.call_id)];
    ++a.count;
    a.total_ns += static_cast<double>(c.duration());
    a.type = c.type;
  }
  return out;
}

support::Nanoseconds span_of(const tracedb::TraceDatabase& db) {
  if (db.calls().empty()) return 0;
  support::Nanoseconds first = db.calls().front().start_ns;
  support::Nanoseconds last = 0;
  for (const auto& c : db.calls()) {
    first = std::min(first, c.start_ns);
    last = std::max(last, c.end_ns);
  }
  return last - first;
}

}  // namespace

TraceComparison compare_traces(const tracedb::TraceDatabase& before,
                               const tracedb::TraceDatabase& after) {
  TraceComparison cmp;
  const auto b = accumulate(before);
  const auto a = accumulate(after);

  std::map<std::string, CallDelta> merged;
  for (const auto& [name, acc] : b) {
    auto& d = merged[name];
    d.name = name;
    d.type = acc.type;
    d.count_before = acc.count;
    d.mean_ns_before = acc.count > 0 ? acc.total_ns / static_cast<double>(acc.count) : 0.0;
  }
  for (const auto& [name, acc] : a) {
    auto& d = merged[name];
    d.name = name;
    d.type = acc.type;
    d.count_after = acc.count;
    d.mean_ns_after = acc.count > 0 ? acc.total_ns / static_cast<double>(acc.count) : 0.0;
  }
  for (auto& [name, d] : merged) cmp.deltas.push_back(std::move(d));
  std::stable_sort(cmp.deltas.begin(), cmp.deltas.end(), [](const auto& x, const auto& y) {
    return std::abs(x.count_delta()) > std::abs(y.count_delta());
  });

  for (const auto& c : before.calls()) {
    (c.type == tracedb::CallType::kEcall ? cmp.ecalls_before : cmp.ocalls_before)++;
  }
  for (const auto& c : after.calls()) {
    (c.type == tracedb::CallType::kEcall ? cmp.ecalls_after : cmp.ocalls_after)++;
  }
  cmp.span_before = span_of(before);
  cmp.span_after = span_of(after);
  return cmp;
}

std::string render_comparison(const TraceComparison& cmp, std::size_t max_rows) {
  std::string out = "==== trace comparison (before -> after) ====\n";
  out += support::format("ecalls: %zu -> %zu, ocalls: %zu -> %zu (transitions saved: %lld)\n",
                         cmp.ecalls_before, cmp.ecalls_after, cmp.ocalls_before,
                         cmp.ocalls_after, static_cast<long long>(cmp.transitions_saved()));
  if (const auto speedup = cmp.speedup()) {
    out += support::format("span: %s -> %s (%.2fx)\n",
                           support::format_duration_ns(cmp.span_before).c_str(),
                           support::format_duration_ns(cmp.span_after).c_str(), *speedup);
  }
  out += support::format("%-44s %10s %10s %12s %12s\n", "call", "cnt before", "cnt after",
                         "mean before", "mean after");
  std::size_t rows = 0;
  for (const auto& d : cmp.deltas) {
    if (++rows > max_rows) {
      out += support::format("  ... and %zu more calls\n", cmp.deltas.size() - max_rows);
      break;
    }
    out += support::format("%s %-42s %10zu %10zu %10.1fus %10.1fus\n",
                           d.type == tracedb::CallType::kEcall ? "E" : "O", d.name.c_str(),
                           d.count_before, d.count_after, d.mean_ns_before / 1e3,
                           d.mean_ns_after / 1e3);
  }
  return out;
}

}  // namespace perf
