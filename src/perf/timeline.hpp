// ASCII timeline of traced calls, one row per thread.
//
// A coarse "who was inside the enclave when" view: each output column covers
// a slice of the trace; a cell is 'E' when an ecall was executing, 'o' when
// only an ocall was in flight (the thread was outside again), '.' when the
// thread was running untrusted code between calls.  Complements the
// histogram/scatter plots for eyeballing phase behaviour (connection storms,
// paging stalls, bursts of short calls).
#pragma once

#include <string>

#include "tracedb/database.hpp"

namespace perf {

[[nodiscard]] std::string render_timeline(const tracedb::TraceDatabase& db,
                                          std::size_t width = 78);

}  // namespace perf
