#include "perf/live.hpp"

#include <algorithm>
#include <utility>

#include "support/strutil.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace perf {

using tracedb::CallKey;

LiveMonitor::LiveMonitor(Logger& logger, std::string name, std::size_t capacity)
    : logger_(logger), sub_(logger.subscribe(std::move(name), capacity)) {
  batch_.reserve(4096);
}

LiveMonitor::~LiveMonitor() {
  if (sub_ != nullptr) sub_->close();
}

std::size_t LiveMonitor::drain() {
  if (sub_ == nullptr) return 0;
  std::size_t total = 0;
  for (;;) {
    batch_.clear();
    const std::size_t n = sub_->poll(batch_);
    if (n == 0) break;
    total += n;
    for (const StreamEvent& ev : batch_) {
      if (!saw_event_ || ev.start_ns < first_ns_) first_ns_ = ev.start_ns;
      if (!saw_event_ || ev.end_ns > last_ns_) last_ns_ = ev.end_ns;
      if (window_ns_ > 0) {
        // Tumbling aggregation window: when this event lands past the open
        // window, checkpoint every site *first*, so the windowed view keeps
        // only what arrived after the boundary (the partial open window).
        if (!window_anchored_) {
          window_anchor_ = ev.start_ns;
          window_anchored_ = true;
        } else if (ev.end_ns >= window_anchor_ && ev.end_ns - window_anchor_ >= window_ns_) {
          for (auto& [key, site] : sites_) {
            site.count_at_checkpoint = site.count;
            site.aex_at_checkpoint = site.aex_total;
            site.latency_at_checkpoint = site.latency;
          }
          window_anchor_ = ev.end_ns - (ev.end_ns - window_anchor_) % window_ns_;
        }
      }
      saw_event_ = true;
      switch (ev.kind) {
        case StreamEvent::Kind::kCall: {
          auto& site = sites_[CallKey{ev.enclave_id, ev.call_type, ev.call_id}];
          site.count += 1;
          site.aex_total += ev.aex_count;
          site.latency.record(ev.end_ns - ev.start_ns);
          total_calls_ += 1;
          break;
        }
        case StreamEvent::Kind::kAex:
          total_aex_ += 1;
          break;
        case StreamEvent::Kind::kPaging:
          total_paging_ += 1;
          break;
        case StreamEvent::Kind::kEnclaveCreated:
        case StreamEvent::Kind::kEnclaveDestroyed:
          // Lifecycle markers feed the orderliness checker, not the table.
          break;
      }
    }
  }
  return total;
}

std::string LiveMonitor::render_frame() {
  drain();
  ++frame_;
  const bool windowed = window_ns_ > 0;

  // Rates over the virtual time that elapsed since the previous frame (the
  // clock the events carry — wall-clock rates would measure the host, not
  // the enclave).
  const std::uint64_t window_ns = last_ns_ > prev_ns_ ? last_ns_ - prev_ns_ : 0;
  auto rate = [&](std::uint64_t delta) {
    return window_ns == 0 ? 0.0 : static_cast<double>(delta) * 1e9 /
                                      static_cast<double>(window_ns);
  };
  const double calls_per_s = rate(total_calls_ - prev_calls_);
  const double aex_per_s = rate(total_aex_ - prev_aex_);
  prev_calls_ = total_calls_;
  prev_aex_ = total_aex_;
  prev_ns_ = last_ns_;

  const std::int64_t epc_pages =
      telemetry::metrics().gauge("sgxsim.epc_resident", "pages").value();

  std::string out;
  out += support::format(
      "sgxperf top — frame %llu  vtime %.3fms  calls %llu  aex %llu  paging %llu  "
      "epc %lld pages  stream-dropped %llu\n",
      static_cast<unsigned long long>(frame_),
      saw_event_ ? static_cast<double>(last_ns_ - first_ns_) / 1e6 : 0.0,
      static_cast<unsigned long long>(total_calls_),
      static_cast<unsigned long long>(total_aex_),
      static_cast<unsigned long long>(total_paging_), static_cast<long long>(epc_pages),
      static_cast<unsigned long long>(dropped()));
  out += support::format("  rates (virtual): %.0f calls/s  %.0f aex/s\n", calls_per_s,
                         aex_per_s);
  if (windowed) {
    out += support::format("  window: %.3fms (tumbling, virtual time)\n",
                           static_cast<double>(window_ns_) / 1e6);
  }
  out += support::format("  %-32s %10s %10s %10s %10s %10s %8s\n", "call", "count",
                         "p50[us]", "p90[us]", "p99[us]", "p99.9[us]", "aex");

  // Busiest sites first; ties broken by key so frames are deterministic.
  std::vector<std::pair<CallKey, const LiveSiteStats*>> rows;
  rows.reserve(sites_.size());
  for (const auto& [key, site] : sites_) rows.emplace_back(key, &site);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->count != b.second->count) return a.second->count > b.second->count;
    return a.first < b.first;
  });

  for (const auto& [key, site] : rows) {
    const telemetry::HdrSnapshot windowed_latency =
        windowed ? telemetry::hdr_delta(site->latency, site->latency_at_checkpoint)
                 : telemetry::HdrSnapshot{};
    const telemetry::HdrSnapshot& latency = windowed ? windowed_latency : site->latency;
    const std::uint64_t count = windowed ? site->count - site->count_at_checkpoint : site->count;
    const std::uint64_t aex = windowed ? site->aex_total - site->aex_at_checkpoint
                                       : site->aex_total;
    const auto us = [&](double q) {
      return static_cast<double>(latency.value_at_percentile(q)) / 1000.0;
    };
    out += support::format("  %-32s %10llu %10.1f %10.1f %10.1f %10.1f %8llu\n",
                           logger_.database().name_of(key.enclave_id, key.type, key.call_id)
                               .c_str(),
                           static_cast<unsigned long long>(count), us(50), us(90),
                           us(99), us(99.9),
                           static_cast<unsigned long long>(aex));
  }
  return out;
}

}  // namespace perf
