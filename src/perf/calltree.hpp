// Call-tree profiler: folds the direct-parent chains the logger records
// (ecall → ocall → ecall …, §4.3.2) into a weighted tree and exports it in
// collapsed-stack ("flamegraph") form.
//
// Every traced call contributes one path: the chain of (enclave, type, id)
// frames from its outermost ancestor down to itself, rooted at a synthetic
// per-enclave frame.  Node weights:
//
//   count    — instances that *end* at this node
//   total_ns — summed wall-clock durations of those instances
//   self_ns  — total_ns minus the time spent in recorded child calls, i.e.
//              the flamegraph sample weight (the time actually attributable
//              to this frame, not its callees)
//   aex_count — AEXs observed during those instances
//
// The collapsed output is the standard `frame;frame;... <weight>` format
// consumed by flamegraph.pl / speedscope / inferno, one line per node with
// nonzero self time, sorted lexicographically so the output is byte-stable
// for golden-file tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace perf {

struct CallTreeNode {
  std::string name;                 // display frame, e.g. "ecall_put" or "enclave kv"
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t aex_count = 0;
  /// Children keyed by call site — map, so iteration order (and therefore
  /// every rendering) is deterministic.
  std::map<tracedb::CallKey, std::unique_ptr<CallTreeNode>> children;
};

/// The folded call tree of one trace.  Build once, render many.
class CallTree {
 public:
  explicit CallTree(const tracedb::TraceDatabase& db);

  /// Synthetic root (empty name, zero weights); its children are the
  /// per-enclave frames.
  [[nodiscard]] const CallTreeNode& root() const noexcept { return root_; }

  /// Collapsed-stack flamegraph text, weight = self_ns.
  [[nodiscard]] std::string collapsed() const;

  /// Indented human-readable rendering (for `sgxperf flamegraph --tree`):
  /// one line per node with count, total, self and AEX columns.
  [[nodiscard]] std::string render_text() const;

 private:
  CallTreeNode root_;
};

}  // namespace perf
