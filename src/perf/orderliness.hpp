// Interface-orderliness checking: per-enclave ecall ordering state machines.
//
// The paper's §5 interface analysis is static (pointer/size annotations);
// this module extends it dynamically in the spirit of Guardian's orderliness
// validation: a per-enclave model describes which ecall may start a thread's
// top-level sequence, which consecutive top-level pairs are legal, which
// ecalls may re-enter the enclave nested under an ocall, and where the
// lifecycle phases sit (create → init-ecall → steady state → destroy).  The
// model is either *learned* from a trusted baseline trace or *declared* in a
// small line-based spec file, and any event stream — live (OnlineAnalyzer)
// or recorded (Analyzer / check_trace) — can be validated against it.
//
// Violations map onto the five v6 AlertKinds: out-of-order ecall, unexpected
// re-entrancy, use-before-init, use-after-destroy, phase violation.  All
// predicates are timestamp-based on the virtual clock, so the online and
// post-mortem checkers produce identical alert sets (parity-tested).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tracedb/database.hpp"
#include "tracedb/schema.hpp"

namespace perf {

/// Ordering model for one enclave.  All sets are over top-level ecall ids
/// except `reentrant_ok`, which whitelists nested (ocall-parented) ecalls.
struct EnclaveOrderModel {
  bool has_init = false;                 // lifecycle init phase modelled?
  tracedb::CallId init_call_id = 0;      // the init ecall (when has_init)
  std::set<tracedb::CallId> entries;     // legal first top-level ecall per thread
  std::set<tracedb::CallId> known;       // every modelled top-level ecall id
  std::set<std::pair<tracedb::CallId, tracedb::CallId>> edges;  // legal consecutive pairs
  std::set<tracedb::CallId> reentrant_ok;  // ecalls allowed nested under an ocall
};

/// The full model: one state machine per enclave id.  Enclaves absent from
/// the model are not checked — an empty model disables checking entirely.
struct OrderModel {
  std::map<tracedb::EnclaveId, EnclaveOrderModel> enclaves;

  [[nodiscard]] bool empty() const noexcept { return enclaves.empty(); }
};

/// Learns a model from a trusted baseline trace: per-thread first calls
/// become entries, consecutive top-level pairs become edges, nested ecalls
/// become reentrant_ok.  The init phase is inferred only when the first
/// top-level ecall (by completion time) ran exactly once and finished before
/// any other top-level ecall started — otherwise the baseline itself would
/// violate the learned lifecycle.
[[nodiscard]] OrderModel learn_model(const tracedb::TraceDatabase& db);

/// Flattens a model into OrderRuleRecord rows (deterministic order) for
/// embedding into a v6 trace, and back.
[[nodiscard]] std::vector<tracedb::OrderRuleRecord> rules_from_model(const OrderModel& model);
[[nodiscard]] OrderModel model_from_rules(const std::vector<tracedb::OrderRuleRecord>& rules);

/// Line-based declared-model spec:
///
///   # comment
///   enclave 1          # subsequent directives apply to enclave 1
///   init 0             # lifecycle init ecall
///   entry 0            # allowed as a thread's first top-level ecall
///   entry 1
///   ecall 3            # known id with no other role
///   edge 0 1           # allowed consecutive top-level pair
///   reentrant 4        # allowed nested under an ocall
///
/// Ids named by init/entry/edge/reentrant directives are implicitly known.
/// parse throws std::runtime_error on malformed input; render produces a
/// spec that parses back to the same model.
[[nodiscard]] OrderModel parse_model_spec(const std::string& text);
[[nodiscard]] OrderModel load_model_spec(const std::string& path);
[[nodiscard]] std::string render_model_spec(const OrderModel& model);

/// One orderliness violation, before folding into per-site AlertRecords.
struct OrderViolation {
  tracedb::AlertKind kind = tracedb::AlertKind::kOutOfOrderEcall;
  tracedb::EnclaveId enclave_id = 0;
  tracedb::CallId call_id = 0;      // offending ecall id
  tracedb::ThreadId thread_id = 0;  // offending thread
  tracedb::Nanoseconds at_ns = 0;   // completion time of the offending call
};

/// Streaming orderliness checker — the shared core of the online and batch
/// paths.  Feed it lifecycle events and completed calls in completion order;
/// it emits violations through the sink as they are decided.  Calls into
/// enclaves absent from the model are ignored.
///
/// Use-before-init needs future knowledge (has the init ecall finished
/// yet?), so candidate calls seen before the init completion are buffered
/// (bounded) and flushed when the init lands or at finish() if it never
/// does.  Everything else is decided immediately from virtual timestamps,
/// which makes the verdicts independent of cross-thread arrival order.
class OrderChecker {
 public:
  using Sink = std::function<void(const OrderViolation&)>;

  OrderChecker(const OrderModel& model, Sink sink);

  void on_enclave_created(tracedb::EnclaveId id, tracedb::Nanoseconds now);
  void on_enclave_destroyed(tracedb::EnclaveId id, tracedb::Nanoseconds now);

  /// One completed call.  `nested` marks an ecall whose direct parent is an
  /// ocall (re-entry into the enclave).  Ocalls never violate and are
  /// accepted for symmetry.
  void on_call(tracedb::CallType type, tracedb::EnclaveId enclave, tracedb::CallId call_id,
               tracedb::ThreadId thread, tracedb::Nanoseconds start_ns,
               tracedb::Nanoseconds end_ns, bool nested);

  /// Seals the run: flushes use-before-init candidates for enclaves whose
  /// init ecall never completed.
  void finish();

 private:
  struct Pending {
    tracedb::CallId call_id = 0;
    tracedb::ThreadId thread_id = 0;
    tracedb::Nanoseconds start_ns = 0;
    tracedb::Nanoseconds end_ns = 0;
  };
  struct EnclaveState {
    tracedb::Nanoseconds destroyed_ns = 0;  // 0 while alive
    bool init_done = false;
    tracedb::Nanoseconds init_end_ns = 0;
    std::map<tracedb::ThreadId, tracedb::CallId> last_top;  // last top-level ecall per thread
    std::vector<Pending> pending_before_init;
  };

  /// Cap on buffered use-before-init candidates per enclave; an overflowing
  /// candidate is flagged immediately (it would be flushed as a violation in
  /// every plausible outcome anyway).
  static constexpr std::size_t kMaxPending = 4096;

  void emit(tracedb::AlertKind kind, tracedb::EnclaveId enclave, const Pending& p);

  OrderModel model_;  // by value: the checker may outlive the caller's copy
  Sink sink_;
  std::map<tracedb::EnclaveId, EnclaveState> states_;
};

/// Batch path: replays the merged trace through an OrderChecker in the
/// canonical order (creates, then calls by completion time, then destroys —
/// ties broken create < destroy < call) and folds the violations into one
/// AlertRecord per (kind, enclave, call_id): onset = first violation,
/// resolved = 0 (orderliness alerts never auto-resolve), detail = first
/// offending thread in the high 32 bits, violation count in the low 32.
/// Output is sorted by (onset, kind, enclave, call_id).
[[nodiscard]] std::vector<tracedb::AlertRecord> check_trace(const tracedb::TraceDatabase& db,
                                                            const OrderModel& model);

/// Folds raw violations the same way check_trace does — shared by the
/// online analyser so both paths produce identical alert sets.
class OrderAlertFolder {
 public:
  /// Returns the alert for this violation: newly created (count 1) or the
  /// existing one with its count bumped.  `created` reports which.
  tracedb::AlertRecord& fold(const OrderViolation& v, bool* created);

  [[nodiscard]] std::vector<tracedb::AlertRecord> sorted() const;

 private:
  using Key = std::tuple<tracedb::AlertKind, tracedb::EnclaveId, tracedb::CallId>;
  std::map<Key, tracedb::AlertRecord> alerts_;
};

}  // namespace perf
