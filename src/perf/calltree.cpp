#include "perf/calltree.hpp"

#include <algorithm>
#include <vector>

#include "support/strutil.hpp"

namespace perf {

using tracedb::CallIndex;
using tracedb::CallKey;
using tracedb::CallRecord;
using tracedb::kNoParent;

namespace {

/// Per-call self time: duration minus the durations of recorded direct
/// children.  Saturating — a call finalized early at detach() can report a
/// shorter duration than children that completed normally.
std::vector<std::uint64_t> self_times(const std::vector<CallRecord>& calls) {
  std::vector<std::uint64_t> self(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) self[i] = calls[i].duration();
  for (const auto& c : calls) {
    if (c.parent == kNoParent) continue;
    auto& parent_self = self[static_cast<std::size_t>(c.parent)];
    const std::uint64_t d = c.duration();
    parent_self = parent_self >= d ? parent_self - d : 0;
  }
  return self;
}

void collapse(const CallTreeNode& node, std::string& prefix, std::vector<std::string>& lines) {
  const std::size_t saved = prefix.size();
  if (!node.name.empty()) {
    if (!prefix.empty()) prefix += ';';
    prefix += node.name;
    if (node.self_ns > 0) {
      lines.push_back(prefix + ' ' + std::to_string(node.self_ns));
    }
  }
  for (const auto& [key, child] : node.children) collapse(*child, prefix, lines);
  prefix.resize(saved);
}

void render(const CallTreeNode& node, std::size_t depth, std::string& out) {
  if (!node.name.empty()) {
    out.append(depth * 2, ' ');
    out += support::format("%s  count=%llu total=%lluns self=%lluns aex=%llu\n",
                           node.name.c_str(),
                           static_cast<unsigned long long>(node.count),
                           static_cast<unsigned long long>(node.total_ns),
                           static_cast<unsigned long long>(node.self_ns),
                           static_cast<unsigned long long>(node.aex_count));
    ++depth;
  }
  for (const auto& [key, child] : node.children) render(*child, depth, out);
}

}  // namespace

CallTree::CallTree(const tracedb::TraceDatabase& db) {
  const auto& calls = db.calls();
  const std::vector<std::uint64_t> self = self_times(calls);

  // Path cache: node that call i's *frame* maps to, filled lazily by
  // walking the parent chain (parents may appear at any index in
  // hand-built databases, so resolution recurses rather than assuming
  // parent-before-child order).
  std::vector<CallTreeNode*> node_of(calls.size(), nullptr);

  // Per-enclave synthetic root frames under root_.
  auto enclave_frame = [&](tracedb::EnclaveId eid) -> CallTreeNode* {
    // Root children are enclave frames only (real call frames live one
    // level deeper), so a zeroed type/call_id key cannot collide.
    auto& slot = root_.children[CallKey{eid, tracedb::CallType::kEcall, 0}];
    if (slot == nullptr) {
      slot = std::make_unique<CallTreeNode>();
      std::string name;
      for (const auto& e : db.enclaves()) {
        if (e.enclave_id == eid) {
          name = e.name;
          break;
        }
      }
      slot->name = name.empty() ? support::format("enclave_%llu",
                                                  static_cast<unsigned long long>(eid))
                                : name;
    }
    return slot.get();
  };

  // Resolve (memoized) the tree node for call i.
  auto resolve = [&](auto&& resolve_ref, CallIndex idx) -> CallTreeNode* {
    auto& cached = node_of[static_cast<std::size_t>(idx)];
    if (cached != nullptr) return cached;
    const CallRecord& c = calls[static_cast<std::size_t>(idx)];
    CallTreeNode* parent = c.parent == kNoParent ? enclave_frame(c.enclave_id)
                                                 : resolve_ref(resolve_ref, c.parent);
    const CallKey key{c.enclave_id, c.type, c.call_id};
    auto& slot = parent->children[key];
    if (slot == nullptr) {
      slot = std::make_unique<CallTreeNode>();
      slot->name = db.name_of(c.enclave_id, c.type, c.call_id);
    }
    cached = slot.get();
    return cached;
  };

  for (std::size_t i = 0; i < calls.size(); ++i) {
    CallTreeNode* node = resolve(resolve, static_cast<CallIndex>(i));
    node->count += 1;
    node->total_ns += calls[i].duration();
    node->self_ns += self[i];
    node->aex_count += calls[i].aex_count;
  }
}

std::string CallTree::collapsed() const {
  std::vector<std::string> lines;
  std::string prefix;
  collapse(root_, prefix, lines);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string CallTree::render_text() const {
  std::string out;
  render(root_, 0, out);
  return out;
}

}  // namespace perf
