#include "perf/orderliness.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/strutil.hpp"

namespace perf {

using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallId;
using tracedb::CallIndex;
using tracedb::CallType;
using tracedb::EnclaveId;
using tracedb::Nanoseconds;
using tracedb::OrderRuleRecord;
using tracedb::ThreadId;

// --- model learning ---------------------------------------------------------

OrderModel learn_model(const tracedb::TraceDatabase& db) {
  OrderModel model;
  const auto& calls = db.calls();

  // Per-enclave, per-thread top-level ecall sequences in completion order.
  // calls() is merged in start-time order; re-sort by end so "consecutive"
  // means consecutive completions, matching the checker's processing order.
  std::vector<std::size_t> order;
  order.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return calls[a].end_ns < calls[b].end_ns;
  });

  struct FirstTop {
    bool seen = false;
    CallId call_id = 0;
    Nanoseconds end_ns = 0;
    std::size_t occurrences = 0;       // completions of that first id
    Nanoseconds min_other_start = 0;   // earliest start among other top-level ecalls
    bool any_other = false;
  };
  std::map<EnclaveId, FirstTop> firsts;
  std::map<std::pair<EnclaveId, ThreadId>, CallId> last_top;

  for (const std::size_t i : order) {
    const auto& c = calls[i];
    if (c.type != CallType::kEcall) continue;
    const bool nested =
        c.parent != tracedb::kNoParent &&
        calls[static_cast<std::size_t>(c.parent)].type == CallType::kOcall;
    auto& em = model.enclaves[c.enclave_id];
    if (nested) {
      em.reentrant_ok.insert(c.call_id);
      continue;
    }
    em.known.insert(c.call_id);
    auto& first = firsts[c.enclave_id];
    if (!first.seen) {
      first.seen = true;
      first.call_id = c.call_id;
      first.end_ns = c.end_ns;
      first.occurrences = 1;
    } else if (c.call_id == first.call_id) {
      ++first.occurrences;
    } else {
      if (!first.any_other || c.start_ns < first.min_other_start) {
        first.min_other_start = c.start_ns;
      }
      first.any_other = true;
    }
    const auto key = std::make_pair(c.enclave_id, c.thread_id);
    const auto it = last_top.find(key);
    if (it == last_top.end()) {
      em.entries.insert(c.call_id);
      last_top.emplace(key, c.call_id);
    } else {
      em.edges.emplace(it->second, c.call_id);
      it->second = c.call_id;
    }
  }

  // Infer the init phase only when the baseline itself respects it: the
  // candidate ran exactly once and finished before any other top-level ecall
  // started.  A workload whose "first" ecall is just the steady-state call
  // (the demo's 120 identical ecalls) gets no init phase.
  for (auto& [eid, em] : model.enclaves) {
    const auto it = firsts.find(eid);
    if (it == firsts.end() || !it->second.seen) continue;
    const auto& first = it->second;
    if (first.occurrences == 1 &&
        (!first.any_other || first.min_other_start >= first.end_ns)) {
      em.has_init = true;
      em.init_call_id = first.call_id;
    }
  }
  return model;
}

// --- rule-record flattening -------------------------------------------------

std::vector<OrderRuleRecord> rules_from_model(const OrderModel& model) {
  std::vector<OrderRuleRecord> rules;
  for (const auto& [eid, em] : model.enclaves) {
    if (em.has_init) {
      rules.push_back({eid, OrderRuleRecord::Rule::kInit, em.init_call_id, 0});
    }
    for (const auto id : em.entries) {
      rules.push_back({eid, OrderRuleRecord::Rule::kEntry, id, 0});
    }
    for (const auto id : em.known) {
      rules.push_back({eid, OrderRuleRecord::Rule::kKnownEcall, id, 0});
    }
    for (const auto& [a, b] : em.edges) {
      rules.push_back({eid, OrderRuleRecord::Rule::kEdge, a, b});
    }
    for (const auto id : em.reentrant_ok) {
      rules.push_back({eid, OrderRuleRecord::Rule::kReentrantOk, id, 0});
    }
  }
  return rules;
}

OrderModel model_from_rules(const std::vector<OrderRuleRecord>& rules) {
  OrderModel model;
  for (const auto& rule : rules) {
    auto& em = model.enclaves[rule.enclave_id];
    switch (rule.rule) {
      case OrderRuleRecord::Rule::kInit:
        em.has_init = true;
        em.init_call_id = rule.a;
        em.known.insert(rule.a);
        break;
      case OrderRuleRecord::Rule::kEntry:
        em.entries.insert(rule.a);
        em.known.insert(rule.a);
        break;
      case OrderRuleRecord::Rule::kKnownEcall:
        em.known.insert(rule.a);
        break;
      case OrderRuleRecord::Rule::kEdge:
        em.edges.emplace(rule.a, rule.b);
        em.known.insert(rule.a);
        em.known.insert(rule.b);
        break;
      case OrderRuleRecord::Rule::kReentrantOk:
        em.reentrant_ok.insert(rule.a);
        break;
    }
  }
  return model;
}

// --- spec files -------------------------------------------------------------

OrderModel parse_model_spec(const std::string& text) {
  OrderModel model;
  EnclaveOrderModel* current = nullptr;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error(
        support::format("order spec: line %zu: %s", line_no, why.c_str()));
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line
    const auto id_field = [&]() -> CallId {
      std::uint64_t v = 0;
      if (!(fields >> v) || v > 0xffffffffull) fail("expected a call id");
      return static_cast<CallId>(v);
    };
    if (directive == "enclave") {
      std::uint64_t eid = 0;
      if (!(fields >> eid)) fail("expected an enclave id");
      current = &model.enclaves[eid];
    } else if (current == nullptr) {
      fail("directive before any 'enclave <id>' line");
    } else if (directive == "init") {
      current->has_init = true;
      current->init_call_id = id_field();
      current->known.insert(current->init_call_id);
    } else if (directive == "entry") {
      const CallId id = id_field();
      current->entries.insert(id);
      current->known.insert(id);
    } else if (directive == "ecall") {
      current->known.insert(id_field());
    } else if (directive == "edge") {
      const CallId a = id_field();
      const CallId b = id_field();
      current->edges.emplace(a, b);
      current->known.insert(a);
      current->known.insert(b);
    } else if (directive == "reentrant") {
      current->reentrant_ok.insert(id_field());
    } else {
      fail("unknown directive '" + directive + "'");
    }
    std::string extra;
    if (fields >> extra) fail("trailing token '" + extra + "'");
  }
  return model;
}

OrderModel load_model_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("order spec: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_model_spec(ss.str());
}

std::string render_model_spec(const OrderModel& model) {
  std::string out = "# sgxperf interface-orderliness model\n";
  for (const auto& [eid, em] : model.enclaves) {
    out += support::format("enclave %llu\n", static_cast<unsigned long long>(eid));
    if (em.has_init) out += support::format("init %u\n", em.init_call_id);
    for (const auto id : em.entries) out += support::format("entry %u\n", id);
    for (const auto id : em.known) out += support::format("ecall %u\n", id);
    for (const auto& [a, b] : em.edges) out += support::format("edge %u %u\n", a, b);
    for (const auto id : em.reentrant_ok) out += support::format("reentrant %u\n", id);
  }
  return out;
}

// --- streaming checker ------------------------------------------------------

OrderChecker::OrderChecker(const OrderModel& model, Sink sink)
    : model_(model), sink_(std::move(sink)) {}

void OrderChecker::emit(AlertKind kind, EnclaveId enclave, const Pending& p) {
  OrderViolation v;
  v.kind = kind;
  v.enclave_id = enclave;
  v.call_id = p.call_id;
  v.thread_id = p.thread_id;
  v.at_ns = p.end_ns;
  sink_(v);
}

void OrderChecker::on_enclave_created(EnclaveId id, Nanoseconds) {
  if (model_.enclaves.find(id) == model_.enclaves.end()) return;
  states_[id];  // default-constructed alive state
}

void OrderChecker::on_enclave_destroyed(EnclaveId id, Nanoseconds now) {
  if (model_.enclaves.find(id) == model_.enclaves.end()) return;
  states_[id].destroyed_ns = now;
}

void OrderChecker::on_call(CallType type, EnclaveId enclave, CallId call_id, ThreadId thread,
                           Nanoseconds start_ns, Nanoseconds end_ns, bool nested) {
  if (type != CallType::kEcall) return;  // ocalls never violate ordering
  const auto mit = model_.enclaves.find(enclave);
  if (mit == model_.enclaves.end()) return;  // unmodelled enclave: unchecked
  const EnclaveOrderModel& em = mit->second;
  EnclaveState& st = states_[enclave];
  const Pending here{call_id, thread, start_ns, end_ns};

  // Lifecycle: a call that *started* at or after destruction is dead-enclave
  // use; everything else about it is moot.
  if (st.destroyed_ns != 0 && start_ns >= st.destroyed_ns) {
    emit(AlertKind::kUseAfterDestroy, enclave, here);
    return;
  }

  // Re-entrancy: a nested ecall (parented by an ocall) needs a whitelist
  // entry.  Nested calls do not advance the top-level sequence.
  if (nested) {
    if (em.reentrant_ok.find(call_id) == em.reentrant_ok.end()) {
      emit(AlertKind::kReentrantEcall, enclave, here);
    }
    return;
  }

  // Top-level transition check against the per-thread sequence.
  const bool known = em.known.find(call_id) != em.known.end();
  const auto last = st.last_top.find(thread);
  const bool in_sequence =
      known && (last == st.last_top.end()
                    ? em.entries.find(call_id) != em.entries.end()
                    : em.edges.find({last->second, call_id}) != em.edges.end());
  if (!in_sequence) emit(AlertKind::kOutOfOrderEcall, enclave, here);
  // Track the *observed* id even when it violated: the model may carry
  // recovery edges, and lying about state would cascade false positives.
  st.last_top[thread] = call_id;

  if (!em.has_init) return;
  if (call_id == em.init_call_id) {
    if (st.init_done) {
      emit(AlertKind::kPhaseViolation, enclave, here);
      return;
    }
    st.init_done = true;
    st.init_end_ns = end_ns;
    // Everything buffered completed before the init did, hence started
    // before it finished — flush as use-before-init.
    for (const auto& p : st.pending_before_init) {
      if (p.start_ns < st.init_end_ns) emit(AlertKind::kUseBeforeInit, enclave, p);
    }
    st.pending_before_init.clear();
    return;
  }
  if (st.init_done) {
    if (start_ns < st.init_end_ns) emit(AlertKind::kUseBeforeInit, enclave, here);
  } else if (st.pending_before_init.size() < kMaxPending) {
    st.pending_before_init.push_back(here);
  } else {
    emit(AlertKind::kUseBeforeInit, enclave, here);
  }
}

void OrderChecker::finish() {
  for (auto& [eid, st] : states_) {
    if (st.init_done) continue;
    // The init ecall never completed: every buffered steady-state call ran
    // in an uninitialised enclave.
    for (const auto& p : st.pending_before_init) {
      emit(AlertKind::kUseBeforeInit, eid, p);
    }
    st.pending_before_init.clear();
  }
}

// --- folding + batch path ---------------------------------------------------

AlertRecord& OrderAlertFolder::fold(const OrderViolation& v, bool* created) {
  const Key key{v.kind, v.enclave_id, v.call_id};
  auto it = alerts_.find(key);
  if (it == alerts_.end()) {
    AlertRecord alert;
    alert.kind = v.kind;
    alert.enclave_id = v.enclave_id;
    alert.type = CallType::kEcall;
    alert.call_id = v.call_id;
    alert.onset_ns = v.at_ns;
    alert.resolved_ns = 0;  // orderliness alerts never auto-resolve
    alert.window_index = 0;
    alert.detail = (static_cast<std::uint64_t>(v.thread_id) << 32) | 1u;
    it = alerts_.emplace(key, alert).first;
    if (created != nullptr) *created = true;
  } else {
    ++it->second.detail;  // low 32 bits: violation count
    if (created != nullptr) *created = false;
  }
  return it->second;
}

std::vector<AlertRecord> OrderAlertFolder::sorted() const {
  std::vector<AlertRecord> out;
  out.reserve(alerts_.size());
  for (const auto& [key, alert] : alerts_) out.push_back(alert);
  std::stable_sort(out.begin(), out.end(), [](const AlertRecord& a, const AlertRecord& b) {
    if (a.onset_ns != b.onset_ns) return a.onset_ns < b.onset_ns;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.enclave_id != b.enclave_id) return a.enclave_id < b.enclave_id;
    return a.call_id < b.call_id;
  });
  return out;
}

std::vector<AlertRecord> check_trace(const tracedb::TraceDatabase& db, const OrderModel& model) {
  if (model.empty()) return {};
  OrderAlertFolder folder;
  OrderChecker checker(model, [&](const OrderViolation& v) { folder.fold(v, nullptr); });

  // Canonical replay order: lifecycle events and call completions merged on
  // the virtual clock; at equal timestamps creates come first, destroys
  // before the calls that post-date them.
  struct Event {
    Nanoseconds at_ns = 0;
    std::uint8_t priority = 2;  // 0 = create, 1 = destroy, 2 = call
    std::size_t index = 0;      // call index; enclave row index for lifecycle
  };
  std::vector<Event> events;
  const auto& calls = db.calls();
  events.reserve(calls.size() + 2 * db.enclaves().size());
  for (std::size_t i = 0; i < db.enclaves().size(); ++i) {
    const auto& e = db.enclaves()[i];
    events.push_back({e.created_ns, 0, i});
    if (e.destroyed_ns != 0) events.push_back({e.destroyed_ns, 1, i});
  }
  for (std::size_t i = 0; i < calls.size(); ++i) {
    events.push_back({calls[i].end_ns, 2, i});
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.priority < b.priority;
  });

  for (const auto& ev : events) {
    if (ev.priority == 0) {
      checker.on_enclave_created(db.enclaves()[ev.index].enclave_id, ev.at_ns);
    } else if (ev.priority == 1) {
      checker.on_enclave_destroyed(db.enclaves()[ev.index].enclave_id, ev.at_ns);
    } else {
      const auto& c = calls[ev.index];
      const bool nested =
          c.parent != tracedb::kNoParent &&
          calls[static_cast<std::size_t>(c.parent)].type == CallType::kOcall;
      checker.on_call(c.type, c.enclave_id, c.call_id, c.thread_id, c.start_ns, c.end_ns,
                      nested);
    }
  }
  checker.finish();
  return folder.sorted();
}

}  // namespace perf
