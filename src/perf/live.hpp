// Live enclave monitor ("sgxperf top"): the consumer side of the streaming
// subscription (stream.hpp), aggregating in-flight events into the numbers
// an operator watches — calls/s, per-site latency percentiles, AEX rate,
// paging activity and EPC residency — without ever detaching the logger.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "perf/logger.hpp"
#include "perf/stream.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "tracedb/query.hpp"

namespace perf {

/// Aggregated live view of one call site.  The primary fields accumulate
/// forever; the `*_at_checkpoint` cursors mark the last aggregation-window
/// boundary so a windowed view is the difference (telemetry::hdr_delta).
struct LiveSiteStats {
  std::uint64_t count = 0;
  std::uint64_t aex_total = 0;
  telemetry::HdrSnapshot latency;
  std::uint64_t count_at_checkpoint = 0;
  std::uint64_t aex_at_checkpoint = 0;
  telemetry::HdrSnapshot latency_at_checkpoint;
};

/// Subscribes to a logger's event stream and folds batches into per-site
/// statistics.  Single-consumer: drain() and render_frame() belong to one
/// monitoring thread; the producers are the traced workload threads.
class LiveMonitor {
 public:
  /// Registers the subscription.  ok() is false when the logger's
  /// subscriber slots were exhausted.
  explicit LiveMonitor(Logger& logger, std::string name = "top",
                       std::size_t capacity = 1 << 14);
  ~LiveMonitor();

  LiveMonitor(const LiveMonitor&) = delete;
  LiveMonitor& operator=(const LiveMonitor&) = delete;

  [[nodiscard]] bool ok() const noexcept { return sub_ != nullptr; }

  /// Tumbling aggregation window, in virtual nanoseconds.  0 (default)
  /// keeps the historical cumulative-since-start table; > 0 makes the
  /// per-site columns cover at most the last `ns` of virtual time — the
  /// `sgxperf top --window` flag, and the same window semantics
  /// `sgxperf monitor` persists as v5 snapshots.
  void set_window_ns(std::uint64_t ns) noexcept { window_ns_ = ns; }
  [[nodiscard]] std::uint64_t window_ns() const noexcept { return window_ns_; }

  /// Polls pending events into the aggregates.  Returns events drained.
  std::size_t drain();

  /// One rendered frame: header (virtual-time rates, EPC residency, drop
  /// count) plus a per-site table sorted by call count, descending.  Plain
  /// text, no terminal escapes — the caller decides how to repaint.
  [[nodiscard]] std::string render_frame();

  // --- aggregate accessors (tests, custom renderers) ------------------------
  [[nodiscard]] const std::map<tracedb::CallKey, LiveSiteStats>& sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] std::uint64_t total_calls() const noexcept { return total_calls_; }
  [[nodiscard]] std::uint64_t total_aex() const noexcept { return total_aex_; }
  [[nodiscard]] std::uint64_t total_paging() const noexcept { return total_paging_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return sub_ != nullptr ? sub_->dropped() : 0;
  }

 private:
  Logger& logger_;
  std::shared_ptr<StreamSubscription> sub_;
  std::vector<StreamEvent> batch_;

  std::map<tracedb::CallKey, LiveSiteStats> sites_;
  std::uint64_t total_calls_ = 0;
  std::uint64_t total_aex_ = 0;
  std::uint64_t total_paging_ = 0;
  /// Virtual-time span covered by observed events (for rates).
  std::uint64_t first_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  bool saw_event_ = false;
  /// Previous frame's totals, for per-frame rate columns.
  std::uint64_t prev_calls_ = 0;
  std::uint64_t prev_aex_ = 0;
  std::uint64_t prev_ns_ = 0;
  std::uint64_t frame_ = 0;
  /// Tumbling window state (set_window_ns): anchor of the open window.
  std::uint64_t window_ns_ = 0;
  std::uint64_t window_anchor_ = 0;
  bool window_anchored_ = false;
};

}  // namespace perf
