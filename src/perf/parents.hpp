// Direct and indirect parent relations (§4.3.2, Figure 4).
//
// Direct parents are recorded by the logger at trace time: an ecall E is the
// direct parent of ocall O iff O was issued during E (and vice versa for
// ecalls during ocalls).
//
// Indirect parents are derived post-mortem; the computation itself lives in
// the tracedb query surface (tracedb::indirect_parents) so that layers below
// perf — notably the replay engine — can share it.  This header remains the
// perf-side spelling.
#pragma once

#include <vector>

#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace perf {

/// indirect[i] is the indirect parent of db.calls()[i], or kNoParent.
[[nodiscard]] inline std::vector<tracedb::CallIndex> compute_indirect_parents(
    const tracedb::TraceDatabase& db) {
  return tracedb::indirect_parents(db);
}

}  // namespace perf
