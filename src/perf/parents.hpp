// Direct and indirect parent relations (§4.3.2, Figure 4).
//
// Direct parents are recorded by the logger at trace time: an ecall E is the
// direct parent of ocall O iff O was issued during E (and vice versa for
// ecalls during ocalls).
//
// Indirect parents are derived post-mortem: the indirect parent of call C is
// the most recent call of the *same type* as C, on the same thread, with the
// same direct parent, that completed before C started.  This reproduces all
// four cases of Figure 4:
//   (1) E1 E2 E3          -> E2's ip is E1, E3's ip is E2
//   (2) E1 { O2 O3 }      -> O3's ip is O2
//   (3) E1 { O2 { E3 } }  -> no indirect parents
//   (4) E1 { O2 } E3      -> E3's ip is E1 (skipping O2, a different type)
#pragma once

#include <vector>

#include "tracedb/database.hpp"

namespace perf {

/// indirect[i] is the indirect parent of db.calls()[i], or kNoParent.
[[nodiscard]] std::vector<tracedb::CallIndex> compute_indirect_parents(
    const tracedb::TraceDatabase& db);

}  // namespace perf
