// Embeddable monitor sessions — the `sgxperf monitor` consumer loop as a
// library (the ROADMAP monitor-embedding item, and the producer half of the
// fleet aggregation service).
//
// `sgxperf monitor` can only watch its own built-in workloads; an
// application that drives its own Urts/Logger (library embedding, like the
// README Quickstart) had to re-assemble the subscribe + OnlineAnalyzer +
// windowing plumbing by hand.  MonitorSession owns exactly that plumbing:
//
//   perf::Logger logger(db);
//   logger.attach(urts);
//   perf::MonitorSession session(logger, urts);     // subscribes
//   session.add_sink(std::make_shared<perf::JsonLinesSink>(stderr));
//   ... workload runs; session.poll() from a monitoring thread ...
//   logger.detach();
//   session.finish();                               // seals + resolves
//   session.persist();                              // v5 windows/alerts
//
// Sinks observe the same typed transitions the daemon emits: every alert
// raise/resolve the moment the predicate flips, every closed window with
// its per-site HDR deltas (the mergeable currency a fleet aggregator
// needs), and a final stats record carrying the loss counters (stream and
// sealed-shard drops) so an aggregation service can flag lossy producers
// per (host, enclave).
//
// Threading: single-consumer, like the OnlineAnalyzer it owns.  poll(),
// pump(), finish() and persist() belong to one monitoring thread; the
// producers are the traced workload threads on the far side of the stream
// subscription.  Sinks are invoked on the monitoring thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "perf/logger.hpp"
#include "perf/online.hpp"
#include "telemetry/ledger.hpp"

namespace sgxsim {
class Urts;
}

namespace perf {

/// Producer identity of one monitored process: the (host, enclave) half of
/// the fleet series key (the site half comes from per-call names).
struct SessionIdentity {
  std::string host = "localhost";
  std::string enclave = "enclave";
};

/// Everything a sink learns when a session starts.
struct SessionInfo {
  SessionIdentity identity;
  std::uint64_t window_ns = 0;
};

/// Loss and progress counters of one session, as of the last poll().  The
/// drop counters exist in the metrics registry but were invisible mid-run;
/// this is the per-session view `sgxperf monitor` prints periodically and
/// `sgxperf serve` uses to report lossy producers.
struct SessionStats {
  std::uint64_t events = 0;           // events fed into the online analyser
  std::uint64_t stream_dropped = 0;   // this subscription's ring drops
  std::uint64_t sealed_dropped = 0;   // events rejected by sealed shards
  std::uint64_t pending_evicted = 0;  // Eq. 2 children evicted (online.hpp)
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_resolved = 0;
};

/// One window-site row as handed to sinks: the persisted record plus the
/// resolved site name and the window-local HDR delta.
struct SessionWindowSite {
  tracedb::WindowSiteRecord row;
  std::string name;
  telemetry::HdrSnapshot delta;
};

/// Pluggable observer of a session's typed output.  All hooks run on the
/// monitoring thread; default implementations ignore the event, so a sink
/// overrides only what it consumes.
class MonitorSink {
 public:
  virtual ~MonitorSink() = default;

  virtual void on_session_start(const SessionInfo& info) { (void)info; }
  /// Every alert transition, the moment the predicate flips.
  virtual void on_alert(const tracedb::AlertRecord& alert, bool resolved,
                        const std::string& site_name) {
    (void)alert;
    (void)resolved;
    (void)site_name;
  }
  /// Every closed window, with one row per site that completed a call in it.
  virtual void on_window(const tracedb::WindowRecord& window,
                         const std::vector<SessionWindowSite>& sites) {
    (void)window;
    (void)sites;
  }
  /// Final counters, emitted once by finish() before on_finish().
  virtual void on_stats(const SessionStats& stats) { (void)stats; }
  /// End of session; `end_ns` is the sealed virtual end time.
  virtual void on_finish(std::uint64_t end_ns) { (void)end_ns; }
};

/// Sink adapter for plain callbacks (alert transitions only) — the lightest
/// way to embed: `session.add_sink(std::make_shared<CallbackSink>(fn));`.
class CallbackSink : public MonitorSink {
 public:
  using AlertFn =
      std::function<void(const tracedb::AlertRecord&, bool resolved, const std::string& name)>;

  explicit CallbackSink(AlertFn fn) : fn_(std::move(fn)) {}

  void on_alert(const tracedb::AlertRecord& alert, bool resolved,
                const std::string& site_name) override {
    if (fn_) fn_(alert, resolved, site_name);
  }

 private:
  AlertFn fn_;
};

/// Streams alert transitions as JSON lines to a stdio file — byte-identical
/// to the `sgxperf monitor` stderr/--alert-log format (golden-tested).  The
/// sink does not own the FILE*.
class JsonLinesSink : public MonitorSink {
 public:
  explicit JsonLinesSink(std::FILE* out) : out_(out) {}

  void on_alert(const tracedb::AlertRecord& alert, bool resolved,
                const std::string& site_name) override;

 private:
  std::FILE* out_;
};

/// One alert transition as a JSON line (no trailing newline) — shared by
/// JsonLinesSink and the monitor CLI.
[[nodiscard]] std::string alert_json(const tracedb::AlertRecord& alert, bool resolved,
                                     const std::string& site_name);

struct MonitorSessionConfig {
  SessionIdentity identity;
  /// Subscription registered with the logger's stream hub.  Size the ring
  /// at or above the expected event count when loss matters: a dropped
  /// event skews the online detector state.
  std::string subscription_name = "session";
  std::size_t subscription_capacity = 1 << 16;
  OnlineConfig online;
};

/// Owns one Logger::subscribe() stream + OnlineAnalyzer + windowing, and
/// fans the typed output (alerts, window snapshots, stats) out to sinks —
/// `sgxperf monitor` as an embeddable object.
class MonitorSession {
 public:
  /// Subscribes to `logger`'s stream.  ok() is false when the logger's
  /// subscriber slots were exhausted.
  explicit MonitorSession(Logger& logger, MonitorSessionConfig config = {});

  /// Same, plus Urts-backed window externals (switchless occupancy folded
  /// into window snapshots, like the monitor daemon).  `urts` must outlive
  /// the session.
  MonitorSession(Logger& logger, sgxsim::Urts& urts, MonitorSessionConfig config = {});

  MonitorSession(const MonitorSession&) = delete;
  MonitorSession& operator=(const MonitorSession&) = delete;
  ~MonitorSession();

  [[nodiscard]] bool ok() const noexcept { return sub_ != nullptr; }

  /// Registers a sink (invoked on the monitoring thread).  The sink
  /// immediately observes on_session_start().
  void add_sink(std::shared_ptr<MonitorSink> sink);

  /// Drains every pending stream event into the analyser.  Returns the
  /// number of events consumed.  Call repeatedly from one thread.
  std::size_t poll();

  /// The monitor daemon's consumer loop: drain continuously until `done`
  /// turns true, sleeping `interval_ms` between empty polls, then drain the
  /// tail.  Returns total events consumed.
  std::uint64_t pump(const std::atomic<bool>& done, std::size_t interval_ms = 10);

  /// Seals the session: drains the tail of the stream, closes the
  /// subscription, finishes the analyser (resolving stale alerts) and emits
  /// on_stats()/on_finish() to every sink.  The end timestamp is taken from
  /// the logger's database when it has been detached/merged, falling back
  /// to the last streamed event otherwise.  Idempotent.
  void finish();

  /// Persists the window/alert tables into the logger's database (the v5
  /// payload).  Call after finish().
  void persist();

  [[nodiscard]] SessionStats stats() const;

  /// Appends this session's conservation stages (record, stream, session)
  /// to `led` — see telemetry/ledger.hpp and DESIGN.md §13.  Exact once the
  /// logger has been detached (shards merged) and finish() has drained the
  /// ring; before that the record stage lags the unmerged shards.  Adjacent
  /// stages intentionally count different populations (lifecycle events
  /// enter the stream but not the event tables; calls publish on
  /// completion), so conservation is checked per stage, not across stages.
  void fill_ledger(telemetry::Ledger& led) const;
  [[nodiscard]] telemetry::Ledger ledger() const;

  [[nodiscard]] const SessionIdentity& identity() const noexcept { return config_.identity; }
  [[nodiscard]] const OnlineAnalyzer& analyzer() const noexcept { return online_; }
  [[nodiscard]] std::uint64_t end_ns() const noexcept { return end_ns_; }

 private:
  void wire_analyzer();
  [[nodiscard]] std::string name_of(tracedb::EnclaveId enclave, tracedb::CallType type,
                                    tracedb::CallId id) const;

  Logger& logger_;
  sgxsim::Urts* urts_ = nullptr;
  MonitorSessionConfig config_;
  OnlineAnalyzer online_;
  std::shared_ptr<StreamSubscription> sub_;
  std::vector<std::shared_ptr<MonitorSink>> sinks_;
  std::vector<StreamEvent> batch_;
  std::uint64_t polled_ = 0;  // events drained from the ring (monitoring thread)
  std::uint64_t last_event_ns_ = 0;
  std::uint64_t end_ns_ = 0;
  std::uint64_t raised_ = 0;
  std::uint64_t resolved_ = 0;
  bool finished_ = false;
};

}  // namespace perf
