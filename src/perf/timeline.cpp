#include "perf/timeline.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/strutil.hpp"

namespace perf {

std::string render_timeline(const tracedb::TraceDatabase& db, std::size_t width) {
  const auto& calls = db.calls();
  if (calls.empty() || width == 0) return "(no calls)\n";

  support::Nanoseconds t0 = calls.front().start_ns;
  support::Nanoseconds t1 = 0;
  for (const auto& c : calls) {
    t0 = std::min(t0, c.start_ns);
    t1 = std::max(t1, c.end_ns);
  }
  const double span = std::max<double>(1.0, static_cast<double>(t1 - t0));

  std::map<tracedb::ThreadId, std::string> rows;
  const auto column = [&](support::Nanoseconds t) {
    const auto col = static_cast<std::size_t>(static_cast<double>(t - t0) / span *
                                              static_cast<double>(width - 1));
    return std::min(col, width - 1);
  };

  for (const auto& c : calls) {
    auto& row = rows.try_emplace(c.thread_id, std::string(width, '.')).first->second;
    const std::size_t from = column(c.start_ns);
    const std::size_t to = column(c.end_ns);
    const char mark = c.type == tracedb::CallType::kEcall ? 'E' : 'o';
    for (std::size_t col = from; col <= to; ++col) {
      // Ecalls dominate ocalls visually (an ocall is nested in an ecall).
      if (mark == 'E' || row[col] == '.') row[col] = mark;
    }
  }

  std::string out = support::format("timeline over %s ('E' in-enclave, 'o' in-ocall):\n",
                                    support::format_duration_ns(t1 - t0).c_str());
  for (const auto& [tid, row] : rows) {
    out += support::format("thread %-4u |%s|\n", tid, row.c_str());
  }
  return out;
}

}  // namespace perf
