// Report writers: the analyser's text report, the Figure 5 style call graph
// (DOT), and Figure 7/8 style histograms and scatter plots of per-call
// execution times (ASCII + CSV for external plotting).
#pragma once

#include <string>

#include "perf/analyzer.hpp"
#include "support/histogram.hpp"
#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace perf {

/// Renders the full analysis report as human-readable text: per-enclave
/// overview, general statistics (§4.3.1) and findings with recommendations
/// ordered by the priority rules of §4.3.2.
[[nodiscard]] std::string render_text(const AnalysisReport& report);

/// Renders the call graph as Graphviz DOT (Figure 5): square nodes for
/// ecalls, round nodes for ocalls, solid edges for direct parents, dashed
/// edges for indirect parents; edge labels carry call counts, node labels
/// carry "[id] name".
[[nodiscard]] std::string render_callgraph_dot(const tracedb::TraceDatabase& db);

/// Builds the execution-time histogram of one call, in microseconds
/// (Figure 7 groups one ecall's durations into 100 bins).
[[nodiscard]] support::Histogram duration_histogram(const tracedb::TraceDatabase& db,
                                                    const tracedb::CallKey& key,
                                                    std::size_t bins = 100);

/// CSV of (time_since_start_ns, duration_ns) pairs for one call (Figure 8).
[[nodiscard]] std::string scatter_csv(const tracedb::TraceDatabase& db,
                                      const tracedb::CallKey& key);

/// ASCII rendering of the scatter plot: time on the x axis, duration on the
/// y axis, one character cell per bucket.
[[nodiscard]] std::string render_scatter_ascii(const tracedb::TraceDatabase& db,
                                               const tracedb::CallKey& key,
                                               std::size_t width = 78, std::size_t height = 20);

}  // namespace perf
