#include "perf/stubs.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

#include "perf/logger.hpp"

namespace perf {

std::array<OcallStubRegistry::StubInfo, OcallStubRegistry::kMaxStubs> OcallStubRegistry::slots_;
std::atomic<std::size_t> OcallStubRegistry::next_slot_{0};

namespace {

using sgxsim::OcallFn;
using sgxsim::SgxStatus;

// The stub pool: kMaxStubs distinct functions, each statically bound to one
// registry slot.  &stub_trampoline<I> plays the role of the paper's
// runtime-emitted stub code for slot I.
template <std::size_t I>
SgxStatus stub_trampoline(void* ms) {
  return OcallStubRegistry::dispatch(I, ms);
}

template <std::size_t... Is>
constexpr std::array<OcallFn, sizeof...(Is)> make_trampolines(std::index_sequence<Is...>) {
  return {&stub_trampoline<Is>...};
}

const std::array<OcallFn, OcallStubRegistry::kMaxStubs> kTrampolines =
    make_trampolines(std::make_index_sequence<OcallStubRegistry::kMaxStubs>{});

}  // namespace

OcallStubRegistry& OcallStubRegistry::instance() {
  static OcallStubRegistry registry;
  return registry;
}

sgxsim::SgxStatus OcallStubRegistry::dispatch(std::size_t slot, void* ms) {
  const StubInfo& info = slots_.at(slot);
  if (info.logger == nullptr || info.original == nullptr) {
    // Stub invoked after its table was reset: fail loudly rather than crash.
    return SgxStatus::kUnexpected;
  }
  return info.logger->on_stub_call(info, ms);
}

std::size_t OcallStubRegistry::allocate_slot(const StubInfo& info) {
  const std::size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxStubs) {
    throw std::runtime_error("OcallStubRegistry: stub pool exhausted");
  }
  slots_[slot] = info;
  return slot;
}

const sgxsim::OcallTable* OcallStubRegistry::shadow_table(Logger& logger,
                                                          sgxsim::EnclaveId enclave,
                                                          const sgxsim::OcallTable* original) {
  // Hot path: every traced ecall looks its table up here, so consult a
  // thread-local cache first and only fall back to the mutex on a miss.
  // The cache applies to the singleton only — short-lived test registries
  // would otherwise poison it across instances at the same address.
  if (this == &instance()) {
    thread_local std::uint64_t cached_generation = 0;
    thread_local std::unordered_map<const sgxsim::OcallTable*, const sgxsim::OcallTable*> cache;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (cached_generation != gen) {
      cache.clear();
      cached_generation = gen;
    }
    const auto it = cache.find(original);
    if (it != cache.end()) return it->second;
    std::lock_guard lock(mu_);
    const sgxsim::OcallTable* shadow = shadow_table_locked(logger, enclave, original);
    cache.emplace(original, shadow);
    return shadow;
  }
  std::lock_guard lock(mu_);
  return shadow_table_locked(logger, enclave, original);
}

const sgxsim::OcallTable* OcallStubRegistry::shadow_table_locked(Logger& logger,
                                                                 sgxsim::EnclaveId enclave,
                                                                 const sgxsim::OcallTable* original) {
  const auto it = tables_.find(original);
  if (it != tables_.end()) return it->second.get();

  // First sight of this table: generate one stub per slot and assemble the
  // shadow table oT_logger (Figure 3).
  auto shadow = std::make_unique<sgxsim::OcallTable>();
  shadow->sync_base = original->sync_base;
  shadow->entries.reserve(original->entries.size());
  for (std::size_t i = 0; i < original->entries.size(); ++i) {
    StubInfo info;
    info.logger = &logger;
    info.enclave_id = enclave;
    info.ocall_id = static_cast<sgxsim::CallId>(i);
    info.original = original->entries[i];
    info.is_sync = i >= original->sync_base;
    if (info.is_sync) info.sync_offset = i - original->sync_base;
    const std::size_t slot = allocate_slot(info);
    slots_per_table_.push_back(slot);
    shadow->entries.push_back(kTrampolines[slot]);
  }

  const sgxsim::OcallTable* raw = shadow.get();
  tables_.emplace(original, std::move(shadow));
  return raw;
}

void OcallStubRegistry::reset() {
  std::lock_guard lock(mu_);
  for (std::size_t slot : slots_per_table_) slots_[slot] = StubInfo{};
  slots_per_table_.clear();
  tables_.clear();
  next_slot_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
}

std::size_t OcallStubRegistry::stubs_in_use() const {
  std::lock_guard lock(mu_);
  return slots_per_table_.size();
}

std::size_t OcallStubRegistry::tables_cached() const {
  std::lock_guard lock(mu_);
  return tables_.size();
}

}  // namespace perf
