// The simulated enclave: memory layout, EPCM/MMU permissions, trusted heap,
// TCS pool, in-enclave synchronisation state and the registered trusted
// functions.
//
// Layout follows §2.3.3: one metadata (SECS) page, code pages, heap pages,
// and per configured thread a guard page, stack pages, a TCS page and two
// SSA pages; the total is padded to the next power of two with padding pages
// that are part of the measurement but never touched — which is why the
// working set is much smaller than the enclave (§4.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sgxsim/driver.hpp"
#include "sgxsim/edl.hpp"
#include "sgxsim/heap.hpp"
#include "sgxsim/types.hpp"
#include "support/clock.hpp"

namespace sgxsim {

class TrustedContext;
class Urts;

/// Byte address inside the enclave's linear range.
using EnclaveAddr = std::uint64_t;

enum class MemAccess : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kExecute = 4,
};

enum class PageType : std::uint8_t {
  kSecs,
  kCode,
  kHeap,
  kGuard,
  kStack,
  kTcs,
  kSsa,
  kPadding,
};

[[nodiscard]] const char* to_string(PageType t) noexcept;

/// Build-time enclave configuration (the SDK's Enclave.config.xml analogue).
struct EnclaveConfig {
  std::string name = "enclave";
  std::size_t code_pages = 64;
  std::size_t heap_pages = 256;
  std::size_t stack_pages = 8;  // per TCS
  std::size_t tcs_count = 4;    // max concurrent threads inside (§2.1)
  bool debug = true;            // debug enclaves allow inspection
};

/// Trusted function implementation: receives the trusted execution context
/// and the marshalling struct, exactly like an edger8r-generated bridge.
using EcallFn = std::function<SgxStatus(TrustedContext&, void*)>;

/// In-enclave mutex flavours: the SDK default (sleep via ocall on contention,
/// §2.3.2) and the paper's recommended hybrid spin-then-sleep (§3.4).
enum class MutexKind : std::uint8_t { kSdkDefault, kHybridSpin };

using MutexId = std::uint32_t;
using CondId = std::uint32_t;

class Enclave {
 public:
  Enclave(EnclaveId id, EnclaveConfig config, edl::InterfaceSpec interface,
          support::VirtualClock& clock, Driver& driver);

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // --- identity & layout ---------------------------------------------------
  [[nodiscard]] EnclaveId id() const noexcept { return id_; }
  [[nodiscard]] const EnclaveConfig& config() const noexcept { return config_; }
  [[nodiscard]] const edl::InterfaceSpec& interface() const noexcept { return interface_; }
  /// MRENCLAVE-like hex measurement over the layout and interface.
  [[nodiscard]] const std::string& measurement() const noexcept { return measurement_; }
  [[nodiscard]] std::size_t total_pages() const noexcept { return page_types_.size(); }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return total_pages() * kPageSize; }
  [[nodiscard]] PageType page_type(std::uint64_t page) const { return page_types_.at(page); }
  [[nodiscard]] std::uint64_t heap_base_page() const noexcept { return heap_base_page_; }
  [[nodiscard]] std::uint64_t code_base_page() const noexcept { return 1; }

  // --- trusted function registry -------------------------------------------
  /// Registers the implementation of the ecall named `name` in the EDL.
  /// Throws std::invalid_argument for names absent from the interface.
  void register_ecall(const std::string& name, EcallFn fn);
  [[nodiscard]] const EcallFn* ecall_fn(CallId id) const noexcept;
  [[nodiscard]] bool ecall_public(CallId id) const;

  // --- TCS pool -------------------------------------------------------------
  /// Claims a free TCS; nullopt when all are busy (SGX_ERROR_OUT_OF_TCS).
  [[nodiscard]] std::optional<std::size_t> acquire_tcs();
  void release_tcs(std::size_t index);
  [[nodiscard]] std::size_t tcs_count() const noexcept { return config_.tcs_count; }

  // --- memory ----------------------------------------------------------------
  /// Simulates an access to `page`.  Order matters and mirrors §4.2: the MMU
  /// permissions are checked *before* the SGX/EPCM ones, so stripped MMU
  /// permissions fault even for EPC-resident pages; then EPC residency is
  /// ensured (possibly paging).  Returns true if an EPC fault occurred.
  bool touch_page(std::uint64_t page, MemAccess access);
  /// Touches every page overlapping [addr, addr+len).
  bool touch_range(EnclaveAddr addr, std::uint64_t len, MemAccess access);

  /// Trusted heap: returns an enclave address, or 0 on exhaustion.  Newly
  /// allocated memory is touched for writing (zeroing), as trusted malloc
  /// does.
  [[nodiscard]] EnclaveAddr heap_alloc(std::uint64_t bytes);
  void heap_free(EnclaveAddr addr);
  [[nodiscard]] std::uint64_t heap_used() const;
  [[nodiscard]] std::uint64_t heap_capacity() const noexcept {
    return config_.heap_pages * kPageSize;
  }

  // --- MMU permission games (working-set estimator, §4.2) ---------------------
  using MmuFaultHandler = std::function<void(EnclaveId, std::uint64_t /*page*/, MemAccess)>;
  /// Strips all MMU permissions from every enclave page.
  void strip_mmu_permissions();
  /// Restores the natural permissions of one page / of all pages.
  void restore_mmu_permission(std::uint64_t page);
  void restore_mmu_permissions();
  void set_mmu_fault_handler(MmuFaultHandler handler);
  [[nodiscard]] std::uint8_t mmu_permissions(std::uint64_t page) const {
    return mmu_perms_.at(page);
  }

  // --- in-enclave synchronisation state (used by TrustedContext) --------------
  [[nodiscard]] MutexId create_mutex(MutexKind kind = MutexKind::kSdkDefault,
                                     std::uint32_t spin_limit = 64);
  [[nodiscard]] CondId create_cond();

  struct MutexState {
    MutexKind kind = MutexKind::kSdkDefault;
    std::uint32_t spin_limit = 0;
    ThreadId owner = 0;  // 0 = unlocked
    std::deque<ThreadId> waiters;
  };
  struct CondState {
    std::deque<ThreadId> waiters;
  };

  /// Synchronisation state is manipulated under this lock by the TRTS.
  std::mutex& sync_mu() noexcept { return sync_mu_; }
  [[nodiscard]] MutexState& mutex_state(MutexId id) { return mutexes_.at(id); }
  [[nodiscard]] CondState& cond_state(CondId id) { return conds_.at(id); }

  /// Natural (EPCM) permissions for a page of the given type.
  [[nodiscard]] static std::uint8_t natural_permissions(PageType t) noexcept;

 private:
  void build_layout();
  void compute_measurement();

  EnclaveId id_;
  EnclaveConfig config_;
  edl::InterfaceSpec interface_;
  support::VirtualClock& clock_;
  Driver& driver_;

  std::vector<PageType> page_types_;
  std::vector<std::uint8_t> mmu_perms_;
  std::uint64_t heap_base_page_ = 0;
  std::vector<std::uint64_t> tcs_pages_;         // page index of each TCS
  std::vector<std::uint64_t> stack_base_pages_;  // first stack page per TCS
  std::string measurement_;

  std::vector<EcallFn> ecall_impls_;

  std::mutex tcs_mu_;
  std::vector<bool> tcs_busy_;

  mutable std::mutex heap_mu_;
  FreeListAllocator heap_;

  std::mutex mmu_mu_;
  MmuFaultHandler mmu_fault_handler_;

  std::mutex sync_mu_;
  std::deque<MutexState> mutexes_;
  std::deque<CondState> conds_;

 public:
  /// Stack/TCS page helpers used by the runtime when entering an ecall.
  [[nodiscard]] std::uint64_t tcs_page(std::size_t tcs_index) const {
    return tcs_pages_.at(tcs_index);
  }
  [[nodiscard]] std::uint64_t stack_base_page(std::size_t tcs_index) const {
    return stack_base_pages_.at(tcs_index);
  }
};

}  // namespace sgxsim
