// First-fit free-list allocator for the simulated enclave heap.
//
// The SDK's trusted malloc draws from a fixed heap region whose size is set
// at enclave build time (§2.3.3: "the heap and stack are not virtually
// infinite, but actually have a limit").  This allocator reproduces that:
// allocation fails once the configured region is exhausted, which is exactly
// the failure mode the paper warns about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace sgxsim {

/// Byte offset inside the enclave's heap region.
using HeapOffset = std::uint64_t;

class FreeListAllocator {
 public:
  /// Manages `capacity` bytes starting at offset 0.
  explicit FreeListAllocator(std::uint64_t capacity);

  /// Allocates `size` bytes (16-byte aligned).  Returns the offset, or
  /// kFailed when the region cannot satisfy the request.
  [[nodiscard]] HeapOffset allocate(std::uint64_t size);

  /// Frees a block previously returned by allocate().  Freeing an unknown
  /// offset is a programming error and throws std::logic_error.
  void deallocate(HeapOffset offset);

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept { return capacity_ - used_; }
  /// Largest single allocation that can currently succeed.
  [[nodiscard]] std::uint64_t largest_free_block() const noexcept;
  [[nodiscard]] std::size_t allocation_count() const noexcept { return allocated_.size(); }

  static constexpr HeapOffset kFailed = ~std::uint64_t{0};

 private:
  static constexpr std::uint64_t kAlignment = 16;

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<HeapOffset, std::uint64_t> free_;       // offset -> size, coalesced
  std::map<HeapOffset, std::uint64_t> allocated_;  // offset -> size
};

}  // namespace sgxsim
