// The simulated SGX kernel driver: owner of the Enclave Page Cache.
//
// The EPC is a fixed pool shared by *all* enclaves on the machine
// (§2.3.3: "the EPC is shared between all running enclaves").  When it
// overflows, the driver evicts the least-recently-used page (EWB: encrypt +
// version), and faults it back in on next access (ELDU: decrypt + verify).
// sgx-perf traces these transitions through kprobe-style hooks on the
// driver's page-in/page-out paths (§4.1.5) — set_trace_hooks() is that
// kprobe attachment point.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

#include "sgxsim/cost_model.hpp"
#include "sgxsim/types.hpp"
#include "support/clock.hpp"

namespace sgxsim {

enum class PageDirection : std::uint8_t { kIn = 0, kOut = 1 };

class Driver {
 public:
  /// `epc_pages` is the number of *usable* EPC pages.  The production default
  /// models the paper's 93 MiB usable EPC; tests shrink it to force paging.
  static constexpr std::size_t kDefaultEpcPages = 93ull * 1024 * 1024 / kPageSize;  // 23,808

  Driver(support::VirtualClock& clock, const CostModel& cost,
         std::size_t epc_pages = kDefaultEpcPages);

  /// Returns this driver's still-resident pages to the process-wide EPC
  /// residency gauge (several simulated machines share one registry).
  ~Driver();

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// kprobe attachment point: called with (enclave, page, direction,
  /// timestamp) on every page-in / page-out.
  using PageHook =
      std::function<void(EnclaveId, std::uint64_t, PageDirection, support::Nanoseconds)>;
  void set_trace_hooks(PageHook hook);
  void clear_trace_hooks();

  /// EADD: adds a page at enclave build time, evicting if the EPC is full.
  /// Charges the EADD+EEXTEND cost.
  void add_page(EnclaveId enclave, std::uint64_t page);

  /// Releases all EPC pages of an enclave (enclave destruction).
  void remove_enclave(EnclaveId enclave);

  /// Ensures (enclave, page) is EPC-resident, faulting it in if needed.
  /// Returns true when a page-in occurred (i.e. the access faulted).
  bool ensure_resident(EnclaveId enclave, std::uint64_t page);

  [[nodiscard]] bool is_resident(EnclaveId enclave, std::uint64_t page) const;

  [[nodiscard]] std::size_t epc_pages() const noexcept { return epc_pages_; }
  [[nodiscard]] std::size_t resident_pages() const;
  [[nodiscard]] std::uint64_t page_in_count() const noexcept { return page_ins_; }
  [[nodiscard]] std::uint64_t page_out_count() const noexcept { return page_outs_; }

 private:
  struct PageKey {
    EnclaveId enclave;
    std::uint64_t page;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.enclave * 0x9E3779B97F4A7C15ull ^ k.page);
    }
  };

  /// Marks a resident page most-recently-used.  Caller holds mu_.
  void lru_touch(const PageKey& key);
  /// Evicts the LRU page.  Caller holds mu_.
  void evict_one();

  support::VirtualClock& clock_;
  const CostModel& cost_;
  std::size_t epc_pages_;

  mutable std::mutex mu_;
  std::list<PageKey> lru_;  // front = most recently used
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash> resident_;
  std::uint64_t page_ins_ = 0;
  std::uint64_t page_outs_ = 0;
  PageHook hook_;
};

}  // namespace sgxsim
