// TrustedContext: the TRTS service surface available to trusted functions.
#include "sgxsim/runtime.hpp"

#include "telemetry/metrics.hpp"

namespace sgxsim {

namespace {

// Same registry instruments as runtime.cpp's (registration is idempotent by
// name), resolved once per process.
telemetry::Counter& transitions_counter(PatchLevel lvl) {
  static telemetry::Counter& unpatched =
      telemetry::metrics().counter("sgxsim.transitions.unpatched", "transitions");
  static telemetry::Counter& spectre =
      telemetry::metrics().counter("sgxsim.transitions.spectre", "transitions");
  static telemetry::Counter& l1tf =
      telemetry::metrics().counter("sgxsim.transitions.spectre_l1tf", "transitions");
  switch (lvl) {
    case PatchLevel::kSpectre: return spectre;
    case PatchLevel::kSpectreL1tf: return l1tf;
    case PatchLevel::kUnpatched: break;
  }
  return unpatched;
}

}  // namespace

SgxStatus TrustedContext::ocall(CallId id, void* ms) {
  Urts::CallFrame* ecall = urts_.innermost_ecall(ts_);
  if (ecall == nullptr || ecall->table == nullptr) return SgxStatus::kOcallNotAllowed;
  const OcallTable* table = ecall->table;
  if (id >= table->entries.size()) return SgxStatus::kOcallNotAllowed;

  // TRTS side: build the ocall frame, marshal arguments.
  urts_.charge_in_enclave(ts_, urts_.cost_.trts_ocall_overhead_ns);

  // EEXIT to the URTS ocall dispatcher.
  transitions_counter(urts_.cost_.level).add();
  urts_.clock_.advance(urts_.cost_.eexit_ns);
  ts_.frames.push_back(Urts::CallFrame{enclave_.id(), /*is_ocall=*/true, id, table, 0});
  urts_.clock_.advance(urts_.cost_.urts_ocall_dispatch_ns);

  // The table entry runs untrusted — this is where sgx-perf's generated call
  // stub sits once the table has been rewritten (Figure 3).
  SgxStatus ret;
  try {
    ret = table->entries[id](ms);
  } catch (...) {
    ret = SgxStatus::kUnexpected;
  }

  // ERESUME-equivalent EENTER back into the enclave.
  urts_.clock_.advance(urts_.cost_.eenter_ns);
  ts_.frames.pop_back();
  ts_.next_aex_deadline = urts_.clock_.now() + urts_.cost_.timer_period_ns;
  return ret;
}

void TrustedContext::work(support::Nanoseconds ns) { urts_.charge_in_enclave(ts_, ns); }

void TrustedContext::copy_in(std::uint64_t bytes) {
  work(static_cast<support::Nanoseconds>(static_cast<double>(bytes) *
                                         urts_.cost_.copy_ns_per_byte));
}

void TrustedContext::copy_out(std::uint64_t bytes) { copy_in(bytes); }

void TrustedContext::touch(EnclaveAddr addr, std::uint64_t len, MemAccess access) {
  if (len == 0) return;
  // An EPC fault during enclave execution forces an AEX before the kernel
  // can page the data in (§2.3.3: paging costs "added enclave transitions to
  // handle page faults") — this is exactly what pre-loading pages before the
  // ecall avoids (§3.5 (ii)).
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (enclave_.touch_page(page, access)) {
      static telemetry::Counter& aex_injected =
          telemetry::metrics().counter("sgxsim.aex_injected", "events");
      aex_injected.add();
      urts_.clock_.advance(urts_.cost_.aex_ns);
      if (urts_.hooks_.aep) {
        urts_.hooks_.aep(enclave_.id(), ts_.id, urts_.clock_.now(), AexCause::kPageFault);
      }
      ts_.next_aex_deadline = urts_.clock_.now() + urts_.cost_.timer_period_ns;
    }
  }
}

SgxStatus TrustedContext::sync_ocall(SyncOcall which, ThreadId target,
                                     const std::vector<ThreadId>* targets) {
  Urts::CallFrame* ecall = urts_.innermost_ecall(ts_);
  if (ecall == nullptr || ecall->table == nullptr) return SgxStatus::kOcallNotAllowed;
  static telemetry::Counter& sync_ocalls =
      telemetry::metrics().counter("sgxsim.sync_ocalls", "calls");
  sync_ocalls.add();
  SyncOcallMs ms;
  ms.urts = &urts_;
  ms.self = ts_.id;
  ms.target = target;
  ms.targets = targets;
  return ocall(ecall->table->sync_base + static_cast<CallId>(which), &ms);
}

SgxStatus TrustedContext::mutex_lock(MutexId id) {
  // SDK semantics (§2.3.2): an uncontended lock is taken entirely inside the
  // enclave; contention enqueues the thread and issues a sleep ocall.
  auto try_take = [&]() -> bool {
    std::lock_guard lock(enclave_.sync_mu());
    auto& m = enclave_.mutex_state(id);
    if (m.owner == 0) {
      m.owner = ts_.id;
      return true;
    }
    return false;
  };

  work(40);  // in-enclave lock bookkeeping
  if (try_take()) return SgxStatus::kSuccess;

  // Hybrid mutex (§3.4): spin inside the enclave before sleeping outside.
  {
    MutexKind kind;
    std::uint32_t spin_limit;
    {
      std::lock_guard lock(enclave_.sync_mu());
      const auto& m = enclave_.mutex_state(id);
      kind = m.kind;
      spin_limit = m.spin_limit;
    }
    if (kind == MutexKind::kHybridSpin) {
      for (std::uint32_t i = 0; i < spin_limit; ++i) {
        work(urts_.cost_.spin_iteration_ns);
        // A PAUSE-style backoff that also takes real time, so spinning can
        // genuinely outlast a concurrently-held critical section.
        for (volatile int backoff = 0; backoff < 8; backoff = backoff + 1) {
        }
        if (try_take()) return SgxStatus::kSuccess;
      }
    }
  }

  for (;;) {
    {
      std::lock_guard lock(enclave_.sync_mu());
      auto& m = enclave_.mutex_state(id);
      if (m.owner == 0) {
        m.owner = ts_.id;
        return SgxStatus::kSuccess;
      }
      m.waiters.push_back(ts_.id);
    }
    // Sleep outside the enclave; the unlocking thread wakes us with its own
    // ocall — "a mutex lock can therefore result in two ocalls" (§2.3.2).
    const SgxStatus st = sync_ocall(SyncOcall::kWaitEvent, ts_.id);
    if (st != SgxStatus::kSuccess) return st;
  }
}

SgxStatus TrustedContext::mutex_unlock(MutexId id) {
  ThreadId to_wake = 0;
  {
    std::lock_guard lock(enclave_.sync_mu());
    auto& m = enclave_.mutex_state(id);
    if (m.owner != ts_.id) return SgxStatus::kInvalidParameter;
    m.owner = 0;
    if (!m.waiters.empty()) {
      to_wake = m.waiters.front();
      m.waiters.pop_front();
    }
  }
  work(30);  // in-enclave unlock bookkeeping
  if (to_wake != 0) {
    // The wake-up ocall — typically <10 us, i.e. dominated by the transition
    // (§2.3.2), which is exactly the SSC pattern the analyser flags.
    return sync_ocall(SyncOcall::kSetEvent, to_wake);
  }
  return SgxStatus::kSuccess;
}

SgxStatus TrustedContext::cond_wait(CondId cond, MutexId mutex) {
  {
    std::lock_guard lock(enclave_.sync_mu());
    enclave_.cond_state(cond).waiters.push_back(ts_.id);
  }
  SgxStatus st = mutex_unlock(mutex);
  if (st != SgxStatus::kSuccess) return st;
  st = sync_ocall(SyncOcall::kWaitEvent, ts_.id);
  if (st != SgxStatus::kSuccess) return st;
  return mutex_lock(mutex);
}

SgxStatus TrustedContext::cond_signal(CondId cond) {
  ThreadId to_wake = 0;
  {
    std::lock_guard lock(enclave_.sync_mu());
    auto& c = enclave_.cond_state(cond);
    if (!c.waiters.empty()) {
      to_wake = c.waiters.front();
      c.waiters.pop_front();
    }
  }
  if (to_wake != 0) return sync_ocall(SyncOcall::kSetEvent, to_wake);
  return SgxStatus::kSuccess;
}

SgxStatus TrustedContext::cond_broadcast(CondId cond) {
  std::vector<ThreadId> to_wake;
  {
    std::lock_guard lock(enclave_.sync_mu());
    auto& c = enclave_.cond_state(cond);
    to_wake.assign(c.waiters.begin(), c.waiters.end());
    c.waiters.clear();
  }
  if (!to_wake.empty()) {
    return sync_ocall(SyncOcall::kSetMultipleEvents, 0, &to_wake);
  }
  return SgxStatus::kSuccess;
}

}  // namespace sgxsim
