#include "sgxsim/runtime.hpp"

#include <atomic>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace sgxsim {

namespace {

// Builtin untrusted implementations of the SDK synchronisation ocalls.
// They are ordinary OcallFn entries in every table, so the profiler's table
// rewrite wraps them like any application ocall.

SgxStatus sync_wait_event(void* ms) {
  auto* s = static_cast<SyncOcallMs*>(ms);
  s->urts->park_current_thread();
  return SgxStatus::kSuccess;
}

SgxStatus sync_set_event(void* ms) {
  auto* s = static_cast<SyncOcallMs*>(ms);
  s->urts->unpark(s->target);
  return SgxStatus::kSuccess;
}

SgxStatus sync_set_multiple_events(void* ms) {
  auto* s = static_cast<SyncOcallMs*>(ms);
  if (s->targets != nullptr) {
    for (ThreadId t : *s->targets) s->urts->unpark(t);
  }
  return SgxStatus::kSuccess;
}

SgxStatus sync_set_wait_event(void* ms) {
  auto* s = static_cast<SyncOcallMs*>(ms);
  s->urts->unpark(s->target);
  s->urts->park_current_thread();
  return SgxStatus::kSuccess;
}

}  // namespace

OcallTable make_ocall_table(std::vector<OcallFn> app_entries) {
  OcallTable table;
  table.entries = std::move(app_entries);
  table.sync_base = static_cast<CallId>(table.entries.size());
  table.entries.push_back(&sync_wait_event);
  table.entries.push_back(&sync_set_event);
  table.entries.push_back(&sync_set_multiple_events);
  table.entries.push_back(&sync_set_wait_event);
  return table;
}

namespace {
std::atomic<std::uint64_t> g_urts_instance_counter{1};
}  // namespace

namespace metrics_detail {

/// Registry handles resolved once per process; call sites pay only relaxed
/// atomic adds after that.
struct SimMetrics {
  telemetry::Counter& transitions_unpatched =
      telemetry::metrics().counter("sgxsim.transitions.unpatched", "transitions");
  telemetry::Counter& transitions_spectre =
      telemetry::metrics().counter("sgxsim.transitions.spectre", "transitions");
  telemetry::Counter& transitions_l1tf =
      telemetry::metrics().counter("sgxsim.transitions.spectre_l1tf", "transitions");
  telemetry::Counter& aex_injected =
      telemetry::metrics().counter("sgxsim.aex_injected", "events");
  telemetry::Counter& switchless_calls =
      telemetry::metrics().counter("sgxsim.switchless_calls", "calls");
  telemetry::Counter& switchless_fallbacks =
      telemetry::metrics().counter("sgxsim.switchless_fallbacks", "calls");
  /// Worker busy-wait time; accrues with virtual time, not events, so it is
  /// folded in whenever the pool is reconfigured or disabled.
  telemetry::Counter& switchless_wasted =
      telemetry::metrics().counter("sgxsim.switchless_wasted_worker_ns", "ns");
  telemetry::Counter& sync_ocalls = telemetry::metrics().counter("sgxsim.sync_ocalls", "calls");
  telemetry::Gauge& tcs_in_use = telemetry::metrics().gauge("sgxsim.tcs_in_use", "tcs");

  /// One EENTER..EEXIT (or EEXIT..ERESUME) round trip at patch level `lvl`.
  telemetry::Counter& transitions_for(PatchLevel lvl) noexcept {
    switch (lvl) {
      case PatchLevel::kSpectre: return transitions_spectre;
      case PatchLevel::kSpectreL1tf: return transitions_l1tf;
      case PatchLevel::kUnpatched: break;
    }
    return transitions_unpatched;
  }
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

}  // namespace metrics_detail

using metrics_detail::sim_metrics;

Urts::Urts(CostModel cost, std::size_t epc_pages)
    : cost_(cost), driver_(clock_, cost_, epc_pages) {
  instance_token_ = g_urts_instance_counter.fetch_add(1, std::memory_order_relaxed);
}

Urts::~Urts() = default;

void Urts::set_patch_level(PatchLevel lvl) noexcept {
  // Only the transition-related costs change; the driver keeps referencing
  // the same CostModel object.
  const CostModel preset = CostModel::preset(lvl);
  cost_.level = preset.level;
  cost_.eenter_ns = preset.eenter_ns;
  cost_.eexit_ns = preset.eexit_ns;
  cost_.aex_ns = preset.aex_ns;
}

EnclaveId Urts::create_enclave(EnclaveConfig config, edl::InterfaceSpec interface) {
  std::unique_ptr<Enclave> enclave;
  EnclaveId id = 0;
  {
    std::lock_guard lock(enclaves_mu_);
    id = next_enclave_id_++;
    enclave = std::make_unique<Enclave>(id, std::move(config), std::move(interface), clock_,
                                        driver_);
    enclaves_.emplace(id, std::move(enclave));
  }
  if (hooks_.enclave_created) hooks_.enclave_created(*enclaves_.at(id));
  return id;
}

SgxStatus Urts::destroy_enclave(EnclaveId id) {
  std::unique_ptr<Enclave> doomed;
  {
    std::lock_guard lock(enclaves_mu_);
    const auto it = enclaves_.find(id);
    if (it == enclaves_.end()) return SgxStatus::kInvalidEnclaveId;
    doomed = std::move(it->second);
    enclaves_.erase(it);
  }
  driver_.remove_enclave(id);
  if (hooks_.enclave_destroyed) hooks_.enclave_destroyed(id, clock_.now());
  return SgxStatus::kSuccess;
}

Enclave& Urts::enclave(EnclaveId id) {
  std::lock_guard lock(enclaves_mu_);
  return *enclaves_.at(id);
}

const Enclave* Urts::find_enclave(EnclaveId id) const {
  std::lock_guard lock(enclaves_mu_);
  const auto it = enclaves_.find(id);
  return it == enclaves_.end() ? nullptr : it->second.get();
}

std::vector<EnclaveId> Urts::enclave_ids() const {
  std::lock_guard lock(enclaves_mu_);
  std::vector<EnclaveId> ids;
  ids.reserve(enclaves_.size());
  for (const auto& [id, enclave] : enclaves_) ids.push_back(id);
  return ids;
}

SgxStatus Urts::sgx_ecall(EnclaveId eid, CallId id, const OcallTable* table, void* ms) {
  if (hooks_.sgx_ecall) return hooks_.sgx_ecall(eid, id, table, ms);
  return real_sgx_ecall(eid, id, table, ms);
}

std::uint64_t Urts::switchless_window_wasted(const SwitchlessState& state) const {
  if (state.workers == 0) return 0;
  const std::uint64_t window = clock_.now() - state.enabled_at;
  const std::uint64_t pool = static_cast<std::uint64_t>(state.workers) * window;
  const std::uint64_t busy =
      state.busy_ns.load(std::memory_order_relaxed) - state.busy_at_enable;
  return pool > busy ? pool - busy : 0;
}

void Urts::set_switchless_workers(EnclaveId enclave, std::size_t workers) {
  std::lock_guard lock(enclaves_mu_);
  auto& slot = switchless_[enclave];
  if (!slot) slot = std::make_unique<SwitchlessState>();
  // Close out the previous pool's window: its workers were spinning whenever
  // they were not serving.
  const std::uint64_t wasted = switchless_window_wasted(*slot);
  if (wasted > 0) {
    slot->retired_wasted_ns += wasted;
    sim_metrics().switchless_wasted.add(wasted);
  }
  slot->workers = workers;
  slot->enabled_at = clock_.now();
  slot->busy_at_enable = slot->busy_ns.load(std::memory_order_relaxed);
}

std::size_t Urts::switchless_workers(EnclaveId enclave) const {
  std::lock_guard lock(enclaves_mu_);
  const auto it = switchless_.find(enclave);
  return it == switchless_.end() ? 0 : it->second->workers;
}

Urts::SwitchlessState* Urts::switchless_state(EnclaveId enclave) const {
  std::lock_guard lock(enclaves_mu_);
  const auto it = switchless_.find(enclave);
  return it == switchless_.end() ? nullptr : it->second.get();
}

Urts::SwitchlessStats Urts::switchless_stats(EnclaveId enclave) const {
  std::lock_guard lock(enclaves_mu_);
  const auto it = switchless_.find(enclave);
  SwitchlessStats stats;
  if (it == switchless_.end()) return stats;
  const SwitchlessState& s = *it->second;
  stats.workers = s.workers;
  stats.calls = s.calls.load(std::memory_order_relaxed);
  stats.fallbacks = s.fallbacks.load(std::memory_order_relaxed);
  stats.busy_ns = s.busy_ns.load(std::memory_order_relaxed);
  stats.wasted_worker_ns = s.retired_wasted_ns + switchless_window_wasted(s);
  return stats;
}

Urts::ThreadState& Urts::thread_state() {
  // Keyed by instance token, not address: a destroyed Urts may be
  // reallocated at the same address by a later test or experiment.
  thread_local std::map<std::uint64_t, ThreadState*> cache;
  const auto it = cache.find(instance_token_);
  if (it != cache.end()) return *it->second;

  std::lock_guard lock(threads_mu_);
  auto state = std::make_unique<ThreadState>();
  state->id = next_thread_id_++;
  state->slot = threads_.size();
  ThreadState* raw = state.get();
  threads_.emplace(raw->id, std::move(state));
  parkers_.emplace(raw->id, std::make_unique<Parker>());
  cache.emplace(instance_token_, raw);
  return *raw;
}

ThreadId Urts::current_thread_id() { return thread_state().id; }

std::size_t Urts::current_thread_slot() { return thread_state().slot; }

std::size_t Urts::thread_count() const {
  std::lock_guard lock(threads_mu_);
  return threads_.size();
}

Urts::Parker& Urts::parker_for(ThreadId id) {
  std::lock_guard lock(threads_mu_);
  auto& slot = parkers_[id];
  if (!slot) slot = std::make_unique<Parker>();
  return *slot;
}

void Urts::park_current_thread() {
  clock_.advance(cost_.parker_ns);
  Parker& p = parker_for(current_thread_id());
  std::unique_lock lock(p.m);
  p.cv.wait(lock, [&] { return p.permits > 0; });
  --p.permits;
}

void Urts::unpark(ThreadId thread) {
  clock_.advance(cost_.parker_ns);
  Parker& p = parker_for(thread);
  {
    std::lock_guard lock(p.m);
    ++p.permits;
  }
  p.cv.notify_one();
}

Urts::CallFrame* Urts::innermost_ecall(ThreadState& ts) {
  for (auto it = ts.frames.rbegin(); it != ts.frames.rend(); ++it) {
    if (!it->is_ocall) return &*it;
  }
  return nullptr;
}

Urts::CallFrame* Urts::innermost_ocall(ThreadState& ts, EnclaveId eid) {
  for (auto it = ts.frames.rbegin(); it != ts.frames.rend(); ++it) {
    if (it->is_ocall && it->eid == eid) return &*it;
  }
  return nullptr;
}

void Urts::deliver_aex(ThreadState& ts) {
  // State save into the SSA, EEXIT, kernel interrupt handler, AEP, ERESUME.
  const auto now = clock_.advance(cost_.aex_ns);
  sim_metrics().aex_injected.add();
  CallFrame* ecall = innermost_ecall(ts);
  const EnclaveId eid = ecall != nullptr ? ecall->eid : 0;
  // The AEP normally holds exactly one ERESUME; the profiler may have patched
  // it (§4.1.4) to count/trace before resuming.
  if (hooks_.aep) hooks_.aep(eid, ts.id, now, AexCause::kInterrupt);
  ts.next_aex_deadline = clock_.now() + cost_.timer_period_ns;
}

void Urts::charge_in_enclave(ThreadState& ts, support::Nanoseconds ns) {
  while (true) {
    const auto now = clock_.now();
    if (now >= ts.next_aex_deadline) {
      deliver_aex(ts);
      continue;
    }
    if (ns == 0) return;
    const support::Nanoseconds step = std::min<support::Nanoseconds>(
        ns, ts.next_aex_deadline - now);
    clock_.advance(step);
    ns -= step;
  }
}

SgxStatus Urts::real_sgx_ecall(EnclaveId eid, CallId id, const OcallTable* table, void* ms) {
  Enclave* enclave_ptr = nullptr;
  {
    std::lock_guard lock(enclaves_mu_);
    const auto it = enclaves_.find(eid);
    if (it == enclaves_.end()) return SgxStatus::kInvalidEnclaveId;
    enclave_ptr = it->second.get();
  }
  Enclave& enclave = *enclave_ptr;

  if (id >= enclave.interface().ecalls.size()) return SgxStatus::kInvalidFunction;
  const EcallFn* fn = enclave.ecall_fn(id);
  if (fn == nullptr) return SgxStatus::kInvalidFunction;

  ThreadState& ts = thread_state();

  // Interface policy (§3.6): inside an ocall, only ecalls in that ocall's
  // allow() list may run; private ecalls may *only* run inside an ocall.
  CallFrame* enclosing_ocall = innermost_ocall(ts, eid);
  if (enclosing_ocall != nullptr) {
    if (!enclave.interface().is_allowed(enclosing_ocall->call_id, id)) {
      return SgxStatus::kEcallNotAllowed;
    }
  } else if (!enclave.ecall_public(id)) {
    return SgxStatus::kEcallNotAllowed;
  }

  // Switchless fast path (SDK 2.x `transition_using_threads`): an in-enclave
  // worker serves the request over a shared queue — no TCS claim, no
  // EENTER/EEXIT, just the queue handoff cost.  The pool is finite: when all
  // workers are serving other requests the call falls back to a normal
  // transition, like the SDK does.  Worker time is accounted as busy while
  // serving and wasted (busy-wait on the queue) otherwise.
  if (enclave.interface().ecalls[id].is_switchless) {
    SwitchlessState* sl = switchless_state(eid);
    bool claimed = false;
    if (sl != nullptr && sl->workers > 0) {
      std::size_t in_flight = sl->in_flight.load(std::memory_order_acquire);
      while (in_flight < sl->workers) {
        if (sl->in_flight.compare_exchange_weak(in_flight, in_flight + 1,
                                                std::memory_order_acq_rel)) {
          claimed = true;
          break;
        }
      }
      if (!claimed) {
        sl->fallbacks.fetch_add(1, std::memory_order_relaxed);
        sim_metrics().switchless_fallbacks.add();
      }
    }
    if (claimed) {
      sim_metrics().switchless_calls.add();
      const auto serve_start = clock_.now();
      clock_.advance(cost_.switchless_call_ns);
      ts.frames.push_back(CallFrame{eid, /*is_ocall=*/false, id, table, /*tcs_index=*/0});
      ts.next_aex_deadline = clock_.now() + cost_.timer_period_ns;
      SgxStatus ret = SgxStatus::kSuccess;
      {
        TrustedContext ctx(*this, enclave, ts);
        try {
          ret = (*fn)(ctx, ms);
        } catch (...) {
          ret = SgxStatus::kEnclaveCrashed;
        }
      }
      ts.frames.pop_back();
      // Like every virtual duration, this may include advances other threads
      // made meanwhile — the same approximation recorded traces live with.
      sl->busy_ns.fetch_add(clock_.now() - serve_start, std::memory_order_relaxed);
      sl->calls.fetch_add(1, std::memory_order_relaxed);
      sl->in_flight.fetch_sub(1, std::memory_order_release);
      return ret;
    }
  }

  // URTS: find a free TCS (§2.1 — the TCS count bounds enclave concurrency).
  const auto tcs = enclave.acquire_tcs();
  if (!tcs) return SgxStatus::kOutOfTcs;
  sim_metrics().tcs_in_use.add(1);
  clock_.advance(cost_.urts_ecall_overhead_ns);

  // EENTER.
  sim_metrics().transitions_for(cost_.level).add();
  clock_.advance(cost_.eenter_ns);
  ts.frames.push_back(CallFrame{eid, /*is_ocall=*/false, id, table, *tcs});
  ts.next_aex_deadline = clock_.now() + cost_.timer_period_ns;

  // Entering trusted code touches the entry trampoline, the ecall's code
  // page, the TCS and the top of this TCS's stack.
  enclave.touch_page(enclave.code_base_page(), MemAccess::kExecute);
  const std::uint64_t fn_page =
      enclave.code_base_page() + 1 + id % std::max<std::size_t>(enclave.config().code_pages - 1, 1);
  enclave.touch_page(fn_page % enclave.total_pages(), MemAccess::kExecute);
  enclave.touch_page(enclave.tcs_page(*tcs), MemAccess::kRead);
  enclave.touch_page(enclave.stack_base_page(*tcs), MemAccess::kWrite);

  // TRTS trampoline: resolve the id to the actual ecall and dispatch.
  charge_in_enclave(ts, cost_.trts_dispatch_ns);

  SgxStatus ret = SgxStatus::kSuccess;
  {
    TrustedContext ctx(*this, enclave, ts);
    try {
      ret = (*fn)(ctx, ms);
    } catch (...) {
      ret = SgxStatus::kEnclaveCrashed;
    }
  }

  // EEXIT.
  clock_.advance(cost_.eexit_ns);
  ts.frames.pop_back();
  enclave.release_tcs(*tcs);
  sim_metrics().tcs_in_use.sub(1);
  return ret;
}

}  // namespace sgxsim
