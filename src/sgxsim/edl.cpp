#include "sgxsim/edl.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/strutil.hpp"

namespace sgxsim::edl {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kPunct,  // one of { } ( ) [ ] , ; = *
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    t.column = column_;
    if (pos_ >= src_.size()) {
      t.kind = TokKind::kEnd;
      return t;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = TokKind::kIdent;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        t.text.push_back(src_[pos_]);
        bump();
      }
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      t.kind = TokKind::kNumber;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        t.text.push_back(src_[pos_]);
        bump();
      }
      return t;
    }
    static constexpr std::string_view kPunct = "{}()[],;=*";
    if (kPunct.find(c) != std::string_view::npos) {
      t.kind = TokKind::kPunct;
      t.text.push_back(c);
      bump();
      return t;
    }
    throw_error(t, std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] static void throw_error(const Token& at, const std::string& msg) {
    ParseError e{msg, at.line, at.column};
    throw std::runtime_error(e.to_string());
  }

 private:
  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) bump();
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
        bump();
        bump();
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) bump();
        if (pos_ + 1 < src_.size()) {
          bump();
          bump();
        }
        continue;
      }
      return;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lexer_(src) { advance(); }

  InterfaceSpec parse_enclave() {
    expect_ident("enclave");
    expect_punct("{");
    InterfaceSpec spec;
    while (!is_punct("}")) {
      if (is_ident("trusted")) {
        advance();
        parse_trusted(spec);
      } else if (is_ident("untrusted")) {
        advance();
        parse_untrusted(spec);
      } else if (is_ident("from") || is_ident("include") || is_ident("import")) {
        // `from "x.edl" import *;` / `include "x.h"` — accepted and skipped.
        skip_statement();
      } else {
        fail("expected 'trusted' or 'untrusted' section");
      }
    }
    expect_punct("}");
    expect_punct(";");
    validate(spec);
    return spec;
  }

 private:
  void parse_trusted(InterfaceSpec& spec) {
    expect_punct("{");
    while (!is_punct("}")) {
      EcallDecl decl;
      if (is_ident("public")) {
        decl.is_public = true;
        advance();
      }
      decl.return_type = parse_type();
      decl.name = expect_any_ident("ecall name");
      decl.params = parse_params();
      // Trusted functions may also carry an allow() clause in real EDL
      // (ocalls allowed during the ecall); we accept and ignore it since the
      // runtime does not restrict ocalls.
      if (is_ident("allow")) {
        advance();
        skip_paren_group();
      }
      if (is_ident("transition_using_threads")) {
        decl.is_switchless = true;  // SDK 2.x switchless calls
        advance();
      }
      expect_punct(";");
      spec.ecalls.push_back(std::move(decl));
    }
    expect_punct("}");
    expect_punct(";");
  }

  void parse_untrusted(InterfaceSpec& spec) {
    expect_punct("{");
    while (!is_punct("}")) {
      OcallDecl decl;
      decl.return_type = parse_type();
      decl.name = expect_any_ident("ocall name");
      decl.params = parse_params();
      if (is_ident("allow")) {
        advance();
        expect_punct("(");
        while (!is_punct(")")) {
          decl.allowed_ecalls.push_back(expect_any_ident("allowed ecall name"));
          if (is_punct(",")) advance();
        }
        expect_punct(")");
      }
      if (is_ident("transition_using_threads")) advance();
      expect_punct(";");
      spec.ocalls.push_back(std::move(decl));
    }
    expect_punct("}");
    expect_punct(";");
  }

  /// Parses a (possibly multi-token) type like `const unsigned char *`.
  std::string parse_type() {
    std::vector<std::string> words;
    if (tok_.kind != TokKind::kIdent) fail("expected type");
    words.push_back(tok_.text);
    advance();
    // Multi-word types: const/unsigned/signed/struct always continue; long
    // and short only continue into a base type (so `long ocall_foo(...)`
    // keeps `ocall_foo` as the declaration name).
    while (tok_.kind == TokKind::kIdent) {
      const std::string& prev = words.back();
      const bool always = prev == "const" || prev == "unsigned" || prev == "signed" ||
                          prev == "struct";
      const bool sized = (prev == "long" || prev == "short") &&
                         (tok_.text == "int" || tok_.text == "long" || tok_.text == "double");
      if (!always && !sized) break;
      words.push_back(tok_.text);
      advance();
    }
    std::string type = support::join(words, " ");
    while (is_punct("*")) {
      type += "*";
      advance();
    }
    return type;
  }

  std::vector<Parameter> parse_params() {
    expect_punct("(");
    std::vector<Parameter> params;
    if (is_ident("void")) {
      // `(void)` — but only if immediately followed by ')'.
      Token save = tok_;
      advance();
      if (is_punct(")")) {
        advance();
        return params;
      }
      // It was a `void*` parameter; rewind is impossible, so handle inline.
      Parameter p;
      std::string type = save.text;
      while (is_punct("*")) {
        type += "*";
        advance();
      }
      p.type = type;
      finish_param(p);
      params.push_back(std::move(p));
      while (is_punct(",")) {
        advance();
        params.push_back(parse_param());
      }
      expect_punct(")");
      return params;
    }
    if (!is_punct(")")) {
      params.push_back(parse_param());
      while (is_punct(",")) {
        advance();
        params.push_back(parse_param());
      }
    }
    expect_punct(")");
    return params;
  }

  Parameter parse_param() {
    Parameter p;
    if (is_punct("[")) {
      advance();
      while (!is_punct("]")) {
        const std::string attr = expect_any_ident("attribute");
        if (attr == "in") {
          p.direction = p.direction == PointerDirection::kOut ? PointerDirection::kInOut
                                                              : PointerDirection::kIn;
        } else if (attr == "out") {
          p.direction = p.direction == PointerDirection::kIn ? PointerDirection::kInOut
                                                             : PointerDirection::kOut;
        } else if (attr == "user_check") {
          p.direction = PointerDirection::kUserCheck;
        } else if (attr == "size" || attr == "count") {
          expect_punct("=");
          if (tok_.kind != TokKind::kIdent && tok_.kind != TokKind::kNumber) {
            fail("expected size value");
          }
          p.size_expr = tok_.text;
          advance();
        } else if (attr == "string" || attr == "wstring" || attr == "isptr" ||
                   attr == "readonly" || attr == "sizefunc") {
          // Accepted SDK attributes that need no modelling here.
        } else {
          fail("unknown attribute '" + attr + "'");
        }
        if (is_punct(",")) advance();
      }
      expect_punct("]");
    }
    p.type = parse_type();
    finish_param(p);
    return p;
  }

  void finish_param(Parameter& p) {
    if (tok_.kind == TokKind::kIdent) {
      p.name = tok_.text;
      advance();
    }
    // A pointer without an explicit attribute behaves like user_check in the
    // SDK unless declared; flag it the same way so the analyser sees it.
    if (p.direction == PointerDirection::kNone && p.type.find('*') != std::string::npos) {
      p.direction = PointerDirection::kUserCheck;
    }
  }

  void validate(const InterfaceSpec& spec) {
    for (const auto& o : spec.ocalls) {
      for (const auto& allowed : o.allowed_ecalls) {
        if (!spec.ecall_id(allowed)) {
          fail("allow() references unknown ecall '" + allowed + "' in ocall '" + o.name + "'");
        }
      }
    }
  }

  void skip_statement() {
    while (tok_.kind != TokKind::kEnd && !is_punct(";")) advance();
    if (is_punct(";")) advance();
  }

  void skip_paren_group() {
    expect_punct("(");
    int depth = 1;
    while (depth > 0 && tok_.kind != TokKind::kEnd) {
      if (is_punct("(")) ++depth;
      if (is_punct(")")) --depth;
      advance();
    }
  }

  // --- token helpers -------------------------------------------------------
  void advance() { tok_ = lexer_.next(); }

  [[nodiscard]] bool is_ident(std::string_view s) const {
    return tok_.kind == TokKind::kIdent && tok_.text == s;
  }
  [[nodiscard]] bool is_punct(std::string_view s) const {
    return tok_.kind == TokKind::kPunct && tok_.text == s;
  }

  void expect_ident(std::string_view s) {
    if (!is_ident(s)) fail("expected '" + std::string(s) + "'");
    advance();
  }
  void expect_punct(std::string_view s) {
    if (!is_punct(s)) fail("expected '" + std::string(s) + "'");
    advance();
  }
  std::string expect_any_ident(const std::string& what) {
    if (tok_.kind != TokKind::kIdent) fail("expected " + what);
    std::string s = tok_.text;
    advance();
    return s;
  }

  [[noreturn]] void fail(const std::string& msg) const { Lexer::throw_error(tok_, msg); }

  Lexer lexer_;
  Token tok_;
};

}  // namespace

bool EcallDecl::has_user_check() const noexcept {
  for (const auto& p : params) {
    if (p.direction == PointerDirection::kUserCheck) return true;
  }
  return false;
}

bool OcallDecl::has_user_check() const noexcept {
  for (const auto& p : params) {
    if (p.direction == PointerDirection::kUserCheck) return true;
  }
  return false;
}

const char* to_string(PointerDirection d) noexcept {
  switch (d) {
    case PointerDirection::kNone: return "none";
    case PointerDirection::kIn: return "in";
    case PointerDirection::kOut: return "out";
    case PointerDirection::kInOut: return "inout";
    case PointerDirection::kUserCheck: return "user_check";
  }
  return "?";
}

std::optional<CallId> InterfaceSpec::ecall_id(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < ecalls.size(); ++i) {
    if (ecalls[i].name == name) return static_cast<CallId>(i);
  }
  return std::nullopt;
}

std::optional<CallId> InterfaceSpec::ocall_id(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < ocalls.size(); ++i) {
    if (ocalls[i].name == name) return static_cast<CallId>(i);
  }
  return std::nullopt;
}

bool InterfaceSpec::is_allowed(CallId ocall, CallId ecall) const {
  if (ocall >= ocalls.size() || ecall >= ecalls.size()) return false;
  const auto& ecall_name = ecalls[ecall].name;
  for (const auto& allowed : ocalls[ocall].allowed_ecalls) {
    if (allowed == ecall_name) return true;
  }
  return false;
}

std::string ParseError::to_string() const {
  return support::format("EDL parse error at %d:%d: %s", line, column, message.c_str());
}

InterfaceSpec parse(std::string_view text) {
  Parser p(text);
  return p.parse_enclave();
}

InterfaceSpec parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open EDL file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace sgxsim::edl
