#include "sgxsim/cost_model.hpp"

#include "sgxsim/types.hpp"

namespace sgxsim {

const char* to_string(PatchLevel lvl) noexcept {
  switch (lvl) {
    case PatchLevel::kUnpatched: return "unpatched";
    case PatchLevel::kSpectre: return "+Spectre";
    case PatchLevel::kSpectreL1tf: return "+Spectre+L1TF";
  }
  return "?";
}

const char* to_string(SgxStatus s) noexcept {
  switch (s) {
    case SgxStatus::kSuccess: return "SGX_SUCCESS";
    case SgxStatus::kInvalidParameter: return "SGX_ERROR_INVALID_PARAMETER";
    case SgxStatus::kOutOfMemory: return "SGX_ERROR_OUT_OF_MEMORY";
    case SgxStatus::kEnclaveLost: return "SGX_ERROR_ENCLAVE_LOST";
    case SgxStatus::kInvalidEnclaveId: return "SGX_ERROR_INVALID_ENCLAVE_ID";
    case SgxStatus::kOutOfTcs: return "SGX_ERROR_OUT_OF_TCS";
    case SgxStatus::kEcallNotAllowed: return "SGX_ERROR_ECALL_NOT_ALLOWED";
    case SgxStatus::kOcallNotAllowed: return "SGX_ERROR_OCALL_NOT_ALLOWED";
    case SgxStatus::kInvalidFunction: return "SGX_ERROR_INVALID_FUNCTION";
    case SgxStatus::kEnclaveCrashed: return "SGX_ERROR_ENCLAVE_CRASHED";
    case SgxStatus::kStackOverrun: return "SGX_ERROR_STACK_OVERRUN";
    case SgxStatus::kUnexpected: return "SGX_ERROR_UNEXPECTED";
  }
  return "SGX_ERROR_?";
}

CostModel CostModel::preset(PatchLevel lvl) noexcept {
  CostModel m;
  m.level = lvl;
  switch (lvl) {
    case PatchLevel::kUnpatched:
      // Round trip ~2,130 ns (~5,850 cycles @ ~2.75 GHz), §2.3.1 case (i).
      m.eenter_ns = 1280;
      m.eexit_ns = 850;
      break;
    case PatchLevel::kSpectre:
      // Round trip ~3,850 ns (~10,170 cycles), §2.3.1 case (ii).  The IBRS /
      // retpoline-style mitigations also make AEX round trips costlier.
      m.eenter_ns = 2312;
      m.eexit_ns = 1538;
      m.aex_ns = 5850;
      break;
    case PatchLevel::kSpectreL1tf:
      // Round trip ~4,890 ns (~13,100 cycles), §2.3.1 case (iii).  The L1TF
      // microcode flushes the L1D on every enclave exit.
      m.eenter_ns = 2936;
      m.eexit_ns = 1954;
      m.aex_ns = 6890;
      break;
  }
  return m;
}

}  // namespace sgxsim
