// The simulated SGX SDK runtime: URTS (untrusted) + TRTS (trusted).
//
// Call architecture mirrors Figure 1 of the paper:
//
//   app wrapper  ->  Urts::sgx_ecall(eid, id, ocall_table, ms)   [URTS]
//                     -> hook (sgx-perf shadows exactly here, Figure 2)
//                     -> real_sgx_ecall: TCS claim, EENTER
//                     -> trampoline dispatch -> registered EcallFn  [TRTS]
//   trusted code ->  TrustedContext::ocall(id, ms)                [TRTS]
//                     -> EEXIT -> ocall_table->entries[id](ms)     [URTS]
//                        (sgx-perf swaps this table, Figure 3)
//
// AEXs are injected from a timer-interrupt model while trusted code runs;
// the AEP is a hook the profiler may patch (§4.1.4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sgxsim/cost_model.hpp"
#include "sgxsim/driver.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/types.hpp"
#include "support/clock.hpp"

namespace sgxsim {

class Urts;
class TrustedContext;

/// Hardware-level reason for an AEX (exposed to software only on SGX v2).
enum class AexCause : std::uint8_t {
  kInterrupt = 1,  // timer or external interrupt
  kPageFault = 2,  // EPC fault during enclave execution
};

/// Interposition points a "preloaded" profiler library may install.  The
/// defaults route straight to the real implementations; sgx-perf replaces
/// them without touching application, enclave or SDK (§4).
struct UrtsHooks {
  /// Shadow of sgx_ecall.  When set, every application ecall lands here; the
  /// shadow chains to Urts::real_sgx_ecall (the dlsym(RTLD_NEXT) analogue).
  std::function<SgxStatus(EnclaveId, CallId, const OcallTable*, void*)> sgx_ecall;
  /// Patched AEP: invoked on every AEX, after the kernel handler, before
  /// ERESUME — (enclave, thread, timestamp, cause).  The cause argument is
  /// what the simulated hardware knows; whether a profiler may *use* it is
  /// governed by the SGX version and the enclave's debug flag (§4.1.4).
  std::function<void(EnclaveId, ThreadId, support::Nanoseconds, AexCause)> aep;
  /// Enclave lifecycle notifications (the real tool hooks
  /// sgx_create_enclave / sgx_destroy_enclave the same way).
  std::function<void(const Enclave&)> enclave_created;
  std::function<void(EnclaveId, support::Nanoseconds)> enclave_destroyed;
};

/// Marshalling struct of the four builtin synchronisation ocalls; the layout
/// is SDK-public knowledge, which is how the profiler can interpret it.
struct SyncOcallMs {
  Urts* urts = nullptr;
  ThreadId self = 0;                          // calling thread
  ThreadId target = 0;                        // thread to wake (set-event)
  const std::vector<ThreadId>* targets = nullptr;  // set-multiple-events
};

/// Builds a per-enclave ocall table from application entries, appending the
/// four SDK synchronisation ocalls the way importing sgx_tstdc.edl does.
[[nodiscard]] OcallTable make_ocall_table(std::vector<OcallFn> app_entries);

/// One simulated machine: clock, cost model, EPC driver, enclaves, threads.
class Urts {
 public:
  explicit Urts(CostModel cost = CostModel::preset(PatchLevel::kUnpatched),
                std::size_t epc_pages = Driver::kDefaultEpcPages);
  ~Urts();

  Urts(const Urts&) = delete;
  Urts& operator=(const Urts&) = delete;

  // --- machine services -----------------------------------------------------
  [[nodiscard]] support::VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] Driver& driver() noexcept { return driver_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
  /// Re-calibrates transition costs (simulates applying microcode updates).
  void set_patch_level(PatchLevel lvl) noexcept;

  /// Enables switchless calls for `enclave`: `workers` in-enclave worker
  /// threads poll a shared request queue, so ecalls the EDL marks
  /// `transition_using_threads` are served without EENTER/EEXIT (the
  /// asynchronous-call technique of SCONE/HotCalls, §2.3/§6).  Pass 0 to
  /// disable again; marked calls then fall back to normal transitions, like
  /// the SDK does when no worker is free.
  void set_switchless_workers(EnclaveId enclave, std::size_t workers);
  [[nodiscard]] std::size_t switchless_workers(EnclaveId enclave) const;

  /// Worker-pool economics of switchless calls for `enclave`.  Workers
  /// busy-wait on the request queue whenever they are not serving, so the
  /// latency win of avoided transitions is paid for in wasted worker cycles
  /// — exactly the trade-off a what-if worker sweep must expose.
  struct SwitchlessStats {
    std::size_t workers = 0;        // currently configured pool size
    std::uint64_t calls = 0;        // requests served by a worker
    std::uint64_t fallbacks = 0;    // all workers busy: full transition taken
    std::uint64_t busy_ns = 0;      // worker time spent serving requests
    std::uint64_t wasted_worker_ns = 0;  // worker time spent spinning idle
  };
  [[nodiscard]] SwitchlessStats switchless_stats(EnclaveId enclave) const;

  /// SGX capability level of the machine: version 2 records the AEX exit
  /// type so a profiler can read it for debug enclaves (§4.1.4 — "SGX v2
  /// will enable this").  Default is version 1, like the paper's testbed.
  void set_sgx_version(int version) noexcept { sgx_version_ = version; }
  [[nodiscard]] int sgx_version() const noexcept { return sgx_version_; }

  // --- enclave lifecycle ------------------------------------------------------
  /// Creates an enclave; throws std::invalid_argument on bad config.
  EnclaveId create_enclave(EnclaveConfig config, edl::InterfaceSpec interface);
  SgxStatus destroy_enclave(EnclaveId id);
  /// Throws std::out_of_range for unknown ids.
  [[nodiscard]] Enclave& enclave(EnclaveId id);
  [[nodiscard]] const Enclave* find_enclave(EnclaveId id) const;
  /// Ids of all live enclaves, ascending — lets monitors aggregate
  /// per-enclave counters (e.g. switchless_stats) without tracking creation.
  [[nodiscard]] std::vector<EnclaveId> enclave_ids() const;

  // --- the generic ecall entry point (Figure 1/2) -----------------------------
  /// Public entry used by application wrappers; dispatches through the hook.
  SgxStatus sgx_ecall(EnclaveId eid, CallId id, const OcallTable* table, void* ms);
  /// The URTS implementation a shadow chains to.
  SgxStatus real_sgx_ecall(EnclaveId eid, CallId id, const OcallTable* table, void* ms);

  [[nodiscard]] UrtsHooks& hooks() noexcept { return hooks_; }

  // --- threads ------------------------------------------------------------------
  /// Stable id of the calling OS thread (registered on first use, like the
  /// profiler's shadowed pthread_create registers threads).
  ThreadId current_thread_id();

  /// Dense registration-ordered slot of the calling thread (0, 1, 2, ...).
  /// Unlike ThreadId it always starts at 0, which makes it usable as a
  /// direct index into per-thread arrays such as the logger's trace shards.
  std::size_t current_thread_slot();

  /// Number of threads registered with this Urts so far.
  [[nodiscard]] std::size_t thread_count() const;

  /// Futex-style parking used by the builtin sync ocalls.
  void park_current_thread();
  void unpark(ThreadId thread);

 private:
  friend class TrustedContext;

  struct CallFrame {
    EnclaveId eid = 0;
    bool is_ocall = false;
    CallId call_id = 0;
    const OcallTable* table = nullptr;  // table passed at the enclosing sgx_ecall
    std::size_t tcs_index = 0;          // valid for ecall frames
  };

  struct ThreadState {
    ThreadId id = 0;
    std::size_t slot = 0;  // dense registration index (see current_thread_slot)
    std::vector<CallFrame> frames;
    /// Absolute virtual time of the next simulated timer interrupt.
    support::Nanoseconds next_aex_deadline = 0;
  };

  struct Parker {
    std::mutex m;
    std::condition_variable cv;
    unsigned permits = 0;
  };

  ThreadState& thread_state();
  Parker& parker_for(ThreadId id);

  /// Advances virtual time attributable to trusted execution, injecting AEXs
  /// whenever a timer deadline is crossed (§4.1.4).
  void charge_in_enclave(ThreadState& ts, support::Nanoseconds ns);
  void deliver_aex(ThreadState& ts);

  /// Innermost ecall frame of `ts`, or nullptr when not inside an enclave.
  [[nodiscard]] CallFrame* innermost_ecall(ThreadState& ts);
  /// Innermost *ocall* frame for `eid`, or nullptr (private-ecall check).
  [[nodiscard]] CallFrame* innermost_ocall(ThreadState& ts, EnclaveId eid);

  support::VirtualClock clock_;
  CostModel cost_;
  Driver driver_;
  UrtsHooks hooks_;

  /// Per-enclave switchless worker pool.  Heap-allocated and never erased
  /// (only reconfigured), so the fast path can use the pointer lock-free
  /// after one map lookup.
  struct SwitchlessState {
    std::size_t workers = 0;
    /// Virtual time when the current pool was configured, and the busy_ns
    /// baseline at that moment — the live window's idle time is
    /// workers x (now - enabled_at) - (busy_ns - busy_at_enable).
    support::Nanoseconds enabled_at = 0;
    std::uint64_t busy_at_enable = 0;
    /// Idle worker time accumulated over previous configurations.
    std::uint64_t retired_wasted_ns = 0;
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> fallbacks{0};
  };
  [[nodiscard]] SwitchlessState* switchless_state(EnclaveId enclave) const;
  /// Idle worker time of the live window (caller holds enclaves_mu_).
  [[nodiscard]] std::uint64_t switchless_window_wasted(const SwitchlessState& state) const;

  mutable std::mutex enclaves_mu_;
  std::map<EnclaveId, std::unique_ptr<Enclave>> enclaves_;
  std::map<EnclaveId, std::unique_ptr<SwitchlessState>> switchless_;
  EnclaveId next_enclave_id_ = 1;

  mutable std::mutex threads_mu_;
  std::map<ThreadId, std::unique_ptr<ThreadState>> threads_;
  std::map<ThreadId, std::unique_ptr<Parker>> parkers_;
  ThreadId next_thread_id_ = 1;
  /// Unique per Urts instance: guards the thread-local ThreadState cache
  /// against a destroyed Urts being reallocated at the same address.
  std::uint64_t instance_token_ = 0;
  int sgx_version_ = 1;
};

/// Execution context handed to trusted functions (the TRTS service surface:
/// ocalls, trusted heap, simulated computation, synchronisation).
class TrustedContext {
 public:
  TrustedContext(Urts& urts, Enclave& enclave, Urts::ThreadState& ts) noexcept
      : urts_(urts), enclave_(enclave), ts_(ts) {}

  TrustedContext(const TrustedContext&) = delete;
  TrustedContext& operator=(const TrustedContext&) = delete;

  // --- ocalls ----------------------------------------------------------------
  /// Issues ocall `id` through the ocall table of the enclosing sgx_ecall.
  SgxStatus ocall(CallId id, void* ms);

  // --- simulated computation ----------------------------------------------------
  /// Accounts `ns` of in-enclave computation (AEXs may be injected).
  void work(support::Nanoseconds ns);
  /// Accounts the marshalling copy of `bytes` into / out of the enclave.
  void copy_in(std::uint64_t bytes);
  void copy_out(std::uint64_t bytes);

  // --- trusted heap ---------------------------------------------------------------
  [[nodiscard]] EnclaveAddr malloc(std::uint64_t bytes) { return enclave_.heap_alloc(bytes); }
  void free(EnclaveAddr addr) { enclave_.heap_free(addr); }
  /// Simulates touching enclave memory (drives paging and the working set).
  void touch(EnclaveAddr addr, std::uint64_t len, MemAccess access);

  // --- SDK synchronisation primitives (§2.3.2) --------------------------------------
  SgxStatus mutex_lock(MutexId id);
  SgxStatus mutex_unlock(MutexId id);
  SgxStatus cond_wait(CondId cond, MutexId mutex);
  SgxStatus cond_signal(CondId cond);
  SgxStatus cond_broadcast(CondId cond);

  // --- introspection -------------------------------------------------------------------
  [[nodiscard]] Enclave& enclave() noexcept { return enclave_; }
  [[nodiscard]] Urts& urts() noexcept { return urts_; }
  [[nodiscard]] ThreadId thread_id() const noexcept { return ts_.id; }
  [[nodiscard]] const CostModel& cost() const noexcept { return urts_.cost(); }

 private:
  /// The sync ocalls go through the regular ocall path so that the profiler
  /// sees them in the rewritten table (§4.1.3).
  SgxStatus sync_ocall(SyncOcall which, ThreadId target,
                       const std::vector<ThreadId>* targets = nullptr);

  Urts& urts_;
  Enclave& enclave_;
  Urts::ThreadState& ts_;
};

}  // namespace sgxsim
