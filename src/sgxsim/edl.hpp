// Enclave Description Language (EDL) model and parser.
//
// The Intel SGX SDK describes the enclave interface in an .edl file that
// sgx_edger8r turns into wrapper code.  We parse the same core syntax into an
// InterfaceSpec used twice: by the runtime, to enforce public/private ecalls
// and allow() lists; and by the sgx-perf analyser, for the interface-security
// hints of §3.6 / §4.3.2 (private-ecall candidates, minimal allow() sets,
// user_check pointer highlighting).
//
// Supported grammar (a faithful subset of the SDK's):
//
//   enclave {
//     trusted {
//       public int ecall_foo([in, size=len] const char* buf, size_t len);
//       void ecall_priv(void);
//     };
//     untrusted {
//       void ocall_bar([user_check] void* p) allow (ecall_priv, ecall_foo);
//     };
//   };
//
// Call ids are assigned by declaration order, exactly like edger8r.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sgxsim/types.hpp"

namespace sgxsim::edl {

/// Pointer-marshalling behaviour of a parameter (§3.6).
enum class PointerDirection : std::uint8_t {
  kNone,       // not a pointer / no attribute
  kIn,         // copied into the callee's side before the call
  kOut,        // copied back after the call
  kInOut,      // both
  kUserCheck,  // raw pointer, developer-checked — a security smell
};

[[nodiscard]] const char* to_string(PointerDirection d) noexcept;

struct Parameter {
  std::string type;   // e.g. "const char*"
  std::string name;   // e.g. "buf"
  PointerDirection direction = PointerDirection::kNone;
  /// size= attribute: either a literal byte count or the name of another
  /// parameter that carries the size.
  std::optional<std::string> size_expr;
};

struct EcallDecl {
  std::string name;
  std::string return_type;
  bool is_public = false;
  /// SDK 2.x `transition_using_threads`: the call is eligible for switchless
  /// execution (served by an in-enclave worker, no EENTER/EEXIT).
  bool is_switchless = false;
  std::vector<Parameter> params;

  [[nodiscard]] bool has_user_check() const noexcept;
};

struct OcallDecl {
  std::string name;
  std::string return_type;
  std::vector<Parameter> params;
  /// Names of ecalls permitted while this ocall is in flight (allow clause).
  std::vector<std::string> allowed_ecalls;

  [[nodiscard]] bool has_user_check() const noexcept;
};

/// A parsed enclave interface.  Ecall/ocall ids equal declaration order.
struct InterfaceSpec {
  std::vector<EcallDecl> ecalls;
  std::vector<OcallDecl> ocalls;

  [[nodiscard]] std::optional<CallId> ecall_id(std::string_view name) const noexcept;
  [[nodiscard]] std::optional<CallId> ocall_id(std::string_view name) const noexcept;
  /// True if `ecall` may run while `ocall` is in flight.
  [[nodiscard]] bool is_allowed(CallId ocall, CallId ecall) const;
};

/// Parse error with 1-based line/column of the offending token.
struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Parses EDL text.  Throws std::runtime_error carrying ParseError::to_string()
/// on malformed input.
[[nodiscard]] InterfaceSpec parse(std::string_view text);

/// Parses the file at `path`.
[[nodiscard]] InterfaceSpec parse_file(const std::string& path);

}  // namespace sgxsim::edl
