#include "sgxsim/heap.hpp"

#include <stdexcept>

namespace sgxsim {

FreeListAllocator::FreeListAllocator(std::uint64_t capacity) : capacity_(capacity) {
  if (capacity > 0) free_.emplace(0, capacity);
}

HeapOffset FreeListAllocator::allocate(std::uint64_t size) {
  if (size == 0) size = 1;
  // Round to alignment to keep all block offsets aligned.
  size = (size + kAlignment - 1) / kAlignment * kAlignment;

  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < size) continue;
    const HeapOffset offset = it->first;
    const std::uint64_t block_size = it->second;
    free_.erase(it);
    if (block_size > size) {
      free_.emplace(offset + size, block_size - size);
    }
    allocated_.emplace(offset, size);
    used_ += size;
    return offset;
  }
  return kFailed;
}

void FreeListAllocator::deallocate(HeapOffset offset) {
  const auto it = allocated_.find(offset);
  if (it == allocated_.end()) {
    throw std::logic_error("FreeListAllocator: deallocate of unknown offset");
  }
  std::uint64_t size = it->second;
  allocated_.erase(it);
  used_ -= size;

  // Coalesce with the following free block.
  auto next = free_.lower_bound(offset);
  if (next != free_.end() && offset + size == next->first) {
    size += next->second;
    next = free_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_.emplace(offset, size);
}

std::uint64_t FreeListAllocator::largest_free_block() const noexcept {
  std::uint64_t best = 0;
  for (const auto& [offset, size] : free_) {
    if (size > best) best = size;
  }
  return best;
}

}  // namespace sgxsim
