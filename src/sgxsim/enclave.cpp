#include "sgxsim/enclave.hpp"

#include <bit>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "support/strutil.hpp"

namespace sgxsim {

const char* to_string(PageType t) noexcept {
  switch (t) {
    case PageType::kSecs: return "secs";
    case PageType::kCode: return "code";
    case PageType::kHeap: return "heap";
    case PageType::kGuard: return "guard";
    case PageType::kStack: return "stack";
    case PageType::kTcs: return "tcs";
    case PageType::kSsa: return "ssa";
    case PageType::kPadding: return "padding";
  }
  return "?";
}

std::uint8_t Enclave::natural_permissions(PageType t) noexcept {
  constexpr auto r = static_cast<std::uint8_t>(MemAccess::kRead);
  constexpr auto w = static_cast<std::uint8_t>(MemAccess::kWrite);
  constexpr auto x = static_cast<std::uint8_t>(MemAccess::kExecute);
  switch (t) {
    case PageType::kCode: return r | x;
    case PageType::kGuard: return 0;
    case PageType::kSecs:
    case PageType::kTcs:
    case PageType::kSsa:
    case PageType::kHeap:
    case PageType::kStack: return r | w;
    case PageType::kPadding: return r;
  }
  return 0;
}

Enclave::Enclave(EnclaveId id, EnclaveConfig config, edl::InterfaceSpec interface,
                 support::VirtualClock& clock, Driver& driver)
    : id_(id),
      config_(std::move(config)),
      interface_(std::move(interface)),
      clock_(clock),
      driver_(driver),
      heap_(config_.heap_pages * kPageSize) {
  if (config_.tcs_count == 0) throw std::invalid_argument("enclave needs at least one TCS");
  if (config_.code_pages == 0) throw std::invalid_argument("enclave needs code pages");
  build_layout();
  compute_measurement();
  ecall_impls_.resize(interface_.ecalls.size());
  tcs_busy_.assign(config_.tcs_count, false);

  // EADD every page: creation cost scales with enclave size, which is why
  // Gjerdrum et al. worry about start-up times of big enclaves (§6).
  for (std::uint64_t p = 0; p < page_types_.size(); ++p) driver_.add_page(id_, p);
}

void Enclave::build_layout() {
  page_types_.clear();
  page_types_.push_back(PageType::kSecs);
  for (std::size_t i = 0; i < config_.code_pages; ++i) page_types_.push_back(PageType::kCode);
  heap_base_page_ = page_types_.size();
  for (std::size_t i = 0; i < config_.heap_pages; ++i) page_types_.push_back(PageType::kHeap);
  for (std::size_t t = 0; t < config_.tcs_count; ++t) {
    page_types_.push_back(PageType::kGuard);
    stack_base_pages_.push_back(page_types_.size());
    for (std::size_t i = 0; i < config_.stack_pages; ++i)
      page_types_.push_back(PageType::kStack);
    page_types_.push_back(PageType::kGuard);
    tcs_pages_.push_back(page_types_.size());
    page_types_.push_back(PageType::kTcs);
    page_types_.push_back(PageType::kSsa);
    page_types_.push_back(PageType::kSsa);
  }
  // Pad to the next power of two (§4.2: padding pages are "contained in the
  // enclave measurement and the enclave size needs to be a power of two").
  const std::uint64_t target = std::bit_ceil(page_types_.size());
  while (page_types_.size() < target) page_types_.push_back(PageType::kPadding);

  mmu_perms_.resize(page_types_.size());
  for (std::size_t p = 0; p < page_types_.size(); ++p) {
    mmu_perms_[p] = natural_permissions(page_types_[p]);
  }
}

void Enclave::compute_measurement() {
  crypto::Sha256 h;
  h.update(config_.name);
  const std::uint64_t sizes[4] = {config_.code_pages, config_.heap_pages, config_.stack_pages,
                                  config_.tcs_count};
  h.update(sizes, sizeof(sizes));
  for (const auto& e : interface_.ecalls) {
    h.update(e.name);
    h.update(e.is_public ? "pub" : "priv");
  }
  for (const auto& o : interface_.ocalls) h.update(o.name);
  measurement_ = crypto::to_hex(h.finish());
}

void Enclave::register_ecall(const std::string& name, EcallFn fn) {
  const auto id = interface_.ecall_id(name);
  if (!id) {
    throw std::invalid_argument("register_ecall: '" + name + "' is not in the enclave EDL");
  }
  ecall_impls_.at(*id) = std::move(fn);
}

const EcallFn* Enclave::ecall_fn(CallId id) const noexcept {
  if (id >= ecall_impls_.size() || !ecall_impls_[id]) return nullptr;
  return &ecall_impls_[id];
}

bool Enclave::ecall_public(CallId id) const { return interface_.ecalls.at(id).is_public; }

std::optional<std::size_t> Enclave::acquire_tcs() {
  std::lock_guard lock(tcs_mu_);
  for (std::size_t i = 0; i < tcs_busy_.size(); ++i) {
    if (!tcs_busy_[i]) {
      tcs_busy_[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

void Enclave::release_tcs(std::size_t index) {
  std::lock_guard lock(tcs_mu_);
  tcs_busy_.at(index) = false;
}

bool Enclave::touch_page(std::uint64_t page, MemAccess access) {
  if (page >= page_types_.size()) {
    throw std::out_of_range(support::format("enclave %llu: page %llu out of range",
                                            static_cast<unsigned long long>(id_),
                                            static_cast<unsigned long long>(page)));
  }
  // 1. MMU permissions are checked first (§4.2): a stripped page faults to
  //    the working-set estimator's handler even though the EPCM would allow
  //    the access.
  MmuFaultHandler handler;
  {
    std::lock_guard lock(mmu_mu_);
    if ((mmu_perms_[page] & static_cast<std::uint8_t>(access)) == 0) {
      handler = mmu_fault_handler_;
    }
  }
  if (handler) handler(id_, page, access);

  // 2. EPC residency (the SGX side): fault the page in if it was evicted.
  return driver_.ensure_resident(id_, page);
}

bool Enclave::touch_range(EnclaveAddr addr, std::uint64_t len, MemAccess access) {
  if (len == 0) return false;
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  bool faulted = false;
  for (std::uint64_t p = first; p <= last; ++p) faulted |= touch_page(p, access);
  return faulted;
}

EnclaveAddr Enclave::heap_alloc(std::uint64_t bytes) {
  HeapOffset off;
  {
    std::lock_guard lock(heap_mu_);
    off = heap_.allocate(bytes);
  }
  if (off == FreeListAllocator::kFailed) return 0;
  const EnclaveAddr addr = heap_base_page_ * kPageSize + off;
  touch_range(addr, bytes, MemAccess::kWrite);  // trusted malloc zeroes memory
  return addr;
}

void Enclave::heap_free(EnclaveAddr addr) {
  std::lock_guard lock(heap_mu_);
  heap_.deallocate(addr - heap_base_page_ * kPageSize);
}

std::uint64_t Enclave::heap_used() const {
  std::lock_guard lock(heap_mu_);
  return heap_.used();
}

void Enclave::strip_mmu_permissions() {
  std::lock_guard lock(mmu_mu_);
  for (auto& p : mmu_perms_) p = 0;
}

void Enclave::restore_mmu_permission(std::uint64_t page) {
  std::lock_guard lock(mmu_mu_);
  mmu_perms_.at(page) = natural_permissions(page_types_.at(page));
}

void Enclave::restore_mmu_permissions() {
  std::lock_guard lock(mmu_mu_);
  for (std::size_t p = 0; p < mmu_perms_.size(); ++p) {
    mmu_perms_[p] = natural_permissions(page_types_[p]);
  }
}

void Enclave::set_mmu_fault_handler(MmuFaultHandler handler) {
  std::lock_guard lock(mmu_mu_);
  mmu_fault_handler_ = std::move(handler);
}

MutexId Enclave::create_mutex(MutexKind kind, std::uint32_t spin_limit) {
  std::lock_guard lock(sync_mu_);
  MutexState m;
  m.kind = kind;
  m.spin_limit = spin_limit;
  mutexes_.push_back(std::move(m));
  return static_cast<MutexId>(mutexes_.size() - 1);
}

CondId Enclave::create_cond() {
  std::lock_guard lock(sync_mu_);
  conds_.emplace_back();
  return static_cast<CondId>(conds_.size() - 1);
}

}  // namespace sgxsim
