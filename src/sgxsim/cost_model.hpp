// Calibrated virtual-time cost model of the simulated SGX machine.
//
// Absolute values are calibrated against the paper's measurements on a Xeon
// E3-1230 v5 (§2.3.1 and Table 2); everything the analyser *concludes* from
// the resulting traces is emergent.  All values are virtual nanoseconds.
#pragma once

#include <cstdint>

#include "support/clock.hpp"

namespace sgxsim {

/// Microcode / SDK patch level of the simulated machine (§2.3.1): enclave
/// transitions become more expensive with each mitigation.
enum class PatchLevel {
  kUnpatched,      // pristine SGX machine          (~5,850 cycles / 2,130 ns round trip)
  kSpectre,        // +Spectre SDK+microcode fixes  (~10,170 cycles / 3,850 ns)
  kSpectreL1tf,    // +Foreshadow/L1TF microcode    (~13,100 cycles / 4,890 ns)
};

[[nodiscard]] const char* to_string(PatchLevel lvl) noexcept;

struct CostModel {
  /// The patch level the transition costs below were calibrated for; kept
  /// here so telemetry can attribute transitions per level.
  PatchLevel level = PatchLevel::kUnpatched;

  // --- raw transition instructions -------------------------------------
  support::Nanoseconds eenter_ns = 1280;  // EENTER / ERESUME
  support::Nanoseconds eexit_ns = 850;    // EEXIT

  // --- SDK runtime overheads (patch-independent) -----------------------
  support::Nanoseconds urts_ecall_overhead_ns = 1300;  // TCS search, frame setup
  support::Nanoseconds trts_dispatch_ns = 775;         // trampoline -> ecall fn
  support::Nanoseconds trts_ocall_overhead_ns = 778;   // ocall frame + marshal setup
  support::Nanoseconds urts_ocall_dispatch_ns = 900;   // table lookup + call

  /// Marshalling copy cost for [in]/[out] pointer data, per byte.
  double copy_ns_per_byte = 0.05;

  // --- asynchronous exits ----------------------------------------------
  /// Interval of the timer interrupt that forces AEXs on a busy enclave
  /// (Linux ~250 Hz tick; calibrated so a 45.4 ms ecall sees ~11.5 AEXs as
  /// in Table 2 experiment 3).
  support::Nanoseconds timer_period_ns = 3'943'000;
  /// Cost of one AEX round trip: state save, EEXIT, interrupt handler,
  /// AEP jump, ERESUME.
  support::Nanoseconds aex_ns = 4130;

  // --- paging ------------------------------------------------------------
  /// EWB-like eviction of one page: re-encryption + version tracking.
  support::Nanoseconds page_out_ns = 11'300;
  /// ELDU-like reload of one page: decryption + integrity check.
  support::Nanoseconds page_in_ns = 11'300;
  /// Kernel fault-handling overhead per EPC fault (excl. the AEX itself).
  support::Nanoseconds page_fault_ns = 1'500;
  /// EADD+EEXTEND cost per page at enclave build time.
  support::Nanoseconds eadd_ns = 1'000;

  // --- sgx-perf logger instrumentation costs (Table 2 calibration) -------
  // In virtual time the logger's real CPU work is invisible, so the logger
  // *charges* these to the clock, split across entry/exit records.
  support::Nanoseconds logger_ecall_pre_ns = 683;
  support::Nanoseconds logger_ecall_post_ns = 683;
  support::Nanoseconds logger_ocall_pre_ns = 660;
  support::Nanoseconds logger_ocall_post_ns = 660;
  support::Nanoseconds logger_aex_count_ns = 1'076;
  support::Nanoseconds logger_aex_trace_ns = 1'118;

  // --- switchless calls (SDK 2.x / HotCalls-style) ---------------------------
  /// Cost of handing a request to an in-enclave worker over a shared queue
  /// and collecting the result — no EENTER/EEXIT.  HotCalls (Weisse et al.,
  /// cited in §2.3.1/§6) report ~620 cycles vs ~8,600-14,000 for an ecall.
  support::Nanoseconds switchless_call_ns = 620;

  // --- synchronisation -----------------------------------------------------
  /// One iteration of an in-enclave spin loop (hybrid mutex, §3.4).
  support::Nanoseconds spin_iteration_ns = 30;
  /// Untrusted futex-style sleep/wake bookkeeping (outside the enclave).
  support::Nanoseconds parker_ns = 500;

  /// Round-trip transition time as the paper measures it in §2.3.1
  /// (EENTER..EEXIT, excluding URTS/TRTS overhead).
  [[nodiscard]] support::Nanoseconds transition_round_trip_ns() const noexcept {
    return eenter_ns + eexit_ns;
  }

  /// Full SDK ecall round trip (what an application observes).
  [[nodiscard]] support::Nanoseconds full_ecall_ns() const noexcept {
    return urts_ecall_overhead_ns + eenter_ns + trts_dispatch_ns + eexit_ns;
  }

  /// Extra cost of one (empty) ocall issued from inside an ecall.
  [[nodiscard]] support::Nanoseconds full_ocall_ns() const noexcept {
    return trts_ocall_overhead_ns + eexit_ns + urts_ocall_dispatch_ns + eenter_ns;
  }

  /// Preset for a given patch level; only the raw transition costs change.
  [[nodiscard]] static CostModel preset(PatchLevel lvl) noexcept;
};

}  // namespace sgxsim
