// Common identifiers, status codes and the ocall-table ABI of the simulated
// SGX SDK runtime.
//
// The shapes mirror the Intel SGX SDK deliberately: one generic
// `sgx_ecall(eid, index, ocall_table, marshalling_struct)` entry point, and a
// per-enclave table of plain function pointers for ocalls.  sgx-perf's two
// interposition tricks (shadowing `sgx_ecall`, rewriting the ocall table)
// depend on exactly this ABI.
#pragma once

#include <cstdint>
#include <vector>

namespace sgxsim {

using EnclaveId = std::uint64_t;
using ThreadId = std::uint32_t;
using CallId = std::uint32_t;

inline constexpr std::size_t kPageSize = 4096;

/// Status codes, a subset of the SDK's sgx_status_t.
enum class SgxStatus : std::uint32_t {
  kSuccess = 0x0000,
  kInvalidParameter = 0x0002,
  kOutOfMemory = 0x0003,          // enclave heap exhausted
  kEnclaveLost = 0x0004,
  kInvalidEnclaveId = 0x2002,
  kOutOfTcs = 0x1003,             // all TCS busy: too many concurrent ecalls
  kEcallNotAllowed = 0x1001,      // private ecall outside an ocall, or not in allow()
  kOcallNotAllowed = 0x1002,      // ocall index out of table bounds
  kInvalidFunction = 0x1004,      // unknown ecall/ocall index
  kEnclaveCrashed = 0x1006,
  kStackOverrun = 0x1009,
  kUnexpected = 0x0001,
};

[[nodiscard]] const char* to_string(SgxStatus s) noexcept;

/// An untrusted ocall implementation: takes the marshalling struct, returns a
/// status.  Application state travels inside the marshalling struct, exactly
/// like edger8r-generated code routes it through `ms` pointers.
using OcallFn = SgxStatus (*)(void* ms);

/// The per-enclave ocall table handed to sgx_ecall (§4.1.2 / Figure 3).
///
/// `entries[i]` implements ocall id `i`.  The last four slots are the SDK's
/// in-enclave synchronisation ocalls (sleep / wake-one / wake-multiple /
/// wake-one-and-sleep), appended by the interface builder the way importing
/// sgx_tstdc.edl appends them in real edger8r output; `sync_base` is the
/// index of the first one.
struct OcallTable {
  std::vector<OcallFn> entries;
  CallId sync_base = 0;

  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
};

/// Offsets of the four synchronisation ocalls relative to sync_base,
/// mirroring the SDK's sgx_thread_* untrusted events (§4.1.3).
enum class SyncOcall : CallId {
  kWaitEvent = 0,       // sleep until woken
  kSetEvent = 1,        // wake one thread
  kSetMultipleEvents = 2,
  kSetWaitEvent = 3,    // wake one and sleep
};

inline constexpr std::size_t kNumSyncOcalls = 4;

}  // namespace sgxsim
