#include "sgxsim/driver.hpp"

#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace sgxsim {

namespace {

/// Registry handles resolved once per process; the paging paths pay only
/// relaxed atomic adds after that.
struct DriverMetrics {
  telemetry::Gauge& epc_resident = telemetry::metrics().gauge("sgxsim.epc_resident", "pages");
  telemetry::Counter& epc_evictions =
      telemetry::metrics().counter("sgxsim.epc_evictions", "pages");
  telemetry::Counter& page_ins = telemetry::metrics().counter("sgxsim.page_ins", "pages");
  telemetry::Counter& page_faults = telemetry::metrics().counter("sgxsim.page_faults", "faults");
  /// Virtual ns spent (charged) encrypting/decrypting pages on the EWB/ELDU
  /// paths — the dominant paging cost (§2.3.3).
  telemetry::Counter& page_crypto_ns =
      telemetry::metrics().counter("sgxsim.page_crypto_ns", "ns");
};

DriverMetrics& driver_metrics() {
  static DriverMetrics m;
  return m;
}

}  // namespace

Driver::Driver(support::VirtualClock& clock, const CostModel& cost, std::size_t epc_pages)
    : clock_(clock), cost_(cost), epc_pages_(epc_pages) {
  if (epc_pages == 0) throw std::invalid_argument("Driver: EPC must have at least one page");
}

Driver::~Driver() {
  std::lock_guard lock(mu_);
  if (!resident_.empty()) {
    driver_metrics().epc_resident.sub(static_cast<std::int64_t>(resident_.size()));
  }
}

void Driver::set_trace_hooks(PageHook hook) {
  std::lock_guard lock(mu_);
  hook_ = std::move(hook);
}

void Driver::clear_trace_hooks() {
  std::lock_guard lock(mu_);
  hook_ = nullptr;
}

void Driver::lru_touch(const PageKey& key) {
  const auto it = resident_.find(key);
  lru_.splice(lru_.begin(), lru_, it->second);
}

void Driver::evict_one() {
  const PageKey victim = lru_.back();
  lru_.pop_back();
  resident_.erase(victim);
  ++page_outs_;
  auto& m = driver_metrics();
  m.epc_evictions.add();
  m.epc_resident.sub(1);
  m.page_crypto_ns.add(cost_.page_out_ns);
  const auto now = clock_.advance(cost_.page_out_ns);
  if (hook_) hook_(victim.enclave, victim.page, PageDirection::kOut, now);
}

void Driver::add_page(EnclaveId enclave, std::uint64_t page) {
  std::lock_guard lock(mu_);
  const PageKey key{enclave, page};
  if (resident_.contains(key)) return;
  clock_.advance(cost_.eadd_ns);
  if (resident_.size() >= epc_pages_) evict_one();
  lru_.push_front(key);
  resident_.emplace(key, lru_.begin());
  driver_metrics().epc_resident.add(1);
}

void Driver::remove_enclave(EnclaveId enclave) {
  std::lock_guard lock(mu_);
  std::int64_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->enclave == enclave) {
      resident_.erase(*it);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) driver_metrics().epc_resident.sub(removed);
}

bool Driver::ensure_resident(EnclaveId enclave, std::uint64_t page) {
  std::lock_guard lock(mu_);
  const PageKey key{enclave, page};
  if (resident_.contains(key)) {
    lru_touch(key);
    return false;
  }
  // EPC fault: kernel handling + eviction (if full) + page-in.
  auto& m = driver_metrics();
  m.page_faults.add();
  clock_.advance(cost_.page_fault_ns);
  if (resident_.size() >= epc_pages_) evict_one();
  ++page_ins_;
  m.page_ins.add();
  m.page_crypto_ns.add(cost_.page_in_ns);
  const auto now = clock_.advance(cost_.page_in_ns);
  lru_.push_front(key);
  resident_.emplace(key, lru_.begin());
  m.epc_resident.add(1);
  if (hook_) hook_(enclave, page, PageDirection::kIn, now);
  return true;
}

bool Driver::is_resident(EnclaveId enclave, std::uint64_t page) const {
  std::lock_guard lock(mu_);
  return resident_.contains(PageKey{enclave, page});
}

std::size_t Driver::resident_pages() const {
  std::lock_guard lock(mu_);
  return resident_.size();
}

}  // namespace sgxsim
