// Fleet wire format: length-prefixed binary frames between a monitored
// process (perf::MonitorSession + FrameSink) and the `sgxperf serve`
// aggregation daemon.
//
// A producer stream is:
//
//   u32 magic "SGXF" | frame*            (all integers little-endian)
//   frame  := u32 payload_len | u8 type | payload
//   string := u16 len | bytes            (UTF-8, no terminator)
//
// Frame types (payloads documented on the structs below):
//
//   kHello  — once, first: wire version, HDR geometry, (host, enclave)
//             identity, window period.  The aggregator rejects streams whose
//             HDR geometry differs from its own — bucket indices are only
//             portable between identical (sub_bits, max_exponent).
//   kWindow — one per closed window: the WindowRecord plus, per site, the
//             persisted row and the window-local HDR *delta* as sparse
//             (bucket, count) pairs.  Deltas are the merge currency: the
//             aggregator sums them bucket-wise into per-site fleet
//             cumulatives, which reconstructs each producer's cumulative
//             distribution exactly (same property the shard merge relies
//             on), so merged percentiles match single-process WindowedHdr
//             values within bucket resolution.
//   kAlert  — one per raise/resolve transition, with the resolved site name
//             (the consumer has no name table).
//   kStats  — session loss counters; lets the daemon flag lossy producers.
//   kBye    — clean end of stream with the sealed end timestamp.  A stream
//             that ends without kBye (producer died) is kept, flagged lossy.
//
// Decoding is incremental (FrameParser::push accepts arbitrary byte slices,
// e.g. socket reads) and paranoid: every length is bounds-checked against
// the frame, malformed input poisons the parser instead of the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "perf/session.hpp"
#include "tracedb/schema.hpp"

namespace fleet {

inline constexpr std::uint32_t kWireMagic = 0x46584753;  // "SGXF" little-endian
inline constexpr std::uint16_t kWireVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWindow = 2,
  kAlert = 3,
  kStats = 4,
  kBye = 5,
};

/// u16 version | u8 hdr_sub_bits | u8 hdr_max_exponent | u64 window_ns |
/// string host | string enclave
struct HelloFrame {
  std::uint16_t version = kWireVersion;
  std::uint8_t hdr_sub_bits = 0;
  std::uint8_t hdr_max_exponent = 0;
  std::uint64_t window_ns = 0;
  std::string host;
  std::string enclave;
};

/// Per-site payload inside a window frame: u64 enclave_id | u8 type |
/// u32 call_id | string name | u64 calls | u64 aex | u64 p50 | u64 p99 |
/// u64 delta_count | u64 delta_sum | u32 pairs | (u32 bucket, u64 count)*
struct WireSite {
  tracedb::WindowSiteRecord row;
  std::string name;
  std::uint64_t delta_count = 0;
  std::uint64_t delta_sum = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  // sparse, ascending
};

/// u32 window_index | u64 start | u64 end | u64 calls | u64 aexs |
/// u64 page_ins | u64 page_outs | u64 stream_dropped | u64 switchless×3 |
/// u32 active_alerts | u32 site_count | site*
struct WindowFrame {
  tracedb::WindowRecord window;
  std::vector<WireSite> sites;
};

/// u8 resolved | u8 kind | u64 enclave_id | u8 type | u32 call_id |
/// u64 onset | u64 resolved_ns | u32 window_index | u64 detail | string site
struct AlertFrame {
  tracedb::AlertRecord alert;
  bool resolved = false;
  std::string site_name;
};

/// u64 events | u64 stream_dropped | u64 sealed_dropped | u64 pending_evicted
struct StatsFrame {
  std::uint64_t events = 0;
  std::uint64_t stream_dropped = 0;
  std::uint64_t sealed_dropped = 0;
  std::uint64_t pending_evicted = 0;
};

/// u64 end_ns
struct ByeFrame {
  std::uint64_t end_ns = 0;
};

using Frame = std::variant<HelloFrame, WindowFrame, AlertFrame, StatsFrame, ByeFrame>;

// --- encoding ---------------------------------------------------------------

/// Appends the stream magic — once, before the first frame.
void encode_magic(std::string& out);
void encode(std::string& out, const HelloFrame& f);
void encode(std::string& out, const WindowFrame& f);
void encode(std::string& out, const AlertFrame& f);
void encode(std::string& out, const StatsFrame& f);
void encode(std::string& out, const ByeFrame& f);

/// perf::MonitorSink that serialises the session's typed output as wire
/// frames into a caller-supplied byte sink (a socket write, a pipe, a
/// std::string for in-process transport).  Emits magic + hello on
/// on_session_start, then window/alert/stats frames, then bye on finish.
class FrameSink : public perf::MonitorSink {
 public:
  /// Returns true when the bytes were handed to the transport; false when
  /// the consumer is gone (daemon died, pipe closed).  The sink counts the
  /// outcome per frame — the ledger's fleet_wire stage.
  using WriteFn = std::function<bool(const char* data, std::size_t size)>;

  explicit FrameSink(WriteFn write) : write_(std::move(write)) {}

  /// Convenience: a FrameSink appending to `out` (in-process transport).
  static std::shared_ptr<FrameSink> to_string(std::string& out);

  void on_session_start(const perf::SessionInfo& info) override;
  void on_alert(const tracedb::AlertRecord& alert, bool resolved,
                const std::string& site_name) override;
  void on_window(const tracedb::WindowRecord& window,
                 const std::vector<perf::SessionWindowSite>& sites) override;
  void on_stats(const perf::SessionStats& stats) override;
  void on_finish(std::uint64_t end_ns) override;

  [[nodiscard]] std::uint64_t frames_produced() const noexcept { return frames_produced_; }
  [[nodiscard]] std::uint64_t frames_delivered() const noexcept { return frames_delivered_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }

  /// Appends the "fleet_wire" stage (unit: frames, drop reason
  /// "consumer_gone") to `led`.  Monitoring-thread-only, like the sink.
  void fill_ledger(telemetry::Ledger& led) const;

 private:
  void emit(const std::string& bytes);

  WriteFn write_;
  std::uint64_t frames_produced_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

// --- decoding ---------------------------------------------------------------

/// Incremental frame decoder: push() arbitrary byte slices, then drain
/// next() until it returns nullopt.  A framing violation (bad magic, bogus
/// length, truncated payload) latches error() — further input is ignored,
/// which is exactly how the aggregator quarantines a misbehaving producer.
class FrameParser {
 public:
  /// Frames larger than this are rejected as corrupt framing.
  static constexpr std::uint32_t kMaxPayload = 1u << 26;

  void push(const char* data, std::size_t size);
  void push(const std::string& bytes) { push(bytes.data(), bytes.size()); }

  /// Next complete frame, or nullopt when more bytes are needed (or the
  /// parser is poisoned).
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool error() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error_message() const noexcept { return error_; }

 private:
  void fail(std::string message);

  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool saw_magic_ = false;
  std::string error_;
};

}  // namespace fleet
