// The `sgxperf serve` daemon: UNIX-domain socket front-end of the fleet
// Aggregator.
//
// Two listening sockets:
//
//   ingest  — producers connect and stream wire frames (fleet/wire.hpp);
//             one connection == one producer stream.  EOF without a bye
//             frame marks the producer lossy, its partial data stays merged.
//   query   — request/response: the client sends one text line ("snapshot",
//             "top <by> <n>", "alerts", "series <host> <enclave> <site>",
//             "status"), the server replies with one JSON document and
//             closes.  "status" is answered by the server itself so the
//             response carries daemon self-telemetry (uptime, ingest rate,
//             query-latency HDR, checkpoint durations) on top of the
//             aggregator's producer-lag and conservation-ledger view.
//
// Single-threaded poll(2) loop — the aggregator's mutex makes concurrent
// checkpoint/query access from other threads safe, but the socket plumbing
// itself never needs more than one thread (windows arrive at window
// cadence, not event cadence).  Query responses drain non-blocking via
// POLLOUT with a stall deadline, so a client that stops reading can never
// wedge ingest; all socket writes use MSG_NOSIGNAL, so a vanished peer is
// an EPIPE, never a fatal SIGPIPE.  stop() is async-signal-safe via a
// self-pipe so a SIGINT handler can end run() cleanly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/aggregator.hpp"

namespace fleet {

struct ServerConfig {
  std::string ingest_path;           // required
  std::string query_path;            // optional: no query socket when empty
  AggregatorConfig aggregator;
  /// Persist the fleet series as a v5 trace every N merged producer windows
  /// (0 = only at shutdown) — `sgxperf stats`/`export` work on the file.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_windows = 0;
  /// Exit run() after this long with no connected producer and no pending
  /// byte (0 = run until stop()).  Tests and one-shot pipelines use this.
  std::uint64_t idle_exit_ms = 0;
  /// Write a Prometheus text snapshot (fleet ledger + daemon self-metrics)
  /// to this path at checkpoint cadence and shutdown (empty = off).  Written
  /// atomically (temp + rename) so a scraper never sees a torn file.
  std::string prom_out_path;
  /// Emit a one-line self-stat JSON document (the `status` payload) to
  /// stderr every this many milliseconds (0 = off).  Diagnostics only —
  /// wall-clock derived, never golden-tested.
  std::uint64_t self_stat_interval_ms = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the configured sockets (unlinking stale paths).
  /// Returns false (with a message on stderr) on any socket error.
  [[nodiscard]] bool start();

  /// Serves until stop() or idle-exit.  Writes a final checkpoint if one is
  /// configured.  Returns the number of producer streams served.
  std::uint64_t run();

  /// Ends run() from any thread or from a signal handler.
  void stop() noexcept;

  [[nodiscard]] Aggregator& aggregator() noexcept { return agg_; }

  /// Point-in-time self-telemetry (uptime, ingest totals, query-latency
  /// HDR, checkpoint durations) — what the `status` query's "daemon" block
  /// carries.  Callable from any thread.
  [[nodiscard]] ServeSelfStats self_stats() const;

 private:
  struct Connection {
    int fd = -1;
    bool is_query = false;
    ProducerId producer = 0;   // ingest connections
    std::string request;       // query connections: accumulated request line
    std::string response;      // query connections: undrained response bytes
    std::size_t response_off = 0;
    /// Last time response bytes moved — a client that stops reading is
    /// closed after a stall deadline instead of wedging the poll loop.
    std::chrono::steady_clock::time_point last_progress{};
  };

  void close_connection(Connection& conn);
  bool drain_response(Connection& conn);
  void maybe_checkpoint(bool force);
  /// Computes one query response, timing it into the latency HDR and
  /// intercepting "status" to attach the daemon block.
  [[nodiscard]] std::string answer_query(const std::string& request);
  void write_prom_out();
  void maybe_self_stat();

  ServerConfig config_;
  Aggregator agg_;
  int ingest_fd_ = -1;
  int query_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::vector<Connection> conns_;
  std::uint64_t producers_served_ = 0;
  std::uint64_t last_checkpoint_windows_ = 0;

  // --- self-telemetry (DESIGN.md §13) ---------------------------------------
  std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point next_self_stat_{};
  std::atomic<std::uint64_t> bytes_ingested_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> checkpoint_last_ms_{0};
  std::atomic<std::uint64_t> checkpoint_total_ms_{0};
  telemetry::HdrHistogram query_latency_us_;
};

/// Connects to a serve query socket, sends one request line and returns the
/// JSON response.  Throws std::runtime_error on connection failure.
[[nodiscard]] std::string query_server(const std::string& query_path, const std::string& request);

/// Connects to a serve ingest socket and streams `bytes` as one producer.
/// Returns false on connection/write failure.
[[nodiscard]] bool send_producer_stream(const std::string& ingest_path, const std::string& bytes);

/// Connects to a serve ingest socket and returns the fd (-1 on failure) —
/// for live streaming (`sgxperf monitor --fleet`).
[[nodiscard]] int connect_ingest(const std::string& ingest_path);

}  // namespace fleet
