#include "fleet/aggregator.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "perf/online.hpp"
#include "support/json.hpp"
#include "support/strutil.hpp"

namespace fleet {
namespace {

const char* type_name(tracedb::CallType t) {
  return t == tracedb::CallType::kEcall ? "ecall" : "ocall";
}

/// Splits a query line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string error_json(const std::string& message) {
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("error", message);
  w.end_object();
  return w.take();
}

}  // namespace

Aggregator::Aggregator(AggregatorConfig config) : config_(config) {
  if (config_.retention_windows == 0) config_.retention_windows = 1;
}

ProducerId Aggregator::connect() {
  std::lock_guard<std::mutex> lock(mu_);
  const ProducerId id = next_producer_++;
  producers_[id];  // default-constructed Producer
  return id;
}

void Aggregator::ingest(ProducerId id, const char* data, std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = producers_.find(id);
  if (it == producers_.end()) return;
  Producer& p = it->second;
  if (p.state.ended || !p.state.error.empty()) return;  // quarantined
  p.parser.push(data, size);
  while (auto frame = p.parser.next()) {
    p.state.frames += 1;
    frames_seen_ += 1;
    apply(p, *frame);
    if (!p.state.error.empty()) {
      frames_rejected_ += 1;  // the frame that tripped the quarantine
      return;
    }
  }
  if (p.parser.error()) p.state.error = p.parser.error_message();
}

void Aggregator::disconnect(ProducerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = producers_.find(id);
  if (it == producers_.end()) return;
  it->second.state.ended = true;
}

void Aggregator::apply(Producer& p, const Frame& frame) {
  if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
    if (hello->version > kWireVersion) {
      p.state.error = support::format("unsupported wire version %u", hello->version);
      return;
    }
    if (hello->hdr_sub_bits != telemetry::hdr::kSubBits ||
        hello->hdr_max_exponent != telemetry::hdr::kMaxExponent) {
      // Bucket indices are only portable between identical geometries;
      // merging anything else would silently corrupt the fleet series.
      p.state.error = support::format("HDR geometry mismatch (%u/%u, fleet has %u/%u)",
                                      hello->hdr_sub_bits, hello->hdr_max_exponent,
                                      telemetry::hdr::kSubBits, telemetry::hdr::kMaxExponent);
      return;
    }
    if (window_ns_ == 0) window_ns_ = hello->window_ns;
    if (hello->window_ns != window_ns_) {
      p.state.error = support::format(
          "window period mismatch (%llu ns, fleet uses %llu ns)",
          static_cast<unsigned long long>(hello->window_ns),
          static_cast<unsigned long long>(window_ns_));
      return;
    }
    p.state.host = hello->host;
    p.state.enclave = hello->enclave;
    p.state.hello_seen = true;
    return;
  }
  if (!p.state.hello_seen) {
    p.state.error = "frame before hello";
    return;
  }
  if (const auto* window = std::get_if<WindowFrame>(&frame)) {
    apply_window(p, *window);
  } else if (const auto* alert = std::get_if<AlertFrame>(&frame)) {
    apply_alert(p, *alert);
  } else if (const auto* stats = std::get_if<StatsFrame>(&frame)) {
    p.state.events = stats->events;
    p.state.stream_dropped = std::max(p.state.stream_dropped, stats->stream_dropped);
    p.state.sealed_dropped = stats->sealed_dropped;
    p.state.pending_evicted = stats->pending_evicted;
  } else if (const auto* bye = std::get_if<ByeFrame>(&frame)) {
    p.state.clean = true;
    p.state.end_ns = bye->end_ns;
  }
}

void Aggregator::apply_window(Producer& p, const WindowFrame& f) {
  const auto& w = f.window;
  // Charge every key this frame would create against the producer's cap
  // up front, so a frame that would blow the cap is rejected whole.
  if (config_.max_keys_per_producer != 0) {
    std::uint64_t new_keys = 0;
    for (const auto& s : f.sites) {
      const SiteKey key{p.state.host, p.state.enclave, s.name, s.row.type};
      if (sites_.find(key) == sites_.end()) new_keys += 1;
    }
    if (p.keys_created + new_keys > config_.max_keys_per_producer) {
      p.state.error = support::format("fleet key cap exceeded (%zu distinct keys)",
                                      config_.max_keys_per_producer);
      return;
    }
    p.keys_created += new_keys;
  }
  p.state.windows += 1;
  p.state.stream_dropped = std::max(p.state.stream_dropped, w.stream_dropped);
  p.state.paging += w.page_ins + w.page_outs;
  p.last_window_end = std::max(p.last_window_end, static_cast<std::uint64_t>(w.end_ns));
  windows_merged_ += 1;

  FleetWindow& fw = fleet_windows_[w.start_ns];
  fw.start_ns = w.start_ns;
  fw.end_ns = std::max(fw.end_ns, static_cast<std::uint64_t>(w.end_ns));
  fw.calls += w.calls;
  fw.aexs += w.aexs;
  fw.page_ins += w.page_ins;
  fw.page_outs += w.page_outs;
  fw.stream_dropped += w.stream_dropped;
  fw.producers += 1;
  fw.active_alerts += w.active_alerts;

  total_calls_ += w.calls;
  total_aexs_ += w.aexs;
  total_page_ins_ += w.page_ins;
  total_page_outs_ += w.page_outs;

  for (const auto& s : f.sites) {
    const SiteKey key{p.state.host, p.state.enclave, s.name, s.row.type};
    SiteSeries& series = sites_[key];
    if (series.calls == 0) {
      series.first_enclave_id = s.row.enclave_id;
      series.first_call_id = s.row.call_id;
    }
    // Bucket-wise delta add; the sum is then pinned to the exactly-recorded
    // one (add_bucket approximates from bucket upper bounds).
    const std::uint64_t prev_sum = series.cumulative.sum();
    for (const auto& [bucket, count] : s.buckets) series.cumulative.add_bucket(bucket, count);
    series.cumulative.set_exact_sum(prev_sum + s.delta_sum);
    series.calls += s.row.calls;
    series.aex += s.row.aex_count;
    SitePoint point;
    point.start_ns = w.start_ns;
    point.end_ns = w.end_ns;
    point.calls = s.row.calls;
    point.aex = s.row.aex_count;
    point.p50_ns = s.row.p50_ns;
    point.p99_ns = s.row.p99_ns;
    series.points.push_back(point);
  }
  prune();
}

void Aggregator::apply_alert(Producer& p, const AlertFrame& f) {
  const SiteKey key{p.state.host, p.state.enclave, f.site_name, f.alert.type};
  const auto alert_key = std::make_pair(key, f.alert.kind);
  if (config_.max_keys_per_producer != 0 && alerts_.find(alert_key) == alerts_.end()) {
    if (p.keys_created >= config_.max_keys_per_producer) {
      p.state.error = support::format("fleet key cap exceeded (%zu distinct keys)",
                                      config_.max_keys_per_producer);
      return;
    }
    p.keys_created += 1;
  }
  p.state.alerts += 1;
  AlertState& st = alerts_[alert_key];
  st.enclave_id = f.alert.enclave_id;
  st.call_id = f.alert.call_id;
  st.detail = f.alert.detail;
  st.window_index = f.alert.window_index;
  if (f.resolved) {
    st.active = false;
    st.resolved_ns = f.alert.resolved_ns;
    alerts_resolved_ += 1;
  } else {
    st.active = true;
    st.onset_ns = f.alert.onset_ns;
    st.resolved_ns = 0;
    st.raises += 1;
    alerts_raised_ += 1;
  }
}

void Aggregator::prune() {
  while (fleet_windows_.size() > config_.retention_windows) {
    fleet_windows_.erase(fleet_windows_.begin());
  }
  if (fleet_windows_.empty()) return;
  const std::uint64_t min_start = fleet_windows_.begin()->first;
  for (auto& [key, series] : sites_) {
    while (!series.points.empty() && series.points.front().start_ns < min_start) {
      series.points.pop_front();
    }
  }
}

std::vector<Aggregator::TopRow> Aggregator::top(const std::string& by, std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  return top_locked(by, n);
}

std::vector<Aggregator::TopRow> Aggregator::top_locked(const std::string& by,
                                                       std::size_t n) const {
  std::vector<TopRow> rows;
  if (by == "paging") {
    // Producer-level metric: rank (host, enclave) identities.
    std::map<std::pair<std::string, std::string>, std::uint64_t> per_producer;
    for (const auto& [id, p] : producers_) {
      if (!p.state.hello_seen) continue;
      per_producer[{p.state.host, p.state.enclave}] += p.state.paging;
    }
    for (const auto& [identity, paging] : per_producer) {
      TopRow row;
      row.key.host = identity.first;
      row.key.enclave = identity.second;
      row.value = paging;
      rows.push_back(std::move(row));
    }
  } else {
    for (const auto& [key, series] : sites_) {
      TopRow row;
      row.key = key;
      row.calls = series.calls;
      row.p99_ns = series.cumulative.value_at_percentile(99.0);
      row.value = by == "transitions" ? series.calls : row.p99_ns;
      rows.push_back(std::move(row));
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const TopRow& a, const TopRow& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.key < b.key;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::string Aggregator::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_json_locked();
}

std::string Aggregator::snapshot_json_locked() const {
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("window_ns", window_ns_);

  // Producers sorted by identity, tie-broken by row content: connect order
  // varies across runs, and two producers may legitimately share a
  // (host, enclave) identity — a content tiebreaker keeps the snapshot a
  // pure function of the ingested frame set either way.
  std::vector<const ProducerState*> producers;
  for (const auto& [id, p] : producers_) producers.push_back(&p.state);
  std::stable_sort(producers.begin(), producers.end(),
                   [](const ProducerState* a, const ProducerState* b) {
                     const auto key = [](const ProducerState* p) {
                       return std::tie(p->host, p->enclave, p->frames, p->windows,
                                       p->alerts, p->events, p->stream_dropped,
                                       p->sealed_dropped, p->pending_evicted,
                                       p->paging, p->end_ns, p->ended, p->clean,
                                       p->error);
                     };
                     return key(a) < key(b);
                   });
  w.key("producers");
  w.begin_array();
  for (const auto* p : producers) {
    w.begin_object();
    w.kv("host", p->host);
    w.kv("enclave", p->enclave);
    w.kv("ended", p->ended);
    w.kv("clean", p->clean);
    w.kv("lossy", p->lossy());
    w.key("drop_reasons");
    w.begin_array();
    for (const auto& reason : p->drop_reasons()) w.value(reason);
    w.end_array();
    if (!p->error.empty()) w.kv("error", p->error);
    w.kv("frames", p->frames);
    w.kv("windows", p->windows);
    w.kv("alerts", p->alerts);
    w.kv("events", p->events);
    w.kv("stream_dropped", p->stream_dropped);
    w.kv("sealed_dropped", p->sealed_dropped);
    w.kv("pending_evicted", p->pending_evicted);
    w.kv("paging", p->paging);
    w.kv("end_ns", p->end_ns);
    w.end_object();
  }
  w.end_array();

  w.key("fleet_windows");
  w.begin_array();
  for (const auto& [start, fw] : fleet_windows_) {
    w.begin_object();
    w.kv("start_ns", fw.start_ns);
    w.kv("end_ns", fw.end_ns);
    w.kv("calls", fw.calls);
    w.kv("aexs", fw.aexs);
    w.kv("page_ins", fw.page_ins);
    w.kv("page_outs", fw.page_outs);
    w.kv("producers", static_cast<std::uint64_t>(fw.producers));
    w.kv("active_alerts", static_cast<std::uint64_t>(fw.active_alerts));
    w.kv("stream_dropped", fw.stream_dropped);
    w.end_object();
  }
  w.end_array();

  w.key("sites");
  w.begin_array();
  for (const auto& [key, series] : sites_) {
    w.begin_object();
    w.kv("host", key.host);
    w.kv("enclave", key.enclave);
    w.kv("site", key.site);
    w.kv("type", type_name(key.type));
    w.kv("calls", series.calls);
    w.kv("aex", series.aex);
    w.kv("sum_ns", series.cumulative.sum());
    w.kv("p50_ns", series.cumulative.value_at_percentile(50.0));
    w.kv("p90_ns", series.cumulative.value_at_percentile(90.0));
    w.kv("p99_ns", series.cumulative.value_at_percentile(99.0));
    w.kv("p999_ns", series.cumulative.value_at_percentile(99.9));
    w.kv("max_ns", series.cumulative.max_value());
    w.kv("points", static_cast<std::uint64_t>(series.points.size()));
    w.end_object();
  }
  w.end_array();

  w.key("alerts");
  w.begin_object();
  w.kv("raised", alerts_raised_);
  w.kv("resolved", alerts_resolved_);
  w.key("active");
  w.begin_array();
  for (const auto& [key, st] : alerts_) {
    if (!st.active) continue;
    w.begin_object();
    w.kv("host", key.first.host);
    w.kv("enclave", key.first.enclave);
    w.kv("site", key.first.site);
    w.kv("kind", perf::to_string(key.second));
    w.kv("onset_ns", st.onset_ns);
    w.kv("detail", st.detail);
    w.kv("raises", st.raises);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("totals");
  w.begin_object();
  w.kv("calls", total_calls_);
  w.kv("aexs", total_aexs_);
  w.kv("page_ins", total_page_ins_);
  w.kv("page_outs", total_page_outs_);
  w.kv("windows_merged", windows_merged_);
  w.end_object();

  w.end_object();
  return w.take();
}

std::string Aggregator::top_json(const std::string& by, std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (by != "p99" && by != "transitions" && by != "paging") {
    return error_json(support::format("unknown ranking '%s' (p99|transitions|paging)",
                                      by.c_str()));
  }
  const auto rows = top_locked(by, n);
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("by", by);
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.kv("host", row.key.host);
    w.kv("enclave", row.key.enclave);
    if (!row.key.site.empty()) {
      w.kv("site", row.key.site);
      w.kv("type", type_name(row.key.type));
    }
    w.kv("value", row.value);
    if (by != "paging") {
      w.kv("calls", row.calls);
      w.kv("p99_ns", row.p99_ns);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Aggregator::alerts_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("raised", alerts_raised_);
  w.kv("resolved", alerts_resolved_);
  w.key("alerts");
  w.begin_array();
  for (const auto& [key, st] : alerts_) {
    w.begin_object();
    w.kv("host", key.first.host);
    w.kv("enclave", key.first.enclave);
    w.kv("site", key.first.site);
    w.kv("type", type_name(key.first.type));
    w.kv("kind", perf::to_string(key.second));
    w.kv("active", st.active);
    w.kv("onset_ns", st.onset_ns);
    if (!st.active) w.kv("resolved_ns", st.resolved_ns);
    w.kv("detail", st.detail);
    w.kv("raises", st.raises);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Aggregator::series_json(const std::string& host, const std::string& enclave,
                                    const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("host", host);
  w.kv("enclave", enclave);
  w.kv("site", site);
  w.key("series");
  w.begin_array();
  for (const auto& [key, series] : sites_) {
    if (key.host != host || key.enclave != enclave || key.site != site) continue;
    w.begin_object();
    w.kv("type", type_name(key.type));
    w.kv("calls", series.calls);
    w.kv("p99_ns", series.cumulative.value_at_percentile(99.0));
    w.key("points");
    w.begin_array();
    for (const auto& point : series.points) {
      w.begin_object();
      w.kv("start_ns", point.start_ns);
      w.kv("end_ns", point.end_ns);
      w.kv("calls", point.calls);
      w.kv("aex", point.aex);
      w.kv("p50_ns", point.p50_ns);
      w.kv("p99_ns", point.p99_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Aggregator::fill_ledger_locked(telemetry::Ledger& led) const {
  auto& ingest = led.stage("fleet_ingest", "frames");
  ingest.produced += frames_seen_;
  ingest.delivered += frames_seen_ - frames_rejected_;
  ingest.add_drop("quarantined", frames_rejected_);
  for (const auto& [id, p] : producers_) {
    // Quarantined streams have unparsed bytes behind the poisoned frame;
    // mid-stream deaths lost an unknowable tail.  Neither loss has a size,
    // so both are indeterminate — a conservation failure by definition.
    if (!p.state.error.empty() || (p.state.ended && !p.state.clean)) {
      ingest.indeterminate += 1;
    }
  }
}

void Aggregator::fill_ledger(telemetry::Ledger& led) const {
  std::lock_guard<std::mutex> lock(mu_);
  fill_ledger_locked(led);
}

std::string Aggregator::status_json(const ServeSelfStats* self) const {
  std::lock_guard<std::mutex> lock(mu_);
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("window_ns", window_ns_);

  std::uint64_t ended = 0;
  std::uint64_t clean = 0;
  std::uint64_t lossy = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t deaths = 0;
  std::uint64_t fleet_high_water = 0;
  for (const auto& [id, p] : producers_) {
    ended += p.state.ended ? 1 : 0;
    clean += p.state.clean ? 1 : 0;
    lossy += p.state.lossy() ? 1 : 0;
    quarantined += p.state.error.empty() ? 0 : 1;
    deaths += (p.state.ended && !p.state.clean) ? 1 : 0;
    fleet_high_water = std::max(fleet_high_water, p.last_window_end);
  }
  w.key("producers");
  w.begin_object();
  w.kv("total", static_cast<std::uint64_t>(producers_.size()));
  w.kv("streaming", static_cast<std::uint64_t>(producers_.size()) - ended);
  w.kv("ended", ended);
  w.kv("clean", clean);
  w.kv("lossy", lossy);
  w.kv("quarantined", quarantined);
  w.kv("mid_stream_death", deaths);
  w.end_object();

  // Ingest lag: how far each producer's last merged window trails the
  // fleet's virtual-time high-water mark (in windows when the period is
  // known).  Sorted by identity + content like the snapshot, so the block
  // is a pure function of the ingested frame set.
  struct LagRow {
    const ProducerState* state;
    std::uint64_t last_end;
  };
  std::vector<LagRow> lag_rows;
  for (const auto& [id, p] : producers_) lag_rows.push_back({&p.state, p.last_window_end});
  std::stable_sort(lag_rows.begin(), lag_rows.end(), [](const LagRow& a, const LagRow& b) {
    const auto key = [](const LagRow& r) {
      return std::tie(r.state->host, r.state->enclave, r.last_end, r.state->frames,
                      r.state->windows, r.state->events, r.state->end_ns);
    };
    return key(a) < key(b);
  });
  w.key("lag");
  w.begin_array();
  for (const auto& row : lag_rows) {
    const std::uint64_t lag_ns = fleet_high_water - row.last_end;
    w.begin_object();
    w.kv("host", row.state->host);
    w.kv("enclave", row.state->enclave);
    w.kv("last_window_end_ns", row.last_end);
    w.kv("lag_ns", lag_ns);
    w.kv("backlog_windows", window_ns_ > 0 ? lag_ns / window_ns_ : 0);
    w.kv("windows", row.state->windows);
    w.end_object();
  }
  w.end_array();

  telemetry::Ledger led;
  fill_ledger_locked(led);
  w.key("ledger");
  led.write_json(w);
  w.kv("conservation_ok", led.audit().ok);

  if (self != nullptr) {
    w.key("daemon");
    w.begin_object();
    w.kv("uptime_ms", self->uptime_ms);
    w.kv("bytes_ingested", self->bytes_ingested);
    w.kv("producers_connected", self->producers_connected);
    w.kv("producers_served", self->producers_served);
    w.kv("ingest_frames_per_sec", self->ingest_frames_per_sec);
    w.kv("queries_answered", self->queries_answered);
    w.kv("query_p50_us", self->query_p50_us);
    w.kv("query_p99_us", self->query_p99_us);
    w.kv("query_max_us", self->query_max_us);
    w.kv("checkpoints", self->checkpoints);
    w.kv("checkpoint_last_ms", self->checkpoint_last_ms);
    w.kv("checkpoint_total_ms", self->checkpoint_total_ms);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::string Aggregator::query(const std::string& line) const {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return error_json("empty query");
  if (tokens[0] == "snapshot") return snapshot_json();
  if (tokens[0] == "alerts") return alerts_json();
  if (tokens[0] == "status") return status_json();
  if (tokens[0] == "top") {
    const std::string by = tokens.size() > 1 ? tokens[1] : "p99";
    std::size_t n = 10;
    if (tokens.size() > 2) {
      const long long parsed = std::atoll(tokens[2].c_str());
      if (parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    return top_json(by, n);
  }
  if (tokens[0] == "series") {
    if (tokens.size() < 4) return error_json("usage: series <host> <enclave> <site>");
    return series_json(tokens[1], tokens[2], tokens[3]);
  }
  return error_json(support::format("unknown query '%s'", tokens[0].c_str()));
}

std::optional<std::uint64_t> Aggregator::site_p99(const SiteKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(key);
  if (it == sites_.end()) return std::nullopt;
  return it->second.cumulative.value_at_percentile(99.0);
}

std::uint64_t Aggregator::windows_merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_merged_;
}

void Aggregator::checkpoint(tracedb::TraceDatabase& db) const {
  std::lock_guard<std::mutex> lock(mu_);
  db.set_window_period(window_ns_);

  // One synthetic enclave per (host, enclave) identity, ids assigned in
  // sorted identity order so checkpoints of the same fleet state are
  // byte-identical.
  std::map<std::pair<std::string, std::string>, tracedb::EnclaveId> enclave_ids;
  for (const auto& [key, series] : sites_) enclave_ids[{key.host, key.enclave}];
  for (const auto& [id, p] : producers_) {
    if (p.state.hello_seen) enclave_ids[{p.state.host, p.state.enclave}];
  }
  tracedb::EnclaveId next_eid = 1;
  for (auto& [identity, eid] : enclave_ids) {
    eid = next_eid++;
    tracedb::EnclaveRecord rec;
    rec.enclave_id = eid;
    rec.name = identity.first + "/" + identity.second;
    db.add_enclave(rec);
  }

  // Synthetic call ids per (identity, type), in sorted site order; call-id
  // collisions across producers are impossible because each identity gets
  // its own synthetic enclave.
  std::map<SiteKey, std::pair<tracedb::EnclaveId, tracedb::CallId>> site_ids;
  std::map<std::pair<tracedb::EnclaveId, tracedb::CallType>, tracedb::CallId> next_call_id;
  for (const auto& [key, series] : sites_) {
    const tracedb::EnclaveId eid = enclave_ids.at({key.host, key.enclave});
    const tracedb::CallId cid = next_call_id[{eid, key.type}]++;
    site_ids[key] = {eid, cid};
    tracedb::CallNameRecord name;
    name.enclave_id = eid;
    name.type = key.type;
    name.call_id = cid;
    name.name = key.site;
    db.add_call_name(name);

    tracedb::LatencyRecord lat;
    lat.enclave_id = eid;
    lat.type = key.type;
    lat.call_id = cid;
    lat.count = series.cumulative.count();
    lat.sum_ns = series.cumulative.sum();
    const auto& buckets = series.cumulative.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] > 0) lat.buckets.emplace_back(static_cast<std::uint32_t>(i), buckets[i]);
    }
    db.set_latency(lat);
  }

  // Retained fleet windows, re-indexed 0..N-1 in time order.
  std::map<std::uint64_t, std::uint32_t> window_index;
  std::uint32_t idx = 0;
  for (const auto& [start, fw] : fleet_windows_) {
    window_index[start] = idx;
    tracedb::WindowRecord rec;
    rec.window_index = idx++;
    rec.start_ns = fw.start_ns;
    rec.end_ns = fw.end_ns;
    rec.calls = fw.calls;
    rec.aexs = fw.aexs;
    rec.page_ins = fw.page_ins;
    rec.page_outs = fw.page_outs;
    rec.stream_dropped = fw.stream_dropped;
    rec.active_alerts = fw.active_alerts;
    db.add_window(rec);
  }

  std::vector<tracedb::WindowSiteRecord> site_rows;
  for (const auto& [key, series] : sites_) {
    const auto [eid, cid] = site_ids.at(key);
    for (const auto& point : series.points) {
      const auto wit = window_index.find(point.start_ns);
      if (wit == window_index.end()) continue;
      tracedb::WindowSiteRecord rec;
      rec.window_index = wit->second;
      rec.enclave_id = eid;
      rec.type = key.type;
      rec.call_id = cid;
      rec.calls = point.calls;
      rec.aex_count = point.aex;
      rec.p50_ns = point.p50_ns;
      rec.p99_ns = point.p99_ns;
      site_rows.push_back(rec);
    }
  }
  std::stable_sort(site_rows.begin(), site_rows.end(),
                   [](const tracedb::WindowSiteRecord& a, const tracedb::WindowSiteRecord& b) {
                     if (a.window_index != b.window_index) return a.window_index < b.window_index;
                     if (a.enclave_id != b.enclave_id) return a.enclave_id < b.enclave_id;
                     if (a.type != b.type) return a.type < b.type;
                     return a.call_id < b.call_id;
                   });
  for (const auto& rec : site_rows) db.add_window_site(rec);

  for (const auto& [key, st] : alerts_) {
    tracedb::AlertRecord rec;
    rec.kind = key.second;
    const auto sit = site_ids.find(key.first);
    if (sit != site_ids.end()) {
      rec.enclave_id = sit->second.first;
      rec.call_id = sit->second.second;
    } else {
      // Paging alerts key a producer, not a call site.
      const auto eit = enclave_ids.find({key.first.host, key.first.enclave});
      rec.enclave_id = eit != enclave_ids.end() ? eit->second : 0;
      rec.call_id = st.call_id;
    }
    rec.type = key.first.type;
    rec.onset_ns = st.onset_ns;
    rec.resolved_ns = st.active ? 0 : st.resolved_ns;
    rec.detail = st.detail;
    const auto wit = window_index.upper_bound(st.onset_ns);
    rec.window_index = wit == window_index.begin() ? 0 : std::prev(wit)->second;
    db.add_alert(rec);
  }
}

}  // namespace fleet
