// Fleet aggregator: merges wire frames from N producers into one keyed
// time-series (the `sgxperf serve` core, transport-agnostic).
//
// Keying.  Every window-site row is tagged (host, enclave, site-name, call
// type) — the producer's self-declared identity from its hello frame plus
// the call site.  Site *names* (not numeric call ids) key the fleet series,
// so the same EDL function traced in different processes lands in one
// series even when call-id assignment differs; the numeric (enclave_id,
// call_id) of the first producer to report a site is kept for checkpoints.
//
// Merging.  Per-site window HDR *deltas* are summed bucket-wise into a
// cumulative fleet histogram per key — exact, order-independent (bucket
// addition commutes), and equal within bucket resolution to what one
// WindowedHdr observing the union of the streams would hold.  Producer
// windows are aligned on the virtual clock (same window_ns, epoch 0), so
// fleet windows are keyed by start_ns and merge counter-wise.
//
// Retention.  The fleet keeps the last `retention_windows` windows: older
// fleet window rows and per-site series points are pruned as new windows
// arrive; cumulative histograms, totals and alert state are never pruned —
// the aggregate stays exact, only the time-series view is bounded.
//
// Determinism.  All state lives in ordered maps keyed by (host, enclave,
// site); snapshots iterate those maps, so a snapshot is a pure function of
// the *set* of frames ingested, not of arrival interleaving.  This is what
// the multi-producer determinism test (byte-identical snapshot across runs
// and thread counts) pins.
//
// Threading: every public method takes the internal mutex — safe to ingest
// from a socket loop while another thread queries or checkpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fleet/wire.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/ledger.hpp"
#include "tracedb/database.hpp"

namespace fleet {

struct AggregatorConfig {
  /// Fleet windows (and per-site series points) retained, oldest pruned.
  std::size_t retention_windows = 256;
  /// Distinct fleet keys (site series + alert states) one producer may
  /// create; past the cap the producer is quarantined with an error, like a
  /// framing violation (0 = unlimited).  Host/enclave/site names are
  /// producer-controlled strings, so without a cap one misbehaving producer
  /// could grow the keyed maps without bound.
  std::size_t max_keys_per_producer = 4096;
};

/// Fleet series key: producer identity plus call site.
struct SiteKey {
  std::string host;
  std::string enclave;
  std::string site;
  tracedb::CallType type = tracedb::CallType::kEcall;

  [[nodiscard]] bool operator<(const SiteKey& o) const noexcept {
    if (host != o.host) return host < o.host;
    if (enclave != o.enclave) return enclave < o.enclave;
    if (site != o.site) return site < o.site;
    return type < o.type;
  }
  [[nodiscard]] bool operator==(const SiteKey& o) const noexcept {
    return host == o.host && enclave == o.enclave && site == o.site && type == o.type;
  }
};

/// One retained point of a site's percentile series (one producer window).
struct SitePoint {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t aex = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Everything the fleet knows about one site key.
struct SiteSeries {
  /// Sum of all window deltas — the exact cumulative distribution.
  telemetry::HdrSnapshot cumulative;
  std::uint64_t calls = 0;
  std::uint64_t aex = 0;
  /// Numeric identity from the first producer that reported the site
  /// (checkpoint currency; names are the real key).
  tracedb::EnclaveId first_enclave_id = 0;
  tracedb::CallId first_call_id = 0;
  std::deque<SitePoint> points;  // bounded by retention_windows
};

/// One merged fleet window (keyed by virtual start_ns across producers).
struct FleetWindow {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t aexs = 0;
  std::uint64_t page_ins = 0;
  std::uint64_t page_outs = 0;
  std::uint64_t stream_dropped = 0;  // sum of producer cumulative counters
  std::uint32_t producers = 0;       // producer windows merged in
  std::uint32_t active_alerts = 0;
};

/// Raise/resolve state of one (site key, kind) pair.
struct AlertState {
  bool active = false;
  std::uint64_t onset_ns = 0;
  std::uint64_t resolved_ns = 0;
  std::uint64_t detail = 0;
  std::uint32_t window_index = 0;
  std::uint64_t raises = 0;  // lifetime raise count
  tracedb::EnclaveId enclave_id = 0;
  tracedb::CallId call_id = 0;
};

/// Per-producer bookkeeping, including the loss counters `serve` reports.
struct ProducerState {
  std::string host;
  std::string enclave;
  bool hello_seen = false;
  bool ended = false;        // stream closed (bye or disconnect)
  bool clean = false;        // bye frame seen before close
  std::string error;         // framing/geometry error, empty when healthy
  std::uint64_t end_ns = 0;  // from the bye frame
  std::uint64_t frames = 0;
  std::uint64_t windows = 0;
  std::uint64_t alerts = 0;
  std::uint64_t events = 0;          // from the stats frame
  std::uint64_t stream_dropped = 0;  // max of stats frame / window counters
  std::uint64_t sealed_dropped = 0;
  std::uint64_t pending_evicted = 0;
  std::uint64_t paging = 0;  // cumulative page_ins + page_outs

  /// Lossy = lost events, died mid-stream, or sent garbage.
  [[nodiscard]] bool lossy() const noexcept {
    return stream_dropped > 0 || sealed_dropped > 0 || !error.empty() || (ended && !clean);
  }

  /// The reasons behind lossy(), individually: "ring_overflow" (subscriber
  /// ring drops), "sealed_shard" (post-seal record drops), "quarantined"
  /// (framing/geometry violation) and "mid_stream_death" (stream ended
  /// without a bye frame).  Deterministic order; empty when healthy.
  [[nodiscard]] std::vector<std::string> drop_reasons() const {
    std::vector<std::string> out;
    if (stream_dropped > 0) out.push_back("ring_overflow");
    if (sealed_dropped > 0) out.push_back("sealed_shard");
    if (!error.empty()) out.push_back("quarantined");
    if (ended && !clean) out.push_back("mid_stream_death");
    return out;
  }
};

/// Daemon self-telemetry sampled by fleet::Server and embedded in the
/// `status` query response.  Every field is wall-clock derived and therefore
/// non-deterministic; callers that need byte-stable output (the corpus mode,
/// Aggregator::query) pass nullptr and get a status document without the
/// "daemon" block.
struct ServeSelfStats {
  std::uint64_t uptime_ms = 0;
  std::uint64_t bytes_ingested = 0;
  std::uint64_t producers_connected = 0;  // open ingest connections right now
  std::uint64_t producers_served = 0;     // lifetime accepts
  std::uint64_t queries_answered = 0;
  double ingest_frames_per_sec = 0.0;  // lifetime average over uptime
  std::uint64_t query_p50_us = 0;      // query-latency HDR percentiles
  std::uint64_t query_p99_us = 0;
  std::uint64_t query_max_us = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_last_ms = 0;
  std::uint64_t checkpoint_total_ms = 0;
};

using ProducerId = std::uint64_t;

class Aggregator {
 public:
  explicit Aggregator(AggregatorConfig config = {});

  /// Registers a new producer stream and returns its handle.
  ProducerId connect();
  /// Feeds raw stream bytes from one producer (any slicing).  Frames are
  /// applied as they complete; a framing error quarantines the producer.
  void ingest(ProducerId id, const char* data, std::size_t size);
  void ingest(ProducerId id, const std::string& bytes) { ingest(id, bytes.data(), bytes.size()); }
  /// End of the producer's stream.  A stream without a bye frame is kept
  /// (partial data stays merged) and flagged lossy.
  void disconnect(ProducerId id);

  // --- queries (each locks; JSON output is deterministic) -------------------

  struct TopRow {
    SiteKey key;
    std::uint64_t value = 0;  // metric the ranking used
    std::uint64_t calls = 0;
    std::uint64_t p99_ns = 0;
  };

  /// Top-`n` sites by "p99" | "transitions" | "paging" ("paging" ranks
  /// (host, enclave) producers; the key's site field is empty).
  [[nodiscard]] std::vector<TopRow> top(const std::string& by, std::size_t n) const;

  /// Full fleet snapshot (producers, retained windows, per-site cumulative
  /// percentiles, alert state, totals) as one deterministic JSON object.
  [[nodiscard]] std::string snapshot_json() const;
  [[nodiscard]] std::string top_json(const std::string& by, std::size_t n) const;
  /// Active alerts (and lifetime raise/resolve totals).
  [[nodiscard]] std::string alerts_json() const;
  /// Retained percentile series of one site key (all call types).
  [[nodiscard]] std::string series_json(const std::string& host, const std::string& enclave,
                                        const std::string& site) const;

  /// Answers one query-protocol line ("snapshot", "top <by> <n>", "alerts",
  /// "series <host> <enclave> <site>", "status"); unknown queries get a
  /// JSON error.  ("status" here carries no daemon block — fleet::Server
  /// intercepts the query to supply its ServeSelfStats.)
  [[nodiscard]] std::string query(const std::string& line) const;

  /// Health + conservation view: producer summary (with per-reason loss
  /// counts), per-producer ingest lag against the fleet's window high-water
  /// mark, the fleet ledger, and — when `self` is non-null — the daemon's
  /// self-telemetry.  Deterministic whenever `self` is null.
  [[nodiscard]] std::string status_json(const ServeSelfStats* self = nullptr) const;

  /// Appends the "fleet_ingest" stage (unit: frames; drop reason
  /// "quarantined"; producers dead mid-stream or quarantined count as
  /// indeterminate — their event loss has no knowable size, which is
  /// precisely what must fail a conservation audit).
  void fill_ledger(telemetry::Ledger& led) const;

  /// Cumulative p99 of one site key (tests compare against single-process
  /// WindowedHdr values).  nullopt if the key is unknown.
  [[nodiscard]] std::optional<std::uint64_t> site_p99(const SiteKey& key) const;

  /// Fleet windows merged so far (monotonic; drives checkpoint cadence).
  [[nodiscard]] std::uint64_t windows_merged() const;

  /// Persists the fleet series as a v5-compatible trace: one synthetic
  /// enclave per (host, enclave) producer identity, the retained fleet
  /// windows, per-site window rows, the alert history and the cumulative
  /// per-site HDR latency table — so `sgxperf stats`/`export` work on the
  /// aggregate.
  void checkpoint(tracedb::TraceDatabase& db) const;

 private:
  struct Producer {
    ProducerState state;
    FrameParser parser;
    std::uint64_t last_window_end = 0;
    std::uint64_t keys_created = 0;  // distinct fleet keys this producer added
  };

  void apply(Producer& p, const Frame& frame);
  void apply_window(Producer& p, const WindowFrame& f);
  void apply_alert(Producer& p, const AlertFrame& f);
  void prune();

  [[nodiscard]] std::vector<TopRow> top_locked(const std::string& by, std::size_t n) const;
  [[nodiscard]] std::string snapshot_json_locked() const;
  void fill_ledger_locked(telemetry::Ledger& led) const;

  AggregatorConfig config_;
  mutable std::mutex mu_;

  std::map<ProducerId, Producer> producers_;
  ProducerId next_producer_ = 1;
  std::uint64_t window_ns_ = 0;  // from the first hello

  std::map<std::uint64_t, FleetWindow> fleet_windows_;  // by start_ns
  std::map<SiteKey, SiteSeries> sites_;
  std::map<std::pair<SiteKey, tracedb::AlertKind>, AlertState> alerts_;

  std::uint64_t frames_seen_ = 0;      // frames parsed across all producers
  std::uint64_t frames_rejected_ = 0;  // parsed but rejected (quarantine)
  std::uint64_t windows_merged_ = 0;
  std::uint64_t alerts_raised_ = 0;
  std::uint64_t alerts_resolved_ = 0;
  std::uint64_t total_calls_ = 0;
  std::uint64_t total_aexs_ = 0;
  std::uint64_t total_page_ins_ = 0;
  std::uint64_t total_page_outs_ = 0;
};

}  // namespace fleet
