// Fleet aggregator: merges wire frames from N producers into one keyed
// time-series (the `sgxperf serve` core, transport-agnostic).
//
// Keying.  Every window-site row is tagged (host, enclave, site-name, call
// type) — the producer's self-declared identity from its hello frame plus
// the call site.  Site *names* (not numeric call ids) key the fleet series,
// so the same EDL function traced in different processes lands in one
// series even when call-id assignment differs; the numeric (enclave_id,
// call_id) of the first producer to report a site is kept for checkpoints.
//
// Merging.  Per-site window HDR *deltas* are summed bucket-wise into a
// cumulative fleet histogram per key — exact, order-independent (bucket
// addition commutes), and equal within bucket resolution to what one
// WindowedHdr observing the union of the streams would hold.  Producer
// windows are aligned on the virtual clock (same window_ns, epoch 0), so
// fleet windows are keyed by start_ns and merge counter-wise.
//
// Retention.  The fleet keeps the last `retention_windows` windows: older
// fleet window rows and per-site series points are pruned as new windows
// arrive; cumulative histograms, totals and alert state are never pruned —
// the aggregate stays exact, only the time-series view is bounded.
//
// Determinism.  All state lives in ordered maps keyed by (host, enclave,
// site); snapshots iterate those maps, so a snapshot is a pure function of
// the *set* of frames ingested, not of arrival interleaving.  This is what
// the multi-producer determinism test (byte-identical snapshot across runs
// and thread counts) pins.
//
// Threading: every public method takes the internal mutex — safe to ingest
// from a socket loop while another thread queries or checkpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fleet/wire.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"

namespace fleet {

struct AggregatorConfig {
  /// Fleet windows (and per-site series points) retained, oldest pruned.
  std::size_t retention_windows = 256;
  /// Distinct fleet keys (site series + alert states) one producer may
  /// create; past the cap the producer is quarantined with an error, like a
  /// framing violation (0 = unlimited).  Host/enclave/site names are
  /// producer-controlled strings, so without a cap one misbehaving producer
  /// could grow the keyed maps without bound.
  std::size_t max_keys_per_producer = 4096;
};

/// Fleet series key: producer identity plus call site.
struct SiteKey {
  std::string host;
  std::string enclave;
  std::string site;
  tracedb::CallType type = tracedb::CallType::kEcall;

  [[nodiscard]] bool operator<(const SiteKey& o) const noexcept {
    if (host != o.host) return host < o.host;
    if (enclave != o.enclave) return enclave < o.enclave;
    if (site != o.site) return site < o.site;
    return type < o.type;
  }
  [[nodiscard]] bool operator==(const SiteKey& o) const noexcept {
    return host == o.host && enclave == o.enclave && site == o.site && type == o.type;
  }
};

/// One retained point of a site's percentile series (one producer window).
struct SitePoint {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t aex = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Everything the fleet knows about one site key.
struct SiteSeries {
  /// Sum of all window deltas — the exact cumulative distribution.
  telemetry::HdrSnapshot cumulative;
  std::uint64_t calls = 0;
  std::uint64_t aex = 0;
  /// Numeric identity from the first producer that reported the site
  /// (checkpoint currency; names are the real key).
  tracedb::EnclaveId first_enclave_id = 0;
  tracedb::CallId first_call_id = 0;
  std::deque<SitePoint> points;  // bounded by retention_windows
};

/// One merged fleet window (keyed by virtual start_ns across producers).
struct FleetWindow {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t aexs = 0;
  std::uint64_t page_ins = 0;
  std::uint64_t page_outs = 0;
  std::uint64_t stream_dropped = 0;  // sum of producer cumulative counters
  std::uint32_t producers = 0;       // producer windows merged in
  std::uint32_t active_alerts = 0;
};

/// Raise/resolve state of one (site key, kind) pair.
struct AlertState {
  bool active = false;
  std::uint64_t onset_ns = 0;
  std::uint64_t resolved_ns = 0;
  std::uint64_t detail = 0;
  std::uint32_t window_index = 0;
  std::uint64_t raises = 0;  // lifetime raise count
  tracedb::EnclaveId enclave_id = 0;
  tracedb::CallId call_id = 0;
};

/// Per-producer bookkeeping, including the loss counters `serve` reports.
struct ProducerState {
  std::string host;
  std::string enclave;
  bool hello_seen = false;
  bool ended = false;        // stream closed (bye or disconnect)
  bool clean = false;        // bye frame seen before close
  std::string error;         // framing/geometry error, empty when healthy
  std::uint64_t end_ns = 0;  // from the bye frame
  std::uint64_t frames = 0;
  std::uint64_t windows = 0;
  std::uint64_t alerts = 0;
  std::uint64_t events = 0;          // from the stats frame
  std::uint64_t stream_dropped = 0;  // max of stats frame / window counters
  std::uint64_t sealed_dropped = 0;
  std::uint64_t pending_evicted = 0;
  std::uint64_t paging = 0;  // cumulative page_ins + page_outs

  /// Lossy = lost events, died mid-stream, or sent garbage.
  [[nodiscard]] bool lossy() const noexcept {
    return stream_dropped > 0 || sealed_dropped > 0 || !error.empty() || (ended && !clean);
  }
};

using ProducerId = std::uint64_t;

class Aggregator {
 public:
  explicit Aggregator(AggregatorConfig config = {});

  /// Registers a new producer stream and returns its handle.
  ProducerId connect();
  /// Feeds raw stream bytes from one producer (any slicing).  Frames are
  /// applied as they complete; a framing error quarantines the producer.
  void ingest(ProducerId id, const char* data, std::size_t size);
  void ingest(ProducerId id, const std::string& bytes) { ingest(id, bytes.data(), bytes.size()); }
  /// End of the producer's stream.  A stream without a bye frame is kept
  /// (partial data stays merged) and flagged lossy.
  void disconnect(ProducerId id);

  // --- queries (each locks; JSON output is deterministic) -------------------

  struct TopRow {
    SiteKey key;
    std::uint64_t value = 0;  // metric the ranking used
    std::uint64_t calls = 0;
    std::uint64_t p99_ns = 0;
  };

  /// Top-`n` sites by "p99" | "transitions" | "paging" ("paging" ranks
  /// (host, enclave) producers; the key's site field is empty).
  [[nodiscard]] std::vector<TopRow> top(const std::string& by, std::size_t n) const;

  /// Full fleet snapshot (producers, retained windows, per-site cumulative
  /// percentiles, alert state, totals) as one deterministic JSON object.
  [[nodiscard]] std::string snapshot_json() const;
  [[nodiscard]] std::string top_json(const std::string& by, std::size_t n) const;
  /// Active alerts (and lifetime raise/resolve totals).
  [[nodiscard]] std::string alerts_json() const;
  /// Retained percentile series of one site key (all call types).
  [[nodiscard]] std::string series_json(const std::string& host, const std::string& enclave,
                                        const std::string& site) const;

  /// Answers one query-protocol line ("snapshot", "top <by> <n>", "alerts",
  /// "series <host> <enclave> <site>"); unknown queries get a JSON error.
  [[nodiscard]] std::string query(const std::string& line) const;

  /// Cumulative p99 of one site key (tests compare against single-process
  /// WindowedHdr values).  nullopt if the key is unknown.
  [[nodiscard]] std::optional<std::uint64_t> site_p99(const SiteKey& key) const;

  /// Fleet windows merged so far (monotonic; drives checkpoint cadence).
  [[nodiscard]] std::uint64_t windows_merged() const;

  /// Persists the fleet series as a v5-compatible trace: one synthetic
  /// enclave per (host, enclave) producer identity, the retained fleet
  /// windows, per-site window rows, the alert history and the cumulative
  /// per-site HDR latency table — so `sgxperf stats`/`export` work on the
  /// aggregate.
  void checkpoint(tracedb::TraceDatabase& db) const;

 private:
  struct Producer {
    ProducerState state;
    FrameParser parser;
    std::uint64_t last_window_end = 0;
    std::uint64_t keys_created = 0;  // distinct fleet keys this producer added
  };

  void apply(Producer& p, const Frame& frame);
  void apply_window(Producer& p, const WindowFrame& f);
  void apply_alert(Producer& p, const AlertFrame& f);
  void prune();

  [[nodiscard]] std::vector<TopRow> top_locked(const std::string& by, std::size_t n) const;
  [[nodiscard]] std::string snapshot_json_locked() const;

  AggregatorConfig config_;
  mutable std::mutex mu_;

  std::map<ProducerId, Producer> producers_;
  ProducerId next_producer_ = 1;
  std::uint64_t window_ns_ = 0;  // from the first hello

  std::map<std::uint64_t, FleetWindow> fleet_windows_;  // by start_ns
  std::map<SiteKey, SiteSeries> sites_;
  std::map<std::pair<SiteKey, tracedb::AlertKind>, AlertState> alerts_;

  std::uint64_t windows_merged_ = 0;
  std::uint64_t alerts_raised_ = 0;
  std::uint64_t alerts_resolved_ = 0;
  std::uint64_t total_calls_ = 0;
  std::uint64_t total_aexs_ = 0;
  std::uint64_t total_page_ins_ = 0;
  std::uint64_t total_page_outs_ = 0;
};

}  // namespace fleet
