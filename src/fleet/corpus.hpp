// Deterministic multi-producer fleet corpus: the stress suite (PR 6) as a
// fleet load generator.
//
// Each corpus producer runs one lockstep stressor under a MonitorSession
// with a FrameSink, yielding one wire byte stream.  Lockstep scheduling
// makes every producer's stream a pure function of its (stressor, threads,
// seed, duration) spec — byte-identical across runs and thread counts — and
// the aggregator's ordered-map state makes the merged snapshot independent
// of ingest interleaving.  Together: `sgxperf fleet --corpus` produces a
// byte-stable JSON snapshot, which is the CI golden gate, and the
// multi-producer determinism test's subject.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/aggregator.hpp"

namespace fleet {

/// One simulated producer process.
struct CorpusProducerSpec {
  std::string host;
  std::string enclave;
  std::string stressor;  // stress::make_stressor name
  std::size_t threads = 2;
  std::uint64_t duration_ns = 20'000'000;
  std::uint64_t seed = 7;
  std::size_t epc_mb = 0;  // 0 = default EPC
};

struct CorpusConfig {
  std::vector<CorpusProducerSpec> producers;
  std::uint64_t window_ns = 1'000'000;
  std::size_t subscription_capacity = 1 << 18;
};

/// The default 3-producer corpus: a compute producer, a transition-storm
/// producer and an EPC-thrashing producer on distinct hosts — covering the
/// p99 / transitions / paging ranking axes.
[[nodiscard]] CorpusConfig default_corpus();

/// Runs one producer and returns its complete wire byte stream.  Throws on
/// unknown stressor names.
[[nodiscard]] std::string run_corpus_producer(const CorpusProducerSpec& spec,
                                              const CorpusConfig& config);

/// Runs every producer and ingests the streams into `agg` in interleaved
/// chunks (exercising incremental frame reassembly).
void run_corpus(Aggregator& agg, const CorpusConfig& config);

}  // namespace fleet
