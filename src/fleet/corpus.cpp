#include "fleet/corpus.hpp"

#include <stdexcept>

#include "fleet/wire.hpp"
#include "perf/logger.hpp"
#include "perf/session.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/stressor.hpp"

namespace fleet {

CorpusConfig default_corpus() {
  CorpusConfig config;
  config.producers = {
      {"host-a", "stress_cpu", "cpu", 2, 20'000'000, 7, 0},
      {"host-b", "stress_storm", "ocall-storm", 2, 20'000'000, 7, 0},
      {"host-c", "stress_vm", "vm", 2, 20'000'000, 7, 4},
      {"host-d", "stress_order", "order", 2, 20'000'000, 7, 0},
  };
  return config;
}

std::string run_corpus_producer(const CorpusProducerSpec& spec, const CorpusConfig& config) {
  auto stressor = stress::make_stressor(spec.stressor);
  if (stressor == nullptr) {
    throw std::runtime_error("fleet corpus: unknown stressor '" + spec.stressor + "'");
  }

  const std::size_t epc_pages = spec.epc_mb > 0
                                    ? spec.epc_mb * (1024 * 1024 / sgxsim::kPageSize)
                                    : sgxsim::Driver::kDefaultEpcPages;
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched), epc_pages);
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  stress::StressConfig stress_config;
  stress_config.threads = spec.threads;
  stress_config.duration_ns = spec.duration_ns;
  stress_config.seed = spec.seed;
  stress_config.lockstep = true;  // the determinism anchor

  // Prepare before the session subscribes: the stressor's orderliness model
  // is keyed by the enclave ids prepare() creates, and the producer's online
  // analyser needs that model at construction.  The enclave-created stream
  // events are skipped (no subscriber yet), which the checker tolerates.
  stressor->prepare(urts, stress_config);

  perf::MonitorSessionConfig session_config;
  session_config.identity = {spec.host, spec.enclave};
  session_config.subscription_name = "fleet-corpus";
  session_config.subscription_capacity = config.subscription_capacity;
  session_config.online.window_ns = config.window_ns;
  session_config.online.order = stressor->order_model();
  perf::MonitorSession session(logger, urts, session_config);
  if (!session.ok()) throw std::runtime_error("fleet corpus: no free subscriber slot");

  std::string stream;
  session.add_sink(FrameSink::to_string(stream));

  stress::run_stressor(*stressor, urts, stress_config, /*already_prepared=*/true);

  // The workload has quiesced (run_stressor joins its workers): one drain
  // picks up every event, then the detach seals the database so finish()
  // reads the exact virtual end time.
  session.poll();
  logger.detach();
  session.finish();
  return stream;
}

void run_corpus(Aggregator& agg, const CorpusConfig& config) {
  std::vector<std::string> streams;
  streams.reserve(config.producers.size());
  for (const auto& spec : config.producers) {
    streams.push_back(run_corpus_producer(spec, config));
  }
  std::vector<ProducerId> ids;
  ids.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) ids.push_back(agg.connect());
  // Round-robin in deliberately awkward chunks: frames arrive sliced across
  // ingest calls and interleaved across producers, proving reassembly and
  // order-independence.
  constexpr std::size_t kChunk = 4093;  // prime, misaligned with frame sizes
  std::vector<std::size_t> offsets(streams.size(), 0);
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      const std::string& s = streams[i];
      if (offsets[i] >= s.size()) continue;
      const std::size_t n = std::min(kChunk, s.size() - offsets[i]);
      agg.ingest(ids[i], s.data() + offsets[i], n);
      offsets[i] += n;
      progress = true;
    }
  }
  for (const auto id : ids) agg.disconnect(id);
}

}  // namespace fleet
