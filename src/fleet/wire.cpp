#include "fleet/wire.hpp"

#include "support/strutil.hpp"
#include "telemetry/hdr_histogram.hpp"

namespace fleet {
namespace {

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_string(std::string& out, const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xffff);
  put_u16(out, static_cast<std::uint16_t>(n));
  out.append(s.data(), n);
}

/// Wraps `payload` in the frame header and appends it to `out`.
void put_frame(std::string& out, FrameType type, const std::string& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u8(out, static_cast<std::uint8_t>(type));
  out += payload;
}

/// Bounds-checked big-endian-free reader over one frame payload.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1) ? byte(pos_ - 1) : 0); }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(byte(pos_ - 2) | (byte(pos_ - 1) << 8));
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(byte(pos_ - 4 + i)) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(byte(pos_ - 8 + i)) << (8 * i);
    return v;
  }

  std::string str() {
    const std::uint16_t n = u16();
    if (!take(n)) return {};
    return std::string(data_ + pos_ - n, n);
  }

 private:
  [[nodiscard]] std::uint8_t byte(std::size_t i) const {
    return static_cast<std::uint8_t>(data_[i]);
  }

  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::optional<Frame> decode_payload(FrameType type, const char* data, std::size_t size,
                                    std::string& error) {
  Cursor c(data, size);
  Frame frame;
  switch (type) {
    case FrameType::kHello: {
      HelloFrame f;
      f.version = c.u16();
      f.hdr_sub_bits = c.u8();
      f.hdr_max_exponent = c.u8();
      f.window_ns = c.u64();
      f.host = c.str();
      f.enclave = c.str();
      frame = std::move(f);
      break;
    }
    case FrameType::kWindow: {
      WindowFrame f;
      auto& w = f.window;
      w.window_index = c.u32();
      w.start_ns = c.u64();
      w.end_ns = c.u64();
      w.calls = c.u64();
      w.aexs = c.u64();
      w.page_ins = c.u64();
      w.page_outs = c.u64();
      w.stream_dropped = c.u64();
      w.switchless_calls = c.u64();
      w.switchless_fallbacks = c.u64();
      w.switchless_wasted_ns = c.u64();
      w.active_alerts = c.u32();
      const std::uint32_t site_count = c.u32();
      for (std::uint32_t i = 0; i < site_count && c.ok(); ++i) {
        WireSite s;
        s.row.window_index = w.window_index;
        s.row.enclave_id = c.u64();
        s.row.type = c.u8() == 0 ? tracedb::CallType::kEcall : tracedb::CallType::kOcall;
        s.row.call_id = c.u32();
        s.name = c.str();
        s.row.calls = c.u64();
        s.row.aex_count = c.u64();
        s.row.p50_ns = c.u64();
        s.row.p99_ns = c.u64();
        s.delta_count = c.u64();
        s.delta_sum = c.u64();
        const std::uint32_t pairs = c.u32();
        for (std::uint32_t p = 0; p < pairs && c.ok(); ++p) {
          const std::uint32_t bucket = c.u32();
          const std::uint64_t count = c.u64();
          s.buckets.emplace_back(bucket, count);
        }
        f.sites.push_back(std::move(s));
      }
      frame = std::move(f);
      break;
    }
    case FrameType::kAlert: {
      AlertFrame f;
      f.resolved = c.u8() != 0;
      const std::uint8_t kind = c.u8();
      if (kind >= tracedb::kAlertKindCount) {
        error = "alert frame with unknown kind";
        return std::nullopt;
      }
      f.alert.kind = static_cast<tracedb::AlertKind>(kind);
      f.alert.enclave_id = c.u64();
      f.alert.type = c.u8() == 0 ? tracedb::CallType::kEcall : tracedb::CallType::kOcall;
      f.alert.call_id = c.u32();
      f.alert.onset_ns = c.u64();
      f.alert.resolved_ns = c.u64();
      f.alert.window_index = c.u32();
      f.alert.detail = c.u64();
      f.site_name = c.str();
      frame = std::move(f);
      break;
    }
    case FrameType::kStats: {
      StatsFrame f;
      f.events = c.u64();
      f.stream_dropped = c.u64();
      f.sealed_dropped = c.u64();
      f.pending_evicted = c.u64();
      frame = std::move(f);
      break;
    }
    case FrameType::kBye: {
      ByeFrame f;
      f.end_ns = c.u64();
      frame = std::move(f);
      break;
    }
    default:
      error = support::format("unknown frame type %u", static_cast<unsigned>(type));
      return std::nullopt;
  }
  if (!c.ok() || !c.done()) {
    error = support::format("malformed frame payload (type %u, %zu bytes)",
                            static_cast<unsigned>(type), size);
    return std::nullopt;
  }
  return frame;
}

}  // namespace

void encode_magic(std::string& out) { put_u32(out, kWireMagic); }

void encode(std::string& out, const HelloFrame& f) {
  std::string p;
  put_u16(p, f.version);
  put_u8(p, f.hdr_sub_bits);
  put_u8(p, f.hdr_max_exponent);
  put_u64(p, f.window_ns);
  put_string(p, f.host);
  put_string(p, f.enclave);
  put_frame(out, FrameType::kHello, p);
}

void encode(std::string& out, const WindowFrame& f) {
  std::string p;
  const auto& w = f.window;
  put_u32(p, w.window_index);
  put_u64(p, w.start_ns);
  put_u64(p, w.end_ns);
  put_u64(p, w.calls);
  put_u64(p, w.aexs);
  put_u64(p, w.page_ins);
  put_u64(p, w.page_outs);
  put_u64(p, w.stream_dropped);
  put_u64(p, w.switchless_calls);
  put_u64(p, w.switchless_fallbacks);
  put_u64(p, w.switchless_wasted_ns);
  put_u32(p, w.active_alerts);
  put_u32(p, static_cast<std::uint32_t>(f.sites.size()));
  for (const auto& s : f.sites) {
    put_u64(p, s.row.enclave_id);
    put_u8(p, s.row.type == tracedb::CallType::kEcall ? 0 : 1);
    put_u32(p, s.row.call_id);
    put_string(p, s.name);
    put_u64(p, s.row.calls);
    put_u64(p, s.row.aex_count);
    put_u64(p, s.row.p50_ns);
    put_u64(p, s.row.p99_ns);
    put_u64(p, s.delta_count);
    put_u64(p, s.delta_sum);
    put_u32(p, static_cast<std::uint32_t>(s.buckets.size()));
    for (const auto& [bucket, count] : s.buckets) {
      put_u32(p, bucket);
      put_u64(p, count);
    }
  }
  put_frame(out, FrameType::kWindow, p);
}

void encode(std::string& out, const AlertFrame& f) {
  std::string p;
  put_u8(p, f.resolved ? 1 : 0);
  put_u8(p, static_cast<std::uint8_t>(f.alert.kind));
  put_u64(p, f.alert.enclave_id);
  put_u8(p, f.alert.type == tracedb::CallType::kEcall ? 0 : 1);
  put_u32(p, f.alert.call_id);
  put_u64(p, f.alert.onset_ns);
  put_u64(p, f.alert.resolved_ns);
  put_u32(p, f.alert.window_index);
  put_u64(p, f.alert.detail);
  put_string(p, f.site_name);
  put_frame(out, FrameType::kAlert, p);
}

void encode(std::string& out, const StatsFrame& f) {
  std::string p;
  put_u64(p, f.events);
  put_u64(p, f.stream_dropped);
  put_u64(p, f.sealed_dropped);
  put_u64(p, f.pending_evicted);
  put_frame(out, FrameType::kStats, p);
}

void encode(std::string& out, const ByeFrame& f) {
  std::string p;
  put_u64(p, f.end_ns);
  put_frame(out, FrameType::kBye, p);
}

// --- FrameSink --------------------------------------------------------------

std::shared_ptr<FrameSink> FrameSink::to_string(std::string& out) {
  return std::make_shared<FrameSink>([&out](const char* data, std::size_t size) {
    out.append(data, size);
    return true;
  });
}

void FrameSink::emit(const std::string& bytes) {
  frames_produced_ += 1;
  if (write_ && write_(bytes.data(), bytes.size())) {
    frames_delivered_ += 1;
  } else {
    frames_dropped_ += 1;
  }
}

void FrameSink::fill_ledger(telemetry::Ledger& led) const {
  auto& wire = led.stage("fleet_wire", "frames");
  wire.produced += frames_produced_;
  wire.delivered += frames_delivered_;
  wire.add_drop("consumer_gone", frames_dropped_);
}

void FrameSink::on_session_start(const perf::SessionInfo& info) {
  std::string out;
  encode_magic(out);
  HelloFrame hello;
  hello.hdr_sub_bits = static_cast<std::uint8_t>(telemetry::hdr::kSubBits);
  hello.hdr_max_exponent = static_cast<std::uint8_t>(telemetry::hdr::kMaxExponent);
  hello.window_ns = info.window_ns;
  hello.host = info.identity.host;
  hello.enclave = info.identity.enclave;
  encode(out, hello);
  emit(out);
}

void FrameSink::on_alert(const tracedb::AlertRecord& alert, bool resolved,
                         const std::string& site_name) {
  AlertFrame f;
  f.alert = alert;
  f.resolved = resolved;
  f.site_name = site_name;
  std::string out;
  encode(out, f);
  emit(out);
}

void FrameSink::on_window(const tracedb::WindowRecord& window,
                          const std::vector<perf::SessionWindowSite>& sites) {
  WindowFrame f;
  f.window = window;
  f.sites.reserve(sites.size());
  for (const auto& s : sites) {
    WireSite w;
    w.row = s.row;
    w.name = s.name;
    w.delta_count = s.delta.count();
    w.delta_sum = s.delta.sum();
    const auto& buckets = s.delta.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] > 0) w.buckets.emplace_back(static_cast<std::uint32_t>(i), buckets[i]);
    }
    f.sites.push_back(std::move(w));
  }
  std::string out;
  encode(out, f);
  emit(out);
}

void FrameSink::on_stats(const perf::SessionStats& stats) {
  StatsFrame f;
  f.events = stats.events;
  f.stream_dropped = stats.stream_dropped;
  f.sealed_dropped = stats.sealed_dropped;
  f.pending_evicted = stats.pending_evicted;
  std::string out;
  encode(out, f);
  emit(out);
}

void FrameSink::on_finish(std::uint64_t end_ns) {
  ByeFrame f;
  f.end_ns = end_ns;
  std::string out;
  encode(out, f);
  emit(out);
}

// --- FrameParser ------------------------------------------------------------

void FrameParser::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

void FrameParser::push(const char* data, std::size_t size) {
  if (error()) return;
  buf_.append(data, size);
}

std::optional<Frame> FrameParser::next() {
  if (error()) return std::nullopt;
  // Reclaim the consumed prefix lazily so repeated small pushes stay O(1)
  // amortised.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  auto avail = [&] { return buf_.size() - pos_; };
  if (!saw_magic_) {
    if (avail() < 4) return std::nullopt;
    std::uint32_t magic = 0;
    for (int i = 0; i < 4; ++i) {
      magic |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
    }
    if (magic != kWireMagic) {
      fail("bad stream magic");
      return std::nullopt;
    }
    pos_ += 4;
    saw_magic_ = true;
  }
  if (avail() < 5) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
  }
  if (len > kMaxPayload) {
    fail(support::format("frame payload length %u exceeds limit", len));
    return std::nullopt;
  }
  if (avail() < 5 + static_cast<std::size_t>(len)) return std::nullopt;
  const auto type = static_cast<FrameType>(static_cast<std::uint8_t>(buf_[pos_ + 4]));
  std::string error;
  auto frame = decode_payload(type, buf_.data() + pos_ + 5, len, error);
  if (!frame.has_value()) {
    fail(std::move(error));
    return std::nullopt;
  }
  pos_ += 5 + len;
  return frame;
}

}  // namespace fleet
