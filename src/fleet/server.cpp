#include "fleet/server.hpp"

#include "telemetry/prometheus.hpp"
#include "tracedb/open.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fleet {
namespace {

/// Binds a listening UNIX-domain socket at `path`, unlinking any stale one.
int listen_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "fleet: socket path too long: %s\n", path.c_str());
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "fleet: socket: %s\n", std::strerror(errno));
    return -1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    std::fprintf(stderr, "fleet: bind/listen %s: %s\n", path.c_str(), std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking full write to a socket.  MSG_NOSIGNAL: a peer that disconnects
/// mid-write must surface as EPIPE, not as a process-killing SIGPIPE.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// A query client that accepts a response slower than this is presumed stuck
/// and dropped (its fd would otherwise be held until daemon shutdown).
constexpr std::chrono::milliseconds kResponseStall{5000};

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)), agg_(config_.aggregator) {}

Server::~Server() {
  for (auto& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (ingest_fd_ >= 0) {
    ::close(ingest_fd_);
    ::unlink(config_.ingest_path.c_str());
  }
  if (query_fd_ >= 0) {
    ::close(query_fd_);
    ::unlink(config_.query_path.c_str());
  }
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool Server::start() {
  if (config_.ingest_path.empty()) {
    std::fprintf(stderr, "fleet: no ingest socket path configured\n");
    return false;
  }
  ingest_fd_ = listen_unix(config_.ingest_path);
  if (ingest_fd_ < 0) return false;
  if (!config_.query_path.empty()) {
    query_fd_ = listen_unix(config_.query_path);
    if (query_fd_ < 0) return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    std::fprintf(stderr, "fleet: pipe: %s\n", std::strerror(errno));
    return false;
  }
  return true;
}

void Server::stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 0;
    // Best-effort wake; the poll timeout bounds the latency anyway.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  if (!conn.is_query) agg_.disconnect(conn.producer);
  ::close(conn.fd);
  conn.fd = -1;
}

/// Pushes pending response bytes without ever blocking the poll loop.
/// Returns true when the connection is done (fully drained, or the client is
/// gone) — the remainder, if any, waits for the next POLLOUT.
bool Server::drain_response(Connection& conn) {
  while (conn.response_off < conn.response.size()) {
    const ssize_t n = ::send(conn.fd, conn.response.data() + conn.response_off,
                             conn.response.size() - conn.response_off,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;  // socket buffer full
      return true;  // EPIPE/ECONNRESET: client vanished, response is moot
    }
    conn.response_off += static_cast<std::size_t>(n);
    conn.last_progress = std::chrono::steady_clock::now();
  }
  return true;
}

void Server::maybe_checkpoint(bool force) {
  if (config_.checkpoint_path.empty() && config_.prom_out_path.empty()) return;
  const std::uint64_t merged = agg_.windows_merged();
  if (!force) {
    if (config_.checkpoint_every_windows == 0) return;
    if (merged - last_checkpoint_windows_ < config_.checkpoint_every_windows) return;
  }
  last_checkpoint_windows_ = merged;
  if (!config_.checkpoint_path.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    tracedb::TraceDatabase db;
    agg_.checkpoint(db);
    try {
      // Atomic commit (temp + rename for flat files, the store writer's own
      // protocol for ".store" paths): a dashboard opening the checkpoint — or
      // a restart after a crash mid-write — never sees a half-written trace.
      tracedb::save_trace_atomic(db, config_.checkpoint_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet: checkpoint failed: %s\n", e.what());
    }
    const auto ms = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                   std::chrono::steady_clock::now() - t0)
                                                   .count());
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    checkpoint_last_ms_.store(ms, std::memory_order_relaxed);
    checkpoint_total_ms_.fetch_add(ms, std::memory_order_relaxed);
  }
  write_prom_out();
}

ServeSelfStats Server::self_stats() const {
  ServeSelfStats s;
  const auto now = std::chrono::steady_clock::now();
  s.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - started_).count());
  s.bytes_ingested = bytes_ingested_.load(std::memory_order_relaxed);
  for (const auto& conn : conns_) {
    if (conn.fd >= 0 && !conn.is_query) s.producers_connected += 1;
  }
  s.producers_served = producers_served_;
  s.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  const auto lat = query_latency_us_.snapshot();
  s.query_p50_us = lat.value_at_percentile(50.0);
  s.query_p99_us = lat.value_at_percentile(99.0);
  s.query_max_us = lat.max_value();
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_last_ms = checkpoint_last_ms_.load(std::memory_order_relaxed);
  s.checkpoint_total_ms = checkpoint_total_ms_.load(std::memory_order_relaxed);
  // Lifetime average; the fleet ledger carries the exact frame totals.
  telemetry::Ledger led;
  agg_.fill_ledger(led);
  const telemetry::LedgerStage* ingest = led.find("fleet_ingest");
  if (ingest != nullptr && s.uptime_ms > 0) {
    s.ingest_frames_per_sec =
        static_cast<double>(ingest->produced) * 1000.0 / static_cast<double>(s.uptime_ms);
  }
  return s;
}

std::string Server::answer_query(const std::string& request) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string response;
  // "status" (with optional trailing whitespace) is the daemon's own query:
  // the aggregator supplies producers/lag/ledger, the server the self block.
  std::string verb = request;
  while (!verb.empty() && (verb.back() == ' ' || verb.back() == '\t' || verb.back() == '\r')) {
    verb.pop_back();
  }
  if (verb == "status") {
    const ServeSelfStats self = self_stats();
    response = agg_.status_json(&self);
  } else {
    response = agg_.query(request);
  }
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  query_latency_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() - t0)
          .count()));
  return response;
}

void Server::write_prom_out() {
  if (config_.prom_out_path.empty()) return;
  telemetry::Ledger led;
  agg_.fill_ledger(led);
  std::vector<telemetry::MetricSnapshotRow> rows;
  telemetry::append_ledger_rows(led, rows);
  const ServeSelfStats self = self_stats();
  const auto counter = [&rows](const char* name, double v) {
    rows.push_back({name, "", telemetry::MetricKind::kCounter, v});
  };
  const auto gauge = [&rows](const char* name, double v) {
    rows.push_back({name, "", telemetry::MetricKind::kGauge, v});
  };
  gauge("serve.uptime_ms", static_cast<double>(self.uptime_ms));
  counter("serve.bytes_ingested", static_cast<double>(self.bytes_ingested));
  gauge("serve.producers_connected", static_cast<double>(self.producers_connected));
  counter("serve.producers_served", static_cast<double>(self.producers_served));
  counter("serve.queries_answered", static_cast<double>(self.queries_answered));
  gauge("serve.ingest_frames_per_sec", self.ingest_frames_per_sec);
  gauge("serve.query_p50_us", static_cast<double>(self.query_p50_us));
  gauge("serve.query_p99_us", static_cast<double>(self.query_p99_us));
  gauge("serve.query_max_us", static_cast<double>(self.query_max_us));
  counter("serve.checkpoints", static_cast<double>(self.checkpoints));
  gauge("serve.checkpoint_last_ms", static_cast<double>(self.checkpoint_last_ms));
  counter("serve.checkpoint_total_ms", static_cast<double>(self.checkpoint_total_ms));
  const std::string text = telemetry::render_prometheus(rows);

  // Temp + rename: a scraper reading the path never sees a torn snapshot.
  const std::string tmp = config_.prom_out_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet: cannot write %s: %s\n", tmp.c_str(), std::strerror(errno));
    return;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), config_.prom_out_path.c_str()) != 0) {
    std::fprintf(stderr, "fleet: prom-out write failed: %s\n", std::strerror(errno));
    std::remove(tmp.c_str());
  }
}

void Server::maybe_self_stat() {
  if (config_.self_stat_interval_ms == 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (next_self_stat_.time_since_epoch().count() == 0) {
    next_self_stat_ = now + std::chrono::milliseconds(config_.self_stat_interval_ms);
    return;
  }
  if (now < next_self_stat_) return;
  next_self_stat_ = now + std::chrono::milliseconds(config_.self_stat_interval_ms);
  const ServeSelfStats self = self_stats();
  std::fprintf(stderr, "%s\n", agg_.status_json(&self).c_str());
}

std::uint64_t Server::run() {
  using Clock = std::chrono::steady_clock;
  auto last_activity = Clock::now();
  char buf[1 << 16];

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({ingest_fd_, POLLIN, 0});
    if (query_fd_ >= 0) fds.push_back({query_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (const auto& conn : conns_) {
      // A query connection with a pending response only waits for the
      // socket to accept more bytes; its request is already complete.
      const short events = conn.is_query && !conn.response.empty() ? POLLOUT : POLLIN;
      fds.push_back({conn.fd, events, 0});
    }

    const int timeout_ms = config_.idle_exit_ms > 0 ? 50 : 500;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "fleet: poll: %s\n", std::strerror(errno));
      break;
    }

    if (fds[0].revents != 0) {
      (void)!::read(wake_pipe_[0], buf, sizeof(buf));
    }
    // Accept new producer / query connections.
    if (fds[1].revents != 0) {
      for (;;) {
        const int fd = ::accept(ingest_fd_, nullptr, nullptr);
        if (fd < 0) break;
        Connection conn;
        conn.fd = fd;
        conn.producer = agg_.connect();
        producers_served_ += 1;
        conns_.push_back(conn);
        last_activity = Clock::now();
        break;  // accept one per wakeup; level-triggered poll re-fires
      }
    }
    if (query_fd_ >= 0 && fds[2].revents != 0) {
      const int fd = ::accept(query_fd_, nullptr, nullptr);
      if (fd >= 0) {
        Connection conn;
        conn.fd = fd;
        conn.is_query = true;
        conns_.push_back(conn);
        last_activity = Clock::now();
      }
    }

    // Service established connections.  conns_ may have grown past the
    // pollfd set this round; the new entries are picked up next iteration.
    for (std::size_t i = 0; i < conns_.size() && conn_base + i < fds.size(); ++i) {
      Connection& conn = conns_[i];
      if (conn.fd < 0 || fds[conn_base + i].revents == 0) continue;
      last_activity = Clock::now();
      if (conn.is_query && !conn.response.empty()) {
        if (drain_response(conn)) close_connection(conn);
        continue;
      }
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        if (conn.is_query && !conn.request.empty()) {
          // Client half-closed without a newline: treat the buffer as the
          // full request; the response drains via POLLOUT.
          conn.response = answer_query(conn.request) + "\n";
          conn.last_progress = Clock::now();
          if (drain_response(conn)) close_connection(conn);
          continue;
        }
        close_connection(conn);
        continue;
      }
      if (conn.is_query) {
        conn.request.append(buf, static_cast<std::size_t>(n));
        const auto eol = conn.request.find('\n');
        if (eol != std::string::npos) {
          conn.request.resize(eol);
          conn.response = answer_query(conn.request) + "\n";
          conn.last_progress = Clock::now();
          if (drain_response(conn)) close_connection(conn);
        }
      } else {
        bytes_ingested_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
        agg_.ingest(conn.producer, buf, static_cast<std::size_t>(n));
        maybe_checkpoint(/*force=*/false);
      }
    }
    // Drop query clients whose response has made no progress for too long —
    // a connected-but-not-reading client must not pin its fd (and buffered
    // snapshot) until shutdown.
    for (auto& conn : conns_) {
      if (conn.fd < 0 || conn.response.empty()) continue;
      if (Clock::now() - conn.last_progress >= kResponseStall) close_connection(conn);
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Connection& c) { return c.fd < 0; }),
                 conns_.end());

    maybe_self_stat();
    if (config_.idle_exit_ms > 0 && conns_.empty()) {
      const auto idle =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - last_activity);
      if (idle.count() >= static_cast<long long>(config_.idle_exit_ms)) break;
    }
  }

  for (auto& conn : conns_) close_connection(conn);
  conns_.clear();
  maybe_checkpoint(/*force=*/true);
  return producers_served_;
}

std::string query_server(const std::string& query_path, const std::string& request) {
  const int fd = connect_unix(query_path);
  if (fd < 0) {
    throw std::runtime_error("cannot connect to query socket " + query_path + ": " +
                             std::strerror(errno));
  }
  const std::string line = request + "\n";
  if (!write_all(fd, line.data(), line.size())) {
    ::close(fd);
    throw std::runtime_error("query write failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[1 << 14];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // Strip the trailing response newline; callers print their own.
  if (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

bool send_producer_stream(const std::string& ingest_path, const std::string& bytes) {
  const int fd = connect_unix(ingest_path);
  if (fd < 0) return false;
  const bool ok = write_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  return ok;
}

int connect_ingest(const std::string& ingest_path) { return connect_unix(ingest_path); }

}  // namespace fleet
