#include "minikv/proxy.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "support/strutil.hpp"

namespace minikv {

using sgxsim::CallId;
using sgxsim::SgxStatus;
using sgxsim::TrustedContext;

const char* const kKvEdl = R"(
enclave {
  trusted {
    public int ecall_handle_input_from_client([user_check] void* host,
                                              [in, size=len] const uint8_t* buf, size_t len);
    public int ecall_handle_input_from_server([user_check] void* host,
                                              [in, size=len] const uint8_t* buf, size_t len);
  };
  untrusted {
    void ocall_send_to_server([user_check] void* host, [in, size=len] const uint8_t* buf, size_t len);
    void ocall_send_to_client([user_check] void* host, uint64_t client_id,
                              [in, size=len] const uint8_t* buf, size_t len);
    void ocall_print_debug([in, size=len] const char* msg, size_t len);
    void ocall_get_time([out, size=8] uint64_t* now);
    void ocall_log_error([in, size=len] const char* msg, size_t len);
    void ocall_metrics_update([user_check] void* metrics);
  };
};
)";

/// Same interface with both ecalls marked switchless (SDK 2.x
/// `transition_using_threads`) — selected via Config::switchless_ecalls.
const char* const kKvEdlSwitchless = R"(
enclave {
  trusted {
    public int ecall_handle_input_from_client([user_check] void* host,
                                              [in, size=len] const uint8_t* buf, size_t len)
        transition_using_threads;
    public int ecall_handle_input_from_server([user_check] void* host,
                                              [in, size=len] const uint8_t* buf, size_t len)
        transition_using_threads;
  };
  untrusted {
    void ocall_send_to_server([user_check] void* host, [in, size=len] const uint8_t* buf, size_t len);
    void ocall_send_to_client([user_check] void* host, uint64_t client_id,
                              [in, size=len] const uint8_t* buf, size_t len);
    void ocall_print_debug([in, size=len] const char* msg, size_t len);
    void ocall_get_time([out, size=8] uint64_t* now);
    void ocall_log_error([in, size=len] const char* msg, size_t len);
    void ocall_metrics_update([user_check] void* metrics);
  };
};
)";

namespace {

enum class KvOcall : CallId {
  kSendToServer = 0,
  kSendToClient = 1,
  kPrintDebug = 2,
  kGetTime = 3,       // never called
  kLogError = 4,      // never called
  kMetricsUpdate = 5, // never called
};

SgxStatus ocall_send_to_server(void* msp) {
  auto* ms = static_cast<KvMs*>(msp);
  auto* proxy = static_cast<KvProxy*>(ms->host);
  std::vector<std::uint8_t> bytes(ms->buf, ms->buf + ms->len);
  // The backend handles the (encrypted) request synchronously and the reply
  // lands in the proxy's per-client server mailbox.
  const auto request = Request::deserialize(bytes);
  if (request && request->client_id < KvProxy::kMaxClients) {
    const Response resp = proxy->store.handle(*request);
    proxy->to_server_slot[request->client_id] = resp.serialize();
  }
  return SgxStatus::kSuccess;
}

SgxStatus ocall_send_to_client(void* msp) {
  auto* ms = static_cast<KvMs*>(msp);
  auto* proxy = static_cast<KvProxy*>(ms->host);
  if (ms->client_id < KvProxy::kMaxClients) {
    proxy->to_client_slot[ms->client_id].assign(ms->buf, ms->buf + ms->len);
  }
  return SgxStatus::kSuccess;
}

SgxStatus ocall_print_debug(void* msp) {
  auto* ms = static_cast<KvMs*>(msp);
  auto* proxy = static_cast<KvProxy*>(ms->host);
  proxy->debug_prints.fetch_add(1, std::memory_order_relaxed);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_never_called(void* /*ms*/) { return SgxStatus::kSuccess; }

/// Authenticated encryption of a blob: ChaCha20 keystream + truncated
/// HMAC-SHA-256 tag appended (8 bytes).  Deterministic when `nonce_seed` is
/// fixed (used for paths so equal paths map to equal ciphertexts, like
/// SecureKeeper's deterministic path encryption).
std::vector<std::uint8_t> seal(const crypto::ChaChaKey& key, std::uint64_t nonce_seed,
                               const std::vector<std::uint8_t>& plain) {
  crypto::ChaChaNonce nonce{};
  std::memcpy(nonce.data(), &nonce_seed, sizeof(nonce_seed));
  std::vector<std::uint8_t> out = plain;
  crypto::chacha20_crypt(key, nonce, 1, out.data(), out.size());
  const auto tag = crypto::hmac_sha256(key.data(), key.size(), out.data(), out.size());
  out.insert(out.end(), tag.begin(), tag.begin() + 8);
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&nonce_seed),
             reinterpret_cast<const std::uint8_t*>(&nonce_seed) + 8);
  return out;
}

std::optional<std::vector<std::uint8_t>> unseal(const crypto::ChaChaKey& key,
                                                const std::vector<std::uint8_t>& sealed) {
  if (sealed.size() < 16) return std::nullopt;
  std::uint64_t nonce_seed = 0;
  std::memcpy(&nonce_seed, sealed.data() + sealed.size() - 8, 8);
  std::vector<std::uint8_t> cipher(sealed.begin(), sealed.end() - 16);
  const auto expected =
      crypto::hmac_sha256(key.data(), key.size(), cipher.data(), cipher.size());
  if (std::memcmp(expected.data(), sealed.data() + sealed.size() - 16, 8) != 0) {
    return std::nullopt;
  }
  crypto::ChaChaNonce nonce{};
  std::memcpy(nonce.data(), &nonce_seed, sizeof(nonce_seed));
  crypto::chacha20_crypt(key, nonce, 1, cipher.data(), cipher.size());
  return cipher;
}

}  // namespace

KvProxy::Config::Config() {
  enclave.name = "securekeeper-proxy";
  enclave.code_pages = 48;
  enclave.heap_pages = 128;
  enclave.stack_pages = 8;
  enclave.tcs_count = 24;
}

struct KvProxy::TrustedState {
  struct Session {
    std::atomic<bool> active{false};
    std::uint64_t nonce_counter = 0;
    sgxsim::MutexId queue_mutex = 0;
    std::vector<std::uint64_t> in_flight;  // per-client request queue
    /// Session crypto/IO buffers allocated at connect time — SecureKeeper's
    /// start-up working set is dominated by this kind of initialisation
    /// (322 pages at start-up vs 94 in steady state, §5.2.4).
    sgxsim::EnclaveAddr buffers = 0;
    static constexpr std::uint64_t kBufferPages = 16;
  };

  void* host = nullptr;  // the untrusted KvProxy (ocall target)
  crypto::ChaChaKey key{};
  sgxsim::MutexId map_mutex = 0;
  std::array<Session, kMaxClients> sessions;
  support::Nanoseconds crypto_ns_per_byte = 8;
  std::uint32_t connect_spin_iterations = 0;
};

KvProxy::KvProxy(sgxsim::Urts& urts, Store& backing_store, Config config)
    : store(backing_store), urts_(urts), trusted_(std::make_unique<TrustedState>()) {
  eid_ = urts_.create_enclave(
      config.enclave,
      sgxsim::edl::parse(config.switchless_ecalls ? kKvEdlSwitchless : kKvEdl));
  table_ = sgxsim::make_ocall_table({
      &ocall_send_to_server, &ocall_send_to_client, &ocall_print_debug,
      &ocall_never_called, &ocall_never_called, &ocall_never_called,
  });

  sgxsim::Enclave& enclave = urts_.enclave(eid_);
  TrustedState* ts = trusted_.get();
  ts->crypto_ns_per_byte = config.crypto_ns_per_byte;
  ts->connect_spin_iterations = config.connect_spin_iterations;
  ts->key.fill(0x42);
  ts->map_mutex = enclave.create_mutex();
  for (auto& session : ts->sessions) {
    session.queue_mutex = enclave.create_mutex();
  }

  enclave.register_ecall(
      "ecall_handle_input_from_client", [ts](TrustedContext& ctx, void* msp) {
        auto* ms = static_cast<KvMs*>(msp);
        ctx.copy_in(ms->len);
        ctx.work(3'000);  // transport decode + request parsing
        const auto request =
            Request::deserialize(std::vector<std::uint8_t>(ms->buf, ms->buf + ms->len));
        if (!request || request->client_id >= kMaxClients) {
          return SgxStatus::kInvalidParameter;
        }
        auto& session = ts->sessions[request->client_id];

        if (request->op == OpCode::kConnect) {
          // Connection path: the shared session map is written under the
          // in-enclave mutex — the §5.2.4 contention point when all clients
          // connect simultaneously.
          if (auto st = ctx.mutex_lock(ts->map_mutex); st != SgxStatus::kSuccess) return st;
          ctx.work(1'000);  // map insert
          // Session initialisation holds the lock for real time too, so a
          // simultaneous connect storm contends like the paper observed.
          for (volatile std::uint32_t spin = 0; spin < ts->connect_spin_iterations;
               spin = spin + 1) {
          }
          if (session.buffers == 0) {
            // Allocate (and zero) the session's crypto/IO buffers: the bulk
            // of the start-up working set.
            session.buffers =
                ctx.malloc(TrustedState::Session::kBufferPages * sgxsim::kPageSize);
          }
          session.active.store(true, std::memory_order_release);
          session.nonce_counter = 1;
          if (auto st = ctx.mutex_unlock(ts->map_mutex); st != SgxStatus::kSuccess) return st;
          // Debug print during connection establishment (the "remaining
          // ocalls" the paper observed).
          const std::string msg =
              support::format("client %llu connected",
                              static_cast<unsigned long long>(request->client_id));
          KvMs print;
          print.host = ts->host;
          print.buf = reinterpret_cast<const std::uint8_t*>(msg.data());
          print.len = msg.size();
          ctx.ocall(static_cast<CallId>(KvOcall::kPrintDebug), &print);

          KvMs fwd;
          fwd.host = ts->host;
          const auto bytes = request->serialize();
          fwd.buf = bytes.data();
          fwd.len = bytes.size();
          ctx.copy_out(bytes.size());
          return ctx.ocall(static_cast<CallId>(KvOcall::kSendToServer), &fwd);
        }

        // Steady state: lock-free session lookup, per-client queue.
        if (!session.active.load(std::memory_order_acquire)) {
          return SgxStatus::kInvalidParameter;
        }
        Request sealed = *request;
        // Deterministic path encryption (equal paths -> equal ciphertexts),
        // randomized payload encryption with a fresh per-op nonce.
        sealed.path = seal(ts->key, 0, request->path);
        if (auto st = ctx.mutex_lock(session.queue_mutex); st != SgxStatus::kSuccess) return st;
        const std::uint64_t nonce = session.nonce_counter++;
        session.in_flight.push_back(request->xid);
        if (auto st = ctx.mutex_unlock(session.queue_mutex); st != SgxStatus::kSuccess) return st;
        if (!request->payload.empty()) {
          sealed.payload = seal(ts->key, nonce, request->payload);
        }
        ctx.work((request->path.size() + request->payload.size()) * ts->crypto_ns_per_byte);
        // Steady state reuses a small slice of the session buffers.
        if (session.buffers != 0) {
          ctx.touch(session.buffers + (nonce % 2) * sgxsim::kPageSize,
                    request->payload.size(), sgxsim::MemAccess::kWrite);
        }

        KvMs fwd;
        fwd.host = ts->host;
        const auto bytes = sealed.serialize();
        fwd.buf = bytes.data();
        fwd.len = bytes.size();
        ctx.copy_out(bytes.size());
        return ctx.ocall(static_cast<CallId>(KvOcall::kSendToServer), &fwd);
      });

  enclave.register_ecall(
      "ecall_handle_input_from_server", [ts](TrustedContext& ctx, void* msp) {
        auto* ms = static_cast<KvMs*>(msp);
        ctx.copy_in(ms->len);
        ctx.work(3'500);  // response parsing + client transport framing
        auto response =
            Response::deserialize(std::vector<std::uint8_t>(ms->buf, ms->buf + ms->len));
        if (!response || response->client_id >= kMaxClients) {
          return SgxStatus::kInvalidParameter;
        }
        auto& session = ts->sessions[response->client_id];
        if (session.active.load(std::memory_order_acquire)) {
          if (auto st = ctx.mutex_lock(session.queue_mutex); st != SgxStatus::kSuccess)
            return st;
          // Complete the oldest matching in-flight request.
          auto& q = session.in_flight;
          for (auto it = q.begin(); it != q.end(); ++it) {
            if (*it == response->xid) {
              q.erase(it);
              break;
            }
          }
          if (auto st = ctx.mutex_unlock(session.queue_mutex); st != SgxStatus::kSuccess)
            return st;
        }
        if (!response->payload.empty()) {
          // Decrypt the payload (and model re-encryption for the client
          // transport) before handing it back to the client.
          if (auto plain = unseal(ts->key, response->payload)) {
            response->payload = std::move(*plain);
          }
          ctx.work(response->payload.size() * ts->crypto_ns_per_byte * 2);
        }

        const auto bytes = response->serialize();
        KvMs out;
        out.host = ts->host;
        out.client_id = response->client_id;
        out.buf = bytes.data();
        out.len = bytes.size();
        ctx.copy_out(bytes.size());
        return ctx.ocall(static_cast<CallId>(KvOcall::kSendToClient), &out);
      });

  ts->host = this;
}

KvProxy::~KvProxy() { urts_.destroy_enclave(eid_); }

sgxsim::SgxStatus KvProxy::connect_client(std::uint64_t client_id) {
  Request req;
  req.client_id = client_id;
  req.op = OpCode::kConnect;
  const auto bytes = req.serialize();
  KvMs ms;
  ms.host = this;
  ms.buf = bytes.data();
  ms.len = bytes.size();
  return urts_.sgx_ecall(eid_, 0, &table_, &ms);
}

std::optional<Response> KvProxy::process(const Request& request) {
  if (request.client_id >= kMaxClients) return std::nullopt;
  const auto bytes = request.serialize();
  KvMs ms;
  ms.host = this;
  ms.buf = bytes.data();
  ms.len = bytes.size();
  if (urts_.sgx_ecall(eid_, 0, &table_, &ms) != SgxStatus::kSuccess) return std::nullopt;

  // The backend's reply sits in the server mailbox; feed it back through the
  // second ecall, which delivers the plaintext to the client mailbox.
  auto& from_server = to_server_slot[request.client_id];
  if (from_server.empty()) return std::nullopt;
  KvMs reply;
  reply.host = this;
  reply.buf = from_server.data();
  reply.len = from_server.size();
  if (urts_.sgx_ecall(eid_, 1, &table_, &reply) != SgxStatus::kSuccess) return std::nullopt;
  from_server.clear();

  auto& delivered = to_client_slot[request.client_id];
  if (delivered.empty()) return std::nullopt;
  const auto response = Response::deserialize(delivered);
  delivered.clear();
  return response;
}

}  // namespace minikv
