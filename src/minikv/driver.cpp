#include "minikv/driver.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace minikv {

DriverReport run_workload(KvProxy& proxy, const DriverConfig& config) {
  std::atomic<std::uint64_t> operations{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::size_t> at_barrier{0};
  std::atomic<bool> go{false};

  const auto t0 = proxy.urts().clock().now();
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      // Rendezvous so every client connects at the same instant — the
      // connection storm that contends on the in-enclave session map.
      ++at_barrier;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (proxy.connect_client(c) != sgxsim::SgxStatus::kSuccess) {
        ++failures;
        return;
      }

      support::Rng rng(config.seed ^ (c * 0x9E3779B97F4A7C15ull));
      std::uint64_t xid = 1;
      for (std::size_t i = 0; i < config.ops_per_client; ++i) {
        Request req;
        req.client_id = c;
        req.xid = xid++;
        const std::string path = support::format(
            "/app/client-%zu/node-%llu", c,
            static_cast<unsigned long long>(rng.next_below(64)));
        req.path.assign(path.begin(), path.end());
        const std::uint64_t dice = rng.next_below(10);
        if (dice < 3) {
          req.op = OpCode::kCreate;
        } else if (dice < 6) {
          req.op = OpCode::kSetData;
        } else {
          req.op = OpCode::kGetData;
        }
        if (req.op != OpCode::kGetData) {
          const std::size_t len = rng.next_in(config.min_payload, config.max_payload);
          req.payload.resize(len);
          for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng.next_u64());
        }
        const auto resp = proxy.process(req);
        if (!resp) {
          ++failures;
        } else {
          ++operations;
        }
      }
    });
  }

  while (at_barrier.load() < config.clients) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  DriverReport report;
  report.operations = operations.load();
  report.failures = failures.load();
  report.virtual_duration_ns = proxy.urts().clock().now() - t0;
  if (report.virtual_duration_ns > 0) {
    report.throughput_ops_per_s = static_cast<double>(report.operations) /
                                  (static_cast<double>(report.virtual_duration_ns) / 1e9);
  }
  return report;
}

}  // namespace minikv
