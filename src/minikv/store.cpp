#include "minikv/store.hpp"

#include <cstring>

namespace minikv {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_blob(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& blob) {
  put_u64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

bool get_u64(const std::vector<std::uint8_t>& in, std::size_t& off, std::uint64_t& v) {
  if (off + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[off + static_cast<std::size_t>(i)]} << (8 * i);
  off += 8;
  return true;
}

bool get_blob(const std::vector<std::uint8_t>& in, std::size_t& off,
              std::vector<std::uint8_t>& blob) {
  std::uint64_t len = 0;
  if (!get_u64(in, off, len)) return false;
  if (off + len > in.size()) return false;
  blob.assign(in.begin() + static_cast<std::ptrdiff_t>(off),
              in.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return true;
}

}  // namespace

std::vector<std::uint8_t> Request::serialize() const {
  std::vector<std::uint8_t> out;
  put_u64(out, xid);
  put_u64(out, client_id);
  out.push_back(static_cast<std::uint8_t>(op));
  put_blob(out, path);
  put_blob(out, payload);
  return out;
}

std::optional<Request> Request::deserialize(const std::vector<std::uint8_t>& bytes) {
  Request r;
  std::size_t off = 0;
  if (!get_u64(bytes, off, r.xid)) return std::nullopt;
  if (!get_u64(bytes, off, r.client_id)) return std::nullopt;
  if (off >= bytes.size()) return std::nullopt;
  r.op = static_cast<OpCode>(bytes[off++]);
  if (!get_blob(bytes, off, r.path)) return std::nullopt;
  if (!get_blob(bytes, off, r.payload)) return std::nullopt;
  return r;
}

std::vector<std::uint8_t> Response::serialize() const {
  std::vector<std::uint8_t> out;
  put_u64(out, xid);
  put_u64(out, client_id);
  out.push_back(static_cast<std::uint8_t>(op));
  out.push_back(static_cast<std::uint8_t>(result));
  put_blob(out, payload);
  return out;
}

std::optional<Response> Response::deserialize(const std::vector<std::uint8_t>& bytes) {
  Response r;
  std::size_t off = 0;
  if (!get_u64(bytes, off, r.xid)) return std::nullopt;
  if (!get_u64(bytes, off, r.client_id)) return std::nullopt;
  if (off + 2 > bytes.size()) return std::nullopt;
  r.op = static_cast<OpCode>(bytes[off++]);
  r.result = static_cast<OpResult>(bytes[off++]);
  if (!get_blob(bytes, off, r.payload)) return std::nullopt;
  return r;
}

Store::Store(support::VirtualClock& clock, support::Nanoseconds op_cost_ns)
    : clock_(clock), op_cost_ns_(op_cost_ns) {}

Response Store::handle(const Request& request) {
  clock_.advance(op_cost_ns_);
  Response resp;
  resp.xid = request.xid;
  resp.client_id = request.client_id;
  resp.op = request.op;

  std::lock_guard lock(mu_);
  ++handled_;
  switch (request.op) {
    case OpCode::kConnect:
      resp.result = OpResult::kOk;
      break;
    case OpCode::kCreate:
      if (nodes_.contains(request.path)) {
        resp.result = OpResult::kNodeExists;
      } else {
        nodes_[request.path] = request.payload;
        resp.result = OpResult::kOk;
      }
      break;
    case OpCode::kSetData:
      if (!nodes_.contains(request.path)) {
        resp.result = OpResult::kNoNode;
      } else {
        nodes_[request.path] = request.payload;
        resp.result = OpResult::kOk;
      }
      break;
    case OpCode::kGetData: {
      const auto it = nodes_.find(request.path);
      if (it == nodes_.end()) {
        resp.result = OpResult::kNoNode;
      } else {
        resp.result = OpResult::kOk;
        resp.payload = it->second;
      }
      break;
    }
    case OpCode::kDelete:
      resp.result = nodes_.erase(request.path) > 0 ? OpResult::kOk : OpResult::kNoNode;
      break;
    case OpCode::kExists:
      resp.result = nodes_.contains(request.path) ? OpResult::kOk : OpResult::kNoNode;
      break;
    default:
      resp.result = OpResult::kBadRequest;
  }
  return resp;
}

std::size_t Store::node_count() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

}  // namespace minikv
