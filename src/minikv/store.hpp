// The backend coordination service — a ZooKeeper stand-in.
//
// SecureKeeper (§5.2.4) proxies clients to an unmodified ZooKeeper; the
// proxy's enclave en/decrypts the path and payload of every packet.  This
// store plays ZooKeeper's role: a hierarchical key space with create/set/
// get/delete/exists operations, a request/response wire format and modelled
// request-handling costs.  It stores whatever (encrypted) bytes it is given.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/clock.hpp"

namespace minikv {

enum class OpCode : std::uint8_t {
  kConnect = 0,
  kCreate = 1,
  kSetData = 2,
  kGetData = 3,
  kDelete = 4,
  kExists = 5,
};

enum class OpResult : std::uint8_t {
  kOk = 0,
  kNoNode = 1,
  kNodeExists = 2,
  kBadRequest = 3,
};

/// One request as it travels proxy -> server (path/payload possibly
/// ciphertext: the server never sees plaintext).
struct Request {
  std::uint64_t xid = 0;        // client transaction id
  std::uint64_t client_id = 0;
  OpCode op = OpCode::kGetData;
  std::vector<std::uint8_t> path;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Request> deserialize(const std::vector<std::uint8_t>& bytes);
};

struct Response {
  std::uint64_t xid = 0;
  std::uint64_t client_id = 0;
  OpCode op = OpCode::kGetData;
  OpResult result = OpResult::kOk;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Response> deserialize(const std::vector<std::uint8_t>& bytes);
};

/// Thread-safe in-memory hierarchical store with virtual-time op costs.
class Store {
 public:
  explicit Store(support::VirtualClock& clock, support::Nanoseconds op_cost_ns = 6'000);

  [[nodiscard]] Response handle(const Request& request);

  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::uint64_t requests_handled() const noexcept { return handled_; }

 private:
  support::VirtualClock& clock_;
  support::Nanoseconds op_cost_ns_;
  mutable std::mutex mu_;
  std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> nodes_;
  std::uint64_t handled_ = 0;
};

}  // namespace minikv
