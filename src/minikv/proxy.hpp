// The SecureKeeper-like proxy enclave (§5.2.4).
//
// Architecture: clients talk to a proxy that sits in front of the backend
// store; the proxy's enclave transparently encrypts the path and payload of
// every packet (the backend only ever sees ciphertext).  The enclave
// interface is deliberately narrow — two ecalls, six ocalls of which three
// are ever called — exactly the shape the paper reports.  Session lookups
// are lock-free after connection; the session *map* is mutex-protected and
// only written during connects, so sleep/wake ocalls appear only during the
// connection storm.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/chacha20.hpp"
#include "minikv/store.hpp"
#include "sgxsim/runtime.hpp"

namespace minikv {

/// Marshalling struct of both ecalls and the send ocalls.
struct KvMs {
  void* host = nullptr;  // untrusted proxy object ([user_check])
  std::uint64_t client_id = 0;
  const std::uint8_t* buf = nullptr;
  std::uint64_t len = 0;
};

extern const char* const kKvEdl;

class KvProxy {
 public:
  static constexpr std::size_t kMaxClients = 64;

  struct Config {
    sgxsim::EnclaveConfig enclave;
    /// Per-byte in-enclave crypto cost (ChaCha20 + HMAC, ~8 ns/B).
    support::Nanoseconds crypto_ns_per_byte = 8;
    /// Real (wall-clock) busy-work iterations inside the connect critical
    /// section.  Session initialisation takes real time in SecureKeeper;
    /// modelling it makes simultaneous connects genuinely contend on the
    /// map mutex, producing the sleep/wake ocall storm of §5.2.4.
    std::uint32_t connect_spin_iterations = 200'000;
    /// Marks both input ecalls `transition_using_threads` so the runtime's
    /// switchless worker pool (enabled via Urts::set_switchless_workers) can
    /// serve them — the "apply the recommendation" arm of the what-if
    /// predicted-vs-measured experiment.
    bool switchless_ecalls = false;
    Config();
  };

  KvProxy(sgxsim::Urts& urts, Store& store, Config config = {});
  ~KvProxy();

  KvProxy(const KvProxy&) = delete;
  KvProxy& operator=(const KvProxy&) = delete;

  /// Registers a client session (the connection storm path: takes the
  /// in-enclave map mutex, may issue sleep/wake ocalls under contention,
  /// emits a debug-print ocall).  One ecall.
  sgxsim::SgxStatus connect_client(std::uint64_t client_id);

  /// Processes one client operation end to end: the client->proxy packet
  /// enters via ecall_handle_input_from_client (encrypt + send_to_server
  /// ocall), the server's reply re-enters via ecall_handle_input_from_server
  /// (decrypt + send_to_client ocall).  Returns the plaintext response.
  [[nodiscard]] std::optional<Response> process(const Request& request);

  [[nodiscard]] sgxsim::EnclaveId enclave_id() const noexcept { return eid_; }
  [[nodiscard]] const sgxsim::OcallTable& ocall_table() const noexcept { return table_; }
  [[nodiscard]] sgxsim::Urts& urts() noexcept { return urts_; }

  // --- untrusted delivery slots (written by the send ocalls) ------------------
  /// Per-client mailboxes; index by client id.
  std::array<std::vector<std::uint8_t>, kMaxClients> to_server_slot;
  std::array<std::vector<std::uint8_t>, kMaxClients> to_client_slot;
  Store& store;
  std::atomic<std::uint64_t> debug_prints{0};

 private:
  struct TrustedState;

  sgxsim::Urts& urts_;
  sgxsim::EnclaveId eid_ = 0;
  sgxsim::OcallTable table_;
  std::unique_ptr<TrustedState> trusted_;
};

}  // namespace minikv
