// Multi-client load driver for the SecureKeeper-like proxy: a simultaneous
// connection storm followed by a steady-state operation mix, as in the
// §5.2.4 benchmark ("all clients simultaneously connect, therefore creating
// high contention on the map").
#pragma once

#include <cstdint>

#include "minikv/proxy.hpp"

namespace minikv {

struct DriverConfig {
  std::size_t clients = 8;
  std::size_t ops_per_client = 1000;
  std::size_t min_payload = 600;
  std::size_t max_payload = 1400;
  std::uint64_t seed = 7;
};

struct DriverReport {
  std::uint64_t operations = 0;
  std::uint64_t failures = 0;
  support::Nanoseconds virtual_duration_ns = 0;
  double throughput_ops_per_s = 0.0;
};

/// Runs the workload with one OS thread per client.  Each client connects
/// (storm), then performs a create/set/get mix against its own subtree.
DriverReport run_workload(KvProxy& proxy, const DriverConfig& config);

}  // namespace minikv
