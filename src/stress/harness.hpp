// SoakHarness: runs a stressor under the full live-observability stack —
// Logger attached, a stream subscription feeding an OnlineAnalyzer on a
// dedicated consumer thread (the `sgxperf monitor` architecture) — and
// seals the run into a normal v5 trace.  This is how the stress suite
// doubles as a labeled corpus: the SoakResult carries both the raw run
// stats and the verdict of the triggered alert kinds against the
// stressor's ground-truth label set.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "perf/analyzer.hpp"
#include "stress/stressor.hpp"
#include "tracedb/database.hpp"

namespace stress {

struct SoakConfig {
  StressConfig stress;
  /// Stream subscription ring capacity.  Size it at or above the expected
  /// event count when asserting zero drops (the soak/accuracy tests do).
  std::size_t subscription_capacity = 1 << 18;
  /// Online window length; 0 keeps the OnlineConfig default (1 ms).
  support::Nanoseconds window_ns = 0;
  perf::AnalyzerConfig analyzer;
  /// Orderliness model for the online checker.  Unset = the stressor's own
  /// order_model() (read after prepare()); an explicit empty model disables
  /// checking.
  std::optional<perf::OrderModel> order;
};

struct SoakResult {
  StressResult stress;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_resolved = 0;
  std::vector<tracedb::AlertRecord> active_alerts;
  /// Alert kinds active at end of run, kLatencyShift excluded (it is an
  /// online-only change signal outside every stressor's label universe).
  std::set<tracedb::AlertKind> triggered;
  std::uint64_t stream_dropped = 0;
  /// Events rejected by sealed shards during the merge (must stay 0).
  std::uint64_t sealed_dropped = 0;
  std::uint64_t pending_evicted = 0;
  /// Label verdict: must_trigger kinds that did not fire / must_not kinds
  /// that did.
  std::set<tracedb::AlertKind> missing;
  std::set<tracedb::AlertKind> false_positives;

  [[nodiscard]] bool labels_ok() const noexcept {
    return missing.empty() && false_positives.empty();
  }
};

/// Runs `stressor` with the logger attached and a live subscription feeding
/// an online analyser on a separate consumer thread, then seals the run:
/// finish() at the last recorded timestamp and persist() the windows/alerts
/// into `db`, which afterwards holds a complete v5 trace of the stress run.
SoakResult run_soak(Stressor& stressor, sgxsim::Urts& urts,
                    tracedb::TraceDatabase& db, const SoakConfig& config);

}  // namespace stress
