#include "stress/harness.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "perf/logger.hpp"
#include "perf/online.hpp"

namespace stress {

SoakResult run_soak(Stressor& stressor, sgxsim::Urts& urts,
                    tracedb::TraceDatabase& db, const SoakConfig& config) {
  perf::Logger logger(db);
  logger.attach(urts);
  auto sub = logger.subscribe("stress-soak", config.subscription_capacity);
  if (sub == nullptr) {
    throw std::runtime_error("stress: no free stream subscriber slot");
  }

  // The stressor's orderliness model is keyed by enclave ids that only exist
  // after prepare(), but prepare() must stay on the workload thread (thread
  // registration order pins the merged trace).  Handshake: the workload
  // thread prepares and parks; this thread reads the model, builds the
  // online analyser, and releases the workers.
  SoakResult out;
  std::atomic<int> stage{0};  // 0 = preparing, 1 = prepared, 2 = released
  std::atomic<bool> workload_done{false};
  std::thread workload([&] {
    stressor.prepare(urts, config.stress);
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) < 2) std::this_thread::yield();
    out.stress = run_stressor(stressor, urts, config.stress, /*already_prepared=*/true);
    workload_done.store(true, std::memory_order_release);
  });
  while (stage.load(std::memory_order_acquire) < 1) std::this_thread::yield();

  perf::OnlineConfig online_config;
  online_config.analyzer = config.analyzer;
  online_config.order = config.order ? *config.order : stressor.order_model();
  if (config.window_ns > 0) online_config.window_ns = config.window_ns;
  perf::OnlineAnalyzer online(online_config);
  online.set_externals([&logger] {
    perf::WindowExternals ext;
    ext.stream_dropped = logger.stream_dropped();
    return ext;
  });
  std::uint64_t raised = 0;
  std::uint64_t resolved = 0;
  online.set_alert_sink([&raised, &resolved](const tracedb::AlertRecord&, bool was_resolved) {
    (was_resolved ? resolved : raised) += 1;
  });

  stage.store(2, std::memory_order_release);

  // Consumer loop (this thread): drain the subscription into the online
  // analyser while the workload runs, then once more after it finishes so
  // no tail of the stream is lost.
  std::vector<perf::StreamEvent> batch;
  batch.reserve(4096);
  for (;;) {
    batch.clear();
    if (sub->poll(batch) > 0) {
      online.feed(batch);
      continue;
    }
    if (workload_done.load(std::memory_order_acquire)) break;
    std::this_thread::yield();
  }
  workload.join();
  for (;;) {
    batch.clear();
    if (sub->poll(batch) == 0) break;
    online.feed(batch);
  }
  sub->close();
  logger.detach();

  std::uint64_t end_ns = 0;
  for (const auto& c : db.calls()) end_ns = std::max(end_ns, c.end_ns);
  for (const auto& a : db.aexs()) end_ns = std::max(end_ns, a.timestamp_ns);
  for (const auto& p : db.paging()) end_ns = std::max(end_ns, p.timestamp_ns);
  online.finish(end_ns);
  online.persist(db);

  out.events = online.events_seen();
  out.windows = online.windows().size();
  out.alerts_raised = raised;
  out.alerts_resolved = resolved;
  out.active_alerts = online.active_alerts();
  for (const auto& alert : out.active_alerts) {
    if (alert.kind != tracedb::AlertKind::kLatencyShift) out.triggered.insert(alert.kind);
  }
  out.stream_dropped = sub->dropped();
  out.sealed_dropped = db.merge_stats().dropped;
  out.pending_evicted = online.pending_evicted();

  const auto& spec = stressor.spec();
  for (const auto kind : spec.must_trigger) {
    if (out.triggered.count(kind) == 0) out.missing.insert(kind);
  }
  for (const auto kind : spec.must_not) {
    if (out.triggered.count(kind) != 0) out.false_positives.insert(kind);
  }
  return out;
}

}  // namespace stress
