// Stress-SGX-style workload suite (PAPERS.md, arXiv:1906.11204): pluggable
// in-enclave stressors that saturate one axis of enclave behaviour each —
// trusted compute, EPC paging, in-enclave synchronisation, transition storms
// — plus a mixed stressor combining all of them.
//
// Two properties make the suite usable as a *labeled corpus* for the
// analyser's anti-pattern detectors rather than just a load generator:
//
//  1. Every stressor declares a ground-truth label set: exactly which
//     anti-pattern alert kinds its construction must trigger and which it
//     must not.  tests/stress_detector_accuracy_test.cpp measures detector
//     precision/recall against these labels; `sgxperf stress` reports the
//     same verdict per run.
//
//  2. Runs are deterministic.  Workers run against the shared virtual clock
//     in a lockstep round-robin (one bogo-op per turn), so a fixed
//     (stressor, threads, seed, duration) config always produces the same
//     bogo-ops count and a byte-identical merged trace — the replay/merge
//     determinism guarantees extend to the stress suite.  Free-running mode
//     (lockstep = false) trades this for true thread concurrency; the soak
//     tests use it to exercise the lock-free recording paths.
//
// Label design is pinned against the detector arithmetic in
// perf/analyzer.cpp (Eq. 1–3, SSC, paging, tail): every stressor separates
// its pattern sites with >20 us virtual-time pads so no *unintended*
// detector crosses a threshold — which is what makes the must-not sets
// assertable.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "perf/orderliness.hpp"
#include "sgxsim/runtime.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"
#include "tracedb/database.hpp"

namespace stress {

struct StressConfig {
  std::size_t threads = 4;
  /// Virtual-time budget: workers stop at start + duration_ns.
  support::Nanoseconds duration_ns = 200'000'000;
  /// Scales the per-op payload (burst length, compute time).
  std::size_t intensity = 1;
  std::uint64_t seed = 42;
  /// Deterministic round-robin scheduling (one op per turn).  false =
  /// free-running threads: true concurrency, no determinism guarantee.
  bool lockstep = true;
};

/// Ground truth of one stressor: the alert kinds its construction must
/// trigger and must not.  kLatencyShift is never labeled — it is an
/// online-only change signal with no post-mortem analogue.
struct StressorSpec {
  std::string name;
  std::string description;
  std::set<tracedb::AlertKind> must_trigger;
  std::set<tracedb::AlertKind> must_not;
};

struct StressResult {
  std::uint64_t bogo_ops = 0;
  std::vector<std::uint64_t> per_thread_ops;
  /// Virtual time consumed by the run.
  support::Nanoseconds elapsed_ns = 0;

  [[nodiscard]] double bogo_ops_per_vsec() const noexcept {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(bogo_ops) * 1e9 /
                                 static_cast<double>(elapsed_ns);
  }
};

/// One pluggable stressor.  prepare() builds the enclave(s) on the given
/// machine; step() runs one bogo-op on behalf of worker `worker` (0-based,
/// its `op`-th op).  step() must be safe for concurrent calls by *different*
/// workers (free-running mode); per-worker state is indexed by `worker`.
class Stressor {
 public:
  virtual ~Stressor() = default;

  [[nodiscard]] virtual const StressorSpec& spec() const noexcept = 0;
  virtual void prepare(sgxsim::Urts& urts, const StressConfig& config) = 0;
  virtual void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t op) = 0;

  /// Interface-orderliness model for the enclaves built by prepare() — keyed
  /// by the actual enclave ids, so only valid *after* prepare() has run.  The
  /// default (empty) model disables orderliness checking for this stressor.
  [[nodiscard]] virtual perf::OrderModel order_model() const { return {}; }
};

/// Builds the stressor registered under `name`; nullptr for unknown names.
[[nodiscard]] std::unique_ptr<Stressor> make_stressor(const std::string& name);

/// Registered stressor names, in a stable order.
[[nodiscard]] std::vector<std::string> stressor_names();

/// Runs `stressor` on `urts` until config.duration_ns of virtual time has
/// elapsed.  Calls prepare() first; spawns config.threads workers.
StressResult run_stressor(Stressor& stressor, sgxsim::Urts& urts,
                          const StressConfig& config);

/// Same, but with prepare() optionally done by the caller already — used when
/// the caller needs prepare-time products (the orderliness model's enclave
/// ids) before the workers start.
StressResult run_stressor(Stressor& stressor, sgxsim::Urts& urts,
                          const StressConfig& config, bool already_prepared);

}  // namespace stress
