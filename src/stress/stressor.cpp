// The five stressors and the deterministic lockstep scheduler.
//
// Label math (why each must/must-not set holds) is pinned against the
// detector arithmetic in perf/analyzer.cpp with its default AnalyzerConfig:
//
//  * Eq. 1 (short calls) fires when >=35% of a site's adjusted durations are
//    <1 us, >=50% <5 us or >=65% <10 us.  `ecall_quick` (350 ns of work) and
//    the noop/sync ocalls sit entirely below 5 us; every other site is kept
//    >=25 us of work away from the thresholds.
//  * Eq. 2 (reorder) correlates children within 10/20 us of the parent's
//    start or end.  `ocall_first` is issued on entry and `ocall_last` right
//    before return; all other children are separated from both parent edges
//    by >=15-25 us work pads.
//  * Eq. 3 (batch/merge) correlates same-thread consecutive calls closer
//    than 20 us.  The back-to-back `ocall_hot` pair is batchable and
//    `ocall_alt` (always following a hot) is mergeable; between *ops* every
//    stressor inserts >20 us of untrusted think time so no top-level site
//    ever looks batchable by accident.
//  * SSC needs a non-generic (sync) ocall site with a sub-10 us instance:
//    the sync stressor issues the SDK set-event/wait-event pair directly,
//    with a permit always banked so wait never parks (lockstep-safe).
//  * Paging needs >=64 events per enclave: the vm working set is sized at
//    1.25x the machine's EPC, so faulting it in already crosses the
//    threshold and every sequential sweep keeps missing (LRU worst case).
//  * Tail latency needs p99 >= 50 us and >= 8x p50: the mixed stressor's
//    `ecall_tail` runs 20 us normally and 600 us on every 16th instance
//    per worker (deterministic in the op index).
#include "stress/stressor.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sgxsim/edl.hpp"

namespace stress {
namespace {

using sgxsim::EnclaveConfig;
using sgxsim::EnclaveId;
using sgxsim::MemAccess;
using sgxsim::OcallTable;
using sgxsim::SgxStatus;
using sgxsim::SyncOcall;
using sgxsim::SyncOcallMs;
using sgxsim::TrustedContext;
using tracedb::AlertKind;

/// Untrusted think time between ops: strictly above the 20 us Eq. 2/Eq. 3
/// correlation horizon even before jitter, so consecutive top-level calls of
/// one worker never read as batchable.
constexpr support::Nanoseconds kThinkNs = 30'000;
constexpr support::Nanoseconds kThinkJitterNs = 5'000;

/// Pages touched by one vm sweep ecall.
constexpr std::uint64_t kChunkPages = 64;

SgxStatus noop_ocall(void*) { return SgxStatus::kSuccess; }

/// Common plumbing: spec storage and per-worker deterministic rng streams.
class StressorBase : public Stressor {
 public:
  [[nodiscard]] const StressorSpec& spec() const noexcept override { return spec_; }

 protected:
  void init_workers(const StressConfig& config) {
    threads_ = config.threads;
    intensity_ = config.intensity == 0 ? 1 : config.intensity;
    rngs_.clear();
    rngs_.reserve(config.threads);
    for (std::size_t w = 0; w < config.threads; ++w) {
      rngs_.emplace_back(config.seed * 0x9E3779B97F4A7C15ull + w + 1);
    }
  }

  /// Seed-jittered think time; each worker only touches its own stream, so
  /// this is safe in free-running mode too.
  void think(sgxsim::Urts& urts, std::size_t worker) {
    urts.clock().advance(kThinkNs + rngs_[worker].next_below(kThinkJitterNs));
  }

  StressorSpec spec_;
  std::size_t threads_ = 1;
  std::size_t intensity_ = 1;
  std::vector<support::Rng> rngs_;
};

std::set<AlertKind> all_pattern_kinds() {
  return {AlertKind::kShortCalls, AlertKind::kReorderStart, AlertKind::kReorderEnd,
          AlertKind::kBatchable,  AlertKind::kMergeable,    AlertKind::kSyncContention,
          AlertKind::kPaging,     AlertKind::kTailLatency};
}

std::set<AlertKind> all_but(const std::set<AlertKind>& excluded) {
  std::set<AlertKind> out;
  for (const auto k : all_pattern_kinds()) {
    if (excluded.count(k) == 0) out.insert(k);
  }
  return out;
}

/// The five interface-orderliness kinds (v6).  Perf stressors run with no
/// order model configured, so these can never fire for them — which makes
/// them assertable must-nots across the whole corpus.
std::set<AlertKind> order_kinds() {
  return {AlertKind::kOutOfOrderEcall, AlertKind::kReentrantEcall,
          AlertKind::kUseBeforeInit, AlertKind::kUseAfterDestroy,
          AlertKind::kPhaseViolation};
}

std::set<AlertKind> with_order_kinds(std::set<AlertKind> kinds) {
  for (const auto k : order_kinds()) kinds.insert(k);
  return kinds;
}

// --- shared trusted bodies --------------------------------------------------

/// The transition-storm ecall body (ocall table ids 0-3):
///   ocall_first (0)  on entry            -> Eq. 2 reorder-start
///   per burst: hot (1) x2, alt (2)       -> Eq. 3 batchable on hot,
///                                           mergeable on alt (follows hot)
///   ocall_last (3)   right before return -> Eq. 2 reorder-end
/// The 25/15 us work pads keep the burst children away from the parent's
/// edges and the bursts apart, so only the intended detectors fire.
SgxStatus storm_ecall_body(TrustedContext& ctx, std::size_t bursts) {
  ctx.ocall(0, nullptr);
  ctx.work(25'000);
  for (std::size_t b = 0; b < bursts; ++b) {
    ctx.ocall(1, nullptr);
    ctx.ocall(1, nullptr);
    ctx.ocall(2, nullptr);
    ctx.work(15'000);
  }
  return ctx.ocall(3, nullptr);
}

/// The contended-sync ecall body: bank a wake-event for ourselves, then
/// consume it.  Both SDK sync ocalls go through the rewritten table, so the
/// profiler classifies them (kWakeOne / kSleep) and SSC fires; the banked
/// permit means wait-event never parks, which keeps the lockstep scheduler's
/// token from being held by a blocked thread.  The 25 us pads keep the sync
/// sites off the Eq. 2/Eq. 3 horizons.
SgxStatus sync_ecall_body(TrustedContext& ctx, sgxsim::CallId sync_base) {
  SyncOcallMs ms;
  ms.urts = &ctx.urts();
  ms.self = ctx.thread_id();
  ms.target = ctx.thread_id();
  ctx.work(25'000);
  ctx.ocall(sync_base + static_cast<sgxsim::CallId>(SyncOcall::kSetEvent), &ms);
  ctx.work(25'000);
  ctx.ocall(sync_base + static_cast<sgxsim::CallId>(SyncOcall::kWaitEvent), &ms);
  ctx.work(25'000);
  return SgxStatus::kSuccess;
}

// --- cpu --------------------------------------------------------------------

constexpr char kCpuEdl[] = R"(
enclave {
  trusted {
    public int ecall_spin(void);
  };
};
)";

/// Tight trusted compute, near-zero transitions: the negative control.  Long
/// uniform ecalls with >20 us think gaps must trigger nothing.
class CpuStressor final : public StressorBase {
 public:
  CpuStressor() {
    spec_.name = "cpu";
    spec_.description = "tight trusted compute, near-zero transitions (negative control)";
    spec_.must_not = with_order_kinds(all_but({}));
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    EnclaveConfig cfg;
    cfg.name = "stress_cpu";
    cfg.tcs_count = config.threads + 1;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kCpuEdl));
    table_ = sgxsim::make_ocall_table({});
    const auto spin_ns = static_cast<support::Nanoseconds>(50'000) * intensity_;
    urts.enclave(eid_).register_ecall("ecall_spin", [spin_ns](TrustedContext& ctx, void*) {
      ctx.work(spin_ns);
      return SgxStatus::kSuccess;
    });
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t) override {
    think(urts, worker);
    urts.sgx_ecall(eid_, 0, &table_, nullptr);
  }

 private:
  EnclaveId eid_ = 0;
  OcallTable table_;
};

// --- vm ---------------------------------------------------------------------

constexpr char kVmEdl[] = R"(
enclave {
  trusted {
    public int ecall_vm_init(void);
    public int ecall_vm_sweep(void);
  };
};
)";

/// EPC-thrashing working set: the trusted heap is sized at 1.25x the
/// machine's EPC, faulted in up front (heap_alloc touches every page for
/// write) and then swept in 64-page chunks — the sequential-over-LRU worst
/// case, so every sweep keeps paging.
class VmStressor final : public StressorBase {
 public:
  VmStressor() {
    spec_.name = "vm";
    spec_.description = "EPC-thrashing working set at 1.25x EPC (EWB/ELD load)";
    spec_.must_trigger = {AlertKind::kPaging};
    spec_.must_not = with_order_kinds(all_but(spec_.must_trigger));
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    const std::size_t epc = urts.driver().epc_pages();
    const std::size_t heap_pages = epc + epc / 4;
    bytes_ = static_cast<std::uint64_t>(heap_pages - 4) * sgxsim::kPageSize;
    chunks_ = bytes_ / (kChunkPages * sgxsim::kPageSize);
    EnclaveConfig cfg;
    cfg.name = "stress_vm";
    cfg.heap_pages = heap_pages;
    cfg.tcs_count = config.threads + 1;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kVmEdl));
    table_ = sgxsim::make_ocall_table({});
    auto& enclave = urts.enclave(eid_);
    enclave.register_ecall("ecall_vm_init", [this](TrustedContext& ctx, void*) {
      base_ = ctx.malloc(bytes_);
      return base_ == 0 ? SgxStatus::kOutOfMemory : SgxStatus::kSuccess;
    });
    enclave.register_ecall("ecall_vm_sweep", [this](TrustedContext& ctx, void* ms) {
      const auto chunk = *static_cast<const std::uint64_t*>(ms);
      ctx.touch(base_ + chunk * kChunkPages * sgxsim::kPageSize,
                kChunkPages * sgxsim::kPageSize, MemAccess::kRead);
      return SgxStatus::kSuccess;
    });
    // Fault the whole working set in from the main thread before the
    // workers start: exceeding the EPC here already fires the paging label.
    urts.sgx_ecall(eid_, 0, &table_, nullptr);
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t op) override {
    think(urts, worker);
    std::uint64_t chunk = (op * threads_ + worker) % chunks_;
    urts.sgx_ecall(eid_, 1, &table_, &chunk);
  }

 private:
  EnclaveId eid_ = 0;
  OcallTable table_;
  sgxsim::EnclaveAddr base_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t chunks_ = 1;
};

// --- sync -------------------------------------------------------------------

constexpr char kSyncEdl[] = R"(
enclave {
  trusted {
    public int ecall_sync(void);
  };
};
)";

/// In-enclave synchronisation traffic: every op issues the SDK wake/wait
/// ocall pair (SSC), whose sub-microsecond bodies also read as short calls.
class SyncStressor final : public StressorBase {
 public:
  SyncStressor() {
    spec_.name = "sync";
    spec_.description = "SDK sync-ocall traffic (wake/wait pairs, SSC pattern)";
    spec_.must_trigger = {AlertKind::kSyncContention, AlertKind::kShortCalls};
    spec_.must_not = with_order_kinds(all_but(spec_.must_trigger));
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    EnclaveConfig cfg;
    cfg.name = "stress_sync";
    cfg.tcs_count = config.threads + 1;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kSyncEdl));
    table_ = sgxsim::make_ocall_table({});
    const auto sync_base = table_.sync_base;
    urts.enclave(eid_).register_ecall("ecall_sync", [sync_base](TrustedContext& ctx, void*) {
      return sync_ecall_body(ctx, sync_base);
    });
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t) override {
    think(urts, worker);
    urts.sgx_ecall(eid_, 0, &table_, nullptr);
  }

 private:
  EnclaveId eid_ = 0;
  OcallTable table_;
};

// --- ocall-storm ------------------------------------------------------------

constexpr char kStormEdl[] = R"(
enclave {
  trusted {
    public int ecall_storm(void);
    public int ecall_quick(void);
  };
  untrusted {
    void ocall_first(void);
    void ocall_hot(void);
    void ocall_alt(void);
    void ocall_last(void);
  };
};
)";

/// Short-call and hot-ocall generator: the storm ecall drives Eq. 2 (first/
/// last ocalls) and Eq. 3 (hot/alt bursts); the quick ecall's 350 ns body
/// drives Eq. 1 on the ecall side, the noop ocalls on the ocall side.
class OcallStormStressor final : public StressorBase {
 public:
  OcallStormStressor() {
    spec_.name = "ocall-storm";
    spec_.description = "short-call + hot-ocall transition storm (Eq. 1-3 patterns)";
    spec_.must_trigger = {AlertKind::kShortCalls, AlertKind::kReorderStart,
                          AlertKind::kReorderEnd, AlertKind::kBatchable,
                          AlertKind::kMergeable};
    spec_.must_not = with_order_kinds(all_but(spec_.must_trigger));
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    EnclaveConfig cfg;
    cfg.name = "stress_storm";
    cfg.tcs_count = config.threads + 1;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kStormEdl));
    table_ = sgxsim::make_ocall_table({&noop_ocall, &noop_ocall, &noop_ocall, &noop_ocall});
    auto& enclave = urts.enclave(eid_);
    const std::size_t bursts = 4 * intensity_;
    enclave.register_ecall("ecall_storm", [bursts](TrustedContext& ctx, void*) {
      return storm_ecall_body(ctx, bursts);
    });
    enclave.register_ecall("ecall_quick", [](TrustedContext& ctx, void*) {
      ctx.work(350);
      return SgxStatus::kSuccess;
    });
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t) override {
    think(urts, worker);
    urts.sgx_ecall(eid_, 0, &table_, nullptr);
    think(urts, worker);
    urts.sgx_ecall(eid_, 1, &table_, nullptr);
  }

 private:
  EnclaveId eid_ = 0;
  OcallTable table_;
};

// --- mixed ------------------------------------------------------------------

constexpr char kMixedEdl[] = R"(
enclave {
  trusted {
    public int ecall_storm(void);
    public int ecall_quick(void);
    public int ecall_sync(void);
    public int ecall_tail(void);
    public int ecall_vm_init(void);
    public int ecall_vm_sweep(void);
  };
  untrusted {
    void ocall_first(void);
    void ocall_hot(void);
    void ocall_alt(void);
    void ocall_last(void);
  };
};
)";

/// Everything at once: cycles storm/quick, sync, tail and vm-sweep ops, so
/// every detector with a post-mortem analogue must fire.  The tail site runs
/// 20 us normally and 600 us on every 16th instance per worker — enough mass
/// above p99 to clear both tail thresholds deterministically.
class MixedStressor final : public StressorBase {
 public:
  MixedStressor() {
    spec_.name = "mixed";
    spec_.description = "all axes combined: storm + sync + tail + EPC sweep";
    spec_.must_trigger = all_pattern_kinds();
    spec_.must_not = order_kinds();
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    const std::size_t epc = urts.driver().epc_pages();
    const std::size_t heap_pages = epc + epc / 4;
    bytes_ = static_cast<std::uint64_t>(heap_pages - 4) * sgxsim::kPageSize;
    chunks_ = bytes_ / (kChunkPages * sgxsim::kPageSize);
    EnclaveConfig cfg;
    cfg.name = "stress_mixed";
    cfg.heap_pages = heap_pages;
    cfg.tcs_count = config.threads + 1;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kMixedEdl));
    table_ = sgxsim::make_ocall_table({&noop_ocall, &noop_ocall, &noop_ocall, &noop_ocall});
    const auto sync_base = table_.sync_base;
    const std::size_t bursts = 4 * intensity_;
    auto& enclave = urts.enclave(eid_);
    enclave.register_ecall("ecall_storm", [bursts](TrustedContext& ctx, void*) {
      return storm_ecall_body(ctx, bursts);
    });
    enclave.register_ecall("ecall_quick", [](TrustedContext& ctx, void*) {
      ctx.work(350);
      return SgxStatus::kSuccess;
    });
    enclave.register_ecall("ecall_sync", [sync_base](TrustedContext& ctx, void*) {
      return sync_ecall_body(ctx, sync_base);
    });
    enclave.register_ecall("ecall_tail", [](TrustedContext& ctx, void* ms) {
      ctx.work(*static_cast<const support::Nanoseconds*>(ms));
      return SgxStatus::kSuccess;
    });
    enclave.register_ecall("ecall_vm_init", [this](TrustedContext& ctx, void*) {
      base_ = ctx.malloc(bytes_);
      return base_ == 0 ? SgxStatus::kOutOfMemory : SgxStatus::kSuccess;
    });
    enclave.register_ecall("ecall_vm_sweep", [this](TrustedContext& ctx, void* ms) {
      const auto chunk = *static_cast<const std::uint64_t*>(ms);
      ctx.touch(base_ + chunk * kChunkPages * sgxsim::kPageSize,
                kChunkPages * sgxsim::kPageSize, MemAccess::kRead);
      return SgxStatus::kSuccess;
    });
    urts.sgx_ecall(eid_, 4, &table_, nullptr);  // fault the working set in
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t op) override {
    switch (op % 4) {
      case 0: {
        think(urts, worker);
        urts.sgx_ecall(eid_, 0, &table_, nullptr);
        think(urts, worker);
        urts.sgx_ecall(eid_, 1, &table_, nullptr);
        break;
      }
      case 1: {
        think(urts, worker);
        urts.sgx_ecall(eid_, 2, &table_, nullptr);
        break;
      }
      case 2: {
        // Tail op: this worker's (op/4)-th tail instance; every 16th runs
        // 30x longer.  Deterministic in the op index, so the p99/p50 ratio
        // is pinned regardless of scheduling mode.
        think(urts, worker);
        support::Nanoseconds work_ns = ((op / 4) % 16 == 15) ? 600'000 : 20'000;
        urts.sgx_ecall(eid_, 3, &table_, &work_ns);
        break;
      }
      default: {
        think(urts, worker);
        std::uint64_t chunk = ((op / 4) * threads_ + worker) % chunks_;
        urts.sgx_ecall(eid_, 5, &table_, &chunk);
        break;
      }
    }
  }

 private:
  EnclaveId eid_ = 0;
  OcallTable table_;
  sgxsim::EnclaveAddr base_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t chunks_ = 1;
};

// --- order / order-clean ----------------------------------------------------

constexpr char kOrderEdl[] = R"(
enclave {
  trusted {
    public int ecall_init(void);
    public int ecall_step_a(void);
    public int ecall_step_b(void);
    int ecall_cb(void);
    public int ecall_rogue(void);
    public int ecall_ping(void);
  };
  untrusted {
    void ocall_ping(void) allow (ecall_cb);
  };
};
)";

constexpr char kOrderLifeEdl[] = R"(
enclave {
  trusted {
    public int ecall_tick(void);
  };
};
)";

/// Marshalling struct for ocall_ping: the handler re-enters the enclave with
/// the nested callback ecall, so it needs the runtime, enclave and table.
struct PingMs {
  sgxsim::Urts* urts = nullptr;
  EnclaveId eid = 0;
  const OcallTable* table = nullptr;
};

/// Untrusted ocall_ping body: 25 us of work on either side of the nested
/// ecall_cb (id 3) keeps the re-entry outside Eq. 2's 20 us edge horizon.
SgxStatus ping_ocall(void* ms) {
  auto* p = static_cast<PingMs*>(ms);
  p->urts->clock().advance(25'000);
  p->urts->sgx_ecall(p->eid, 3, p->table, nullptr);
  p->urts->clock().advance(25'000);
  return SgxStatus::kSuccess;
}

/// Interface-orderliness corpus: a protocol enclave whose declared lifecycle
/// is init (0) -> worker cycle step_a (1) -> step_b (2) -> ping (5), where
/// ping re-enters via the nested ecall_cb (3) under ocall_ping, plus a
/// short-lived lifecycle enclave (ecall_tick, destroyed mid-run).
///
/// The clean variant follows that protocol exactly (init from prepare(), the
/// callback whitelisted, the lifecycle enclave never touched after destroy)
/// and must stay silent on all 13 labeled kinds.  The violating variant
/// scripts worker 0 through all five orderliness anti-patterns: entering the
/// steady state before init lands (use-before-init), running init twice
/// (phase violation), calling the unmodelled ecall_rogue (out-of-order),
/// re-entering without a whitelist (the model drops reentrant_ok, so every
/// ping violates), and one ecall into the destroyed lifecycle enclave
/// (use-after-destroy).
///
/// Every trusted body carries >=25 us of work, ops are separated by think
/// pads, and the scripted sites stay below Eq. 1's min_calls floor (8), so
/// no perf detector crosses a threshold — the 8 perf kinds are must-nots in
/// both variants.
class OrderStressor final : public StressorBase {
 public:
  explicit OrderStressor(bool clean) : clean_(clean) {
    spec_.name = clean ? "order-clean" : "order";
    spec_.description =
        clean ? "protocol-conforming interface traffic (orderliness negative control)"
              : "scripted interface violations (all five orderliness kinds)";
    if (clean) {
      spec_.must_not = with_order_kinds(all_but({}));
    } else {
      spec_.must_trigger = order_kinds();
      spec_.must_not = all_but({});
    }
  }

  void prepare(sgxsim::Urts& urts, const StressConfig& config) override {
    init_workers(config);
    EnclaveConfig cfg;
    cfg.name = "stress_order";
    cfg.tcs_count = config.threads + 2;
    eid_ = urts.create_enclave(std::move(cfg), sgxsim::edl::parse(kOrderEdl));
    EnclaveConfig life;
    life.name = "stress_order_life";
    life.tcs_count = config.threads + 2;
    life_eid_ = urts.create_enclave(std::move(life), sgxsim::edl::parse(kOrderLifeEdl));
    table_ = sgxsim::make_ocall_table({&ping_ocall});
    ping_ms_.urts = &urts;
    ping_ms_.eid = eid_;
    ping_ms_.table = &table_;
    const auto body = [](TrustedContext& ctx, void*) {
      ctx.work(30'000);
      return SgxStatus::kSuccess;
    };
    auto& enclave = urts.enclave(eid_);
    enclave.register_ecall("ecall_init", body);
    enclave.register_ecall("ecall_step_a", body);
    enclave.register_ecall("ecall_step_b", body);
    enclave.register_ecall("ecall_cb", body);
    enclave.register_ecall("ecall_rogue", body);
    enclave.register_ecall("ecall_ping", [](TrustedContext& ctx, void* ms) {
      ctx.work(25'000);
      ctx.ocall(0, ms);
      ctx.work(25'000);
      return SgxStatus::kSuccess;
    });
    urts.enclave(life_eid_).register_ecall("ecall_tick", body);
    // The clean protocol initialises the enclave before any worker touches
    // it; the violating variant leaves init to worker 0's mid-run script.
    if (clean_) urts.sgx_ecall(eid_, 0, &table_, nullptr);
  }

  void step(sgxsim::Urts& urts, std::size_t worker, std::uint64_t op) override {
    think(urts, worker);
    if (worker == 0 && script_step(urts, op)) return;
    switch (op % 3) {
      case 0: urts.sgx_ecall(eid_, 1, &table_, nullptr); break;
      case 1: urts.sgx_ecall(eid_, 2, &table_, nullptr); break;
      default: urts.sgx_ecall(eid_, 5, &table_, &ping_ms_); break;
    }
  }

  [[nodiscard]] perf::OrderModel order_model() const override {
    perf::OrderModel model;
    auto& protocol = model.enclaves[eid_];
    protocol.has_init = true;
    protocol.init_call_id = 0;
    protocol.entries = {0, 1};
    protocol.known = {0, 1, 2, 5};
    // The worker cycle, plus 2 -> 1 so worker 0 may resume the cycle after
    // its lifecycle-enclave detour.  ecall_rogue (4) is deliberately absent.
    protocol.edges = {{1, 2}, {2, 5}, {5, 1}, {2, 1}};
    if (clean_) protocol.reentrant_ok = {3};
    auto& life = model.enclaves[life_eid_];
    life.entries = {0};
    life.known = {0};
    life.edges = {{0, 0}};
    return model;
  }

 private:
  /// Worker 0's scripted ops; returns true when the op was consumed.  The
  /// clean script exercises the lifecycle enclave legally; the violating one
  /// walks through use-before-init (the op-0 entries are flushed when the
  /// late init of op 1 lands), the repeated init, the unknown ecall and the
  /// post-destroy call.
  bool script_step(sgxsim::Urts& urts, std::uint64_t op) {
    if (clean_) {
      switch (op) {
        case 5:
        case 6:
        case 7: urts.sgx_ecall(life_eid_, 0, &table_, nullptr); return true;
        case 8: urts.destroy_enclave(life_eid_); return true;
        default: return false;
      }
    }
    switch (op) {
      case 1:
      case 2: urts.sgx_ecall(eid_, 0, &table_, nullptr); return true;  // 2nd = phase violation
      case 3: urts.sgx_ecall(eid_, 4, &table_, nullptr); return true;  // unmodelled id
      case 5:
      case 6: urts.sgx_ecall(life_eid_, 0, &table_, nullptr); return true;
      case 7: urts.destroy_enclave(life_eid_); return true;
      case 8: urts.sgx_ecall(life_eid_, 0, &table_, nullptr); return true;  // dead enclave
      default: return false;
    }
  }

  bool clean_ = false;
  EnclaveId eid_ = 0;
  EnclaveId life_eid_ = 0;
  OcallTable table_;
  PingMs ping_ms_;
};

/// Round-robin token for the lockstep scheduler.
struct Lockstep {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t turn = 0;
  std::vector<bool> done;
};

}  // namespace

std::unique_ptr<Stressor> make_stressor(const std::string& name) {
  if (name == "cpu") return std::make_unique<CpuStressor>();
  if (name == "vm") return std::make_unique<VmStressor>();
  if (name == "sync") return std::make_unique<SyncStressor>();
  if (name == "ocall-storm") return std::make_unique<OcallStormStressor>();
  if (name == "mixed") return std::make_unique<MixedStressor>();
  if (name == "order") return std::make_unique<OrderStressor>(false);
  if (name == "order-clean") return std::make_unique<OrderStressor>(true);
  return nullptr;
}

std::vector<std::string> stressor_names() {
  return {"cpu", "vm", "sync", "ocall-storm", "mixed", "order", "order-clean"};
}

StressResult run_stressor(Stressor& stressor, sgxsim::Urts& urts,
                          const StressConfig& config) {
  return run_stressor(stressor, urts, config, /*already_prepared=*/false);
}

StressResult run_stressor(Stressor& stressor, sgxsim::Urts& urts,
                          const StressConfig& config, bool already_prepared) {
  if (config.threads == 0) throw std::invalid_argument("stress: threads must be > 0");
  if (!already_prepared) stressor.prepare(urts, config);
  const auto start = urts.clock().now();
  const auto deadline = start + config.duration_ns;

  StressResult result;
  result.per_thread_ops.assign(config.threads, 0);

  if (config.lockstep) {
    // One op per turn, workers rotating in index order.  The first round
    // also pins the ThreadId assignment (registration happens on the first
    // op), so a fixed config yields a byte-identical merged trace.
    Lockstep ls;
    ls.done.assign(config.threads, false);
    const auto pass_token = [&](std::size_t from) {
      std::size_t t = from;
      for (std::size_t i = 0; i < config.threads; ++i) {
        t = (t + 1) % config.threads;
        if (!ls.done[t]) break;
      }
      ls.turn = t;
      ls.cv.notify_all();
    };
    const auto body = [&](std::size_t w) {
      std::uint64_t op = 0;
      for (;;) {
        std::unique_lock lock(ls.mu);
        ls.cv.wait(lock, [&] { return ls.turn == w; });
        if (urts.clock().now() >= deadline) {
          ls.done[w] = true;
          pass_token(w);
          return;
        }
        lock.unlock();
        // The token stays ours while the op runs: ops are fully serialized,
        // but nothing blocks inside the simulated runtime holding the mutex.
        stressor.step(urts, w, op);
        result.per_thread_ops[w] += 1;
        ++op;
        lock.lock();
        pass_token(w);
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(config.threads);
    for (std::size_t w = 0; w < config.threads; ++w) workers.emplace_back(body, w);
    for (auto& t : workers) t.join();
  } else {
    const auto body = [&](std::size_t w) {
      std::uint64_t op = 0;
      while (urts.clock().now() < deadline) {
        stressor.step(urts, w, op);
        result.per_thread_ops[w] += 1;
        ++op;
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(config.threads);
    for (std::size_t w = 0; w < config.threads; ++w) workers.emplace_back(body, w);
    for (auto& t : workers) t.join();
  }

  for (const auto ops : result.per_thread_ops) result.bogo_ops += ops;
  result.elapsed_ns = urts.clock().now() - start;
  return result;
}

}  // namespace stress
