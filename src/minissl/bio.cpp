#include "minissl/bio.hpp"

#include <algorithm>

namespace minissl {

std::size_t PipeEnd::read(std::uint8_t* buf, std::size_t len) {
  const std::size_t take = std::min(len, rx_->size());
  for (std::size_t i = 0; i < take; ++i) {
    buf[i] = rx_->front();
    rx_->pop_front();
  }
  return take;
}

void PipeEnd::write(const std::uint8_t* buf, std::size_t len) {
  tx_->insert(tx_->end(), buf, buf + len);
}

void Bio::fill() {
  std::uint8_t chunk[512];
  for (;;) {
    const std::size_t n = transport_->read(chunk, sizeof(chunk));
    if (n == 0) break;
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

std::size_t Bio::read(std::uint8_t* buf, std::size_t len) {
  const std::size_t n = peek(buf, len);
  consume(n);
  return n;
}

std::size_t Bio::peek(std::uint8_t* buf, std::size_t len) {
  fill();
  const std::size_t take = std::min(len, buffer_.size());
  std::copy_n(buffer_.begin(), take, buf);
  return take;
}

void Bio::consume(std::size_t len) {
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(std::min(len, buffer_.size())));
}

void Bio::write(const std::uint8_t* buf, std::size_t len) { transport_->write(buf, len); }

std::size_t Bio::pending() {
  fill();
  return buffer_.size();
}

long Bio::int_ctrl(BioCtrl cmd, long arg) {
  (void)arg;
  switch (cmd) {
    case BioCtrl::kPending: return static_cast<long>(pending());
    case BioCtrl::kWPending: return 0;
    case BioCtrl::kFlush: return 1;
  }
  return -1;
}

}  // namespace minissl
