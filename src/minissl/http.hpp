// mini-nginx and mini-curl: the host application and load generator of the
// §5.2.1 experiment ("we used nginx as a host application that calls into
// TaLoS ... performing 1000 HTTP GET requests with curl").
//
// Both are non-blocking state machines over a TlsSession, so a single thread
// can pump a client and a server against each other (the way the benchmark
// harness drives 1000 sequential requests).
#pragma once

#include <cstdint>
#include <string>

#include "minissl/session.hpp"

namespace minissl {

/// Serves exactly one connection: handshake, read one GET, write the
/// response, shut down.  Mirrors nginx's call pattern, including the
/// ERR_clear_error / ERR_peek_error bracketing and BIO pending checks that
/// make the OpenSSL interface so transition-heavy as an enclave interface.
class MiniNginx {
 public:
  explicit MiniNginx(std::string body = default_body());

  [[nodiscard]] static std::string default_body();

  /// Advances the connection; returns true when it is fully served.
  bool step(TlsSession& session);

  [[nodiscard]] bool done() const noexcept { return state_ == State::kDone; }
  [[nodiscard]] const std::string& last_request() const noexcept { return request_; }
  void reset();

 private:
  enum class State { kHandshake, kReadRequest, kWriteResponse, kShutdown, kDone };

  State state_ = State::kHandshake;
  std::string body_;
  std::string request_;
};

/// Issues exactly one GET and reads the full response.
class MiniCurl {
 public:
  explicit MiniCurl(std::string path = "/index.html");

  bool step(TlsSession& session);

  [[nodiscard]] bool done() const noexcept { return state_ == State::kDone; }
  [[nodiscard]] const std::string& response() const noexcept { return response_; }
  [[nodiscard]] bool response_complete() const;
  void reset();

 private:
  enum class State { kHandshake, kSendRequest, kReadResponse, kShutdown, kDone };

  State state_ = State::kHandshake;
  std::string path_;
  std::string response_;
  std::size_t expected_length_ = 0;
  bool headers_parsed_ = false;
};

/// Pumps one full request/response exchange between a server and a client
/// session.  Returns true on success (both sides reached kDone).
bool run_exchange(MiniNginx& server, TlsSession& server_session, MiniCurl& client,
                  TlsSession& client_session, int max_steps = 1000);

}  // namespace minissl
