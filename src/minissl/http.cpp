#include "minissl/http.hpp"

#include "support/strutil.hpp"

namespace minissl {

MiniNginx::MiniNginx(std::string body) : body_(std::move(body)) {}

std::string MiniNginx::default_body() {
  std::string body = "<html><head><title>minissl</title></head><body>";
  for (int i = 0; i < 8; ++i) body += "<p>Welcome to the sgx-perf reproduction.</p>";
  body += "</body></html>";
  return body;
}

void MiniNginx::reset() {
  state_ = State::kHandshake;
  request_.clear();
}

bool MiniNginx::step(TlsSession& session) {
  switch (state_) {
    case State::kHandshake: {
      // nginx clears the error queue before driving the handshake.
      session.err_clear();
      const int ret = session.do_handshake();
      if (ret == 1) {
        state_ = State::kReadRequest;
      } else if (session.get_error(ret) != SSL_ERROR_WANT_READ) {
        session.err_get();  // consume and give up on this connection
        state_ = State::kDone;
      }
      return false;
    }
    case State::kReadRequest: {
      // nginx checks buffered bytes (SSL_get_rbio + BIO_int_ctrl), then reads.
      session.bio_pending();
      char buf[2048];
      const int n = session.read(buf, sizeof(buf));
      if (n > 0) {
        request_.append(buf, static_cast<std::size_t>(n));
        if (request_.find("\r\n\r\n") != std::string::npos) {
          state_ = State::kWriteResponse;
        }
      } else if (n == 0) {
        state_ = State::kDone;  // peer closed before sending a request
      } else if (session.get_error(n) != SSL_ERROR_WANT_READ) {
        session.err_peek();
        session.err_clear();
        state_ = State::kDone;
      }
      return false;
    }
    case State::kWriteResponse: {
      const std::string response = support::format(
          "HTTP/1.1 200 OK\r\nServer: mini-nginx\r\nContent-Length: %zu\r\n"
          "Connection: close\r\n\r\n%s",
          body_.size(), body_.c_str());
      const int ret = session.write(response.data(), static_cast<int>(response.size()));
      if (ret < 0) session.err_peek();
      session.set_quiet_shutdown(false);
      state_ = State::kShutdown;
      return false;
    }
    case State::kShutdown: {
      session.shutdown();  // 0 until the peer's close_notify arrives; nginx
      state_ = State::kDone;  // closes the socket regardless
      return true;
    }
    case State::kDone:
      return true;
  }
  return false;
}

MiniCurl::MiniCurl(std::string path) : path_(std::move(path)) {}

void MiniCurl::reset() {
  state_ = State::kHandshake;
  response_.clear();
  expected_length_ = 0;
  headers_parsed_ = false;
}

bool MiniCurl::response_complete() const {
  if (!headers_parsed_) return false;
  const auto header_end = response_.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  return response_.size() - (header_end + 4) >= expected_length_;
}

bool MiniCurl::step(TlsSession& session) {
  switch (state_) {
    case State::kHandshake: {
      const int ret = session.do_handshake();
      if (ret == 1) {
        state_ = State::kSendRequest;
      } else if (session.get_error(ret) != SSL_ERROR_WANT_READ) {
        session.err_get();
        state_ = State::kDone;
      }
      return false;
    }
    case State::kSendRequest: {
      const std::string request = support::format(
          "GET %s HTTP/1.1\r\nHost: reproduction.local\r\nUser-Agent: mini-curl\r\n\r\n",
          path_.c_str());
      session.write(request.data(), static_cast<int>(request.size()));
      state_ = State::kReadResponse;
      return false;
    }
    case State::kReadResponse: {
      char buf[2048];
      const int n = session.read(buf, sizeof(buf));
      if (n > 0) {
        response_.append(buf, static_cast<std::size_t>(n));
        if (!headers_parsed_) {
          const auto pos = response_.find("Content-Length: ");
          const auto end = response_.find("\r\n\r\n");
          if (pos != std::string::npos && end != std::string::npos) {
            expected_length_ =
                static_cast<std::size_t>(std::strtoul(response_.c_str() + pos + 16, nullptr, 10));
            headers_parsed_ = true;
          }
        }
        if (response_complete()) state_ = State::kShutdown;
      } else if (n == 0) {
        state_ = State::kShutdown;  // server closed
      } else if (session.get_error(n) != SSL_ERROR_WANT_READ) {
        session.err_get();
        state_ = State::kDone;
      }
      return false;
    }
    case State::kShutdown: {
      session.shutdown();
      state_ = State::kDone;
      return true;
    }
    case State::kDone:
      return true;
  }
  return false;
}

bool run_exchange(MiniNginx& server, TlsSession& server_session, MiniCurl& client,
                  TlsSession& client_session, int max_steps) {
  for (int i = 0; i < max_steps; ++i) {
    if (!client.done()) client.step(client_session);
    if (!server.done()) server.step(server_session);
    if (client.done() && server.done()) return client.response_complete();
  }
  return false;
}

}  // namespace minissl
