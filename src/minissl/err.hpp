// OpenSSL-style error queue.
//
// OpenSSL does not return meaningful error codes from its functions; it
// pushes errors onto a queue that callers drain through the ERR_* family.
// §5.2.1 shows why this matters for enclaves: when the interface is exposed
// 1:1 as ecalls (TaLoS), every ERR_peek_error/ERR_clear_error becomes an
// extra enclave transition.
#pragma once

#include <cstdint>

namespace minissl {

/// Error codes (packed reason codes, OpenSSL-style non-zero values).
enum class SslErrorCode : std::uint64_t {
  kNone = 0,
  kWantRead = 0x02'0001,
  kWantWrite = 0x02'0002,
  kBadRecordMac = 0x04'0001,
  kUnexpectedMessage = 0x04'0002,
  kNotInitialised = 0x04'0003,
  kProtocolViolation = 0x04'0004,
  kConnectionClosed = 0x04'0005,
};

/// Pushes an error onto the calling thread's queue.
void ERR_put_error(SslErrorCode code);

/// Returns the oldest error and removes it (0 when empty).
std::uint64_t ERR_get_error();

/// Returns the oldest error without removing it (0 when empty).
std::uint64_t ERR_peek_error();

/// Empties the queue.
void ERR_clear_error();

/// Number of queued errors (not part of OpenSSL; used by tests).
std::size_t ERR_queue_depth();

}  // namespace minissl
