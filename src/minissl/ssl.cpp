#include "minissl/ssl.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "support/rng.hpp"

namespace minissl {

namespace {

// A fixed 512-bit DH modulus (any odd modulus preserves the commutativity
// (g^a)^b = (g^b)^a mod P that the key exchange relies on; primality is not
// needed for a performance reproduction) and generator 5.
const char* const kDhPrimeHex =
    "f2b4a9d3c1e58b7f0a6d4c2e9b13857d"
    "64c0a8f1e3b5d7092c4e6a8b0d2f4861"
    "a3c5e7f90b1d3f567890abcdef123457"
    "8b9d0f1a2c3e4d5f6a7b8c9d0e1f2a3b";

std::vector<std::uint8_t> bignum_to_bytes(const bignum::BigNum& n) {
  const std::string hex = n.to_hex();
  return std::vector<std::uint8_t>(hex.begin(), hex.end());
}

bignum::BigNum bytes_to_bignum(const std::vector<std::uint8_t>& bytes) {
  return bignum::BigNum::from_hex(std::string(bytes.begin(), bytes.end()));
}

void put_blob(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& blob) {
  const auto len = static_cast<std::uint32_t>(blob.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), blob.begin(), blob.end());
}

bool get_blob(const std::vector<std::uint8_t>& in, std::size_t& off,
              std::vector<std::uint8_t>& blob) {
  if (off + 4 > in.size()) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{in[off + static_cast<std::size_t>(i)]} << (8 * i);
  off += 4;
  if (off + len > in.size()) return false;
  blob.assign(in.begin() + static_cast<std::ptrdiff_t>(off),
              in.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return true;
}

}  // namespace

SslCtx::SslCtx(std::uint64_t key_seed)
    : prime_(bignum::BigNum::from_hex(kDhPrimeHex)), generator_(5) {
  support::Rng rng(key_seed);
  certificate_ = "CN=minissl-server;serial=" + rng.next_string(16);
}

Ssl::Ssl(SslCtx& ctx, std::uint64_t seed) : ctx_(ctx) {
  support::Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  auto next = [&rng] { return rng.next_u64(); };
  dh_priv_ = bignum::BigNum::random(next, 128);
  dh_pub_ = ctx_.generator_.modexp(dh_priv_, ctx_.prime_);
  my_random_.resize(32);
  for (auto& b : my_random_) b = static_cast<std::uint8_t>(rng.next_u64());
}

void Ssl::set_transport(std::unique_ptr<Transport> transport) {
  bio_ = std::make_unique<Bio>(std::move(transport));
}

void Ssl::send_record(RecordType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> body = payload;
  std::uint8_t mac[8] = {0};
  if (keys_ready_ && type != RecordType::kHandshake) {
    crypto::ChaChaNonce nonce{};
    std::memcpy(nonce.data(), &send_seq_, sizeof(send_seq_));
    crypto::chacha20_crypt(session_key_, nonce, 1, body.data(), body.size());
    const auto tag =
        crypto::hmac_sha256(session_key_.data(), session_key_.size(), body.data(), body.size());
    std::memcpy(mac, tag.data(), sizeof(mac));
    ++send_seq_;
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(body.size() + 11);
  frame.push_back(static_cast<std::uint8_t>(type));
  const auto len = static_cast<std::uint16_t>(body.size());
  frame.push_back(static_cast<std::uint8_t>(len));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.insert(frame.end(), body.begin(), body.end());
  frame.insert(frame.end(), mac, mac + 8);
  bio_->write(frame.data(), frame.size());
}

std::optional<std::pair<Ssl::RecordType, std::vector<std::uint8_t>>> Ssl::recv_record() {
  std::uint8_t header[3];
  if (bio_->peek(header, 3) < 3) return std::nullopt;
  const auto type = static_cast<RecordType>(header[0]);
  const std::uint16_t len =
      static_cast<std::uint16_t>(header[1] | (std::uint16_t{header[2]} << 8));
  const std::size_t total = 3u + len + 8u;
  std::vector<std::uint8_t> frame(total);
  if (bio_->peek(frame.data(), total) < total) return std::nullopt;
  bio_->consume(total);

  std::vector<std::uint8_t> body(frame.begin() + 3, frame.begin() + 3 + len);
  if (keys_ready_ && type != RecordType::kHandshake) {
    const auto tag =
        crypto::hmac_sha256(session_key_.data(), session_key_.size(), body.data(), body.size());
    if (std::memcmp(tag.data(), frame.data() + 3 + len, 8) != 0) {
      ERR_put_error(SslErrorCode::kBadRecordMac);
      return std::nullopt;
    }
    crypto::ChaChaNonce nonce{};
    std::memcpy(nonce.data(), &recv_seq_, sizeof(recv_seq_));
    crypto::chacha20_crypt(session_key_, nonce, 1, body.data(), body.size());
    ++recv_seq_;
  }
  return std::make_pair(type, std::move(body));
}

void Ssl::derive_keys(const bignum::BigNum& peer_pub, const std::vector<std::uint8_t>& cr,
                      const std::vector<std::uint8_t>& sr) {
  const bignum::BigNum shared = peer_pub.modexp(dh_priv_, ctx_.prime_);
  crypto::Sha256 h;
  const std::string hex = shared.to_hex();
  h.update(hex);
  h.update(cr.data(), cr.size());
  h.update(sr.data(), sr.size());
  const auto digest = h.finish();
  std::memcpy(session_key_.data(), digest.data(), session_key_.size());
  keys_ready_ = true;
}

void Ssl::send_hello() {
  std::vector<std::uint8_t> payload;
  put_blob(payload, my_random_);
  put_blob(payload, bignum_to_bytes(dh_pub_));
  if (server_) {
    // ServerHello carries the ALPN choice and the certificate.
    put_blob(payload, std::vector<std::uint8_t>(alpn_selected_.begin(), alpn_selected_.end()));
    put_blob(payload,
             std::vector<std::uint8_t>(ctx_.certificate_.begin(), ctx_.certificate_.end()));
  } else {
    // ClientHello offers ALPN protocols, comma-separated.
    std::string offer;
    for (const auto& p : alpn_offer_) {
      if (!offer.empty()) offer += ',';
      offer += p;
    }
    put_blob(payload, std::vector<std::uint8_t>(offer.begin(), offer.end()));
  }
  send_record(RecordType::kHandshake, payload);
}

bool Ssl::process_hello(const std::vector<std::uint8_t>& payload) {
  std::size_t off = 0;
  std::vector<std::uint8_t> random;
  std::vector<std::uint8_t> pub;
  std::vector<std::uint8_t> alpn;
  if (!get_blob(payload, off, random) || !get_blob(payload, off, pub) ||
      !get_blob(payload, off, alpn)) {
    ERR_put_error(SslErrorCode::kProtocolViolation);
    return false;
  }
  peer_random_ = random;
  const bignum::BigNum peer_pub = bytes_to_bignum(pub);

  if (server_) {
    // ALPN negotiation, through the application's callback when set (in
    // TaLoS this is the enclave_ocall_alpn_select_cb of Figure 5).
    std::vector<std::string> offered;
    std::string current;
    for (const auto b : alpn) {
      if (b == ',') {
        offered.push_back(current);
        current.clear();
      } else {
        current.push_back(static_cast<char>(b));
      }
    }
    if (!current.empty()) offered.push_back(current);
    if (ctx_.alpn_cb_ != nullptr) {
      ctx_.alpn_cb_(this, alpn_selected_, offered, ctx_.alpn_arg_);
    } else if (!offered.empty()) {
      alpn_selected_ = offered.front();
    }
    derive_keys(peer_pub, peer_random_, my_random_);
  } else {
    alpn_selected_.assign(alpn.begin(), alpn.end());
    std::vector<std::uint8_t> cert;
    if (!get_blob(payload, off, cert)) {
      ERR_put_error(SslErrorCode::kProtocolViolation);
      return false;
    }
    peer_cert_.assign(cert.begin(), cert.end());
    derive_keys(peer_pub, my_random_, peer_random_);
  }
  return true;
}

int Ssl::do_handshake() {
  if (!bio_) {
    ERR_put_error(SslErrorCode::kNotInitialised);
    last_error_ = SSL_ERROR_SSL;
    return -1;
  }
  if (state_ == State::kEstablished) return 1;

  if (server_) {
    // Server: wait for ClientHello, then answer.
    const auto record = recv_record();
    if (!record) {
      last_error_ = SSL_ERROR_WANT_READ;
      return -1;
    }
    if (record->first != RecordType::kHandshake) {
      ERR_put_error(SslErrorCode::kUnexpectedMessage);
      last_error_ = SSL_ERROR_SSL;
      return -1;
    }
    if (ctx_.info_cb_ != nullptr) ctx_.info_cb_(this, SSL_CB_HANDSHAKE_START, 1, ctx_.info_arg_);
    if (!process_hello(record->second)) {
      last_error_ = SSL_ERROR_SSL;
      return -1;
    }
    send_hello();
    state_ = State::kEstablished;
    if (ctx_.info_cb_ != nullptr) ctx_.info_cb_(this, SSL_CB_HANDSHAKE_DONE, 1, ctx_.info_arg_);
    last_error_ = SSL_ERROR_NONE;
    return 1;
  }

  // Client: send ClientHello once, then wait for the ServerHello.
  if (state_ == State::kInit) {
    send_hello();
    state_ = State::kHelloSent;
  }
  const auto record = recv_record();
  if (!record) {
    last_error_ = SSL_ERROR_WANT_READ;
    return -1;
  }
  if (record->first != RecordType::kHandshake || !process_hello(record->second)) {
    ERR_put_error(SslErrorCode::kUnexpectedMessage);
    last_error_ = SSL_ERROR_SSL;
    return -1;
  }
  state_ = State::kEstablished;
  last_error_ = SSL_ERROR_NONE;
  return 1;
}

int Ssl::read(void* buf, int len) {
  if (state_ != State::kEstablished && state_ != State::kShutdown) {
    ERR_put_error(SslErrorCode::kNotInitialised);
    last_error_ = SSL_ERROR_SSL;
    return -1;
  }
  const auto record = recv_record();
  if (!record) {
    if (ERR_peek_error() == static_cast<std::uint64_t>(SslErrorCode::kBadRecordMac)) {
      last_error_ = SSL_ERROR_SSL;
      return -1;
    }
    last_error_ = SSL_ERROR_WANT_READ;
    return -1;
  }
  if (record->first == RecordType::kCloseNotify) {
    received_close_ = true;
    last_error_ = SSL_ERROR_ZERO_RETURN;
    return 0;
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(len), record->second.size());
  std::memcpy(buf, record->second.data(), take);
  last_error_ = SSL_ERROR_NONE;
  return static_cast<int>(take);
}

int Ssl::write(const void* buf, int len) {
  if (state_ != State::kEstablished) {
    ERR_put_error(SslErrorCode::kNotInitialised);
    last_error_ = SSL_ERROR_SSL;
    return -1;
  }
  // Fragment into records of at most 16 KB minus overhead (fits u16 length).
  const auto* p = static_cast<const std::uint8_t*>(buf);
  int remaining = len;
  while (remaining > 0) {
    const int chunk = std::min(remaining, 16'000);
    send_record(RecordType::kApplicationData,
                std::vector<std::uint8_t>(p, p + chunk));
    p += chunk;
    remaining -= chunk;
  }
  last_error_ = SSL_ERROR_NONE;
  return len;
}

int Ssl::shutdown() {
  if (!sent_close_ && !quiet_shutdown_ && state_ == State::kEstablished) {
    send_record(RecordType::kCloseNotify, {});
  }
  sent_close_ = true;
  state_ = State::kShutdown;
  if (!received_close_) {
    // Check whether the peer's close_notify already arrived.
    const auto record = recv_record();
    if (record && record->first == RecordType::kCloseNotify) received_close_ = true;
  }
  return received_close_ ? 1 : 0;
}

int Ssl::get_error(int ret) const {
  if (ret > 0) return SSL_ERROR_NONE;
  return last_error_;
}

}  // namespace minissl
