// Transport plumbing: simulated sockets and the BIO abstraction.
//
// A SimConnection is a bidirectional in-memory byte pipe (the 10 Gbit/s link
// between curl and nginx in §5.2.1).  A BIO wraps one endpoint — or, in the
// TaLoS build, an ocall-bridged transport — and is what the SSL record layer
// reads from and writes to.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace minissl {

/// Byte source/sink the record layer talks to (non-blocking).
class Transport {
 public:
  virtual ~Transport() = default;
  /// Reads up to `len` bytes; returns the count (0 when nothing available).
  virtual std::size_t read(std::uint8_t* buf, std::size_t len) = 0;
  /// Writes `len` bytes; the simulated pipes never refuse data.
  virtual void write(const std::uint8_t* buf, std::size_t len) = 0;
  /// Bytes currently readable.
  [[nodiscard]] virtual std::size_t pending() const = 0;
};

/// One side of a byte pipe.
class PipeEnd final : public Transport {
 public:
  PipeEnd(std::shared_ptr<std::deque<std::uint8_t>> rx,
          std::shared_ptr<std::deque<std::uint8_t>> tx)
      : rx_(std::move(rx)), tx_(std::move(tx)) {}

  std::size_t read(std::uint8_t* buf, std::size_t len) override;
  void write(const std::uint8_t* buf, std::size_t len) override;
  [[nodiscard]] std::size_t pending() const override { return rx_->size(); }

 private:
  std::shared_ptr<std::deque<std::uint8_t>> rx_;
  std::shared_ptr<std::deque<std::uint8_t>> tx_;
};

/// A bidirectional connection between a client and a server.
class SimConnection {
 public:
  SimConnection()
      : c2s_(std::make_shared<std::deque<std::uint8_t>>()),
        s2c_(std::make_shared<std::deque<std::uint8_t>>()) {}

  [[nodiscard]] PipeEnd client_end() { return PipeEnd(s2c_, c2s_); }
  [[nodiscard]] PipeEnd server_end() { return PipeEnd(c2s_, s2c_); }

 private:
  std::shared_ptr<std::deque<std::uint8_t>> c2s_;
  std::shared_ptr<std::deque<std::uint8_t>> s2c_;
};

/// BIO control commands (the subset nginx uses through BIO_int_ctrl).
enum class BioCtrl : int {
  kPending = 10,   // bytes buffered for reading
  kWPending = 13,  // bytes buffered for writing (always 0 here)
  kFlush = 11,
};

/// The OpenSSL BIO: buffers bytes between the SSL object and its transport.
class Bio {
 public:
  explicit Bio(std::unique_ptr<Transport> transport) : transport_(std::move(transport)) {}

  /// Pulls whatever the transport has into the internal buffer, then copies
  /// up to `len` bytes out.  Returns the number of bytes delivered.
  std::size_t read(std::uint8_t* buf, std::size_t len);
  /// Non-consuming look at buffered bytes (fills the buffer first).
  std::size_t peek(std::uint8_t* buf, std::size_t len);
  /// Drops `len` buffered bytes (after a successful peek-decode).
  void consume(std::size_t len);
  void write(const std::uint8_t* buf, std::size_t len);

  /// Buffered + transport-pending bytes.
  [[nodiscard]] std::size_t pending();

  /// BIO_int_ctrl: integer control channel (Figure 5 shows nginx calling it).
  long int_ctrl(BioCtrl cmd, long arg);

 private:
  void fill();

  std::unique_ptr<Transport> transport_;
  std::deque<std::uint8_t> buffer_;
};

}  // namespace minissl
