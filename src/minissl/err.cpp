#include "minissl/err.hpp"

#include <deque>

namespace minissl {

namespace {
// OpenSSL's queue is per-thread; so is ours.
thread_local std::deque<std::uint64_t> t_errors;
}  // namespace

void ERR_put_error(SslErrorCode code) {
  t_errors.push_back(static_cast<std::uint64_t>(code));
}

std::uint64_t ERR_get_error() {
  if (t_errors.empty()) return 0;
  const std::uint64_t e = t_errors.front();
  t_errors.pop_front();
  return e;
}

std::uint64_t ERR_peek_error() { return t_errors.empty() ? 0 : t_errors.front(); }

void ERR_clear_error() { t_errors.clear(); }

std::size_t ERR_queue_depth() { return t_errors.size(); }

}  // namespace minissl
