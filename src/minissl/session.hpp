// The TLS session surface that applications (mini-nginx, mini-curl) program
// against.  Two implementations exist: NativeTlsSession calls the minissl
// library directly; TalosTlsSession routes every call through an enclave
// ecall, exactly like linking nginx against TaLoS instead of OpenSSL.
#pragma once

#include <cstdint>
#include <memory>

#include "minissl/ssl.hpp"

namespace minissl {

class TlsSession {
 public:
  virtual ~TlsSession() = default;

  virtual int do_handshake() = 0;
  virtual int read(void* buf, int len) = 0;
  virtual int write(const void* buf, int len) = 0;
  virtual int shutdown() = 0;
  virtual int get_error(int ret) = 0;
  /// SSL_get_rbio + BIO_int_ctrl(kPending): bytes buffered for reading.
  virtual long bio_pending() = 0;
  virtual void set_quiet_shutdown(bool quiet) = 0;
  virtual std::uint64_t err_peek() = 0;
  virtual std::uint64_t err_get() = 0;
  virtual void err_clear() = 0;
};

/// Direct (no enclave) implementation.
class NativeTlsSession final : public TlsSession {
 public:
  /// Builds a session over `transport`; `server` selects the accept state.
  NativeTlsSession(SslCtx& ctx, std::unique_ptr<Transport> transport, bool server,
                   std::uint64_t seed);

  int do_handshake() override { return ssl_.do_handshake(); }
  int read(void* buf, int len) override { return ssl_.read(buf, len); }
  int write(const void* buf, int len) override { return ssl_.write(buf, len); }
  int shutdown() override { return ssl_.shutdown(); }
  int get_error(int ret) override { return ssl_.get_error(ret); }
  long bio_pending() override {
    Bio* bio = ssl_.get_rbio();
    return bio != nullptr ? bio->int_ctrl(BioCtrl::kPending, 0) : 0;
  }
  void set_quiet_shutdown(bool quiet) override { ssl_.set_quiet_shutdown(quiet); }
  std::uint64_t err_peek() override { return ERR_peek_error(); }
  std::uint64_t err_get() override { return ERR_get_error(); }
  void err_clear() override { ERR_clear_error(); }

  [[nodiscard]] Ssl& ssl() noexcept { return ssl_; }

 private:
  Ssl ssl_;
};

}  // namespace minissl
