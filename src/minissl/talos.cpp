#include "minissl/talos.hpp"

#include <cstring>
#include <stdexcept>

namespace minissl {

using sgxsim::CallId;
using sgxsim::SgxStatus;
using sgxsim::TrustedContext;

// The enclave interface is the OpenSSL API itself: the entries below include
// every call Figure 5 shows plus a sample of the rest of the surface TaLoS
// exposes (the real thing has 207 ecalls and 61 ocalls; the unused
// declarations here stand in for that breadth — the analyser reports
// defined-vs-called exactly like the paper does).
const char* const kTalosEdl = R"(
enclave {
  trusted {
    public uint64_t sgx_ecall_SSL_new([user_check] void* host);
    public void sgx_ecall_SSL_free(uint64_t ssl);
    public int sgx_ecall_SSL_set_fd(uint64_t ssl, uint64_t conn);
    public void sgx_ecall_SSL_set_accept_state(uint64_t ssl);
    public void sgx_ecall_SSL_set_connect_state(uint64_t ssl);
    public int sgx_ecall_SSL_do_handshake(uint64_t ssl);
    public int sgx_ecall_SSL_read(uint64_t ssl, [out, size=len] void* buf, size_t len);
    public int sgx_ecall_SSL_write(uint64_t ssl, [in, size=len] const void* buf, size_t len);
    public int sgx_ecall_SSL_shutdown(uint64_t ssl);
    public int sgx_ecall_SSL_get_error(uint64_t ssl, int ret);
    public uint64_t sgx_ecall_SSL_get_rbio(uint64_t ssl);
    public long sgx_ecall_BIO_int_ctrl(uint64_t bio, int cmd, long larg);
    public void sgx_ecall_SSL_set_quiet_shutdown(uint64_t ssl, int mode);
    public uint64_t sgx_ecall_ERR_peek_error(void);
    public uint64_t sgx_ecall_ERR_get_error(void);
    public void sgx_ecall_ERR_clear_error(void);
    // Unused breadth of the drop-in replacement interface:
    public uint64_t sgx_ecall_SSL_CTX_new(void);
    public void sgx_ecall_SSL_CTX_free(uint64_t ctx);
    public int sgx_ecall_SSL_pending(uint64_t ssl);
    public int sgx_ecall_SSL_get_version(uint64_t ssl);
    public uint64_t sgx_ecall_SSL_get_current_cipher(uint64_t ssl);
    public uint64_t sgx_ecall_SSL_CIPHER_get_name(uint64_t cipher);
    public int sgx_ecall_SSL_CTX_set_cipher_list(uint64_t ctx, [user_check] const char* list);
    public int sgx_ecall_SSL_CTX_use_certificate_file(uint64_t ctx, [user_check] const char* path, int type);
    public int sgx_ecall_SSL_CTX_use_PrivateKey_file(uint64_t ctx, [user_check] const char* path, int type);
    public long sgx_ecall_SSL_CTX_set_options(uint64_t ctx, long options);
    public void sgx_ecall_SSL_CTX_set_verify(uint64_t ctx, int mode);
    public int sgx_ecall_SSL_set_session(uint64_t ssl, uint64_t session);
    public uint64_t sgx_ecall_SSL_get_session(uint64_t ssl);
    public int sgx_ecall_SSL_session_reused(uint64_t ssl);
    public void sgx_ecall_SSL_set_bio(uint64_t ssl, uint64_t rbio, uint64_t wbio);
    public int sgx_ecall_SSL_get_shutdown(uint64_t ssl);
    public int sgx_ecall_SSL_peek(uint64_t ssl, [user_check] void* buf, int num);
    public uint64_t sgx_ecall_BIO_new(uint64_t method);
    public int sgx_ecall_BIO_free(uint64_t bio);
    public long sgx_ecall_BIO_ctrl(uint64_t bio, int cmd, long larg, [user_check] void* parg);
    public int sgx_ecall_BIO_read(uint64_t bio, [user_check] void* buf, int len);
    public int sgx_ecall_BIO_write(uint64_t bio, [user_check] const void* buf, int len);
    public uint64_t sgx_ecall_ERR_peek_last_error(void);
    public void sgx_ecall_ERR_remove_thread_state(void);
    public uint64_t sgx_ecall_EVP_get_digestbyname([user_check] const char* name);
    public uint64_t sgx_ecall_X509_get_subject_name(uint64_t x509);
    public uint64_t sgx_ecall_SSL_get_peer_certificate(uint64_t ssl);
    public int sgx_ecall_RAND_bytes([user_check] unsigned char* buf, int num);
  };
  untrusted {
    long enclave_ocall_read([user_check] void* host, uint64_t conn, [out, size=len] void* buf, size_t len);
    long enclave_ocall_write([user_check] void* host, uint64_t conn, [in, size=len] const void* buf, size_t len);
    void enclave_ocall_execute_ssl_ctx_info_callback([user_check] void* host, uint64_t ssl, int where, int ret);
    int enclave_ocall_alpn_select_cb([user_check] void* host, uint64_t ssl,
                                     [in, size=len] const char* protos, size_t len);
    void enclave_ocall_malloc(size_t size, [out, size=8] void* result);
    void enclave_ocall_free([user_check] void* ptr);
    void enclave_ocall_print([in, size=len] const char* msg, size_t len);
    long enclave_ocall_get_time([out, size=8] void* now);
  };
};
)";

namespace {

enum class TalosOcall : CallId {
  kRead = 0,
  kWrite = 1,
  kInfoCallback = 2,
  kAlpnSelect = 3,
};

SgxStatus ocall_read(void* msp) {
  auto* ms = static_cast<TalosMs*>(msp);
  auto* host = static_cast<TalosEnclave*>(ms->host);
  Transport* conn = host->connection(ms->conn_id);
  ms->ret = conn != nullptr
                ? static_cast<std::int64_t>(conn->read(static_cast<std::uint8_t*>(ms->buf),
                                                       static_cast<std::size_t>(ms->len)))
                : -1;
  return SgxStatus::kSuccess;
}

SgxStatus ocall_write(void* msp) {
  auto* ms = static_cast<TalosMs*>(msp);
  auto* host = static_cast<TalosEnclave*>(ms->host);
  Transport* conn = host->connection(ms->conn_id);
  if (conn == nullptr) {
    ms->ret = -1;
    return SgxStatus::kSuccess;
  }
  conn->write(static_cast<const std::uint8_t*>(ms->buf), static_cast<std::size_t>(ms->len));
  ms->ret = ms->len;
  return SgxStatus::kSuccess;
}

SgxStatus ocall_info_callback(void* msp) {
  auto* ms = static_cast<TalosMs*>(msp);
  ++static_cast<TalosEnclave*>(ms->host)->info_callback_invocations;
  return SgxStatus::kSuccess;
}

SgxStatus ocall_alpn_select(void* msp) {
  auto* ms = static_cast<TalosMs*>(msp);
  ++static_cast<TalosEnclave*>(ms->host)->alpn_callback_invocations;
  ms->ret = 0;  // pick the first offered protocol
  return SgxStatus::kSuccess;
}

SgxStatus ocall_unused(void* /*ms*/) { return SgxStatus::kSuccess; }

}  // namespace

// --- trusted state ---------------------------------------------------------------

struct TalosEnclave::TrustedState {
  TrustedContext* ctx = nullptr;  // valid during an ecall
  void* host = nullptr;
  SslCtx ssl_ctx;
  support::Nanoseconds crypto_ns_per_byte = 8;

  struct Entry {
    std::unique_ptr<Ssl> ssl;
    std::uint64_t conn_id = 0;
  };
  std::map<std::uint64_t, Entry> sessions;
  std::map<const Ssl*, std::uint64_t> handle_of;
  std::uint64_t next_handle = 1;

  [[nodiscard]] Entry* find(std::uint64_t handle) {
    const auto it = sessions.find(handle);
    return it == sessions.end() ? nullptr : &it->second;
  }
};

namespace {

/// Trusted transport that leaves the enclave for every socket operation —
/// ocalls 26/27 of Figure 5.
class OcallTransport final : public Transport {
 public:
  OcallTransport(TalosEnclave::TrustedState* ts, std::uint64_t conn_id)
      : ts_(ts), conn_id_(conn_id) {}

  std::size_t read(std::uint8_t* buf, std::size_t len) override {
    TalosMs ms;
    ms.host = ts_->host;
    ms.conn_id = conn_id_;
    ms.buf = buf;
    ms.len = static_cast<std::int64_t>(len);
    ts_->ctx->ocall(static_cast<CallId>(TalosOcall::kRead), &ms);
    if (ms.ret > 0) ts_->ctx->copy_in(static_cast<std::uint64_t>(ms.ret));
    return ms.ret > 0 ? static_cast<std::size_t>(ms.ret) : 0;
  }

  void write(const std::uint8_t* buf, std::size_t len) override {
    TalosMs ms;
    ms.host = ts_->host;
    ms.conn_id = conn_id_;
    ms.buf = const_cast<std::uint8_t*>(buf);
    ms.len = static_cast<std::int64_t>(len);
    ts_->ctx->copy_out(len);
    ts_->ctx->ocall(static_cast<CallId>(TalosOcall::kWrite), &ms);
  }

  [[nodiscard]] std::size_t pending() const override { return 0; }  // read() drains instead

 private:
  TalosEnclave::TrustedState* ts_;
  std::uint64_t conn_id_;
};

void trusted_info_callback(const Ssl* ssl, int where, int ret, void* arg) {
  auto* ts = static_cast<TalosEnclave::TrustedState*>(arg);
  TalosMs ms;
  ms.host = ts->host;
  const auto it = ts->handle_of.find(ssl);
  ms.ssl_handle = it != ts->handle_of.end() ? it->second : 0;
  ms.where = where;
  ms.iarg = ret;
  ts->ctx->ocall(static_cast<CallId>(TalosOcall::kInfoCallback), &ms);
}

int trusted_alpn_select(const Ssl* ssl, std::string& selected,
                        const std::vector<std::string>& offered, void* arg) {
  auto* ts = static_cast<TalosEnclave::TrustedState*>(arg);
  std::string joined;
  for (const auto& p : offered) {
    if (!joined.empty()) joined += ',';
    joined += p;
  }
  TalosMs ms;
  ms.host = ts->host;
  const auto it = ts->handle_of.find(ssl);
  ms.ssl_handle = it != ts->handle_of.end() ? it->second : 0;
  ms.buf = joined.data();
  ms.len = static_cast<std::int64_t>(joined.size());
  ts->ctx->copy_out(joined.size());
  ts->ctx->ocall(static_cast<CallId>(TalosOcall::kAlpnSelect), &ms);
  selected = offered.empty() ? "http/1.1" : offered.front();
  return 0;
}

}  // namespace

sgxsim::EnclaveConfig TalosEnclave::default_config() {
  sgxsim::EnclaveConfig config;
  config.name = "talos";
  config.code_pages = 256;   // an entire LibreSSL lives inside
  config.heap_pages = 512;
  config.stack_pages = 8;
  config.tcs_count = 8;
  return config;
}

TalosEnclave::TalosEnclave(sgxsim::Urts& urts, sgxsim::EnclaveConfig config)
    : urts_(urts), trusted_(std::make_unique<TrustedState>()) {
  auto spec = sgxsim::edl::parse(kTalosEdl);
  for (std::size_t i = 0; i < spec.ecalls.size(); ++i) {
    ecall_ids_[spec.ecalls[i].name] = static_cast<CallId>(i);
  }
  eid_ = urts_.create_enclave(std::move(config), std::move(spec));
  std::vector<sgxsim::OcallFn> entries = {&ocall_read, &ocall_write, &ocall_info_callback,
                                          &ocall_alpn_select};
  entries.resize(8, &ocall_unused);
  table_ = sgxsim::make_ocall_table(std::move(entries));

  TrustedState* ts = trusted_.get();
  ts->host = this;
  ts->ssl_ctx.set_info_callback(&trusted_info_callback, ts);
  ts->ssl_ctx.set_alpn_select_cb(&trusted_alpn_select, ts);

  struct CtxScope {
    TrustedState* ts;
    CtxScope(TrustedState* s, TrustedContext& ctx) : ts(s) { ts->ctx = &ctx; }
    ~CtxScope() { ts->ctx = nullptr; }
  };

  sgxsim::Enclave& enclave = urts_.enclave(eid_);
  const auto reg = [&](const char* name, auto fn) {
    enclave.register_ecall(name, [ts, fn](TrustedContext& ctx, void* msp) {
      CtxScope scope(ts, ctx);
      ctx.work(250);  // trusted-bridge bookkeeping per API call
      auto* ms = static_cast<TalosMs*>(msp);
      return fn(ts, ctx, ms);
    });
  };

  reg("sgx_ecall_SSL_new", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    const std::uint64_t handle = ts->next_handle++;
    auto ssl = std::make_unique<Ssl>(ts->ssl_ctx, handle);
    ts->handle_of[ssl.get()] = handle;
    ts->sessions[handle] = TrustedState::Entry{std::move(ssl), 0};
    ms->u64_ret = handle;
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_free", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    const auto it = ts->sessions.find(ms->ssl_handle);
    if (it != ts->sessions.end()) {
      ts->handle_of.erase(it->second.ssl.get());
      ts->sessions.erase(it);
    }
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_set_fd", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    entry->conn_id = ms->conn_id;
    entry->ssl->set_transport(std::make_unique<OcallTransport>(ts, ms->conn_id));
    ms->ret = 1;
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_set_accept_state", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry != nullptr) entry->ssl->set_accept_state();
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_set_connect_state", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry != nullptr) entry->ssl->set_connect_state();
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_do_handshake", [](TrustedState* ts, TrustedContext& ctx, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    const bool was_done = entry->ssl->handshake_done();
    ms->ret = entry->ssl->do_handshake();
    if (!was_done && entry->ssl->handshake_done()) {
      ctx.work(45'000);  // DH key derivation (modexp) inside the enclave
    }
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_read", [](TrustedState* ts, TrustedContext& ctx, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    ms->ret = entry->ssl->read(ms->buf, static_cast<int>(ms->len));
    if (ms->ret > 0) {
      ctx.work(static_cast<std::uint64_t>(ms->ret) * ts->crypto_ns_per_byte);
      ctx.copy_out(static_cast<std::uint64_t>(ms->ret));  // [out] buffer
    }
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_write", [](TrustedState* ts, TrustedContext& ctx, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    ctx.copy_in(static_cast<std::uint64_t>(ms->len));
    ctx.work(static_cast<std::uint64_t>(ms->len) * ts->crypto_ns_per_byte);
    ms->ret = entry->ssl->write(ms->buf, static_cast<int>(ms->len));
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_shutdown", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    ms->ret = entry->ssl->shutdown();
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_get_error", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    ms->ret = entry->ssl->get_error(ms->iarg);
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_get_rbio", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    // Returns an opaque in-enclave BIO handle; we reuse the SSL handle.
    ms->u64_ret = ts->find(ms->ssl_handle) != nullptr ? ms->ssl_handle : 0;
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_BIO_int_ctrl", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry == nullptr) return SgxStatus::kInvalidParameter;
    Bio* bio = entry->ssl->get_rbio();
    ms->ret = bio != nullptr ? bio->int_ctrl(static_cast<BioCtrl>(ms->iarg), ms->larg) : -1;
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_SSL_set_quiet_shutdown", [](TrustedState* ts, TrustedContext&, TalosMs* ms) {
    auto* entry = ts->find(ms->ssl_handle);
    if (entry != nullptr) entry->ssl->set_quiet_shutdown(ms->iarg != 0);
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_ERR_peek_error", [](TrustedState*, TrustedContext&, TalosMs* ms) {
    ms->u64_ret = ERR_peek_error();
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_ERR_get_error", [](TrustedState*, TrustedContext&, TalosMs* ms) {
    ms->u64_ret = ERR_get_error();
    return SgxStatus::kSuccess;
  });
  reg("sgx_ecall_ERR_clear_error", [](TrustedState*, TrustedContext&, TalosMs*) {
    ERR_clear_error();
    return SgxStatus::kSuccess;
  });
}

TalosEnclave::~TalosEnclave() { urts_.destroy_enclave(eid_); }

std::uint64_t TalosEnclave::register_connection(std::unique_ptr<Transport> transport) {
  const std::uint64_t id = next_conn_id_++;
  connections_[id] = std::move(transport);
  return id;
}

void TalosEnclave::drop_connection(std::uint64_t conn_id) { connections_.erase(conn_id); }

Transport* TalosEnclave::connection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  return it == connections_.end() ? nullptr : it->second.get();
}

SgxStatus TalosEnclave::ecall(const char* name, TalosMs& ms) {
  const auto it = ecall_ids_.find(name);
  if (it == ecall_ids_.end()) throw std::logic_error(std::string("unknown ecall ") + name);
  ms.host = this;
  return urts_.sgx_ecall(eid_, it->second, &table_, &ms);
}

std::unique_ptr<TlsSession> TalosEnclave::new_session(std::uint64_t conn_id, bool server) {
  TalosMs ms;
  if (ecall("sgx_ecall_SSL_new", ms) != SgxStatus::kSuccess || ms.u64_ret == 0) return nullptr;
  const std::uint64_t handle = ms.u64_ret;

  TalosMs fd;
  fd.ssl_handle = handle;
  fd.conn_id = conn_id;
  ecall("sgx_ecall_SSL_set_fd", fd);

  TalosMs st;
  st.ssl_handle = handle;
  ecall(server ? "sgx_ecall_SSL_set_accept_state" : "sgx_ecall_SSL_set_connect_state", st);
  return std::make_unique<TalosTlsSession>(*this, handle, conn_id);
}

// --- TalosTlsSession ------------------------------------------------------------------

TalosTlsSession::TalosTlsSession(TalosEnclave& enclave, std::uint64_t ssl_handle,
                                 std::uint64_t conn_id)
    : enclave_(enclave), handle_(ssl_handle), conn_id_(conn_id) {}

TalosTlsSession::~TalosTlsSession() {
  TalosMs ms;
  ms.ssl_handle = handle_;
  enclave_.ecall("sgx_ecall_SSL_free", ms);
}

int TalosTlsSession::do_handshake() {
  TalosMs ms;
  ms.ssl_handle = handle_;
  enclave_.ecall("sgx_ecall_SSL_do_handshake", ms);
  return static_cast<int>(ms.ret);
}

int TalosTlsSession::read(void* buf, int len) {
  TalosMs ms;
  ms.ssl_handle = handle_;
  ms.buf = buf;
  ms.len = len;
  enclave_.ecall("sgx_ecall_SSL_read", ms);
  return static_cast<int>(ms.ret);
}

int TalosTlsSession::write(const void* buf, int len) {
  TalosMs ms;
  ms.ssl_handle = handle_;
  ms.buf = const_cast<void*>(buf);
  ms.len = len;
  enclave_.ecall("sgx_ecall_SSL_write", ms);
  return static_cast<int>(ms.ret);
}

int TalosTlsSession::shutdown() {
  TalosMs ms;
  ms.ssl_handle = handle_;
  enclave_.ecall("sgx_ecall_SSL_shutdown", ms);
  return static_cast<int>(ms.ret);
}

int TalosTlsSession::get_error(int ret) {
  TalosMs ms;
  ms.ssl_handle = handle_;
  ms.iarg = ret;
  enclave_.ecall("sgx_ecall_SSL_get_error", ms);
  return static_cast<int>(ms.ret);
}

long TalosTlsSession::bio_pending() {
  // Two transitions for one piece of information — nginx's usage pattern.
  TalosMs rbio;
  rbio.ssl_handle = handle_;
  enclave_.ecall("sgx_ecall_SSL_get_rbio", rbio);
  TalosMs ctrl;
  ctrl.ssl_handle = rbio.u64_ret;
  ctrl.iarg = static_cast<int>(BioCtrl::kPending);
  enclave_.ecall("sgx_ecall_BIO_int_ctrl", ctrl);
  return static_cast<long>(ctrl.ret);
}

void TalosTlsSession::set_quiet_shutdown(bool quiet) {
  TalosMs ms;
  ms.ssl_handle = handle_;
  ms.iarg = quiet ? 1 : 0;
  enclave_.ecall("sgx_ecall_SSL_set_quiet_shutdown", ms);
}

std::uint64_t TalosTlsSession::err_peek() {
  TalosMs ms;
  enclave_.ecall("sgx_ecall_ERR_peek_error", ms);
  return ms.u64_ret;
}

std::uint64_t TalosTlsSession::err_get() {
  TalosMs ms;
  enclave_.ecall("sgx_ecall_ERR_get_error", ms);
  return ms.u64_ret;
}

void TalosTlsSession::err_clear() {
  TalosMs ms;
  enclave_.ecall("sgx_ecall_ERR_clear_error", ms);
}

}  // namespace minissl
