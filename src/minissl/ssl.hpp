// The minissl record and handshake layer, with an OpenSSL-shaped API.
//
// Protocol (deliberately TLS-shaped but minimal):
//   ClientHello  { client_random, client_dh_public, alpn list }
//   ServerHello  { server_random, server_dh_public, alpn choice, cert }
// Both sides derive  shared = peer_pub ^ priv mod P  (bignum DH) and a
// session key  k = SHA-256(shared || client_random || server_random).
// Application data travels in records  [type u8][len u16][body][mac 8]
// where body is ChaCha20-encrypted and mac is truncated HMAC-SHA-256.
//
// All I/O is non-blocking: functions return kWantRead and queue an error
// when the transport has not yet delivered enough bytes, exactly the
// semantics nginx relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bignum/bignum.hpp"
#include "crypto/chacha20.hpp"
#include "minissl/bio.hpp"
#include "minissl/err.hpp"

namespace minissl {

/// SSL_get_error results (OpenSSL names).
enum SslError : int {
  SSL_ERROR_NONE = 0,
  SSL_ERROR_SSL = 1,
  SSL_ERROR_WANT_READ = 2,
  SSL_ERROR_WANT_WRITE = 3,
  SSL_ERROR_ZERO_RETURN = 6,
  SSL_ERROR_SYSCALL = 5,
};

/// Info-callback "where" values (subset of OpenSSL's).
enum InfoWhere : int {
  SSL_CB_HANDSHAKE_START = 0x10,
  SSL_CB_HANDSHAKE_DONE = 0x20,
};

class Ssl;

/// Shared configuration, like SSL_CTX.
class SslCtx {
 public:
  using InfoCallback = void (*)(const Ssl* ssl, int where, int ret, void* arg);
  using AlpnSelectCallback = int (*)(const Ssl* ssl, std::string& selected,
                                     const std::vector<std::string>& offered, void* arg);

  explicit SslCtx(std::uint64_t key_seed = 0x5531);

  void set_info_callback(InfoCallback cb, void* arg) {
    info_cb_ = cb;
    info_arg_ = arg;
  }
  void set_alpn_select_cb(AlpnSelectCallback cb, void* arg) {
    alpn_cb_ = cb;
    alpn_arg_ = arg;
  }

  [[nodiscard]] const bignum::BigNum& dh_prime() const noexcept { return prime_; }
  [[nodiscard]] const bignum::BigNum& dh_generator() const noexcept { return generator_; }
  [[nodiscard]] const std::string& certificate() const noexcept { return certificate_; }

 private:
  friend class Ssl;
  bignum::BigNum prime_;
  bignum::BigNum generator_;
  std::string certificate_;
  InfoCallback info_cb_ = nullptr;
  void* info_arg_ = nullptr;
  AlpnSelectCallback alpn_cb_ = nullptr;
  void* alpn_arg_ = nullptr;
};

/// One TLS-ish session (the SSL object).
class Ssl {
 public:
  explicit Ssl(SslCtx& ctx, std::uint64_t seed = 1);

  Ssl(const Ssl&) = delete;
  Ssl& operator=(const Ssl&) = delete;

  // --- the OpenSSL-shaped surface -------------------------------------------
  /// SSL_set_fd analogue: attaches the transport.
  void set_transport(std::unique_ptr<Transport> transport);
  void set_accept_state() noexcept { server_ = true; }
  void set_connect_state() noexcept { server_ = false; }
  void set_quiet_shutdown(bool quiet) noexcept { quiet_shutdown_ = quiet; }
  void set_alpn_offer(std::vector<std::string> protos) { alpn_offer_ = std::move(protos); }

  /// Returns 1 on completion, -1 with SSL_ERROR_WANT_READ while waiting.
  int do_handshake();
  /// Returns bytes read, 0 on clean peer close, -1 on WANT_READ/error.
  int read(void* buf, int len);
  /// Returns bytes written (always all of them), -1 before the handshake.
  int write(const void* buf, int len);
  /// Returns 1 once both sides sent close_notify, 0 after ours only.
  int shutdown();
  /// Maps the last return value to an SSL_ERROR_* code.
  [[nodiscard]] int get_error(int ret) const;

  [[nodiscard]] Bio* get_rbio() noexcept { return bio_.get(); }
  [[nodiscard]] bool handshake_done() const noexcept { return state_ == State::kEstablished || state_ == State::kShutdown; }
  [[nodiscard]] bool is_server() const noexcept { return server_; }
  [[nodiscard]] const std::string& alpn_selected() const noexcept { return alpn_selected_; }
  [[nodiscard]] const std::string& peer_certificate() const noexcept { return peer_cert_; }

 private:
  enum class State { kInit, kHelloSent, kEstablished, kShutdown };

  enum class RecordType : std::uint8_t {
    kHandshake = 22,
    kApplicationData = 23,
    kCloseNotify = 21,
  };

  void send_record(RecordType type, const std::vector<std::uint8_t>& payload);
  /// Decodes one full record from the BIO, or nullopt when incomplete.
  std::optional<std::pair<RecordType, std::vector<std::uint8_t>>> recv_record();

  void send_hello();
  bool process_hello(const std::vector<std::uint8_t>& payload);
  void derive_keys(const bignum::BigNum& peer_pub, const std::vector<std::uint8_t>& cr,
                   const std::vector<std::uint8_t>& sr);

  SslCtx& ctx_;
  bool server_ = false;
  bool quiet_shutdown_ = false;
  State state_ = State::kInit;
  std::unique_ptr<Bio> bio_;

  bignum::BigNum dh_priv_;
  bignum::BigNum dh_pub_;
  std::vector<std::uint8_t> my_random_;
  std::vector<std::uint8_t> peer_random_;  // valid after hello exchange
  bool keys_ready_ = false;
  crypto::ChaChaKey session_key_{};
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;

  std::vector<std::string> alpn_offer_{"http/1.1"};
  std::string alpn_selected_;
  std::string peer_cert_;
  bool sent_close_ = false;
  bool received_close_ = false;
  mutable int last_error_ = SSL_ERROR_NONE;
};

}  // namespace minissl
