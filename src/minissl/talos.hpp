// TaLoS: the enclavised minissl (§5.2.1).
//
// TaLoS is "an enclavised LibreSSL designed to be a drop-in replacement":
// the *entire OpenSSL API* is exposed 1:1 as the enclave interface.  Every
// SSL_*/ERR_*/BIO_* call the application makes is an ecall; socket reads and
// writes and the SSL_CTX callbacks leave the enclave as ocalls
// (enclave_ocall_read / _write / _execute_ssl_ctx_info_callback /
// _alpn_select_cb in Figure 5).  This is exactly the interface design the
// paper concludes is "not suitable as an enclave interface due to its high
// number of transitions for simple operations."
#pragma once

#include <map>
#include <memory>

#include "minissl/session.hpp"
#include "sgxsim/runtime.hpp"

namespace minissl {

extern const char* const kTalosEdl;

/// Marshalling struct shared by the TaLoS ecalls/ocalls.
struct TalosMs {
  void* host = nullptr;           // untrusted TalosEnclave ([user_check])
  std::uint64_t ssl_handle = 0;   // in-enclave SSL object id
  std::uint64_t conn_id = 0;      // untrusted connection id (for transport ocalls)
  void* buf = nullptr;
  std::int64_t len = 0;
  std::int64_t ret = 0;
  std::uint64_t u64_ret = 0;
  long larg = 0;
  int iarg = 0;
  int where = 0;                  // info callback
};

/// Hosts the TaLoS enclave plus the untrusted connection registry and
/// callback targets.
class TalosEnclave {
 public:
  explicit TalosEnclave(sgxsim::Urts& urts, sgxsim::EnclaveConfig config = default_config());
  ~TalosEnclave();

  TalosEnclave(const TalosEnclave&) = delete;
  TalosEnclave& operator=(const TalosEnclave&) = delete;

  [[nodiscard]] static sgxsim::EnclaveConfig default_config();

  /// Registers an untrusted transport and returns its connection id.
  std::uint64_t register_connection(std::unique_ptr<Transport> transport);
  void drop_connection(std::uint64_t conn_id);

  /// Creates an in-enclave SSL session bound to `conn_id`
  /// (SSL_new + SSL_set_fd + SSL_set_accept/connect_state as ecalls).
  [[nodiscard]] std::unique_ptr<TlsSession> new_session(std::uint64_t conn_id, bool server);

  [[nodiscard]] sgxsim::EnclaveId enclave_id() const noexcept { return eid_; }
  [[nodiscard]] sgxsim::Urts& urts() noexcept { return urts_; }
  [[nodiscard]] const sgxsim::OcallTable& ocall_table() const noexcept { return table_; }

  /// Untrusted callback counters (the ocall targets).
  std::uint64_t info_callback_invocations = 0;
  std::uint64_t alpn_callback_invocations = 0;

  // Used by the transport ocalls.
  [[nodiscard]] Transport* connection(std::uint64_t conn_id);

  /// Trusted-side state; public so the in-enclave transport/callback glue in
  /// talos.cpp can name it.
  struct TrustedState;

 private:
  friend class TalosTlsSession;

  sgxsim::SgxStatus ecall(const char* name, TalosMs& ms);

  sgxsim::Urts& urts_;
  sgxsim::EnclaveId eid_ = 0;
  sgxsim::OcallTable table_;
  std::map<std::string, sgxsim::CallId> ecall_ids_;
  std::map<std::uint64_t, std::unique_ptr<Transport>> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::unique_ptr<TrustedState> trusted_;
};

/// TlsSession implementation where every member function is an ecall.
class TalosTlsSession final : public TlsSession {
 public:
  TalosTlsSession(TalosEnclave& enclave, std::uint64_t ssl_handle, std::uint64_t conn_id);
  ~TalosTlsSession() override;

  int do_handshake() override;
  int read(void* buf, int len) override;
  int write(const void* buf, int len) override;
  int shutdown() override;
  int get_error(int ret) override;
  long bio_pending() override;  // sgx_ecall_SSL_get_rbio + sgx_ecall_BIO_int_ctrl
  void set_quiet_shutdown(bool quiet) override;
  std::uint64_t err_peek() override;
  std::uint64_t err_get() override;
  void err_clear() override;

 private:
  TalosEnclave& enclave_;
  std::uint64_t handle_;
  std::uint64_t conn_id_;
};

}  // namespace minissl
