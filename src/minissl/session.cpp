#include "minissl/session.hpp"

namespace minissl {

NativeTlsSession::NativeTlsSession(SslCtx& ctx, std::unique_ptr<Transport> transport,
                                   bool server, std::uint64_t seed)
    : ssl_(ctx, seed) {
  ssl_.set_transport(std::move(transport));
  if (server) {
    ssl_.set_accept_state();
  } else {
    ssl_.set_connect_state();
  }
}

}  // namespace minissl
