#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace crypto {

Sha256Digest hmac_sha256(const void* key, std::size_t key_len, const void* msg,
                         std::size_t msg_len) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key_len > block.size()) {
    const Sha256Digest kd = sha256(key, key_len);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key, key_len);
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad.data(), ipad.size());
  inner.update(msg, msg_len);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad.data(), opad.size());
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Sha256Digest hmac_sha256(std::string_view key, std::string_view msg) noexcept {
  return hmac_sha256(key.data(), key.size(), msg.data(), msg.size());
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace crypto
