#include "crypto/chacha20.hpp"

#include <cstring>

namespace crypto {
namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) noexcept {
  auto& A = s[static_cast<std::size_t>(a)];
  auto& B = s[static_cast<std::size_t>(b)];
  auto& C = s[static_cast<std::size_t>(c)];
  auto& D = s[static_cast<std::size_t>(d)];
  A += B; D ^= A; D = rotl(D, 16);
  C += D; B ^= C; B = rotl(B, 12);
  A += B; D ^= A; D = rotl(D, 8);
  C += D; B ^= C; B = rotl(B, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

}  // namespace

ChaCha20::ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t counter) noexcept {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[static_cast<std::size_t>(4 + i)] = load_le32(key.data() + i * 4);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[static_cast<std::size_t>(13 + i)] = load_le32(nonce.data() + i * 4);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> w = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(w, 0, 4, 8, 12);
    quarter_round(w, 1, 5, 9, 13);
    quarter_round(w, 2, 6, 10, 14);
    quarter_round(w, 3, 7, 11, 15);
    quarter_round(w, 0, 5, 10, 15);
    quarter_round(w, 1, 6, 11, 12);
    quarter_round(w, 2, 7, 8, 13);
    quarter_round(w, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[static_cast<std::size_t>(i)] + state_[static_cast<std::size_t>(i)];
    keystream_[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(v);
    keystream_[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(v >> 8);
    keystream_[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(v >> 16);
    keystream_[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  keystream_pos_ = 0;
}

void ChaCha20::crypt(std::uint8_t* data, std::size_t len) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    if (keystream_pos_ == keystream_.size()) refill();
    data[i] ^= keystream_[keystream_pos_++];
  }
}

void chacha20_crypt(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter,
                    std::uint8_t* data, std::size_t len) noexcept {
  ChaCha20 c(key, nonce, counter);
  c.crypt(data, len);
}

std::vector<std::uint8_t> chacha20_crypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                                         std::uint32_t counter,
                                         const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out = data;
  chacha20_crypt(key, nonce, counter, out.data(), out.size());
  return out;
}

}  // namespace crypto
