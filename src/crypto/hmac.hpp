// HMAC-SHA-256 (RFC 2104) and constant-time comparison.
//
// Used for record integrity in minissl and payload integrity in minikv —
// mirroring SecureKeeper's authenticated encryption of ZooKeeper payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "crypto/sha256.hpp"

namespace crypto {

[[nodiscard]] Sha256Digest hmac_sha256(const void* key, std::size_t key_len, const void* msg,
                                       std::size_t msg_len) noexcept;

[[nodiscard]] Sha256Digest hmac_sha256(std::string_view key, std::string_view msg) noexcept;

/// Constant-time equality of two digests.
[[nodiscard]] bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept;

}  // namespace crypto
