// ChaCha20 stream cipher (RFC 8439).
//
// Used as the payload cipher in the SecureKeeper-like proxy and the
// record-layer cipher in the minissl TLS stand-in.  (EPC page encryption is
// modelled as a cost in sgxsim::CostModel rather than performed.)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

class ChaCha20 {
 public:
  ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter = 0) noexcept;

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::uint8_t* data, std::size_t len) noexcept;

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> keystream_{};
  std::size_t keystream_pos_ = 64;  // empty
};

/// One-shot in-place encryption/decryption.
void chacha20_crypt(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter,
                    std::uint8_t* data, std::size_t len) noexcept;

/// One-shot over a vector, returning the transformed copy.
[[nodiscard]] std::vector<std::uint8_t> chacha20_crypt(const ChaChaKey& key,
                                                       const ChaChaNonce& nonce,
                                                       std::uint32_t counter,
                                                       const std::vector<std::uint8_t>& data);

}  // namespace crypto
