// SHA-256 (FIPS 180-4).
//
// Used for the simulated enclave measurement (MRENCLAVE-like hash over the
// enclave layout), for HMAC, and for the bignum "certificate signing"
// workload (sign = modexp(SHA-256(cert), d, n)).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t len) noexcept;
  void update(std::string_view s) noexcept { update(s.data(), s.size()); }
  /// Finalises and returns the digest.  The object must be reset() before
  /// further use.
  [[nodiscard]] Sha256Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha256Digest sha256(const void* data, std::size_t len) noexcept;
[[nodiscard]] Sha256Digest sha256(std::string_view s) noexcept;
[[nodiscard]] Sha256Digest sha256(const std::vector<std::uint8_t>& v) noexcept;

/// Lowercase hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Sha256Digest& d);

}  // namespace crypto
