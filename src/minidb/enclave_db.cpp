#include "minidb/enclave_db.hpp"

#include <cstring>

namespace minidb {

using sgxsim::CallId;
using sgxsim::SgxStatus;
using sgxsim::TrustedContext;

const char* const kDbEdl = R"(
enclave {
  trusted {
    public int ecall_db_open([in, size=path_len] const char* path, size_t path_len, int mode);
    public int ecall_db_put([in, size=key_len] const char* key, size_t key_len,
                            [in, size=value_len] const char* value, size_t value_len);
    public int ecall_db_begin(void);
    public int ecall_db_put_in_txn([in, size=key_len] const char* key, size_t key_len,
                                   [in, size=value_len] const char* value, size_t value_len);
    public int ecall_db_commit(void);
    public int ecall_db_get([in, size=key_len] const char* key, size_t key_len,
                            [out, size=out_cap] char* out, size_t out_cap);
    public int ecall_db_close(void);
  };
  untrusted {
    int ocall_vfs_open([user_check] void* vfs, [in, size=path_len] const char* path, size_t path_len);
    void ocall_vfs_close([user_check] void* vfs, int fd);
    long ocall_vfs_lseek([user_check] void* vfs, int fd, uint64_t offset);
    long ocall_vfs_read([user_check] void* vfs, int fd, [out, size=len] void* buf, size_t len);
    long ocall_vfs_write([user_check] void* vfs, int fd, [in, size=len] const void* buf, size_t len);
    long ocall_vfs_pwrite([user_check] void* vfs, int fd, [in, size=len] const void* buf, size_t len, uint64_t offset);
    void ocall_vfs_fsync([user_check] void* vfs, int fd);
    void ocall_vfs_unlink([user_check] void* vfs, [in, size=path_len] const char* path, size_t path_len);
    int ocall_vfs_exists([user_check] void* vfs, [in, size=path_len] const char* path, size_t path_len);
    long ocall_vfs_file_size([user_check] void* vfs, int fd);
    void ocall_db_log([in, size=len] const char* msg, size_t len)
        allow (ecall_db_put, ecall_db_get, ecall_db_close);
  };
};
)";

// --- untrusted ocall implementations -------------------------------------------

namespace {

SgxStatus ocall_vfs_open(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->ret = m->vfs->open(std::string(m->path, m->path_len));
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_close(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->vfs->close(m->fd);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_lseek(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->ret = m->vfs->lseek(m->fd, m->offset);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_read(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->ret = m->vfs->read(m->fd, m->buf, m->len);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_write(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->ret = m->vfs->write(m->fd, m->buf, m->len);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_pwrite(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->ret = m->vfs->pwrite(m->fd, m->buf, m->len, m->offset);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_fsync(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->vfs->fsync(m->fd);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_unlink(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->vfs->unlink(std::string(m->path, m->path_len));
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_exists(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->bret = m->vfs->exists(std::string(m->path, m->path_len));
  return SgxStatus::kSuccess;
}

SgxStatus ocall_vfs_file_size(void* ms) {
  auto* m = static_cast<VfsOcallMs*>(ms);
  m->size_ret = m->vfs->file_size(m->fd);
  return SgxStatus::kSuccess;
}

SgxStatus ocall_db_log(void* /*ms*/) { return SgxStatus::kSuccess; }

}  // namespace

// --- trusted side ---------------------------------------------------------------

/// Trusted VFS bridging every operation to an ocall.  Charges the [in]/[out]
/// marshalling copies like the generated bridge would.
class OcallVfs final : public Vfs {
 public:
  OcallVfs(Vfs* untrusted_vfs, TrustedContext** ctx_slot)
      : vfs_(untrusted_vfs), ctx_(ctx_slot) {}

  Fd open(const std::string& path) override {
    VfsOcallMs ms = base();
    ms.path = path.data();
    ms.path_len = path.size();
    (*ctx_)->copy_out(path.size());
    call(DbOcall::kOpen, ms);
    return static_cast<Fd>(ms.ret);
  }
  void close(Fd fd) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    call(DbOcall::kClose, ms);
  }
  std::int64_t lseek(Fd fd, std::uint64_t offset) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    ms.offset = offset;
    call(DbOcall::kLseek, ms);
    return ms.ret;
  }
  std::int64_t read(Fd fd, void* buf, std::uint64_t len) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    ms.buf = buf;
    ms.len = len;
    call(DbOcall::kRead, ms);
    (*ctx_)->copy_in(len);  // [out] buffer copied into the enclave
    return ms.ret;
  }
  std::int64_t write(Fd fd, const void* buf, std::uint64_t len) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    ms.buf = const_cast<void*>(buf);
    ms.len = len;
    (*ctx_)->copy_out(len);  // [in] buffer copied out of the enclave
    call(DbOcall::kWrite, ms);
    return ms.ret;
  }
  std::int64_t pwrite(Fd fd, const void* buf, std::uint64_t len,
                      std::uint64_t offset) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    ms.buf = const_cast<void*>(buf);
    ms.len = len;
    ms.offset = offset;
    (*ctx_)->copy_out(len);
    call(DbOcall::kPwrite, ms);
    return ms.ret;
  }
  void fsync(Fd fd) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    call(DbOcall::kFsync, ms);
  }
  void unlink(const std::string& path) override {
    VfsOcallMs ms = base();
    ms.path = path.data();
    ms.path_len = path.size();
    call(DbOcall::kUnlink, ms);
  }
  bool exists(const std::string& path) override {
    VfsOcallMs ms = base();
    ms.path = path.data();
    ms.path_len = path.size();
    call(DbOcall::kExists, ms);
    return ms.bret;
  }
  std::uint64_t file_size(Fd fd) override {
    VfsOcallMs ms = base();
    ms.fd = fd;
    call(DbOcall::kFileSize, ms);
    return ms.size_ret;
  }

 private:
  [[nodiscard]] VfsOcallMs base() const {
    VfsOcallMs ms;
    ms.vfs = vfs_;
    return ms;
  }
  void call(DbOcall id, VfsOcallMs& ms) {
    (*ctx_)->ocall(static_cast<CallId>(id), &ms);
  }

  Vfs* vfs_;
  TrustedContext** ctx_;
};

struct DbEnclave::TrustedState {
  TrustedContext* ctx = nullptr;  // valid only during an ecall
  std::unique_ptr<OcallVfs> vfs;
  std::unique_ptr<Database> db;
  sgxsim::EnclaveAddr cache_arena = 0;  // modelled page-cache memory
  std::uint64_t cache_pages = 0;
};

sgxsim::EnclaveConfig DbEnclave::default_config() {
  sgxsim::EnclaveConfig config;
  config.name = "minidb-enclave";
  config.code_pages = 96;    // the whole database engine is trusted code
  config.heap_pages = 512;   // page cache + working memory (2 MiB)
  config.stack_pages = 8;
  config.tcs_count = 2;
  return config;
}

DbEnclave::DbEnclave(sgxsim::Urts& urts, Vfs& host_vfs, WriteMode mode,
                     sgxsim::EnclaveConfig config)
    : urts_(urts), host_vfs_(host_vfs), trusted_(std::make_unique<TrustedState>()) {
  eid_ = urts_.create_enclave(std::move(config), sgxsim::edl::parse(kDbEdl));
  table_ = sgxsim::make_ocall_table({
      &ocall_vfs_open, &ocall_vfs_close, &ocall_vfs_lseek, &ocall_vfs_read, &ocall_vfs_write,
      &ocall_vfs_pwrite, &ocall_vfs_fsync, &ocall_vfs_unlink, &ocall_vfs_exists,
      &ocall_vfs_file_size, &ocall_db_log,
  });

  sgxsim::Enclave& enclave = urts_.enclave(eid_);
  TrustedState* ts = trusted_.get();
  Vfs* host = &host_vfs_;

  // A scope guard setting/clearing the per-ecall context pointer.
  struct CtxScope {
    TrustedState* ts;
    CtxScope(TrustedState* s, TrustedContext& ctx) : ts(s) { ts->ctx = &ctx; }
    ~CtxScope() { ts->ctx = nullptr; }
  };

  enclave.register_ecall("ecall_db_open", [ts, host, mode](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<DbEcallMs*>(msp);
    ctx.copy_in(ms->path_len);
    ts->vfs = std::make_unique<OcallVfs>(host, &ts->ctx);
    ts->db = std::make_unique<Database>(*ts->vfs, std::string(ms->path, ms->path_len), mode);
    // Model the page cache's enclave memory.
    ts->cache_pages = 256;
    ts->cache_arena = ctx.malloc(ts->cache_pages * sgxsim::kPageSize);
    if (ts->cache_arena == 0) return SgxStatus::kOutOfMemory;
    return SgxStatus::kSuccess;
  });

  auto do_put = [ts](TrustedContext& ctx, void* msp, bool autocommit) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<DbEcallMs*>(msp);
    if (!ts->db) return SgxStatus::kInvalidParameter;
    ctx.copy_in(ms->key_len + ms->value_len);
    // Record encoding plus B-tree bookkeeping inside the enclave.
    ctx.work(2'000 + (ms->key_len + ms->value_len) * 2);
    // Touch a cache page (hash-distributed) to exercise the working set.
    if (ts->cache_arena != 0) {
      const std::uint64_t page = std::hash<std::string_view>{}(
                                     std::string_view(ms->key, ms->key_len)) %
                                 ts->cache_pages;
      ctx.touch(ts->cache_arena + page * sgxsim::kPageSize, 64, sgxsim::MemAccess::kWrite);
    }
    const std::string key(ms->key, ms->key_len);
    const std::string value(ms->value, ms->value_len);
    if (autocommit) {
      ts->db->put(key, value);
    } else {
      ts->db->put_in_txn(key, value);
    }
    return SgxStatus::kSuccess;
  };
  enclave.register_ecall("ecall_db_put", [do_put](TrustedContext& ctx, void* msp) {
    return do_put(ctx, msp, true);
  });
  enclave.register_ecall("ecall_db_put_in_txn", [do_put](TrustedContext& ctx, void* msp) {
    return do_put(ctx, msp, false);
  });
  enclave.register_ecall("ecall_db_begin", [ts](TrustedContext& ctx, void*) {
    CtxScope scope(ts, ctx);
    if (!ts->db) return SgxStatus::kInvalidParameter;
    ts->db->begin();
    return SgxStatus::kSuccess;
  });
  enclave.register_ecall("ecall_db_commit", [ts](TrustedContext& ctx, void*) {
    CtxScope scope(ts, ctx);
    if (!ts->db) return SgxStatus::kInvalidParameter;
    ts->db->commit();
    return SgxStatus::kSuccess;
  });
  enclave.register_ecall("ecall_db_get", [ts](TrustedContext& ctx, void* msp) {
    CtxScope scope(ts, ctx);
    auto* ms = static_cast<DbEcallMs*>(msp);
    if (!ts->db) return SgxStatus::kInvalidParameter;
    ctx.copy_in(ms->key_len);
    ctx.work(1'500 + ms->key_len * 2);
    const auto value = ts->db->get(std::string(ms->key, ms->key_len));
    ms->found = value.has_value();
    if (value) {
      ms->out_len = std::min<std::uint64_t>(value->size(), ms->out_cap);
      std::memcpy(ms->out, value->data(), ms->out_len);
      ctx.copy_out(ms->out_len);
    } else {
      ms->out_len = 0;
    }
    return SgxStatus::kSuccess;
  });
  enclave.register_ecall("ecall_db_close", [ts](TrustedContext& ctx, void*) {
    CtxScope scope(ts, ctx);
    if (ts->cache_arena != 0) {
      ctx.free(ts->cache_arena);
      ts->cache_arena = 0;
    }
    ts->db.reset();
    ts->vfs.reset();
    return SgxStatus::kSuccess;
  });
}

DbEnclave::~DbEnclave() {
  // Tear the trusted state down while the enclave still exists.
  if (trusted_ && trusted_->db) close_db();
  urts_.destroy_enclave(eid_);
}

// --- client-side wrappers -----------------------------------------------------------

SgxStatus DbEnclave::open(const std::string& path) {
  DbEcallMs ms;
  ms.path = path.data();
  ms.path_len = path.size();
  return urts_.sgx_ecall(eid_, 0, &table_, &ms);
}

SgxStatus DbEnclave::put(const std::string& key, const std::string& value) {
  DbEcallMs ms;
  ms.key = key.data();
  ms.key_len = key.size();
  ms.value = value.data();
  ms.value_len = value.size();
  return urts_.sgx_ecall(eid_, 1, &table_, &ms);
}

SgxStatus DbEnclave::begin() {
  DbEcallMs ms;
  return urts_.sgx_ecall(eid_, 2, &table_, &ms);
}

SgxStatus DbEnclave::put_in_txn(const std::string& key, const std::string& value) {
  DbEcallMs ms;
  ms.key = key.data();
  ms.key_len = key.size();
  ms.value = value.data();
  ms.value_len = value.size();
  return urts_.sgx_ecall(eid_, 3, &table_, &ms);
}

SgxStatus DbEnclave::commit() {
  DbEcallMs ms;
  return urts_.sgx_ecall(eid_, 4, &table_, &ms);
}

std::optional<std::string> DbEnclave::get(const std::string& key) {
  std::string out(kMaxValueSize, '\0');
  DbEcallMs ms;
  ms.key = key.data();
  ms.key_len = key.size();
  ms.out = out.data();
  ms.out_cap = out.size();
  if (urts_.sgx_ecall(eid_, 5, &table_, &ms) != SgxStatus::kSuccess) return std::nullopt;
  if (!ms.found) return std::nullopt;
  out.resize(ms.out_len);
  return out;
}

SgxStatus DbEnclave::close_db() {
  DbEcallMs ms;
  return urts_.sgx_ecall(eid_, 6, &table_, &ms);
}

}  // namespace minidb
