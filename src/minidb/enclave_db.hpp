// The enclavised minidb — "running an SQL database inside an enclave" with
// system calls implemented naively as ocalls (§5.2.2).
//
// The whole database engine (pager, journal, B-tree) runs as trusted code;
// its VFS is an ocall bridge, so every lseek/read/write/fsync the engine
// issues leaves the enclave.  In WriteMode::kSeekThenWrite this produces the
// paper's lseek+write SDSC pattern; in kMergedPwrite the two calls are
// merged into one pwrite ocall — the optimisation sgx-perf recommends.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "minidb/db.hpp"
#include "sgxsim/runtime.hpp"

namespace minidb {

/// The enclave's EDL (parsed at enclave creation; also feed it to the
/// analyser for the security checks — note the deliberate user_check
/// pointers and over-broad allow() list it will flag).
extern const char* const kDbEdl;

/// Ocall ids, matching kDbEdl declaration order.
enum class DbOcall : sgxsim::CallId {
  kOpen = 0,
  kClose,
  kLseek,
  kRead,
  kWrite,
  kPwrite,
  kFsync,
  kUnlink,
  kExists,
  kFileSize,
  kLog,  // defined but never called (the analyser should stay quiet on it)
};

/// Marshalling struct shared by all VFS ocalls (edger8r-style `ms` layout).
struct VfsOcallMs {
  Vfs* vfs = nullptr;  // untrusted VFS object ([user_check] in the EDL)
  Fd fd = kBadFd;
  std::uint64_t offset = 0;
  void* buf = nullptr;
  std::uint64_t len = 0;
  const char* path = nullptr;
  std::uint64_t path_len = 0;
  std::int64_t ret = 0;
  std::uint64_t size_ret = 0;
  bool bret = false;
};

/// Marshalling struct of the database ecalls.
struct DbEcallMs {
  const char* path = nullptr;
  std::uint64_t path_len = 0;
  int write_mode = 0;
  const char* key = nullptr;
  std::uint64_t key_len = 0;
  const char* value = nullptr;
  std::uint64_t value_len = 0;
  char* out = nullptr;
  std::uint64_t out_cap = 0;
  std::uint64_t out_len = 0;
  bool found = false;
};

/// The untrusted half: hosts the VFS ocalls and the client-side wrappers
/// (the enclave_u.c analogue) around one enclave running the database.
class DbEnclave {
 public:
  /// Creates the enclave on `urts`; `host_vfs` is the untrusted disk.
  DbEnclave(sgxsim::Urts& urts, Vfs& host_vfs,
            WriteMode mode = WriteMode::kSeekThenWrite,
            sgxsim::EnclaveConfig config = default_config());

  ~DbEnclave();

  DbEnclave(const DbEnclave&) = delete;
  DbEnclave& operator=(const DbEnclave&) = delete;

  [[nodiscard]] static sgxsim::EnclaveConfig default_config();

  // --- client-side wrappers (each is one ecall) -------------------------------
  sgxsim::SgxStatus open(const std::string& path);
  sgxsim::SgxStatus put(const std::string& key, const std::string& value);  // autocommit
  sgxsim::SgxStatus begin();
  sgxsim::SgxStatus put_in_txn(const std::string& key, const std::string& value);
  sgxsim::SgxStatus commit();
  /// Returns nullopt when the key is absent (or on error).
  std::optional<std::string> get(const std::string& key);
  sgxsim::SgxStatus close_db();

  [[nodiscard]] sgxsim::EnclaveId enclave_id() const noexcept { return eid_; }
  [[nodiscard]] const sgxsim::OcallTable& ocall_table() const noexcept { return table_; }

 private:
  struct TrustedState;

  sgxsim::Urts& urts_;
  Vfs& host_vfs_;
  sgxsim::EnclaveId eid_ = 0;
  sgxsim::OcallTable table_;
  std::unique_ptr<TrustedState> trusted_;
};

}  // namespace minidb
