// The minidb virtual file system.
//
// SQLite reaches the OS through a VFS; on Linux it issues *separate* lseek
// and write system calls to persist pages (§5.2.2: "SQLite v3.23.1 makes
// separate calls to lseek and write").  minidb mirrors that syscall shape so
// the enclavised build, which implements "system calls naively as ocalls",
// produces the same lseek/write/fsync ocall pattern the paper analyses — and
// so the merged lseek+write (pwrite) optimisation is expressible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/clock.hpp"

namespace minidb {

using Fd = int;
inline constexpr Fd kBadFd = -1;

/// POSIX-shaped file interface.  Whence is always SEEK_SET (like SQLite's
/// unixfile usage); the seek position is per-fd state, which is exactly why
/// the lseek+write pair is two calls.
class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual Fd open(const std::string& path) = 0;
  virtual void close(Fd fd) = 0;
  /// Returns the new absolute offset, or -1 on bad fd.
  virtual std::int64_t lseek(Fd fd, std::uint64_t offset) = 0;
  /// Reads up to `len` bytes at the current offset; advances it.
  virtual std::int64_t read(Fd fd, void* buf, std::uint64_t len) = 0;
  /// Writes `len` bytes at the current offset; advances it; extends the file.
  virtual std::int64_t write(Fd fd, const void* buf, std::uint64_t len) = 0;
  /// Combined seek+write, the optimisation §5.2.2 recommends (one ocall).
  virtual std::int64_t pwrite(Fd fd, const void* buf, std::uint64_t len,
                              std::uint64_t offset) = 0;
  virtual void fsync(Fd fd) = 0;
  virtual void unlink(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual std::uint64_t file_size(Fd fd) = 0;
};

/// Costs of one syscall body (excluding any enclave transition), calibrated
/// to §5.2.2: "lseek ocalls were quite short with an average duration of 4us
/// whereas the write ocalls took 17us on average".
struct VfsCosts {
  support::Nanoseconds open_ns = 25'000;
  support::Nanoseconds close_ns = 8'000;
  support::Nanoseconds lseek_ns = 3'800;
  support::Nanoseconds read_ns = 12'000;
  support::Nanoseconds write_ns = 16'500;
  support::Nanoseconds pwrite_ns = 17'500;  // seek + write in one entry
  support::Nanoseconds fsync_ns = 55'000;
  support::Nanoseconds unlink_ns = 12'000;
};

/// In-memory "disk" with virtual-time syscall costs.  One instance plays the
/// host file system for both the native and the enclavised database.
class HostVfs final : public Vfs {
 public:
  explicit HostVfs(support::VirtualClock& clock, VfsCosts costs = {});

  Fd open(const std::string& path) override;
  void close(Fd fd) override;
  std::int64_t lseek(Fd fd, std::uint64_t offset) override;
  std::int64_t read(Fd fd, void* buf, std::uint64_t len) override;
  std::int64_t write(Fd fd, const void* buf, std::uint64_t len) override;
  std::int64_t pwrite(Fd fd, const void* buf, std::uint64_t len,
                      std::uint64_t offset) override;
  void fsync(Fd fd) override;
  void unlink(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(Fd fd) override;

  /// Syscall counters, handy for assertions and reports.
  struct Counters {
    std::uint64_t opens = 0;
    std::uint64_t lseeks = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t pwrites = 0;
    std::uint64_t fsyncs = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

 private:
  struct File {
    std::vector<std::uint8_t> data;
  };
  struct OpenFile {
    std::shared_ptr<File> file;
    std::uint64_t offset = 0;
  };

  support::VirtualClock& clock_;
  VfsCosts costs_;
  std::map<std::string, std::shared_ptr<File>> files_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;
  Counters counters_;
};

}  // namespace minidb
