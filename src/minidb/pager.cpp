#include "minidb/pager.hpp"

#include <cstring>
#include <stdexcept>

namespace minidb {

namespace {
// Journal record: u32 page number, then kDbPageSize bytes of original data.
constexpr std::uint64_t kJournalRecordSize = 4 + kDbPageSize;
}  // namespace

Pager::Pager(Vfs& vfs, std::string path, WriteMode mode, std::size_t cache_capacity)
    : vfs_(vfs),
      path_(std::move(path)),
      journal_path_(path_ + "-journal"),
      mode_(mode),
      cache_capacity_(cache_capacity) {
  const bool hot_journal = vfs_.exists(journal_path_) && vfs_.exists(path_);
  db_fd_ = vfs_.open(path_);
  if (hot_journal) recover_from_hot_journal();
  load_page_count();
}

Pager::~Pager() { close(); }

void Pager::close() {
  if (in_txn_) rollback();
  if (db_fd_ != kBadFd) {
    vfs_.close(db_fd_);
    db_fd_ = kBadFd;
  }
}

void Pager::load_page_count() {
  page_count_ = static_cast<PageNo>(vfs_.file_size(db_fd_) / kDbPageSize);
}

void Pager::persist_page(Fd fd, std::uint64_t offset, const std::uint8_t* data,
                         std::uint64_t len) {
  if (mode_ == WriteMode::kMergedPwrite) {
    vfs_.pwrite(fd, data, len, offset);
  } else {
    // The SQLite-on-Linux shape: two separate system calls.
    vfs_.lseek(fd, offset);
    vfs_.write(fd, data, len);
  }
}

void Pager::recover_from_hot_journal() {
  // Roll the database back to the pre-crash state recorded in the journal.
  const Fd jfd = vfs_.open(journal_path_);
  const std::uint64_t size = vfs_.file_size(jfd);
  std::uint64_t off = 0;
  std::vector<std::uint8_t> record(kJournalRecordSize);
  while (off + kJournalRecordSize <= size) {
    vfs_.lseek(jfd, off);
    if (vfs_.read(jfd, record.data(), record.size()) !=
        static_cast<std::int64_t>(record.size())) {
      break;  // torn tail: ignore the incomplete record
    }
    PageNo pgno;
    std::memcpy(&pgno, record.data(), 4);
    persist_page(db_fd_, page_offset(pgno), record.data() + 4, kDbPageSize);
    off += kJournalRecordSize;
  }
  vfs_.fsync(db_fd_);
  vfs_.close(jfd);
  vfs_.unlink(journal_path_);
}

void Pager::begin() {
  if (in_txn_) throw std::logic_error("Pager: nested transaction");
  journal_fd_ = vfs_.open(journal_path_);
  in_txn_ = true;
  journaled_.clear();
}

void Pager::journal_original(PageNo pgno) {
  if (journaled_.contains(pgno)) return;
  // Newly allocated pages have no pre-image to protect.
  std::vector<std::uint8_t> original;
  if (pgno <= page_count_) {
    original = read_page(pgno);
  } else {
    return;
  }
  std::vector<std::uint8_t> record(kJournalRecordSize, 0);
  std::memcpy(record.data(), &pgno, 4);
  std::memcpy(record.data() + 4, original.data(),
              std::min<std::uint64_t>(original.size(), kDbPageSize));
  // Journal appends use the same seek+write (or pwrite) shape.
  persist_page(journal_fd_, vfs_.file_size(journal_fd_), record.data(), record.size());
  journaled_[pgno] = std::move(original);
}

const std::vector<std::uint8_t>& Pager::read_page(PageNo pgno) {
  const auto it = cache_.find(pgno);
  if (it != cache_.end()) return it->second;

  std::vector<std::uint8_t> content(kDbPageSize, 0);
  if (pgno <= page_count_) {
    vfs_.lseek(db_fd_, page_offset(pgno));
    vfs_.read(db_fd_, content.data(), kDbPageSize);
  }
  evict_if_needed();
  return cache_.emplace(pgno, std::move(content)).first->second;
}

void Pager::evict_if_needed() {
  if (cache_.size() < cache_capacity_) return;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!dirty_.contains(it->first)) {
      it = cache_.erase(it);
      if (cache_.size() < cache_capacity_) return;
    } else {
      ++it;
    }
  }
}

void Pager::write_page(PageNo pgno, std::vector<std::uint8_t> content) {
  if (!in_txn_) throw std::logic_error("Pager: write outside transaction");
  if (content.size() != kDbPageSize) content.resize(kDbPageSize, 0);
  journal_original(pgno);
  cache_[pgno] = std::move(content);
  dirty_[pgno] = true;
}

PageNo Pager::allocate_page() {
  if (!in_txn_) throw std::logic_error("Pager: allocate outside transaction");
  const PageNo pgno = ++page_count_;
  cache_[pgno] = std::vector<std::uint8_t>(kDbPageSize, 0);
  dirty_[pgno] = true;
  return pgno;
}

void Pager::commit() {
  if (!in_txn_) throw std::logic_error("Pager: commit outside transaction");
  // 1. Make the journal durable so a crash mid-commit can roll back.
  vfs_.fsync(journal_fd_);
  // 2. Write every dirty page to the database file.
  for (const auto& [pgno, _] : dirty_) {
    const auto& content = cache_.at(pgno);
    persist_page(db_fd_, page_offset(pgno), content.data(), content.size());
  }
  // 3. Make the database durable, then drop the journal.
  vfs_.fsync(db_fd_);
  vfs_.close(journal_fd_);
  journal_fd_ = kBadFd;
  vfs_.unlink(journal_path_);
  dirty_.clear();
  journaled_.clear();
  in_txn_ = false;
}

void Pager::rollback() {
  if (!in_txn_) return;
  // Restore the in-memory view from the journaled originals and forget the
  // rest (newly allocated pages simply disappear).
  for (auto& [pgno, original] : journaled_) cache_[pgno] = std::move(original);
  for (const auto& [pgno, _] : dirty_) {
    if (!journaled_.contains(pgno)) cache_.erase(pgno);
  }
  load_page_count();
  dirty_.clear();
  journaled_.clear();
  if (journal_fd_ != kBadFd) {
    vfs_.close(journal_fd_);
    journal_fd_ = kBadFd;
  }
  vfs_.unlink(journal_path_);
  in_txn_ = false;
}

}  // namespace minidb
