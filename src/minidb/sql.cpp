#include "minidb/sql.hpp"

#include <algorithm>
#include <cctype>

#include "support/strutil.hpp"

namespace minidb {

namespace {

/// SQL tokens: keywords/identifiers, quoted strings, punctuation.
struct Token {
  enum class Kind { kWord, kString, kPunct, kEnd } kind = Kind::kEnd;
  std::string text;  // keywords uppercased; strings unquoted
};

class SqlLexer {
 public:
  explicit SqlLexer(const std::string& src) : src_(src) {}

  Token next() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
    Token t;
    if (pos_ >= src_.size()) return t;
    const char c = src_[pos_];
    if (c == '\'') {
      ++pos_;
      t.kind = Token::Kind::kString;
      while (pos_ < src_.size()) {
        if (src_[pos_] == '\'') {
          // '' escapes a single quote, SQL style.
          if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '\'') {
            t.text.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          return t;
        }
        t.text.push_back(src_[pos_++]);
      }
      t.kind = Token::Kind::kEnd;  // unterminated string
      t.text = "unterminated string literal";
      error_ = true;
      return t;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = Token::Kind::kWord;
      while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                    src_[pos_] == '_')) {
        t.text.push_back(src_[pos_++]);
      }
      std::transform(t.text.begin(), t.text.end(), t.text.begin(),
                     [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
      return t;
    }
    t.kind = Token::Kind::kPunct;
    t.text.push_back(c);
    ++pos_;
    // Treat COUNT(*) as the three tokens '(', '*', ')'.
    return t;
  }

  [[nodiscard]] bool had_error() const noexcept { return error_; }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

/// Pulls all tokens up front; simpler to parse.
std::vector<Token> tokenize(const std::string& sql, std::string& error) {
  SqlLexer lexer(sql);
  std::vector<Token> tokens;
  for (;;) {
    Token t = lexer.next();
    if (lexer.had_error()) {
      error = t.text;
      return {};
    }
    if (t.kind == Token::Kind::kEnd) break;
    if (t.kind == Token::Kind::kPunct && t.text == ";") continue;  // statement terminator
    tokens.push_back(std::move(t));
  }
  return tokens;
}

/// Identifiers come back uppercased from the lexer; table names are treated
/// case-insensitively (stored uppercase), like unquoted SQL identifiers.
bool is_word(const std::vector<Token>& t, std::size_t i, const char* word) {
  return i < t.size() && t[i].kind == Token::Kind::kWord && t[i].text == word;
}

bool is_punct(const std::vector<Token>& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text.size() == 1 &&
         t[i].text[0] == c;
}

constexpr char kSep = '\x1f';  // table/key separator in the underlying tree

}  // namespace

std::string SqlEngine::catalog_key(const std::string& table) {
  return std::string("\x01catalog") + kSep + table;
}

std::string SqlEngine::row_key(const std::string& table, const std::string& key) {
  return table + kSep + key;
}

bool SqlEngine::table_exists(const std::string& name) {
  return db_.get(catalog_key(name)).has_value();
}

SqlResult SqlEngine::exec(const std::string& sql) {
  std::string lex_error;
  const auto t = tokenize(sql, lex_error);
  if (!lex_error.empty()) return SqlResult::failure(lex_error);
  if (t.empty()) return SqlResult::failure("empty statement");

  // --- transactions ---------------------------------------------------------
  if (is_word(t, 0, "BEGIN")) {
    if (in_txn_) return SqlResult::failure("transaction already open");
    db_.begin();
    in_txn_ = true;
    return SqlResult::success();
  }
  if (is_word(t, 0, "COMMIT")) {
    if (!in_txn_) return SqlResult::failure("no open transaction");
    db_.commit();
    in_txn_ = false;
    return SqlResult::success();
  }
  if (is_word(t, 0, "ROLLBACK")) {
    if (!in_txn_) return SqlResult::failure("no open transaction");
    db_.rollback();
    in_txn_ = false;
    return SqlResult::success();
  }

  // Autocommit wrapper for single data statements.
  const auto put = [&](const std::string& key, const std::string& value) {
    if (in_txn_) {
      db_.put_in_txn(key, value);
    } else {
      db_.put(key, value);
    }
  };

  // --- CREATE / DROP TABLE ---------------------------------------------------
  if (is_word(t, 0, "CREATE")) {
    if (!is_word(t, 1, "TABLE") || t.size() < 3 || t[2].kind != Token::Kind::kWord) {
      return SqlResult::failure("expected CREATE TABLE <name>");
    }
    const std::string& name = t[2].text;
    if (table_exists(name)) return SqlResult::failure("table already exists: " + name);
    put(catalog_key(name), "table");
    return SqlResult::success();
  }
  if (is_word(t, 0, "DROP")) {
    if (!is_word(t, 1, "TABLE") || t.size() < 3) return SqlResult::failure("expected DROP TABLE <name>");
    const std::string& name = t[2].text;
    if (!table_exists(name)) return SqlResult::failure("no such table: " + name);
    // Collect the table's rows, then delete them and the catalog entry.
    std::vector<std::string> doomed;
    const std::string prefix = name + kSep;
    db_.scan([&](const std::string& k, const std::string&) {
      if (support::starts_with(k, prefix)) doomed.push_back(k);
      return true;
    });
    for (const auto& k : doomed) db_.erase(k);
    db_.erase(catalog_key(name));
    SqlResult r = SqlResult::success();
    r.affected = doomed.size();
    return r;
  }

  // --- INSERT -----------------------------------------------------------------
  if (is_word(t, 0, "INSERT")) {
    // INSERT INTO <name> VALUES ( 'key' , 'value' )
    if (!is_word(t, 1, "INTO") || t.size() < 3) return SqlResult::failure("expected INSERT INTO");
    const std::string& name = t[2].text;
    if (!table_exists(name)) return SqlResult::failure("no such table: " + name);
    std::size_t i = 3;
    if (!is_word(t, i, "VALUES")) return SqlResult::failure("expected VALUES");
    ++i;
    if (!is_punct(t, i, '(')) return SqlResult::failure("expected (");
    ++i;
    if (i >= t.size() || t[i].kind != Token::Kind::kString) {
      return SqlResult::failure("expected string key");
    }
    const std::string key = t[i++].text;
    if (!is_punct(t, i, ',')) return SqlResult::failure("expected ,");
    ++i;
    if (i >= t.size() || t[i].kind != Token::Kind::kString) {
      return SqlResult::failure("expected string value");
    }
    const std::string value = t[i++].text;
    if (!is_punct(t, i, ')')) return SqlResult::failure("expected )");
    if (key.empty()) return SqlResult::failure("key must not be empty");
    put(row_key(name, key), value);
    SqlResult r = SqlResult::success();
    r.affected = 1;
    return r;
  }

  // --- SELECT -----------------------------------------------------------------
  if (is_word(t, 0, "SELECT")) {
    // Projections: VALUE | KEY, VALUE | COUNT(*)
    std::size_t i = 1;
    bool count = false;
    bool with_key = false;
    if (is_word(t, i, "COUNT")) {
      if (!is_punct(t, i + 1, '(') || !is_punct(t, i + 2, '*') || !is_punct(t, i + 3, ')')) {
        return SqlResult::failure("expected COUNT(*)");
      }
      count = true;
      i += 4;
    } else if (is_word(t, i, "KEY") && is_punct(t, i + 1, ',') && is_word(t, i + 2, "VALUE")) {
      with_key = true;
      i += 3;
    } else if (is_word(t, i, "VALUE")) {
      i += 1;
    } else if (is_punct(t, i, '*')) {
      with_key = true;
      i += 1;
    } else {
      return SqlResult::failure("expected VALUE, KEY, VALUE, * or COUNT(*)");
    }
    if (!is_word(t, i, "FROM") || i + 1 >= t.size()) return SqlResult::failure("expected FROM <name>");
    const std::string name = t[i + 1].text;
    if (!table_exists(name)) return SqlResult::failure("no such table: " + name);
    i += 2;

    // Optional WHERE key = 'k'.
    std::string where_key;
    bool has_where = false;
    if (i < t.size()) {
      if (!is_word(t, i, "WHERE") || !is_word(t, i + 1, "KEY") || !is_punct(t, i + 2, '=') ||
          i + 3 >= t.size() || t[i + 3].kind != Token::Kind::kString) {
        return SqlResult::failure("expected WHERE key = '<k>'");
      }
      has_where = true;
      where_key = t[i + 3].text;
    }

    SqlResult r = SqlResult::success();
    if (has_where) {
      const auto value = db_.get(row_key(name, where_key));
      if (count) {
        r.rows.push_back({value ? "1" : "0"});
      } else if (value) {
        if (with_key) {
          r.rows.push_back({where_key, *value});
        } else {
          r.rows.push_back({*value});
        }
      }
      return r;
    }
    const std::string prefix = name + kSep;
    std::size_t matches = 0;
    db_.scan([&](const std::string& k, const std::string& v) {
      if (!support::starts_with(k, prefix)) return true;
      ++matches;
      if (!count) {
        if (with_key) {
          r.rows.push_back({k.substr(prefix.size()), v});
        } else {
          r.rows.push_back({v});
        }
      }
      return true;
    });
    if (count) r.rows.push_back({std::to_string(matches)});
    return r;
  }

  // --- DELETE -----------------------------------------------------------------
  if (is_word(t, 0, "DELETE")) {
    if (!is_word(t, 1, "FROM") || t.size() < 3) return SqlResult::failure("expected DELETE FROM");
    const std::string& name = t[2].text;
    if (!table_exists(name)) return SqlResult::failure("no such table: " + name);
    if (!is_word(t, 3, "WHERE") || !is_word(t, 4, "KEY") || !is_punct(t, 5, '=') ||
        t.size() < 7 || t[6].kind != Token::Kind::kString) {
      return SqlResult::failure("expected WHERE key = '<k>'");
    }
    SqlResult r = SqlResult::success();
    r.affected = db_.erase(row_key(name, t[6].text)) ? 1 : 0;
    return r;
  }

  return SqlResult::failure("unrecognised statement: " + t[0].text);
}

SqlResult SqlEngine::exec_script(const std::string& script) {
  SqlResult last = SqlResult::success();
  for (const auto& statement : support::split(script, ';')) {
    if (support::trim(statement).empty()) continue;
    last = exec(std::string(support::trim(statement)));
    if (!last.ok) return last;
  }
  return last;
}

}  // namespace minidb
