// Page cache and rollback journal, SQLite-style.
//
// Each transaction journals the original content of every page it modifies
// (journal file "<db>-journal"), then on commit: fsync the journal, write the
// dirty pages to the database file, fsync the database, delete the journal.
// A leftover ("hot") journal found at open time triggers crash recovery.
//
// Persisting a page uses the VFS either as lseek-then-write — SQLite's
// Linux behaviour and the source of the paper's SDSC finding — or as a
// single pwrite when `WriteMode::kMergedPwrite` is selected (the sgx-perf
// recommended merge, §5.2.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minidb/vfs.hpp"

namespace minidb {

inline constexpr std::uint64_t kDbPageSize = 4096;

enum class WriteMode {
  kSeekThenWrite,  // two VFS calls per page write (SQLite's shape)
  kMergedPwrite,   // one combined call (the optimisation)
};

using PageNo = std::uint32_t;

class Pager {
 public:
  Pager(Vfs& vfs, std::string path, WriteMode mode = WriteMode::kSeekThenWrite,
        std::size_t cache_capacity = 256);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // --- transactions ---------------------------------------------------------
  void begin();
  void commit();
  void rollback();
  [[nodiscard]] bool in_transaction() const noexcept { return in_txn_; }

  // --- pages ------------------------------------------------------------------
  /// Returns the content of `pgno` (cached read-through).  Pages are 1-based;
  /// page 1 is reserved by the database header.
  const std::vector<std::uint8_t>& read_page(PageNo pgno);
  /// Replaces the content of `pgno` within the current transaction.  The
  /// original content is journaled on first touch.
  void write_page(PageNo pgno, std::vector<std::uint8_t> content);
  /// Appends a fresh zero page and returns its number.
  PageNo allocate_page();
  [[nodiscard]] PageNo page_count() const noexcept { return page_count_; }

  void close();

 private:
  [[nodiscard]] std::uint64_t page_offset(PageNo pgno) const {
    return static_cast<std::uint64_t>(pgno - 1) * kDbPageSize;
  }
  void persist_page(Fd fd, std::uint64_t offset, const std::uint8_t* data, std::uint64_t len);
  void journal_original(PageNo pgno);
  void recover_from_hot_journal();
  void load_page_count();
  void evict_if_needed();

  Vfs& vfs_;
  std::string path_;
  std::string journal_path_;
  WriteMode mode_;
  std::size_t cache_capacity_;

  Fd db_fd_ = kBadFd;
  Fd journal_fd_ = kBadFd;
  PageNo page_count_ = 0;

  bool in_txn_ = false;
  std::map<PageNo, std::vector<std::uint8_t>> cache_;
  std::map<PageNo, bool> dirty_;
  std::map<PageNo, std::vector<std::uint8_t>> journaled_;  // originals this txn
};

}  // namespace minidb
