// Git-commit-replay workload generator.
//
// §5.2.2: "We ran experiments similar to those of the LibSEAL paper,
// replaying commits from popular git repositories."  No real repository
// history is shipped here, so commits are synthesised deterministically:
// hash, author, timestamp, message and a handful of changed files whose
// records are inserted in one transaction per commit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minidb/db.hpp"

namespace minidb {

struct CommitFile {
  std::string path;
  std::uint32_t additions = 0;
  std::uint32_t deletions = 0;
  std::string blob_id;
};

struct Commit {
  std::string hash;        // 40 hex chars, like git
  std::string author;
  std::uint64_t timestamp = 0;
  std::string message;
  std::vector<CommitFile> files;

  /// Key/value records this commit contributes: one commit record plus one
  /// record per changed file.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> to_records() const;
};

class CommitGenerator {
 public:
  explicit CommitGenerator(std::uint64_t seed = 2018);

  /// Deterministically generates the i-th commit of the synthetic history.
  [[nodiscard]] Commit make(std::uint64_t index) const;

 private:
  std::uint64_t seed_;
};

/// Replays one commit into the database as a single transaction and returns
/// the number of records inserted.
std::size_t replay_commit(Database& db, const Commit& commit);

}  // namespace minidb
