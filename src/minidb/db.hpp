// The minidb database: a single key-value table (B-tree) with a header page,
// autocommit and multi-statement transactions — the SQLite stand-in of the
// §5.2.2 experiment.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minidb/btree.hpp"
#include "minidb/pager.hpp"

namespace minidb {

class Database {
 public:
  /// Opens (or creates) the database file at `path` through `vfs`.
  Database(Vfs& vfs, const std::string& path, WriteMode mode = WriteMode::kSeekThenWrite);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Autocommit insert (one transaction per call), like a bare SQLite INSERT.
  void put(const std::string& key, const std::string& value);

  /// Explicit transaction control, for replaying one git commit as one
  /// transaction.
  void begin();
  void put_in_txn(const std::string& key, const std::string& value);
  void commit();
  void rollback();

  [[nodiscard]] std::optional<std::string> get(const std::string& key);
  bool erase(const std::string& key);
  [[nodiscard]] std::size_t size();
  void scan(const std::function<bool(const std::string&, const std::string&)>& cb);

  [[nodiscard]] Pager& pager() noexcept { return *pager_; }

 private:
  void load_or_create();

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> tree_;
};

}  // namespace minidb
