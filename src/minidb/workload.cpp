#include "minidb/workload.hpp"

#include "crypto/sha256.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace minidb {

namespace {

const char* const kAuthors[] = {
    "alice <alice@example.com>", "bob <bob@example.com>",   "carol <carol@example.com>",
    "dave <dave@example.com>",   "erin <erin@example.com>", "frank <frank@example.com>",
};

const char* const kDirs[] = {"src", "lib", "tests", "docs", "tools", "include"};
const char* const kWords[] = {"fix",     "refactor", "add",    "remove", "update",
                              "cleanup", "optimise", "handle", "rework", "document"};
const char* const kTopics[] = {"parser", "cache",  "logging", "scheduler", "protocol",
                               "index",  "config", "tests",   "allocator", "encoder"};

}  // namespace

CommitGenerator::CommitGenerator(std::uint64_t seed) : seed_(seed) {}

Commit CommitGenerator::make(std::uint64_t index) const {
  support::Rng rng(seed_ ^ (index * 0x2545F4914F6CDD1Dull + 1));
  Commit c;
  const auto id = crypto::sha256(support::format("commit-%llu-%llu",
                                                 static_cast<unsigned long long>(seed_),
                                                 static_cast<unsigned long long>(index)));
  c.hash = crypto::to_hex(id).substr(0, 40);
  c.author = kAuthors[rng.next_below(std::size(kAuthors))];
  c.timestamp = 1'520'000'000 + index * 97 + rng.next_below(60);
  c.message = support::format("%s %s %s", kWords[rng.next_below(std::size(kWords))],
                              kTopics[rng.next_below(std::size(kTopics))],
                              rng.next_string(8).c_str());
  const std::uint64_t nfiles = rng.next_in(2, 7);
  for (std::uint64_t f = 0; f < nfiles; ++f) {
    CommitFile file;
    file.path = support::format("%s/%s.%s", kDirs[rng.next_below(std::size(kDirs))],
                                rng.next_string(10).c_str(), rng.chance(0.7) ? "cpp" : "hpp");
    file.additions = static_cast<std::uint32_t>(rng.next_in(1, 200));
    file.deletions = static_cast<std::uint32_t>(rng.next_in(0, 120));
    file.blob_id = rng.next_string(40);
    c.files.push_back(std::move(file));
  }
  return c;
}

std::vector<std::pair<std::string, std::string>> Commit::to_records() const {
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(files.size() + 1);
  std::string body = support::format(
      "author=%s;ts=%llu;msg=%s;files=%zu", author.c_str(),
      static_cast<unsigned long long>(timestamp), message.c_str(), files.size());
  records.emplace_back("commit/" + hash, std::move(body));
  for (const auto& f : files) {
    records.emplace_back(
        support::format("file/%s/%s", hash.c_str(), f.path.c_str()),
        support::format("+%u,-%u,blob=%s", f.additions, f.deletions, f.blob_id.c_str()));
  }
  return records;
}

std::size_t replay_commit(Database& db, const Commit& commit) {
  const auto records = commit.to_records();
  db.begin();
  for (const auto& [key, value] : records) db.put_in_txn(key, value);
  db.commit();
  return records.size();
}

}  // namespace minidb
