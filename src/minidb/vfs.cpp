#include "minidb/vfs.hpp"

#include <cstring>

namespace minidb {

HostVfs::HostVfs(support::VirtualClock& clock, VfsCosts costs)
    : clock_(clock), costs_(costs) {}

Fd HostVfs::open(const std::string& path) {
  clock_.advance(costs_.open_ns);
  ++counters_.opens;
  auto& file = files_[path];
  if (!file) file = std::make_shared<File>();
  const Fd fd = next_fd_++;
  open_files_[fd] = OpenFile{file, 0};
  return fd;
}

void HostVfs::close(Fd fd) {
  clock_.advance(costs_.close_ns);
  open_files_.erase(fd);
}

std::int64_t HostVfs::lseek(Fd fd, std::uint64_t offset) {
  clock_.advance(costs_.lseek_ns);
  ++counters_.lseeks;
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -1;
  it->second.offset = offset;
  return static_cast<std::int64_t>(offset);
}

std::int64_t HostVfs::read(Fd fd, void* buf, std::uint64_t len) {
  clock_.advance(costs_.read_ns);
  ++counters_.reads;
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -1;
  auto& of = it->second;
  const auto& data = of.file->data;
  if (of.offset >= data.size()) return 0;
  const std::uint64_t take = std::min<std::uint64_t>(len, data.size() - of.offset);
  std::memcpy(buf, data.data() + of.offset, take);
  of.offset += take;
  return static_cast<std::int64_t>(take);
}

std::int64_t HostVfs::write(Fd fd, const void* buf, std::uint64_t len) {
  clock_.advance(costs_.write_ns);
  ++counters_.writes;
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -1;
  auto& of = it->second;
  auto& data = of.file->data;
  if (of.offset + len > data.size()) data.resize(of.offset + len);
  std::memcpy(data.data() + of.offset, buf, len);
  of.offset += len;
  return static_cast<std::int64_t>(len);
}

std::int64_t HostVfs::pwrite(Fd fd, const void* buf, std::uint64_t len, std::uint64_t offset) {
  clock_.advance(costs_.pwrite_ns);
  ++counters_.pwrites;
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -1;
  auto& of = it->second;
  auto& data = of.file->data;
  if (offset + len > data.size()) data.resize(offset + len);
  std::memcpy(data.data() + offset, buf, len);
  of.offset = offset + len;
  return static_cast<std::int64_t>(len);
}

void HostVfs::fsync(Fd fd) {
  clock_.advance(costs_.fsync_ns);
  ++counters_.fsyncs;
  (void)fd;  // the in-memory disk is always durable
}

void HostVfs::unlink(const std::string& path) {
  clock_.advance(costs_.unlink_ns);
  files_.erase(path);
}

bool HostVfs::exists(const std::string& path) { return files_.contains(path); }

std::uint64_t HostVfs::file_size(Fd fd) {
  const auto it = open_files_.find(fd);
  return it == open_files_.end() ? 0 : it->second.file->data.size();
}

}  // namespace minidb
