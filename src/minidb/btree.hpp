// A B-tree keyed by byte strings, stored in pager pages.
//
// Node format (one page each):
//   u8  type            (1 = leaf, 2 = interior)
//   u16 cell count
//   leaf cells:     u16 klen, u16 vlen, key bytes, value bytes
//   interior cells: u16 klen, key bytes, u32 child   (child holds keys <= key)
//   interior tail:  u32 rightmost child              (keys > last separator)
//
// Nodes are deserialised into an in-memory form, mutated, and written back —
// simple, obviously correct, and fast enough for the paper's workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "minidb/pager.hpp"

namespace minidb {

/// Keys and values are byte strings; the per-cell limit keeps several cells
/// per page (no overflow-page machinery).
inline constexpr std::size_t kMaxKeySize = 512;
inline constexpr std::size_t kMaxValueSize = 1536;

class BTree {
 public:
  /// Attaches to an existing tree rooted at `root`, or pass 0 to create a
  /// fresh root (requires an open transaction); root() reports the page.
  BTree(Pager& pager, PageNo root);

  [[nodiscard]] PageNo root() const noexcept { return root_; }

  /// Inserts or replaces.  Requires an open transaction.  Throws
  /// std::invalid_argument on over-long keys/values.
  void put(const std::string& key, const std::string& value);

  /// Point lookup.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Removes a key; returns false if absent.  (Underflow is tolerated:
  /// pages merge lazily, like SQLite's incremental vacuum model.)
  bool erase(const std::string& key);

  /// In-order traversal; return false from the callback to stop early.
  void scan(const std::function<bool(const std::string&, const std::string&)>& cb);

  /// Number of keys (full scan).
  [[nodiscard]] std::size_t size();

  /// Tree height (for tests; 1 = root is a leaf).
  [[nodiscard]] std::size_t height();

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    std::vector<std::string> values;    // leaf only, parallel to keys
    std::vector<PageNo> children;       // interior only, keys.size() + 1
  };

  [[nodiscard]] Node load(PageNo pgno);
  void store(PageNo pgno, const Node& node);
  [[nodiscard]] static std::size_t serialized_size(const Node& node);
  [[nodiscard]] static std::size_t max_payload() { return kDbPageSize - 3; }

  struct SplitResult {
    std::string separator;  // keys <= separator stay in the left node
    PageNo right_page = 0;
  };
  /// Inserts into the subtree at `pgno`; returns a split description when the
  /// node had to divide.
  std::optional<SplitResult> insert_into(PageNo pgno, const std::string& key,
                                         const std::string& value);

  bool erase_from(PageNo pgno, const std::string& key);
  void scan_node(PageNo pgno,
                 const std::function<bool(const std::string&, const std::string&)>& cb,
                 bool& keep_going);

  Pager& pager_;
  PageNo root_;
};

}  // namespace minidb
