#include "minidb/db.hpp"

#include <cstring>
#include <stdexcept>

namespace minidb {

namespace {
constexpr char kMagic[8] = {'M', 'I', 'N', 'I', 'D', 'B', '0', '1'};
constexpr PageNo kHeaderPage = 1;
}  // namespace

Database::Database(Vfs& vfs, const std::string& path, WriteMode mode)
    : pager_(std::make_unique<Pager>(vfs, path, mode)) {
  load_or_create();
}

Database::~Database() = default;

void Database::load_or_create() {
  if (pager_->page_count() == 0) {
    pager_->begin();
    const PageNo header = pager_->allocate_page();
    if (header != kHeaderPage) throw std::logic_error("minidb: header must be page 1");
    tree_ = std::make_unique<BTree>(*pager_, 0);  // allocates the root page
    std::vector<std::uint8_t> page(kDbPageSize, 0);
    std::memcpy(page.data(), kMagic, sizeof(kMagic));
    const PageNo root = tree_->root();
    std::memcpy(page.data() + 8, &root, 4);
    pager_->write_page(kHeaderPage, std::move(page));
    pager_->commit();
    return;
  }
  const auto& page = pager_->read_page(kHeaderPage);
  if (std::memcmp(page.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("minidb: not a minidb file");
  }
  PageNo root = 0;
  std::memcpy(&root, page.data() + 8, 4);
  tree_ = std::make_unique<BTree>(*pager_, root);
}

void Database::put(const std::string& key, const std::string& value) {
  pager_->begin();
  tree_->put(key, value);
  pager_->commit();
}

void Database::begin() { pager_->begin(); }

void Database::put_in_txn(const std::string& key, const std::string& value) {
  if (!pager_->in_transaction()) throw std::logic_error("minidb: no open transaction");
  tree_->put(key, value);
}

void Database::commit() { pager_->commit(); }

void Database::rollback() { pager_->rollback(); }

std::optional<std::string> Database::get(const std::string& key) { return tree_->get(key); }

bool Database::erase(const std::string& key) {
  pager_->begin();
  const bool erased = tree_->erase(key);
  pager_->commit();
  return erased;
}

std::size_t Database::size() { return tree_->size(); }

void Database::scan(const std::function<bool(const std::string&, const std::string&)>& cb) {
  tree_->scan(cb);
}

}  // namespace minidb
