#include "minidb/btree.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace minidb {

namespace {

constexpr std::uint8_t kLeafType = 1;
constexpr std::uint8_t kInteriorType = 2;

void put_u16(std::vector<std::uint8_t>& buf, std::size_t& off, std::uint16_t v) {
  buf[off++] = static_cast<std::uint8_t>(v);
  buf[off++] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::vector<std::uint8_t>& buf, std::size_t& off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf[off++] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& buf, std::size_t& off) {
  const std::uint16_t v =
      static_cast<std::uint16_t>(buf[off] | (std::uint16_t{buf[off + 1]} << 8));
  off += 2;
  return v;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& buf, std::size_t& off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{buf[off + static_cast<std::size_t>(i)]} << (8 * i);
  off += 4;
  return v;
}

void put_bytes(std::vector<std::uint8_t>& buf, std::size_t& off, const std::string& s) {
  std::memcpy(buf.data() + off, s.data(), s.size());
  off += s.size();
}

std::string get_bytes(const std::vector<std::uint8_t>& buf, std::size_t& off, std::size_t n) {
  std::string s(reinterpret_cast<const char*>(buf.data() + off), n);
  off += n;
  return s;
}

}  // namespace

BTree::BTree(Pager& pager, PageNo root) : pager_(pager), root_(root) {
  if (root_ == 0) {
    root_ = pager_.allocate_page();
    store(root_, Node{});  // empty leaf
  }
}

BTree::Node BTree::load(PageNo pgno) {
  const auto& page = pager_.read_page(pgno);
  Node node;
  std::size_t off = 0;
  const std::uint8_t type = page[off++];
  std::size_t off2 = off;
  const std::uint16_t n = get_u16(page, off2);
  off = off2;
  if (type == kInteriorType) {
    node.leaf = false;
    node.keys.reserve(n);
    node.children.reserve(static_cast<std::size_t>(n) + 1);
    for (std::uint16_t i = 0; i < n; ++i) {
      const std::uint16_t klen = get_u16(page, off);
      node.keys.push_back(get_bytes(page, off, klen));
      node.children.push_back(get_u32(page, off));
    }
    node.children.push_back(get_u32(page, off));  // rightmost
  } else {
    node.leaf = true;
    node.keys.reserve(n);
    node.values.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      const std::uint16_t klen = get_u16(page, off);
      const std::uint16_t vlen = get_u16(page, off);
      node.keys.push_back(get_bytes(page, off, klen));
      node.values.push_back(get_bytes(page, off, vlen));
    }
  }
  return node;
}

std::size_t BTree::serialized_size(const Node& node) {
  std::size_t size = 3;  // type + cell count
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      size += 4 + node.keys[i].size() + node.values[i].size();
    }
  } else {
    for (const auto& key : node.keys) size += 2 + key.size() + 4;
    size += 4;  // rightmost child
  }
  return size;
}

void BTree::store(PageNo pgno, const Node& node) {
  std::vector<std::uint8_t> page(kDbPageSize, 0);
  std::size_t off = 0;
  page[off++] = node.leaf ? kLeafType : kInteriorType;
  put_u16(page, off, static_cast<std::uint16_t>(node.keys.size()));
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      put_u16(page, off, static_cast<std::uint16_t>(node.keys[i].size()));
      put_u16(page, off, static_cast<std::uint16_t>(node.values[i].size()));
      put_bytes(page, off, node.keys[i]);
      put_bytes(page, off, node.values[i]);
    }
  } else {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      put_u16(page, off, static_cast<std::uint16_t>(node.keys[i].size()));
      put_bytes(page, off, node.keys[i]);
      put_u32(page, off, node.children[i]);
    }
    put_u32(page, off, node.children.back());
  }
  pager_.write_page(pgno, std::move(page));
}

std::optional<BTree::SplitResult> BTree::insert_into(PageNo pgno, const std::string& key,
                                                     const std::string& value) {
  Node node = load(pgno);

  if (node.leaf) {
    const auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - node.keys.begin());
    if (it != node.keys.end() && *it == key) {
      node.values[idx] = value;  // replace
    } else {
      node.keys.insert(it, key);
      node.values.insert(node.values.begin() + static_cast<std::ptrdiff_t>(idx), value);
    }
    if (serialized_size(node) <= max_payload()) {
      store(pgno, node);
      return std::nullopt;
    }
    // Split the leaf in half.
    const std::size_t mid = node.keys.size() / 2;
    Node right;
    right.leaf = true;
    right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid), node.keys.end());
    right.values.assign(node.values.begin() + static_cast<std::ptrdiff_t>(mid),
                        node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    const PageNo right_page = pager_.allocate_page();
    store(pgno, node);
    store(right_page, right);
    return SplitResult{node.keys.back(), right_page};
  }

  // Interior: descend into the child whose range covers the key.
  const auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
  const auto idx = static_cast<std::size_t>(it - node.keys.begin());
  const auto split = insert_into(node.children[idx], key, value);
  if (!split) return std::nullopt;

  node.keys.insert(node.keys.begin() + static_cast<std::ptrdiff_t>(idx), split->separator);
  node.children.insert(node.children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                       split->right_page);
  if (serialized_size(node) <= max_payload()) {
    store(pgno, node);
    return std::nullopt;
  }
  // Split the interior node: the middle separator moves up.
  const std::size_t mid = node.keys.size() / 2;
  const std::string up = node.keys[mid];
  Node right;
  right.leaf = false;
  right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1, node.keys.end());
  right.children.assign(node.children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                        node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  const PageNo right_page = pager_.allocate_page();
  store(pgno, node);
  store(right_page, right);
  return SplitResult{up, right_page};
}

void BTree::put(const std::string& key, const std::string& value) {
  if (key.empty() || key.size() > kMaxKeySize) {
    throw std::invalid_argument("BTree: bad key size");
  }
  if (value.size() > kMaxValueSize) throw std::invalid_argument("BTree: value too large");

  const auto split = insert_into(root_, key, value);
  if (!split) return;

  // Root split: grow the tree by one level.
  Node old_root = load(root_);
  const PageNo left_page = pager_.allocate_page();
  store(left_page, old_root);
  Node new_root;
  new_root.leaf = false;
  new_root.keys.push_back(split->separator);
  new_root.children.push_back(left_page);
  new_root.children.push_back(split->right_page);
  store(root_, new_root);  // the root page number stays stable
}

std::optional<std::string> BTree::get(const std::string& key) {
  PageNo pgno = root_;
  for (;;) {
    Node node = load(pgno);
    const auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - node.keys.begin());
    if (node.leaf) {
      if (it != node.keys.end() && *it == key) return node.values[idx];
      return std::nullopt;
    }
    pgno = node.children[idx];
  }
}

bool BTree::erase_from(PageNo pgno, const std::string& key) {
  Node node = load(pgno);
  const auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
  const auto idx = static_cast<std::size_t>(it - node.keys.begin());
  if (node.leaf) {
    if (it == node.keys.end() || *it != key) return false;
    node.keys.erase(it);
    node.values.erase(node.values.begin() + static_cast<std::ptrdiff_t>(idx));
    store(pgno, node);
    return true;
  }
  return erase_from(node.children[idx], key);
}

bool BTree::erase(const std::string& key) { return erase_from(root_, key); }

void BTree::scan_node(PageNo pgno,
                      const std::function<bool(const std::string&, const std::string&)>& cb,
                      bool& keep_going) {
  if (!keep_going) return;
  Node node = load(pgno);
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size() && keep_going; ++i) {
      keep_going = cb(node.keys[i], node.values[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < node.children.size() && keep_going; ++i) {
    scan_node(node.children[i], cb, keep_going);
  }
}

void BTree::scan(const std::function<bool(const std::string&, const std::string&)>& cb) {
  bool keep_going = true;
  scan_node(root_, cb, keep_going);
}

std::size_t BTree::size() {
  std::size_t n = 0;
  scan([&n](const std::string&, const std::string&) {
    ++n;
    return true;
  });
  return n;
}

std::size_t BTree::height() {
  std::size_t h = 1;
  PageNo pgno = root_;
  for (;;) {
    Node node = load(pgno);
    if (node.leaf) return h;
    pgno = node.children.front();
    ++h;
  }
}

}  // namespace minidb
