// A small SQL front end for minidb — enough to phrase the paper's workload
// ("a series of insert operations into a database persistently stored on
// disk") the way SQLite users do.
//
// Grammar (case-insensitive keywords, single-quoted strings):
//   CREATE TABLE name;
//   DROP TABLE name;
//   INSERT INTO name VALUES ('key', 'value');
//   SELECT value FROM name WHERE key = 'k';
//   SELECT key, value FROM name [WHERE key = 'k'];
//   SELECT COUNT(*) FROM name;
//   DELETE FROM name WHERE key = 'k';
//   BEGIN; COMMIT; ROLLBACK;
//
// Each table maps to a key prefix in the underlying B-tree ("<table>\x1f<key>"),
// with a catalog record per table, so many tables share one tree exactly the
// way SQLite packs tables into one file.
#pragma once

#include <string>
#include <vector>

#include "minidb/db.hpp"

namespace minidb {

struct SqlResult {
  bool ok = false;
  std::string error;                           // set when !ok
  std::vector<std::vector<std::string>> rows;  // SELECT results
  std::size_t affected = 0;                    // INSERT/DELETE counts

  static SqlResult success() {
    SqlResult r;
    r.ok = true;
    return r;
  }
  static SqlResult failure(std::string message) {
    SqlResult r;
    r.error = std::move(message);
    return r;
  }
};

/// Executes SQL statements against a Database.  Statements are independent
/// unless wrapped in BEGIN/COMMIT (which map to the pager transaction).
class SqlEngine {
 public:
  explicit SqlEngine(Database& db) : db_(db) {}

  /// Executes one statement (a trailing ';' is optional).
  SqlResult exec(const std::string& sql);

  /// Convenience: executes a script of ';'-separated statements, stopping at
  /// the first error.  Returns the last result.
  SqlResult exec_script(const std::string& script);

 private:
  [[nodiscard]] bool table_exists(const std::string& name);
  [[nodiscard]] static std::string catalog_key(const std::string& table);
  [[nodiscard]] static std::string row_key(const std::string& table, const std::string& key);

  Database& db_;
  bool in_txn_ = false;
};

}  // namespace minidb
