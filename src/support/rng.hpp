// Deterministic pseudo-random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) — small, fast, and good enough for
// generating synthetic keys, payloads and commit records.  We avoid
// std::mt19937 so that the exact stream is pinned by this repository and not
// by a standard-library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).  `bound` must be non-zero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here: the
    // tiny modulo bias is irrelevant for workload synthesis.
    return next_u64() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Random lowercase-alphanumeric string of length `n`.
  std::string next_string(std::size_t n) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(kAlphabet[next_below(sizeof(kAlphabet) - 1)]);
    }
    return s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace support
