#include "support/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace support {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

Histogram Histogram::from_values(const std::vector<double>& values, std::size_t bins) {
  if (values.empty()) {
    Histogram h(0.0, 1.0, bins);
    return h;
  }
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  const double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1.0;  // degenerate: all samples equal
  Histogram h(lo, hi, bins);
  for (double v : values) h.add(v);
  return h;
}

void Histogram::add(double value) noexcept {
  if (value < lo_ || value > hi_) return;  // out-of-range samples are dropped
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // value == hi_
  ++counts_[bin];
  ++total_;
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_range");
  return {lo_ + width_ * static_cast<double>(bin),
          lo_ + width_ * static_cast<double>(bin + 1)};
}

std::size_t Histogram::mode_bin() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render_ascii(std::size_t width, const std::string& unit) const {
  std::string out;
  const std::uint64_t peak = counts_.empty() ? 0 : counts_[mode_bin()];
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [b_lo, b_hi] = bin_range(i);
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %-7s %8llu |", b_lo, b_hi,
                  unit.c_str(), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::string Histogram::to_csv() const {
  std::string out = "bin_lo,bin_hi,count\n";
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [b_lo, b_hi] = bin_range(i);
    std::snprintf(line, sizeof(line), "%.6f,%.6f,%llu\n", b_lo, b_hi,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace support
