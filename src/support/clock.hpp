// Virtual time source for the SGX simulation.
//
// Everything in the reproduction runs against *virtual* nanoseconds: the
// simulator advances the clock by modelled costs (transition latency, copy
// cost, paging cost, ...) and the sgx-perf logger reads timestamps from the
// same clock, exactly as the real tool reads CLOCK_MONOTONIC.  This makes
// the whole evaluation deterministic and hardware-independent.
#pragma once

#include <atomic>
#include <cstdint>

namespace support {

/// Nanoseconds of virtual time.
using Nanoseconds = std::uint64_t;

/// A monotonically increasing, thread-safe virtual clock.
///
/// A single instance is shared by one simulation "machine": the enclave
/// runtime, the workload and the profiler all observe the same time line.
class VirtualClock {
 public:
  VirtualClock() noexcept = default;

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Current virtual time since simulation start.
  [[nodiscard]] Nanoseconds now() const noexcept {
    return now_ns_.load(std::memory_order_relaxed);
  }

  /// Advance the clock by `ns` and return the *new* time.
  Nanoseconds advance(Nanoseconds ns) noexcept {
    return now_ns_.fetch_add(ns, std::memory_order_relaxed) + ns;
  }

  /// Reset to zero.  Only meaningful between independent experiment runs.
  void reset() noexcept { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<Nanoseconds> now_ns_{0};
};

/// Converts between virtual nanoseconds and CPU cycles at a configurable
/// frequency.  The paper reports both units (e.g. "5,850 cycles (~2,130 ns)",
/// an effective ~2.75 GHz on their Xeon E3-1230 v5 under turbo).
class CycleConverter {
 public:
  explicit constexpr CycleConverter(double ghz = 2.75) noexcept : ghz_(ghz) {}

  [[nodiscard]] constexpr double ghz() const noexcept { return ghz_; }

  [[nodiscard]] constexpr std::uint64_t ns_to_cycles(Nanoseconds ns) const noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(ns) * ghz_ + 0.5);
  }

  [[nodiscard]] constexpr Nanoseconds cycles_to_ns(std::uint64_t cycles) const noexcept {
    return static_cast<Nanoseconds>(static_cast<double>(cycles) / ghz_ + 0.5);
  }

 private:
  double ghz_;
};

}  // namespace support
