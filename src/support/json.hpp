// Minimal JSON support shared by the telemetry exporters, the bench result
// writers and the CLI's --json output: a streaming writer that produces
// deterministic, byte-stable text (important for golden-file tests) and a
// small validating recursive-descent parser used by tests and by
// tools/json_check to verify that everything we emit is well-formed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace support::json {

/// Version stamped into every JSON document the tools emit (stats --json,
/// monitor alert lines, whatif, bench reports, fleet snapshots, trace
/// exports).  A daemon consuming these streams dispatches on it; bump when
/// any emitter changes shape incompatibly.  tools/json_check rejects
/// documents without it.
inline constexpr std::uint64_t kSchemaVersion = 1;

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string escape(std::string_view s);

/// Streaming JSON writer.  The caller drives the nesting explicitly; commas
/// are inserted automatically.  Numbers are formatted deterministically
/// (integers as-is, doubles with up to 12 significant digits), so identical
/// input always yields identical bytes.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits the key of the next object member.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double d);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool b);
  Writer& null();

  /// Convenience: key + value in one call.
  template <typename T>
  Writer& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  // one flag per open container
};

/// Parsed JSON value (document order preserved for objects).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parses a complete JSON document.  Throws std::runtime_error with a byte
/// offset on malformed input (including trailing garbage).
[[nodiscard]] Value parse(std::string_view text);

}  // namespace support::json
