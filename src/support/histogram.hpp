// Fixed-bin histogram used for the analyser's execution-time histograms
// (Figure 7 of the paper groups one ecall's execution times into 100 bins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace support {

class Histogram {
 public:
  /// Builds a histogram with `bins` equal-width bins spanning [lo, hi].
  /// Requires bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning [min(values), max(values)] like the paper's
  /// analyser does when plotting one call's durations.
  static Histogram from_values(const std::vector<double>& values, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  /// Inclusive-exclusive bounds of a bin (last bin is inclusive at hi).
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Index of the most populated bin.
  [[nodiscard]] std::size_t mode_bin() const noexcept;

  /// Renders an ASCII bar chart, `width` characters for the fullest bin.
  /// `unit` annotates the bin labels (e.g. "us").
  [[nodiscard]] std::string render_ascii(std::size_t width = 50,
                                         const std::string& unit = "") const;

  /// CSV rows "bin_lo,bin_hi,count\n" for external plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace support
