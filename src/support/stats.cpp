#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace support {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (double v : sorted) s.sum += v;
  s.mean = s.sum / static_cast<double>(s.count);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 50.0);
  s.p90 = percentile_sorted(sorted, 90.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.p99 = percentile_sorted(sorted, 99.0);

  double sq = 0.0;
  for (double v : sorted) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

Summary summarize(const std::vector<std::uint64_t>& values) {
  std::vector<double> d;
  d.reserve(values.size());
  for (auto v : values) d.push_back(static_cast<double>(v));
  return summarize(d);
}

}  // namespace support
