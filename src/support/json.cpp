#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/strutil.hpp"

namespace support::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::comma() {
  if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
}

Writer& Writer::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
  } else if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
             std::abs(d) < 1e15) {
    out_ += format("%lld", static_cast<long long>(d));
  } else {
    out_ += format("%.12g", d);
  }
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  comma();
  out_ += format("%llu", static_cast<unsigned long long>(v));
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  comma();
  out_ += format("%lld", static_cast<long long>(v));
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(format("json: %s at offset %zu", what, pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    if (depth_ > 128) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    ++depth_;
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      fail("expected ',' or '}'");
    }
    --depth_;
    return v;
  }

  Value parse_array() {
    ++depth_;
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        break;
      }
      fail("expected ',' or ']'");
    }
    --depth_;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Minimal UTF-8 encoding; surrogate pairs are passed through as
          // two 3-byte sequences (fine for validation purposes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace support::json
