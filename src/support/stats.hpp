// Descriptive statistics used by the sgx-perf analyser.
//
// §4.3.1 of the paper: "These statistics comprise number of calls, average
// and median duration, standard deviation as well as 90th, 95th and 99th
// percentile values."
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace support {

/// Summary statistics over a sample of (duration) values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double sum = 0.0;
};

/// Computes a Summary over `values`.  Empty input yields an all-zero Summary.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// Convenience overload for integer samples (e.g. nanosecond durations).
[[nodiscard]] Summary summarize(const std::vector<std::uint64_t>& values);

/// Linear-interpolation percentile over a *sorted* sample, `q` in [0, 100].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace support
