// Crash-safe file replacement: write to a temp path, rename(2) into place.
//
// rename() within one filesystem is atomic, so a reader (or a crash-restart)
// sees either the complete old file or the complete new one — never a
// truncated half-write.  Used by the fleet serve checkpointer and by the
// trace store's section commits, both of which rewrite files a concurrent
// `sgxperf stats` run may be about to open.
#pragma once

#include <string>
#include <string_view>

namespace support {

/// Sibling temp path for `path` ("<path>.tmp.<pid>"): same directory, so the
/// later rename never crosses a filesystem boundary.
[[nodiscard]] std::string atomic_temp_path(const std::string& path);

/// Atomically renames `temp_path` onto `final_path`, replacing any existing
/// file.  Throws std::runtime_error (and leaves the temp file for autopsy)
/// on failure.
void commit_file(const std::string& temp_path, const std::string& final_path);

/// Writes `bytes` to `path` atomically: temp sibling, flush, fsync, rename.
/// Throws std::runtime_error on any I/O failure; `path` is untouched then.
void write_file_atomic(const std::string& path, std::string_view bytes);

}  // namespace support
