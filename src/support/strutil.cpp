#include "support/strutil.hpp"

#include <cstdarg>
#include <cstdio>

namespace support {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_duration_ns(std::uint64_t ns) {
  if (ns < 10'000) return format("%llu ns", static_cast<unsigned long long>(ns));
  if (ns < 10'000'000) return format("%.1f us", static_cast<double>(ns) / 1e3);
  if (ns < 10'000'000'000ull) return format("%.1f ms", static_cast<double>(ns) / 1e6);
  return format("%.2f s", static_cast<double>(ns) / 1e9);
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes < 1024) return format("%llu B", static_cast<unsigned long long>(bytes));
  if (bytes < 1024ull * 1024) return format("%.2f KiB", static_cast<double>(bytes) / 1024.0);
  if (bytes < 1024ull * 1024 * 1024)
    return format("%.2f MiB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  return format("%.2f GiB", static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace support
