#include "support/clock.hpp"

// VirtualClock is header-only today; this translation unit anchors the
// library and reserves room for future out-of-line members.
namespace support {}
