// Small string and formatting helpers shared across the repository.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace support {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// True if `s` starts with / ends with the given prefix or suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Human-readable duration, e.g. "4205 ns", "13.2 us", "45.4 ms".
[[nodiscard]] std::string format_duration_ns(std::uint64_t ns);

/// Human-readable byte size, e.g. "1.26 MiB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace support
