#include "support/atomic_file.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace support {

std::string atomic_temp_path(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

void commit_file(const std::string& temp_path, const std::string& final_path) {
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("atomic_file: rename " + temp_path + " -> " + final_path +
                             " failed: " + std::strerror(errno));
  }
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = atomic_temp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("atomic_file: cannot open " + tmp + " for writing");
  }
  const bool written = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
                       std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_file: short write to " + tmp);
  }
  commit_file(tmp, path);
}

}  // namespace support
