// CRC32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans.
//
// The trace store (src/tracedb/store) checksums every section payload and
// event chunk so corruption is detected at open time instead of surfacing as
// garbage records deep inside an analysis run.  Table-driven, one pass,
// incremental: crc32(b, crc32(a)) == crc32(a ++ b).
#pragma once

#include <cstddef>
#include <cstdint>

namespace support {

/// CRC of `n` bytes at `p`, continuing from `seed` (pass the previous return
/// value to checksum a buffer in pieces; the default starts a fresh CRC).
[[nodiscard]] std::uint32_t crc32(const void* p, std::size_t n, std::uint32_t seed = 0);

}  // namespace support
