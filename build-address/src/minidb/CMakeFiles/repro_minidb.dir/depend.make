# Empty dependencies file for repro_minidb.
# This may be replaced when dependencies are built.
