file(REMOVE_RECURSE
  "CMakeFiles/repro_minidb.dir/btree.cpp.o"
  "CMakeFiles/repro_minidb.dir/btree.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/db.cpp.o"
  "CMakeFiles/repro_minidb.dir/db.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/enclave_db.cpp.o"
  "CMakeFiles/repro_minidb.dir/enclave_db.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/pager.cpp.o"
  "CMakeFiles/repro_minidb.dir/pager.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/sql.cpp.o"
  "CMakeFiles/repro_minidb.dir/sql.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/vfs.cpp.o"
  "CMakeFiles/repro_minidb.dir/vfs.cpp.o.d"
  "CMakeFiles/repro_minidb.dir/workload.cpp.o"
  "CMakeFiles/repro_minidb.dir/workload.cpp.o.d"
  "librepro_minidb.a"
  "librepro_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
