
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/btree.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/btree.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/btree.cpp.o.d"
  "/root/repo/src/minidb/db.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/db.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/db.cpp.o.d"
  "/root/repo/src/minidb/enclave_db.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/enclave_db.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/enclave_db.cpp.o.d"
  "/root/repo/src/minidb/pager.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/pager.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/pager.cpp.o.d"
  "/root/repo/src/minidb/sql.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/sql.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/sql.cpp.o.d"
  "/root/repo/src/minidb/vfs.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/vfs.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/vfs.cpp.o.d"
  "/root/repo/src/minidb/workload.cpp" "src/minidb/CMakeFiles/repro_minidb.dir/workload.cpp.o" "gcc" "src/minidb/CMakeFiles/repro_minidb.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-address/src/sgxsim/CMakeFiles/repro_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build-address/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  "/root/repo/build-address/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
