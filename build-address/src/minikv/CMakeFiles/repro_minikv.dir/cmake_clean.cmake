file(REMOVE_RECURSE
  "CMakeFiles/repro_minikv.dir/driver.cpp.o"
  "CMakeFiles/repro_minikv.dir/driver.cpp.o.d"
  "CMakeFiles/repro_minikv.dir/proxy.cpp.o"
  "CMakeFiles/repro_minikv.dir/proxy.cpp.o.d"
  "CMakeFiles/repro_minikv.dir/store.cpp.o"
  "CMakeFiles/repro_minikv.dir/store.cpp.o.d"
  "librepro_minikv.a"
  "librepro_minikv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_minikv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
