# Empty dependencies file for repro_bignum.
# This may be replaced when dependencies are built.
