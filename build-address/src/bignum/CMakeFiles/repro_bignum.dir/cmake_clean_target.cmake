file(REMOVE_RECURSE
  "librepro_bignum.a"
)
