# CMake generated Testfile for 
# Source directory: /root/repo/src/tracedb
# Build directory: /root/repo/build-address/src/tracedb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
