file(REMOVE_RECURSE
  "librepro_crypto.a"
)
