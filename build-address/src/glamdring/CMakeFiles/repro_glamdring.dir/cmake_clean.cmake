file(REMOVE_RECURSE
  "CMakeFiles/repro_glamdring.dir/glamdring.cpp.o"
  "CMakeFiles/repro_glamdring.dir/glamdring.cpp.o.d"
  "librepro_glamdring.a"
  "librepro_glamdring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_glamdring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
