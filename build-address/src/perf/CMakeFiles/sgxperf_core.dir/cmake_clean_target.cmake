file(REMOVE_RECURSE
  "libsgxperf_core.a"
)
