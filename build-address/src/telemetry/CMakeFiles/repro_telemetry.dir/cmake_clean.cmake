file(REMOVE_RECURSE
  "CMakeFiles/repro_telemetry.dir/chrome_trace.cpp.o"
  "CMakeFiles/repro_telemetry.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/repro_telemetry.dir/sampler.cpp.o"
  "CMakeFiles/repro_telemetry.dir/sampler.cpp.o.d"
  "CMakeFiles/repro_telemetry.dir/timeseries.cpp.o"
  "CMakeFiles/repro_telemetry.dir/timeseries.cpp.o.d"
  "librepro_telemetry.a"
  "librepro_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
