file(REMOVE_RECURSE
  "CMakeFiles/repro_sgxsim.dir/cost_model.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/cost_model.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/driver.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/driver.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/edl.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/edl.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/enclave.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/enclave.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/heap.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/heap.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/runtime.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/runtime.cpp.o.d"
  "CMakeFiles/repro_sgxsim.dir/trusted.cpp.o"
  "CMakeFiles/repro_sgxsim.dir/trusted.cpp.o.d"
  "librepro_sgxsim.a"
  "librepro_sgxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sgxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
