
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minissl/bio.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/bio.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/bio.cpp.o.d"
  "/root/repo/src/minissl/err.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/err.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/err.cpp.o.d"
  "/root/repo/src/minissl/http.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/http.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/http.cpp.o.d"
  "/root/repo/src/minissl/session.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/session.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/session.cpp.o.d"
  "/root/repo/src/minissl/ssl.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/ssl.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/ssl.cpp.o.d"
  "/root/repo/src/minissl/talos.cpp" "src/minissl/CMakeFiles/repro_minissl.dir/talos.cpp.o" "gcc" "src/minissl/CMakeFiles/repro_minissl.dir/talos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-address/src/sgxsim/CMakeFiles/repro_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build-address/src/bignum/CMakeFiles/repro_bignum.dir/DependInfo.cmake"
  "/root/repo/build-address/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  "/root/repo/build-address/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
