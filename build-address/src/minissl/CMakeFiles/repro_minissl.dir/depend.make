# Empty dependencies file for repro_minissl.
# This may be replaced when dependencies are built.
