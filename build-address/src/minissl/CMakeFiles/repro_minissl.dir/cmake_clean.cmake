file(REMOVE_RECURSE
  "CMakeFiles/repro_minissl.dir/bio.cpp.o"
  "CMakeFiles/repro_minissl.dir/bio.cpp.o.d"
  "CMakeFiles/repro_minissl.dir/err.cpp.o"
  "CMakeFiles/repro_minissl.dir/err.cpp.o.d"
  "CMakeFiles/repro_minissl.dir/http.cpp.o"
  "CMakeFiles/repro_minissl.dir/http.cpp.o.d"
  "CMakeFiles/repro_minissl.dir/session.cpp.o"
  "CMakeFiles/repro_minissl.dir/session.cpp.o.d"
  "CMakeFiles/repro_minissl.dir/ssl.cpp.o"
  "CMakeFiles/repro_minissl.dir/ssl.cpp.o.d"
  "CMakeFiles/repro_minissl.dir/talos.cpp.o"
  "CMakeFiles/repro_minissl.dir/talos.cpp.o.d"
  "librepro_minissl.a"
  "librepro_minissl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_minissl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
