file(REMOVE_RECURSE
  "librepro_minissl.a"
)
