file(REMOVE_RECURSE
  "librepro_stress.a"
)
