# Empty dependencies file for repro_stress.
# This may be replaced when dependencies are built.
