file(REMOVE_RECURSE
  "CMakeFiles/bench_merge.dir/bench_merge.cpp.o"
  "CMakeFiles/bench_merge.dir/bench_merge.cpp.o.d"
  "bench_merge"
  "bench_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
