file(REMOVE_RECURSE
  "CMakeFiles/bench_logger_overhead.dir/bench_logger_overhead.cpp.o"
  "CMakeFiles/bench_logger_overhead.dir/bench_logger_overhead.cpp.o.d"
  "bench_logger_overhead"
  "bench_logger_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logger_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
