# Empty compiler generated dependencies file for bench_securekeeper.
# This may be replaced when dependencies are built.
