file(REMOVE_RECURSE
  "CMakeFiles/bench_replay.dir/bench_replay.cpp.o"
  "CMakeFiles/bench_replay.dir/bench_replay.cpp.o.d"
  "bench_replay"
  "bench_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
