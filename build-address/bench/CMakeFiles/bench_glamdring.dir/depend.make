# Empty dependencies file for bench_glamdring.
# This may be replaced when dependencies are built.
