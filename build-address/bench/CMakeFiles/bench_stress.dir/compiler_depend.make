# Empty compiler generated dependencies file for bench_stress.
# This may be replaced when dependencies are built.
