file(REMOVE_RECURSE
  "CMakeFiles/bench_paging.dir/bench_paging.cpp.o"
  "CMakeFiles/bench_paging.dir/bench_paging.cpp.o.d"
  "bench_paging"
  "bench_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
