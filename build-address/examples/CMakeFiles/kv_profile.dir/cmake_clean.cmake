file(REMOVE_RECURSE
  "CMakeFiles/kv_profile.dir/kv_profile.cpp.o"
  "CMakeFiles/kv_profile.dir/kv_profile.cpp.o.d"
  "kv_profile"
  "kv_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
