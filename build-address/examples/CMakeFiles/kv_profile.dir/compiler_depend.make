# Empty compiler generated dependencies file for kv_profile.
# This may be replaced when dependencies are built.
