file(REMOVE_RECURSE
  "CMakeFiles/workingset_demo.dir/workingset_demo.cpp.o"
  "CMakeFiles/workingset_demo.dir/workingset_demo.cpp.o.d"
  "workingset_demo"
  "workingset_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workingset_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
