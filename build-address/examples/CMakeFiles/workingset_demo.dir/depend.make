# Empty dependencies file for workingset_demo.
# This may be replaced when dependencies are built.
