# Empty compiler generated dependencies file for talos_profile.
# This may be replaced when dependencies are built.
