# Empty dependencies file for db_tuning.
# This may be replaced when dependencies are built.
