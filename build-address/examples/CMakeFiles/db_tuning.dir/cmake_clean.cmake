file(REMOVE_RECURSE
  "CMakeFiles/db_tuning.dir/db_tuning.cpp.o"
  "CMakeFiles/db_tuning.dir/db_tuning.cpp.o.d"
  "db_tuning"
  "db_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
