# Empty dependencies file for json_check.
# This may be replaced when dependencies are built.
