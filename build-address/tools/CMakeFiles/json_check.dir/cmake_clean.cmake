file(REMOVE_RECURSE
  "CMakeFiles/json_check.dir/json_check.cpp.o"
  "CMakeFiles/json_check.dir/json_check.cpp.o.d"
  "json_check"
  "json_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
