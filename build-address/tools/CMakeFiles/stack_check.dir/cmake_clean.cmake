file(REMOVE_RECURSE
  "CMakeFiles/stack_check.dir/stack_check.cpp.o"
  "CMakeFiles/stack_check.dir/stack_check.cpp.o.d"
  "stack_check"
  "stack_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
