file(REMOVE_RECURSE
  "CMakeFiles/sgxperf.dir/sgxperf_cli.cpp.o"
  "CMakeFiles/sgxperf.dir/sgxperf_cli.cpp.o.d"
  "sgxperf"
  "sgxperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
