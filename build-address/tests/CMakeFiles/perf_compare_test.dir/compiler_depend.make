# Empty compiler generated dependencies file for perf_compare_test.
# This may be replaced when dependencies are built.
