file(REMOVE_RECURSE
  "CMakeFiles/perf_workingset_test.dir/perf_workingset_test.cpp.o"
  "CMakeFiles/perf_workingset_test.dir/perf_workingset_test.cpp.o.d"
  "perf_workingset_test"
  "perf_workingset_test.pdb"
  "perf_workingset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_workingset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
