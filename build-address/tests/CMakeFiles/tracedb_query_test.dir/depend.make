# Empty dependencies file for tracedb_query_test.
# This may be replaced when dependencies are built.
