file(REMOVE_RECURSE
  "CMakeFiles/tracedb_query_test.dir/tracedb_query_test.cpp.o"
  "CMakeFiles/tracedb_query_test.dir/tracedb_query_test.cpp.o.d"
  "tracedb_query_test"
  "tracedb_query_test.pdb"
  "tracedb_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracedb_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
