file(REMOVE_RECURSE
  "CMakeFiles/edl_test.dir/edl_test.cpp.o"
  "CMakeFiles/edl_test.dir/edl_test.cpp.o.d"
  "edl_test"
  "edl_test.pdb"
  "edl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
