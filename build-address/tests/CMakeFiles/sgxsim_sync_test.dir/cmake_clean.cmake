file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_sync_test.dir/sgxsim_sync_test.cpp.o"
  "CMakeFiles/sgxsim_sync_test.dir/sgxsim_sync_test.cpp.o.d"
  "sgxsim_sync_test"
  "sgxsim_sync_test.pdb"
  "sgxsim_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
