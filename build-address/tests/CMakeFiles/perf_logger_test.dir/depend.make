# Empty dependencies file for perf_logger_test.
# This may be replaced when dependencies are built.
