file(REMOVE_RECURSE
  "CMakeFiles/perf_logger_test.dir/perf_logger_test.cpp.o"
  "CMakeFiles/perf_logger_test.dir/perf_logger_test.cpp.o.d"
  "perf_logger_test"
  "perf_logger_test.pdb"
  "perf_logger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_logger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
