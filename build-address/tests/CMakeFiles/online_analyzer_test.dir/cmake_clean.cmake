file(REMOVE_RECURSE
  "CMakeFiles/online_analyzer_test.dir/online_analyzer_test.cpp.o"
  "CMakeFiles/online_analyzer_test.dir/online_analyzer_test.cpp.o.d"
  "online_analyzer_test"
  "online_analyzer_test.pdb"
  "online_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
