file(REMOVE_RECURSE
  "CMakeFiles/minidb_test.dir/minidb_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb_test.cpp.o.d"
  "minidb_test"
  "minidb_test.pdb"
  "minidb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
