# Empty dependencies file for minidb_test.
# This may be replaced when dependencies are built.
