# Empty dependencies file for minissl_edge_test.
# This may be replaced when dependencies are built.
