file(REMOVE_RECURSE
  "CMakeFiles/minissl_edge_test.dir/minissl_edge_test.cpp.o"
  "CMakeFiles/minissl_edge_test.dir/minissl_edge_test.cpp.o.d"
  "minissl_edge_test"
  "minissl_edge_test.pdb"
  "minissl_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minissl_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
