file(REMOVE_RECURSE
  "CMakeFiles/logger_concurrency_test.dir/logger_concurrency_test.cpp.o"
  "CMakeFiles/logger_concurrency_test.dir/logger_concurrency_test.cpp.o.d"
  "logger_concurrency_test"
  "logger_concurrency_test.pdb"
  "logger_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logger_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
