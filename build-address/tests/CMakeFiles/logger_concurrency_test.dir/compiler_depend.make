# Empty compiler generated dependencies file for logger_concurrency_test.
# This may be replaced when dependencies are built.
