file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_test.dir/sgxsim_test.cpp.o"
  "CMakeFiles/sgxsim_test.dir/sgxsim_test.cpp.o.d"
  "sgxsim_test"
  "sgxsim_test.pdb"
  "sgxsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
