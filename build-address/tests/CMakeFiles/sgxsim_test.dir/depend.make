# Empty dependencies file for sgxsim_test.
# This may be replaced when dependencies are built.
