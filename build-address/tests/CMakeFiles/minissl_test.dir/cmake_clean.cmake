file(REMOVE_RECURSE
  "CMakeFiles/minissl_test.dir/minissl_test.cpp.o"
  "CMakeFiles/minissl_test.dir/minissl_test.cpp.o.d"
  "minissl_test"
  "minissl_test.pdb"
  "minissl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minissl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
