file(REMOVE_RECURSE
  "CMakeFiles/hdr_histogram_test.dir/hdr_histogram_test.cpp.o"
  "CMakeFiles/hdr_histogram_test.dir/hdr_histogram_test.cpp.o.d"
  "hdr_histogram_test"
  "hdr_histogram_test.pdb"
  "hdr_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdr_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
