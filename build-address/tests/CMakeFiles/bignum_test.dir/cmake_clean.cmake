file(REMOVE_RECURSE
  "CMakeFiles/bignum_test.dir/bignum_test.cpp.o"
  "CMakeFiles/bignum_test.dir/bignum_test.cpp.o.d"
  "bignum_test"
  "bignum_test.pdb"
  "bignum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bignum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
