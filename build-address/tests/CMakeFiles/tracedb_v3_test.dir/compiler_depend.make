# Empty compiler generated dependencies file for tracedb_v3_test.
# This may be replaced when dependencies are built.
