file(REMOVE_RECURSE
  "CMakeFiles/tracedb_test.dir/tracedb_test.cpp.o"
  "CMakeFiles/tracedb_test.dir/tracedb_test.cpp.o.d"
  "tracedb_test"
  "tracedb_test.pdb"
  "tracedb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracedb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
