# Empty compiler generated dependencies file for tracedb_shard_test.
# This may be replaced when dependencies are built.
