file(REMOVE_RECURSE
  "CMakeFiles/chrome_export_test.dir/chrome_export_test.cpp.o"
  "CMakeFiles/chrome_export_test.dir/chrome_export_test.cpp.o.d"
  "chrome_export_test"
  "chrome_export_test.pdb"
  "chrome_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrome_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
