file(REMOVE_RECURSE
  "CMakeFiles/stress_determinism_test.dir/stress_determinism_test.cpp.o"
  "CMakeFiles/stress_determinism_test.dir/stress_determinism_test.cpp.o.d"
  "stress_determinism_test"
  "stress_determinism_test.pdb"
  "stress_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
