file(REMOVE_RECURSE
  "CMakeFiles/live_monitor_test.dir/live_monitor_test.cpp.o"
  "CMakeFiles/live_monitor_test.dir/live_monitor_test.cpp.o.d"
  "live_monitor_test"
  "live_monitor_test.pdb"
  "live_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
