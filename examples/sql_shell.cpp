// A tiny SQL shell over minidb — the SQLite-style front door.
//
//   $ ./examples/sql_shell "CREATE TABLE kv; INSERT INTO kv VALUES ('a','1'); SELECT * FROM kv"
//   $ echo "SELECT COUNT(*) FROM kv" | ./examples/sql_shell
//
// With an argument the statements run as a script; otherwise statements are
// read from stdin (one per line, `;` separated also fine).  The database
// lives in an in-memory VFS for the process lifetime.
#include <cstdio>
#include <iostream>
#include <string>

#include "minidb/sql.hpp"
#include "support/strutil.hpp"

namespace {

void print_result(const minidb::SqlResult& result) {
  if (!result.ok) {
    std::printf("error: %s\n", result.error.c_str());
    return;
  }
  for (const auto& row : result.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " | ", row[i].c_str());
    }
    std::printf("\n");
  }
  if (result.rows.empty() && result.affected > 0) {
    std::printf("ok (%zu row%s affected)\n", result.affected,
                result.affected == 1 ? "" : "s");
  } else if (result.rows.empty()) {
    std::printf("ok\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::VirtualClock clock;
  minidb::HostVfs vfs(clock);
  minidb::Database db(vfs, "/shell.db");
  minidb::SqlEngine sql(db);

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      for (const auto& statement : support::split(argv[i], ';')) {
        const auto trimmed = support::trim(statement);
        if (trimmed.empty()) continue;
        std::printf("sql> %s\n", std::string(trimmed).c_str());
        print_result(sql.exec(std::string(trimmed)));
      }
    }
    return 0;
  }

  std::printf("minidb sql shell — statements end at newline or ';' (Ctrl-D to exit)\n");
  std::string line;
  while (std::printf("sql> "), std::fflush(stdout), std::getline(std::cin, line)) {
    for (const auto& statement : support::split(line, ';')) {
      const auto trimmed = support::trim(statement);
      if (trimmed.empty()) continue;
      print_result(sql.exec(std::string(trimmed)));
    }
  }
  std::printf("\n");
  return 0;
}
