// Example: right-size an enclave with the working-set estimator (§4.2).
//
//   $ ./examples/workingset_demo
//
// An enclave is configured with a much larger heap than it uses.  The
// estimator strips MMU page permissions, catches the access faults, and
// reports exactly which pages the workload touches — start-up vs steady
// state — so the heap (and with it, EPC pressure) can be trimmed.
#include <cstdio>

#include "perf/workingset.hpp"
#include "sgxsim/runtime.hpp"
#include "support/strutil.hpp"

namespace {

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_init(void);
    public int ecall_request(uint64_t id);
  };
  untrusted {};
};
)";

}  // namespace

int main() {
  using namespace sgxsim;

  Urts urts;
  EnclaveConfig config;
  config.name = "oversized";
  config.heap_pages = 2048;  // 8 MiB heap "just to be safe" — the §2.3.3 trap
  const EnclaveId eid = urts.create_enclave(config, edl::parse(kEdl));
  Enclave& enclave = urts.enclave(eid);

  EnclaveAddr table_arena = 0;
  enclave.register_ecall("ecall_init", [&table_arena](TrustedContext& ctx, void*) {
    // Start-up allocates lookup tables: 48 pages, touched once.
    table_arena = ctx.malloc(48 * kPageSize);
    return table_arena != 0 ? SgxStatus::kSuccess : SgxStatus::kOutOfMemory;
  });
  enclave.register_ecall("ecall_request", [&table_arena](TrustedContext& ctx, void* ms) {
    // Steady state touches a handful of hot pages.
    const auto id = *static_cast<std::uint64_t*>(ms);
    ctx.touch(table_arena + (id % 6) * kPageSize, 256, MemAccess::kRead);
    ctx.work(3'000);
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({});

  std::printf("enclave size: %zu pages (%s) — padded to a power of two, measurement %.16s...\n",
              enclave.total_pages(),
              support::format_bytes(enclave.size_bytes()).c_str(),
              enclave.measurement().c_str());

  perf::WorkingSetEstimator ws(enclave);
  ws.start();
  urts.sgx_ecall(eid, 0, &table, nullptr);
  const auto startup = ws.checkpoint();

  for (std::uint64_t i = 0; i < 500; ++i) {
    urts.sgx_ecall(eid, 1, &table, &i);
  }
  const auto steady = ws.accessed_pages();
  std::printf("\nworking set after start-up:      %4zu pages (%s)\n", startup.size(),
              support::format_bytes(startup.size() * kPageSize).c_str());
  std::printf("working set during execution:    %4zu pages (%s)\n", steady.size(),
              support::format_bytes(steady.size() * kPageSize).c_str());
  std::printf("per-type breakdown (current interval): %s\n", ws.summary().c_str());
  ws.stop();

  const double utilisation =
      100.0 * static_cast<double>(startup.size()) / static_cast<double>(enclave.total_pages());
  std::printf("\nonly %.1f%% of the enclave is ever used — shrink heap_pages and you can pack"
              "\n%zu of these enclaves into the EPC instead of %zu.\n",
              utilisation,
              urts.driver().epc_pages() / (startup.size() + 16),
              urts.driver().epc_pages() / enclave.total_pages());
  return 0;
}
