// Quickstart: build an enclave, attach sgx-perf, run a workload, analyse.
//
//   $ ./examples/quickstart
//
// Walks the whole toolchain in ~100 lines:
//   1. describe an enclave interface in EDL and create the enclave,
//   2. register trusted functions and an ocall table,
//   3. attach the sgx-perf event logger (the LD_PRELOAD analogue),
//   4. run a deliberately anti-pattern-rich workload,
//   5. run the analyser and print its report and recommendations.
#include <cstdio>

#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/report.hpp"
#include "sgxsim/runtime.hpp"

namespace {

// The enclave interface: one chatty ecall pair (the anti-pattern), one ocall.
constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_feed_byte(uint64_t value);
    public int ecall_digest([out, size=32] char* out);
  };
  untrusted {
    void ocall_progress(uint64_t done);
  };
};
)";

sgxsim::SgxStatus ocall_progress(void* /*ms*/) { return sgxsim::SgxStatus::kSuccess; }

}  // namespace

int main() {
  using namespace sgxsim;

  // --- 1. the simulated machine and the enclave -----------------------------
  Urts urts;  // unpatched machine; try CostModel::preset(PatchLevel::kSpectreL1tf)
  EnclaveConfig config;
  config.name = "quickstart";
  const EnclaveId eid = urts.create_enclave(config, edl::parse(kEdl));

  // --- 2. trusted functions and the ocall table ------------------------------
  std::uint64_t state = 0;  // "enclave secret" accumulated byte by byte
  Enclave& enclave = urts.enclave(eid);
  enclave.register_ecall("ecall_feed_byte", [&state](TrustedContext& ctx, void* ms) {
    ctx.work(150);  // far less work than one transition costs
    state = state * 31 + *static_cast<std::uint64_t*>(ms);
    return SgxStatus::kSuccess;
  });
  enclave.register_ecall("ecall_digest", [&state](TrustedContext& ctx, void* ms) {
    ctx.work(2'000);
    ctx.copy_out(32);
    std::snprintf(static_cast<char*>(ms), 32, "%016llx",
                  static_cast<unsigned long long>(state));
    // Report progress through an ocall right before returning (SNC pattern).
    std::uint64_t done = 1;
    ctx.ocall(0, &done);
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({&ocall_progress});

  // --- 3. attach sgx-perf ------------------------------------------------------
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);  // application, enclave and "SDK" stay unmodified

  // --- 4. the workload: one ecall per byte — the classic SISC mistake ----------
  const char* message = "profiling enclaves beats guessing about them";
  for (const char* p = message; *p != '\0'; ++p) {
    for (int rep = 0; rep < 40; ++rep) {  // enough instances for the detectors
      std::uint64_t value = static_cast<std::uint64_t>(*p);
      urts.sgx_ecall(eid, 0, &table, &value);
    }
  }
  char digest[32] = {};
  urts.sgx_ecall(eid, 1, &table, digest);
  logger.detach();

  std::printf("enclave digest: %s\n", digest);
  std::printf("traced %zu calls, measurement %.16s...\n\n", trace.calls().size(),
              enclave.measurement().c_str());

  // --- 5. analyse ---------------------------------------------------------------
  perf::Analyzer analyzer(trace);
  analyzer.set_interface(eid, edl::parse(kEdl));
  const auto report = analyzer.analyze();
  std::fputs(perf::render_text(report).c_str(), stdout);

  std::printf("\nexpected detections: ecall_feed_byte is batchable SISC (one ecall per byte!)"
              "\nand ocall_progress is a reorder candidate at the end of ecall_digest.\n");
  return 0;
}
