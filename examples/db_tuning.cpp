// Example: use sgx-perf to find and fix the lseek+write anti-pattern in an
// enclavised database (§5.2.2 in miniature).
//
//   $ ./examples/db_tuning
//
// Steps: (1) run the enclavised minidb with syscalls-as-ocalls and profile
// it, (2) read the analyser's SDSC finding, (3) apply the recommended merge
// (pwrite) and measure the speed-up in virtual time.
#include <cstdio>

#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "perf/analyzer.hpp"
#include "perf/compare.hpp"
#include "perf/logger.hpp"

namespace {

double replay_commits(sgxsim::Urts& urts, minidb::WriteMode mode, int commits) {
  minidb::HostVfs vfs(urts.clock());
  minidb::DbEnclave db(urts, vfs, mode);
  db.open("/tuning.db");
  minidb::CommitGenerator gen;
  std::size_t records = 0;
  const auto t0 = urts.clock().now();
  for (int i = 0; i < commits; ++i) {
    db.begin();
    for (const auto& [k, v] : gen.make(static_cast<std::uint64_t>(i)).to_records()) {
      db.put_in_txn(k, v);
      ++records;
    }
    db.commit();
  }
  const auto elapsed = urts.clock().now() - t0;
  db.close_db();
  return static_cast<double>(records) / (static_cast<double>(elapsed) / 1e9);
}

}  // namespace

int main() {
  constexpr int kCommits = 100;
  sgxsim::Urts urts;

  // --- 1. profile the naive build ---------------------------------------------
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  const double naive_rps = replay_commits(urts, minidb::WriteMode::kSeekThenWrite, kCommits);
  logger.detach();
  std::printf("naive enclavised build: %.0f records/s (syscalls as individual ocalls)\n\n",
              naive_rps);

  // --- 2. what does sgx-perf say? ------------------------------------------------
  perf::Analyzer analyzer(trace);
  analyzer.set_interface(1, sgxsim::edl::parse(minidb::kDbEdl));
  const auto report = analyzer.analyze();
  std::printf("analyser findings mentioning the write path:\n");
  for (const auto& f : report.findings) {
    if (f.subject_name.find("vfs") == std::string::npos) continue;
    std::printf("  %s: %s%s%s\n", perf::to_string(f.kind), f.subject_name.c_str(),
                f.partner ? " (with " : "", f.partner ? (f.partner_name + ")").c_str() : "");
    for (const auto& r : f.recommendations) {
      std::printf("    -> %s (predicted %.2fx)\n", perf::to_string(r.action),
                  r.predicted_speedup);
    }
  }

  // --- 3. apply the merge, re-profile and diff the traces ----------------------
  tracedb::TraceDatabase after;
  perf::Logger after_logger(after);
  after_logger.attach(urts);
  const double merged_rps = replay_commits(urts, minidb::WriteMode::kMergedPwrite, kCommits);
  after_logger.detach();
  std::printf("\nafter merging lseek+write into pwrite: %.0f records/s (%.2fx)\n", merged_rps,
              merged_rps / naive_rps);
  std::printf("(the paper measured 13,160 -> 17,483 requests/s, a 1.33x improvement)\n\n");
  std::fputs(perf::render_comparison(perf::compare_traces(trace, after), 10).c_str(), stdout);
  return 0;
}
