// Example: profile the SecureKeeper-like encrypted proxy and render the
// Figure 7/8 plots for one of its ecalls.
//
//   $ ./examples/kv_profile
//
// Runs a small client workload, then prints the execution-time histogram and
// scatter plot of ecall_handle_input_from_client, plus the sleep/wake
// dependencies the logger recorded during the connection phase.
#include <cstdio>

#include "minikv/driver.hpp"
#include "perf/logger.hpp"
#include "perf/report.hpp"
#include "support/strutil.hpp"

int main() {
  using namespace minikv;

  sgxsim::Urts urts;
  Store store(urts.clock());
  KvProxy proxy(urts, store);
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);

  DriverConfig config;
  config.clients = 4;
  config.ops_per_client = 500;
  const DriverReport report = run_workload(proxy, config);
  logger.detach();

  std::printf("proxied %llu operations at %.0f ops/s (virtual); backend stored %zu nodes, "
              "all ciphertext\n\n",
              static_cast<unsigned long long>(report.operations),
              report.throughput_ops_per_s, store.node_count());

  const tracedb::CallKey key{proxy.enclave_id(), tracedb::CallType::kEcall, 0};
  std::printf("--- %s duration histogram ---\n",
              trace.name_of(key.enclave_id, key.type, key.call_id).c_str());
  std::fputs(perf::duration_histogram(trace, key, 20).render_ascii(50, "us").c_str(), stdout);

  std::printf("\n--- duration over time ---\n");
  std::fputs(perf::render_scatter_ascii(trace, key, 70, 12).c_str(), stdout);

  if (!trace.syncs().empty()) {
    std::printf("\n--- synchronisation dependencies (connection storm) ---\n");
    for (const auto& s : trace.syncs()) {
      if (s.kind == tracedb::SyncKind::kWakeup) {
        std::printf("  thread %u woke thread %u at %s\n", s.thread_id, s.target_thread_id,
                    support::format_duration_ns(s.timestamp_ns).c_str());
      } else {
        std::printf("  thread %u went to sleep at %s\n", s.thread_id,
                    support::format_duration_ns(s.timestamp_ns).c_str());
      }
    }
  } else {
    std::printf("\nno sleep/wake ocalls recorded — connects did not collide this run\n");
  }
  return 0;
}
