// Example: profile the enclavised TLS stack serving HTTPS requests.
//
//   $ ./examples/talos_profile [requests]
//
// Mirrors the paper's §5.2.1 study in miniature: mini-curl fetches pages
// from mini-nginx terminating TLS inside the TaLoS-style enclave, sgx-perf
// traces everything, and the analyser explains why a drop-in OpenSSL
// interface makes a poor enclave interface.  Also saves the trace with
// tracedb (trace.bin + CSV) so it can be inspected or re-analysed offline.
#include <cstdio>
#include <cstdlib>

#include "minissl/http.hpp"
#include "minissl/talos.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/report.hpp"

int main(int argc, char** argv) {
  using namespace minissl;
  const int requests = argc > 1 ? std::atoi(argv[1]) : 50;

  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);

  int served = 0;
  {
    TalosEnclave talos(urts);
    SslCtx client_ctx;
    for (int r = 0; r < requests; ++r) {
      SimConnection conn;
      const auto conn_id =
          talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
      auto server = talos.new_session(conn_id, /*server=*/true);
      NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()),
                              /*server=*/false, static_cast<std::uint64_t>(r) + 7);
      MiniNginx nginx;
      MiniCurl curl("/profile-me.html");
      if (run_exchange(nginx, *server, curl, client)) ++served;
      talos.drop_connection(conn_id);
    }
    std::printf("served %d/%d HTTPS requests through the enclave "
                "(info callbacks: %llu, ALPN callbacks: %llu — both via ocalls)\n\n",
                served, requests,
                static_cast<unsigned long long>(talos.info_callback_invocations),
                static_cast<unsigned long long>(talos.alpn_callback_invocations));
  }
  logger.detach();

  // Persist the trace like the real tool persists its SQLite database.
  trace.save("talos_trace.bin");
  trace.export_csv("talos_trace_csv");
  std::printf("trace saved to talos_trace.bin and talos_trace_csv/*.csv\n\n");

  // Post-mortem analysis on the reloaded trace.
  const tracedb::TraceDatabase loaded = tracedb::TraceDatabase::load("talos_trace.bin");
  perf::Analyzer analyzer(loaded);
  analyzer.set_interface(1, sgxsim::edl::parse(kTalosEdl));
  std::fputs(perf::render_text(analyzer.analyze()).c_str(), stdout);
  return 0;
}
