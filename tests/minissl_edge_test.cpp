// Additional minissl edge cases: quiet shutdown, ALPN negotiation through
// the callback, record-boundary behaviour, and Bio buffering under
// byte-at-a-time delivery.
#include <gtest/gtest.h>

#include "minissl/http.hpp"
#include "minissl/ssl.hpp"

namespace {

using namespace minissl;

struct Pair {
  Pair()
      : server(ctx, 7), client(ctx, 8) {
    server.set_transport(std::make_unique<PipeEnd>(conn.server_end()));
    server.set_accept_state();
    client.set_transport(std::make_unique<PipeEnd>(conn.client_end()));
    client.set_connect_state();
  }

  void handshake() {
    for (int i = 0; i < 10; ++i) {
      client.do_handshake();
      server.do_handshake();
      if (client.handshake_done() && server.handshake_done()) return;
    }
    FAIL() << "handshake stuck";
  }

  SslCtx ctx;
  SimConnection conn;
  Ssl server;
  Ssl client;
};

TEST(SslEdge, QuietShutdownSendsNothing) {
  Pair p;
  p.handshake();
  p.client.set_quiet_shutdown(true);
  EXPECT_EQ(p.client.shutdown(), 0);
  // The server sees no close_notify: a read just wants more data.
  char buf[8];
  const int n = p.server.read(buf, sizeof(buf));
  EXPECT_EQ(n, -1);
  EXPECT_EQ(p.server.get_error(n), SSL_ERROR_WANT_READ);
}

TEST(SslEdge, AlpnCallbackObservesAllOffers) {
  SslCtx ctx;
  static std::vector<std::string> observed;
  observed.clear();
  ctx.set_alpn_select_cb(
      [](const Ssl*, std::string& selected, const std::vector<std::string>& offered, void*) {
        observed = offered;
        selected = offered.back();  // pick the last offer
        return 0;
      },
      nullptr);

  SimConnection conn;
  Ssl server(ctx, 1);
  server.set_transport(std::make_unique<PipeEnd>(conn.server_end()));
  server.set_accept_state();
  Ssl client(ctx, 2);
  client.set_transport(std::make_unique<PipeEnd>(conn.client_end()));
  client.set_connect_state();
  client.set_alpn_offer({"h2", "http/1.1", "spdy/3"});

  for (int i = 0; i < 10 && !(client.handshake_done() && server.handshake_done()); ++i) {
    client.do_handshake();
    server.do_handshake();
  }
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], "h2");
  EXPECT_EQ(server.alpn_selected(), "spdy/3");
}

TEST(SslEdge, EmptyWriteIsNoop) {
  Pair p;
  p.handshake();
  EXPECT_EQ(p.client.write("", 0), 0);
  char buf[8];
  const int n = p.server.read(buf, sizeof(buf));
  EXPECT_EQ(n, -1);  // nothing arrived
}

TEST(SslEdge, InterleavedBidirectionalTraffic) {
  Pair p;
  p.handshake();
  for (int round = 0; round < 20; ++round) {
    const std::string c2s = "ping-" + std::to_string(round);
    const std::string s2c = "pong-" + std::to_string(round);
    ASSERT_GT(p.client.write(c2s.data(), static_cast<int>(c2s.size())), 0);
    ASSERT_GT(p.server.write(s2c.data(), static_cast<int>(s2c.size())), 0);
    char buf[64];
    int n = p.server.read(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), c2s);
    n = p.client.read(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), s2c);
  }
}

TEST(SslEdge, SequenceNumbersPreventReplayConfusion) {
  Pair p;
  p.handshake();
  // Two records, read in order: each decrypts with its own nonce.
  p.client.write("first", 5);
  p.client.write("second", 6);
  char buf[16];
  int n = p.server.read(buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "first");
  n = p.server.read(buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "second");
}

TEST(BioEdge, ByteAtATimeDelivery) {
  // A record that trickles in one byte per pump still decodes exactly once
  // complete.
  SslCtx ctx;
  SimConnection conn;
  Ssl server(ctx, 1);
  server.set_transport(std::make_unique<PipeEnd>(conn.server_end()));
  server.set_accept_state();
  Ssl client(ctx, 2);

  // Produce a ClientHello into a staging pipe, then deliver it byte by byte.
  SimConnection staging;
  client.set_transport(std::make_unique<PipeEnd>(staging.client_end()));
  client.set_connect_state();
  client.do_handshake();  // writes the hello into staging

  PipeEnd staged_reader = staging.server_end();
  PipeEnd to_server = conn.client_end();
  std::uint8_t byte;
  int delivered = 0;
  while (staged_reader.read(&byte, 1) == 1) {
    // Before the final byte arrives, the server must keep returning
    // WANT_READ rather than mis-decoding a partial record.
    const int ret = server.do_handshake();
    EXPECT_EQ(ret, -1);
    EXPECT_EQ(server.get_error(ret), SSL_ERROR_WANT_READ);
    to_server.write(&byte, 1);
    ++delivered;
  }
  EXPECT_GT(delivered, 10);
  EXPECT_EQ(server.do_handshake(), 1);
}

TEST(HttpEdge, ServerSurvivesEarlyClientClose) {
  SslCtx ctx;
  SimConnection conn;
  NativeTlsSession server(ctx, std::make_unique<PipeEnd>(conn.server_end()), true, 1);
  NativeTlsSession client(ctx, std::make_unique<PipeEnd>(conn.client_end()), false, 2);
  // Complete the handshake, then the client closes without sending a request.
  for (int i = 0; i < 10; ++i) {
    client.do_handshake();
    server.do_handshake();
  }
  client.shutdown();
  MiniNginx nginx;
  for (int i = 0; i < 20 && !nginx.done(); ++i) nginx.step(server);
  EXPECT_TRUE(nginx.done());
  EXPECT_TRUE(nginx.last_request().empty());
}

}  // namespace
