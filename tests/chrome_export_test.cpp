// Chrome trace-event exporter: byte-exact golden-file check on a handcrafted
// database, plus schema validation of an export of a real logger-recorded
// trace (per-thread duration events, instant events, counter tracks).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"
#include "support/json.hpp"
#include "telemetry/chrome_trace.hpp"
#include "tests/sim_helpers.hpp"
#include "tracedb/database.hpp"

namespace {

using support::json::Value;
using tracedb::TraceDatabase;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

/// Deterministic database covering every event family the exporter handles.
TraceDatabase golden_db() {
  TraceDatabase db;
  db.add_enclave({/*enclave_id=*/1, "worker", /*created_ns=*/0, /*destroyed_ns=*/90'000,
                  /*tcs_count=*/2, /*size_bytes=*/1 << 20});
  db.add_call_name({1, tracedb::CallType::kEcall, 0, "ecall_process"});
  db.add_call_name({1, tracedb::CallType::kOcall, 0, "ocall_log"});

  tracedb::CallRecord ecall;
  ecall.type = tracedb::CallType::kEcall;
  ecall.thread_id = 11;
  ecall.enclave_id = 1;
  ecall.call_id = 0;
  ecall.start_ns = 1'000;
  ecall.end_ns = 9'500;
  ecall.aex_count = 1;
  const auto parent = db.add_call(ecall);

  tracedb::CallRecord ocall;
  ocall.type = tracedb::CallType::kOcall;
  ocall.thread_id = 11;
  ocall.enclave_id = 1;
  ocall.call_id = 0;
  ocall.parent = parent;
  ocall.start_ns = 3'000;
  ocall.end_ns = 4'250;
  db.add_call(ocall);

  db.add_aex({/*thread_id=*/11, /*enclave_id=*/1, /*timestamp_ns=*/5'000, parent,
              tracedb::AexCause::kInterrupt});
  db.add_paging({/*enclave_id=*/1, /*page_number=*/42, tracedb::PageDirection::kPageOut,
                 /*timestamp_ns=*/6'000});

  const auto series =
      db.add_metric_series(tracedb::MetricKind::kGauge, "sgxsim.epc_resident", "pages");
  db.add_metric_sample({series, 2'000, 128.0});
  db.add_metric_sample({series, 8'000, 127.0});
  return db;
}

TEST(ChromeExport, MatchesGoldenFile) {
  const std::string json = telemetry::export_chrome_trace(golden_db());
  const std::string golden_path = std::string(GOLDEN_DIR) + "/chrome_trace.json";
  const std::string expected = slurp(golden_path);
  ASSERT_FALSE(expected.empty()) << "missing golden file: " << golden_path;
  EXPECT_EQ(json + "\n", expected) << "exporter output drifted from " << golden_path
                                   << " — if intentional, regenerate the golden file";
}

TEST(ChromeExport, GoldenOutputIsValidJson) {
  const Value doc = support::json::parse(telemetry::export_chrome_trace(golden_db()));
  ASSERT_TRUE(doc.is_object());
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 process_name metadata + 2 calls + 1 AEX + 1 paging + 2 samples.
  EXPECT_EQ(events->array.size(), 8u);
}

TEST(ChromeExport, EmptyDatabaseExportsEmptyEventArray) {
  TraceDatabase db;
  const Value doc = support::json::parse(telemetry::export_chrome_trace(db));
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

// End-to-end: record a real multi-threaded workload with telemetry sampling
// on, export it, and check the trace-event schema the viewers rely on.
TEST(ChromeExport, RecordedTraceHasCallTracksAndCounterTracks) {
  using namespace sgxsim;
  Urts urts;
  TraceDatabase db;
  perf::LoggerConfig config;
  config.metric_sample_period_ns = 50'000;
  perf::Logger logger(db, config);
  logger.attach(urts);

  constexpr const char* kEdl = R"(
    enclave {
      trusted { public int ecall_work(void); };
      untrusted { void ocall_note(void); };
    };
  )";
  EnclaveConfig enclave_config;
  enclave_config.tcs_count = 3;
  const EnclaveId eid = test_helpers::make_enclave(urts, kEdl, std::move(enclave_config));
  urts.enclave(eid).register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    ctx.work(2'000);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&test_helpers::empty_ocall});
  std::thread other([&] {
    for (int i = 0; i < 40; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  });
  for (int i = 0; i < 40; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  other.join();
  logger.detach();

  const Value doc = support::json::parse(telemetry::export_chrome_trace(db));
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<double> ecall_tids;
  std::set<std::string> counter_names;
  std::size_t duration_events = 0;
  for (const auto& e : events->array) {
    const Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ++duration_events;
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      const Value* cat = e.find("cat");
      ASSERT_NE(cat, nullptr);
      EXPECT_TRUE(cat->string == "ecall" || cat->string == "ocall");
      if (cat->string == "ecall") ecall_tids.insert(e.find("tid")->number);
    } else if (ph->string == "C") {
      counter_names.insert(e.find("name")->string);
    }
  }
  // Two worker threads issued 40 ecall+ocall pairs each.
  EXPECT_EQ(duration_events, 160u);
  EXPECT_EQ(ecall_tids.size(), 2u) << "expected one ecall track per worker thread";
  // The acceptance bar: at least the EPC residency, events-recorded and
  // transition counters must appear as counter tracks.
  EXPECT_GE(counter_names.size(), 3u);
  EXPECT_TRUE(counter_names.contains("sgxsim.epc_resident"));
  EXPECT_TRUE(counter_names.contains("logger.events_recorded"));
  EXPECT_TRUE(counter_names.contains("sgxsim.transitions.unpatched"));
}

TEST(MetricsSummary, RendersSeriesTable) {
  const std::string out = telemetry::render_metrics_summary(golden_db());
  EXPECT_NE(out.find("metric series:   1"), std::string::npos);
  EXPECT_NE(out.find("metric samples:  2"), std::string::npos);
  EXPECT_NE(out.find("sgxsim.epc_resident"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
  EXPECT_NE(out.find("127 pages"), std::string::npos);
}

TEST(MetricsSummary, ExplainsEmptyTelemetry) {
  TraceDatabase db;
  const std::string out = telemetry::render_metrics_summary(db);
  EXPECT_NE(out.find("no telemetry in this trace"), std::string::npos);
}

}  // namespace
